// Table 1 reproduction: misconfiguration types, single/multi-line class,
// observed ratio in the generated incident corpus — plus what the paper
// could not yet show: ACR's repair success, iterations and resolving time
// per type.
//
// Usage: bench_table1 [incidents] [seed]
#include <cstdlib>
#include <map>

#include "bench/util.hpp"
#include "core/acr.hpp"

int main(int argc, char** argv) {
  const int incidents = argc > 1 ? std::atoi(argv[1]) : 120;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;

  std::printf("ACR Table 1 campaign: %d incidents (seed %llu)\n", incidents,
              static_cast<unsigned long long>(seed));
  std::printf("fault distribution sampled from the paper's ratio column\n");

  acr::CampaignOptions options;
  options.incidents = incidents;
  options.seed = seed;
  const acr::CampaignResult campaign = acr::runCampaign(options);

  struct Row {
    int count = 0;
    int repaired = 0;
    int multi_line_changes = 0;
    long iterations = 0;
    double total_ms = 0;
  };
  std::map<acr::inject::FaultType, Row> rows;
  for (const auto& record : campaign.records) {
    Row& row = rows[record.type];
    ++row.count;
    if (record.repair.success) ++row.repaired;
    if (record.injected_lines > 1) ++row.multi_line_changes;
    row.iterations += record.repair.iterations;
    row.total_ms += record.repair.elapsed_ms;
  }

  acr::bench::Table table({"Configs", "Type", "Lines", "Paper", "Observed",
                           "Repaired", "Avg iters", "Avg ms"},
                          {8, 42, 7, 8, 10, 10, 11, 10});
  table.printHeader();
  const int total = static_cast<int>(campaign.records.size());
  for (const auto& spec : acr::inject::faultCatalog()) {
    const Row row = rows[spec.type];
    table.printRow({
        spec.category,
        spec.label,
        spec.multi_line ? "M" : "S",
        acr::bench::pct(spec.ratio),
        total == 0 ? "-" : acr::bench::pct(double(row.count) / total),
        row.count == 0
            ? "-"
            : acr::bench::pct(double(row.repaired) / row.count, 0),
        row.count == 0 ? "-"
                       : acr::bench::fmt(double(row.iterations) / row.count),
        row.count == 0 ? "-" : acr::bench::fmt(row.total_ms / row.count),
    });
  }
  table.printRule();

  int multi = 0;
  for (const auto& record : campaign.records) {
    if (record.injected_lines > 1) ++multi;
  }
  std::printf("\n%d incidents violated intents; %d repaired (%.1f%%)\n", total,
              campaign.repairedCount(),
              total == 0 ? 0.0 : 100.0 * campaign.repairedCount() / total);
  std::printf("multi-line incidents: %.1f%% (paper: 83.2%%)\n",
              total == 0 ? 0.0 : 100.0 * multi / total);
  return 0;
}
