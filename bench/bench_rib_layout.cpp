// Data-layout regression gate: one full VALIDATE round on the interned
// SoA RIB engines vs. the committed PR-6 (map-of-maps) baseline.
//
// The workload is bench_candidate_batch's VALIDATE round verbatim — anchor
// fixpoint, one wide shared base edit (agg1a prefix-list), 24 narrow
// candidates (ToR-local static routes), all evaluated through one
// route::DeltaTree — so the timed number is directly comparable to the
// tree_ms column of BENCH_candidate_batch.json as committed by PR 6, the
// last revision before the layout overhaul. Before timing anything the
// harness verifies every tree leaf route-by-route against both a
// from-scratch simulation and the per-candidate DeltaSimulator run: the
// gate can only pass with byte-identical verdicts.
//
//   bench_rib_layout [--reps N] [--smoke] [--json]
//
// --smoke runs the smallest fabric once (CI wiring check); --json replaces
// the table with a machine-readable array (committed as
// BENCH_rib_layout.json). Full runs self-gate: the harness exits non-zero
// unless the dcn-8x8 round beats the PR-6 baseline by >= 2x.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "bench/util.hpp"
#include "core/scenarios.hpp"
#include "routing/delta.hpp"
#include "routing/delta_tree.hpp"
#include "routing/simulator.hpp"

namespace {

using namespace acr;

/// tree_ms per fabric from BENCH_candidate_batch.json at the PR-6 revision
/// (commit 5a63f24, string-keyed map-of-maps RIBs) — the denominator of
/// the layout speedup.
double baselineTreeMs(const std::string& scenario) {
  if (scenario == "dcn-2x2") return 0.181;
  if (scenario == "dcn-4x4") return 1.775;
  if (scenario == "dcn-8x8") return 17.233;
  return 0;
}

struct Case {
  std::string scenario;
  int routers = 0;
  int leaves = 0;
  double tree_ms = 0;      // DeltaTree ctor + setBase + all leaves
  double baseline_ms = 0;  // PR-6 tree_ms on the same workload

  [[nodiscard]] double speedup() const {
    return tree_ms > 0 ? baseline_ms / tree_ms : 0;
  }
};

double medianMs(std::vector<double>& samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

bool sameResult(const route::SimResult& a, const route::SimResult& b) {
  return a.converged == b.converged && a.flapping == b.flapping &&
         a.rib.identicalTo(b.rib);
}

/// The shared base edit of bench_candidate_batch: drop the VIP half of
/// agg1a's pod-local import filter (fabric-wide blast radius).
void applyBaseEdit(topo::Network& network) {
  auto& lists = network.config("agg1a")->prefix_lists;
  for (auto& list : lists) {
    if (list.name == "POD_LOCAL" && list.entries.size() > 1) {
      list.entries.pop_back();
    }
  }
}

struct Candidate {
  std::string device;
  topo::Network network;
};

std::vector<Candidate> makeCandidates(const topo::Network& base, int pods,
                                      int tors, int max_candidates) {
  std::vector<Candidate> candidates;
  for (int p = 1; p <= pods; ++p) {
    for (int t = 2; t <= tors; ++t) {
      if (static_cast<int>(candidates.size()) >= max_candidates) {
        return candidates;
      }
      const std::string tor =
          "tor" + std::to_string(p) + "_" + std::to_string(t);
      Candidate candidate;
      candidate.device = tor;
      candidate.network = base;
      const int index = static_cast<int>(candidates.size());
      candidate.network.config(tor)->static_routes.push_back(
          cfg::StaticRouteConfig{
              net::Prefix(net::Ipv4Address::fromOctets(
                              10, 200, static_cast<std::uint8_t>(index), 0),
                          24),
              net::Ipv4Address::fromOctets(10, static_cast<std::uint8_t>(p),
                                           static_cast<std::uint8_t>(t), 11),
              0});
      candidate.network.renumberAll();
      candidates.push_back(std::move(candidate));
    }
  }
  return candidates;
}

Case runCase(const Scenario& scenario, int pods, int tors, int reps) {
  route::SimOptions options;
  options.record_provenance = false;

  const topo::Network& anchor_network = scenario.network();
  const route::SimResult anchor = route::Simulator(anchor_network).run(options);
  if (!anchor.converged) {
    std::fprintf(stderr, "%s: anchor did not converge\n",
                 scenario.name.c_str());
    std::exit(1);
  }

  topo::Network base = anchor_network;
  applyBaseEdit(base);
  base.renumberAll();

  const std::vector<Candidate> candidates =
      makeCandidates(base, pods, tors, /*max_candidates=*/24);
  if (candidates.empty()) {
    std::fprintf(stderr, "%s: no candidate ToRs\n", scenario.name.c_str());
    std::exit(1);
  }

  // --- identity check: tree leaf == per-candidate delta == full run -------
  const route::DeltaSimulator delta(anchor_network, anchor);
  {
    route::DeltaTree tree(anchor_network, anchor, options);
    tree.setBase(base, {"agg1a"});
    for (const Candidate& candidate : candidates) {
      const route::SimResult full =
          route::Simulator(candidate.network).run(options);
      route::DeltaStats stats;
      const route::SimResult per_candidate = delta.run(
          candidate.network, {"agg1a", candidate.device}, options, &stats);
      if (!stats.used_delta || !sameResult(per_candidate, full)) {
        std::fprintf(stderr, "%s / %s: per-candidate delta diverged (%s)\n",
                     scenario.name.c_str(), candidate.device.c_str(),
                     stats.fallback_reason.c_str());
        std::exit(1);
      }
      bool leaf_ok = false;
      tree.leaf(candidate.network, {candidate.device},
                [&](const route::SimResult& view,
                    const route::TreeLeafStats& stats_leaf) {
                  leaf_ok = stats_leaf.used_delta && sameResult(view, full);
                });
      if (!leaf_ok) {
        std::fprintf(stderr, "%s / %s: tree leaf diverged from full run\n",
                     scenario.name.c_str(), candidate.device.c_str());
        std::exit(1);
      }
    }
  }

  // --- timing: the PR-6 tree_ms section verbatim ---------------------------
  std::vector<double> tree_samples;
  std::size_t expect_rib = 0;
  for (int rep = 0; rep < reps; ++rep) {
    auto start = std::chrono::steady_clock::now();
    std::size_t tree_rib = 0;
    {
      route::DeltaTree tree(anchor_network, anchor, options);
      tree.setBase(base, {"agg1a"});
      for (const Candidate& candidate : candidates) {
        tree.leaf(candidate.network, {candidate.device},
                  [&](const route::SimResult& view,
                      const route::TreeLeafStats&) {
                    tree_rib += view.rib.size();
                  });
      }
    }
    auto end = std::chrono::steady_clock::now();
    tree_samples.push_back(
        std::chrono::duration<double, std::milli>(end - start).count());
    if (rep == 0) {
      expect_rib = tree_rib;
    } else if (tree_rib != expect_rib) {
      std::fprintf(stderr, "non-deterministic rerun\n");
      std::exit(1);
    }
  }

  Case result;
  result.scenario = scenario.name;
  result.routers = static_cast<int>(anchor_network.configs.size());
  result.leaves = static_cast<int>(candidates.size());
  result.tree_ms = medianMs(tree_samples);
  result.baseline_ms = baselineTreeMs(scenario.name);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  int reps = 9;
  bool smoke = false;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else {
      std::fprintf(stderr,
                   "usage: bench_rib_layout [--reps N] [--smoke] [--json]\n");
      return 2;
    }
  }

  std::vector<std::pair<int, int>> fabrics = {{2, 2}, {4, 4}, {8, 8}};
  if (smoke) {
    fabrics = {{2, 2}};
    reps = 1;
  }

  std::vector<Case> cases;
  for (const auto& [pods, tors] : fabrics) {
    cases.push_back(runCase(dcnScenario(pods, tors), pods, tors, reps));
  }

  if (json) {
    std::puts("[");
    for (std::size_t i = 0; i < cases.size(); ++i) {
      const Case& c = cases[i];
      std::printf(
          "  {\"scenario\": \"%s\", \"routers\": %d, \"leaves\": %d, "
          "\"tree_ms\": %.3f, \"pr6_tree_ms\": %.3f, "
          "\"speedup_vs_pr6\": %.1f}%s\n",
          c.scenario.c_str(), c.routers, c.leaves, c.tree_ms, c.baseline_ms,
          c.speedup(), i + 1 < cases.size() ? "," : "");
    }
    std::puts("]");
  } else {
    bench::section(
        "interned SoA layout vs PR-6 map-of-maps, one VALIDATE round "
        "(median of " +
        std::to_string(reps) + " reps, results verified identical)");
    bench::Table table({"scenario", "routers", "leaves", "tree ms",
                        "pr6 tree ms", "speedup"});
    table.printHeader();
    for (const Case& c : cases) {
      table.printRow({c.scenario, std::to_string(c.routers),
                      std::to_string(c.leaves), bench::fmt(c.tree_ms, 3),
                      bench::fmt(c.baseline_ms, 3),
                      bench::fmt(c.speedup(), 1) + "x"});
    }
    table.printRule();
  }

  // Regression gate: the layout overhaul's committed claim is >= 2x on the
  // full dcn-8x8 VALIDATE round. Smoke runs only check wiring.
  if (!smoke) {
    for (const Case& c : cases) {
      if (c.scenario == "dcn-8x8" && c.speedup() < 2.0) {
        std::fprintf(stderr,
                     "bench_rib_layout: dcn-8x8 speedup %.1fx below the 2x "
                     "gate (tree %.3f ms vs PR-6 %.3f ms)\n",
                     c.speedup(), c.tree_ms, c.baseline_ms);
        return 1;
      }
    }
  }
  return 0;
}
