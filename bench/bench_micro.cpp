// Micro-benchmarks (google-benchmark) for the hot substrate paths: prefix
// trie LPM, prefix subtraction, control-plane simulation, full and
// incremental verification, and one complete ACR repair.
#include <benchmark/benchmark.h>

#include <random>

#include "core/acr.hpp"

namespace {

void BM_PrefixTrieLpm(benchmark::State& state) {
  acr::net::PrefixTrie<int> trie;
  std::mt19937 rng(1);
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    trie.insert(acr::net::Prefix(acr::net::Ipv4Address(rng()),
                                 static_cast<std::uint8_t>(8 + rng() % 17)),
                i);
  }
  std::uint32_t probe = 0x0A000001;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        trie.longestMatch(acr::net::Ipv4Address(probe)));
    probe = probe * 1664525u + 1013904223u;
  }
}
BENCHMARK(BM_PrefixTrieLpm)->Arg(256)->Arg(4096)->Arg(65536);

void BM_PrefixSubtract(benchmark::State& state) {
  const acr::net::Prefix from = *acr::net::Prefix::parse("10.0.0.0/8");
  const acr::net::Prefix remove = *acr::net::Prefix::parse("10.128.37.0/24");
  for (auto _ : state) {
    benchmark::DoNotOptimize(acr::net::subtract(from, remove));
  }
}
BENCHMARK(BM_PrefixSubtract);

void BM_ParseRenderRoundTrip(benchmark::State& state) {
  const acr::topo::BuiltNetwork built = acr::topo::buildDcn(3, 2);
  const std::string text = built.network.configs.begin()->second.render();
  for (auto _ : state) {
    benchmark::DoNotOptimize(acr::cfg::parseDevice(text));
  }
}
BENCHMARK(BM_ParseRenderRoundTrip);

void BM_SimulateDcn(benchmark::State& state) {
  const acr::topo::BuiltNetwork built =
      acr::topo::buildDcn(static_cast<int>(state.range(0)), 2);
  acr::route::SimOptions options;
  options.record_provenance = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(acr::route::Simulator(built.network).run(options));
  }
  state.SetLabel(std::to_string(built.network.configs.size()) + " devices");
}
BENCHMARK(BM_SimulateDcn)->Arg(2)->Arg(4)->Arg(8);

void BM_SimulateWithProvenance(benchmark::State& state) {
  const acr::topo::BuiltNetwork built = acr::topo::buildDcn(3, 2);
  acr::route::SimOptions options;
  options.record_provenance = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(acr::route::Simulator(built.network).run(options));
  }
}
BENCHMARK(BM_SimulateWithProvenance);

void BM_FullVerify(benchmark::State& state) {
  const acr::Scenario scenario = acr::dcnScenario(3, 2);
  const acr::verify::Verifier verifier(scenario.intents);
  for (auto _ : state) {
    benchmark::DoNotOptimize(verifier.verify(scenario.network()));
  }
}
BENCHMARK(BM_FullVerify);

void BM_IncrementalUpdateNoChange(benchmark::State& state) {
  const acr::Scenario scenario = acr::dcnScenario(3, 2);
  acr::verify::IncrementalVerifier verifier(scenario.intents);
  (void)verifier.baseline(scenario.network());
  for (auto _ : state) {
    benchmark::DoNotOptimize(verifier.update(scenario.network()));
  }
}
BENCHMARK(BM_IncrementalUpdateNoChange);

void BM_NegativeProvenance(benchmark::State& state) {
  acr::Scenario scenario = acr::dcnScenario(3, 2);
  acr::topo::Network broken = scenario.network();
  broken.config("tor1_1")->bgp->redistributes.pop_back();
  broken.renumberAll();
  acr::route::SimOptions options;
  options.record_provenance = true;
  const acr::route::SimResult sim = acr::route::Simulator(broken).run(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(acr::prov::explainAbsence(
        broken, sim, "tor2_1", *acr::net::Prefix::parse("20.1.1.0/24")));
  }
}
BENCHMARK(BM_NegativeProvenance);

void BM_MultipathTrace(benchmark::State& state) {
  const acr::Scenario scenario = acr::dcnScenario(3, 2);
  acr::route::SimOptions options;
  options.enable_ecmp = true;
  options.record_provenance = false;
  const acr::route::SimResult sim =
      acr::route::Simulator(scenario.network()).run(options);
  const acr::dp::DataPlane dataplane(scenario.network(), sim);
  acr::net::FiveTuple packet;
  packet.src = *acr::net::Ipv4Address::parse("10.1.1.7");
  packet.dst = *acr::net::Ipv4Address::parse("10.2.1.7");
  for (auto _ : state) {
    benchmark::DoNotOptimize(dataplane.traceMultipath(packet));
  }
}
BENCHMARK(BM_MultipathTrace);

void BM_FailureToleranceK1(benchmark::State& state) {
  const acr::Scenario scenario = acr::figure2Scenario(false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        acr::verify::verifyUnderFailures(scenario.network(), scenario.intents));
  }
}
BENCHMARK(BM_FailureToleranceK1);

void BM_RepairFigure2(benchmark::State& state) {
  const acr::Scenario scenario = acr::figure2Scenario(true);
  for (auto _ : state) {
    const acr::repair::AcrEngine engine(scenario.intents);
    benchmark::DoNotOptimize(engine.repair(scenario.network()));
  }
}
BENCHMARK(BM_RepairFigure2);

}  // namespace

BENCHMARK_MAIN();
