// Ablation (paper §3.2, observation 3): DNA-style incremental validation vs
// full re-verification of every candidate update. Reports the verifier work
// (tests re-judged vs skipped) and wall time; the repairs found are
// identical (a property test asserts equivalence).
//
// Usage: bench_ablation_incremental [incidents] [seed]
#include <cstdlib>

#include "bench/util.hpp"
#include "core/acr.hpp"

int main(int argc, char** argv) {
  const int incidents = argc > 1 ? std::atoi(argv[1]) : 40;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 3;

  std::printf("validation ablation over %d incidents (seed %llu)\n", incidents,
              static_cast<unsigned long long>(seed));

  acr::bench::Table table({"Validation", "Repaired", "Tests judged",
                           "Tests skipped", "Skip rate", "Avg ms"},
                          {13, 10, 14, 14, 11, 10});
  table.printHeader();
  for (const bool incremental : {true, false}) {
    acr::CampaignOptions options;
    options.incidents = incidents;
    options.seed = seed;
    options.repair.use_incremental = incremental;
    const acr::CampaignResult campaign = acr::runCampaign(options);
    std::uint64_t judged = 0;
    std::uint64_t skipped = 0;
    double ms = 0;
    int repaired = 0;
    for (const auto& record : campaign.records) {
      if (record.repair.success) ++repaired;
      judged += record.repair.tests_reverified;
      skipped += record.repair.tests_skipped;
      ms += record.repair.elapsed_ms;
    }
    const double n = std::max<std::size_t>(campaign.records.size(), 1);
    const double total = static_cast<double>(judged + skipped);
    table.printRow({incremental ? "incremental" : "full",
                    std::to_string(repaired) + "/" +
                        std::to_string(campaign.records.size()),
                    std::to_string(judged), std::to_string(skipped),
                    total == 0 ? "-" : acr::bench::pct(skipped / total),
                    acr::bench::fmt(ms / n, 1)});
  }
  table.printRule();
  return 0;
}
