// Figure 1 reproduction: distribution of resolving time for misconfiguration
// incidents. The paper histograms *manual* localization+repair (47.9% under
// 5 minutes, 16.6% over 30 minutes, worst case >5h); this harness measures
// ACR's automated resolving time over the same fault distribution and prints
// both the paper's manual buckets and the automated distribution, plus a CDF.
//
// Usage: bench_fig1 [incidents] [seed]
#include <algorithm>
#include <cstdlib>
#include <vector>

#include "bench/util.hpp"
#include "core/acr.hpp"

int main(int argc, char** argv) {
  const int incidents = argc > 1 ? std::atoi(argv[1]) : 120;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;

  acr::CampaignOptions options;
  options.incidents = incidents;
  options.seed = seed;
  const acr::CampaignResult campaign = acr::runCampaign(options);

  std::vector<double> times_ms;
  for (const auto& record : campaign.records) {
    if (record.repair.success) times_ms.push_back(record.repair.elapsed_ms);
  }
  std::sort(times_ms.begin(), times_ms.end());
  if (times_ms.empty()) {
    std::puts("no repaired incidents; nothing to report");
    return 1;
  }

  acr::bench::section("Figure 1 — manual resolving time (paper, minutes)");
  acr::bench::Table paper({"Bucket", "Share"}, {16, 10});
  paper.printHeader();
  paper.printRow({"< 5 min", "47.9%"});
  paper.printRow({"5 - 30 min", "35.5%"});
  paper.printRow({"> 30 min", "16.6%"});
  paper.printRow({"worst case", "> 5 h"});
  paper.printRule();

  acr::bench::section("ACR automated resolving time (this reproduction)");
  const double buckets_ms[] = {10, 50, 100, 500, 1000, 5000};
  acr::bench::Table table({"Bucket", "Count", "Share"}, {16, 8, 10});
  table.printHeader();
  double previous = 0;
  for (const double bound : buckets_ms) {
    const auto count = std::count_if(
        times_ms.begin(), times_ms.end(),
        [&](double t) { return t >= previous && t < bound; });
    table.printRow({acr::bench::fmt(previous, 0) + "-" +
                        acr::bench::fmt(bound, 0) + " ms",
                    std::to_string(count),
                    acr::bench::pct(double(count) / times_ms.size())});
    previous = bound;
  }
  const auto over = std::count_if(times_ms.begin(), times_ms.end(),
                                  [&](double t) { return t >= previous; });
  table.printRow({">= " + acr::bench::fmt(previous, 0) + " ms",
                  std::to_string(over),
                  acr::bench::pct(double(over) / times_ms.size())});
  table.printRule();

  acr::bench::section("CDF (automated, ms)");
  acr::bench::Table cdf({"Percentile", "Resolving time (ms)"}, {12, 22});
  cdf.printHeader();
  for (const double percentile : {0.10, 0.25, 0.50, 0.75, 0.90, 0.99, 1.00}) {
    const std::size_t index = std::min(
        times_ms.size() - 1,
        static_cast<std::size_t>(percentile * (times_ms.size() - 1) + 0.5));
    cdf.printRow({acr::bench::pct(percentile, 0),
                  acr::bench::fmt(times_ms[index], 2)});
  }
  cdf.printRule();

  std::printf(
      "\nshape check: the paper's >30-min manual tail becomes a sub-second\n"
      "automated tail (max %.1f ms across %zu repaired incidents)\n",
      times_ms.back(), times_ms.size());
  return 0;
}
