// Figure 3 reproduction: the search space N of each method, on the same
// incident, as the network grows.
//
//   MetaProv (3a): N = leaf nodes of the failed event's provenance tree.
//   AED      (3b): N = 2^(free variables) — one delta variable per line.
//   ACR      (3c): N = leaves of the search forest (template instantiations
//                  on the most suspicious lines).
//
// The shape to reproduce: AED explodes exponentially with configuration
// size; MetaProv and ACR stay within the incident's provenance footprint,
// with ACR bounded by (suspicious lines x applicable templates).
#include <cstdio>

#include "bench/util.hpp"
#include "core/acr.hpp"

namespace {

struct Case {
  std::string label;
  acr::Scenario scenario;
  acr::inject::FaultType fault;
};

}  // namespace

int main() {
  using namespace acr;
  std::vector<Case> cases;
  cases.push_back({"figure2 (4 routers)", figure2Scenario(false),
                   inject::FaultType::kMissingPrefixListItemsM});
  cases.push_back({"backbone n=8", backboneScenario(8),
                   inject::FaultType::kMissingPrefixListItemsS});
  cases.push_back({"backbone n=16", backboneScenario(16),
                   inject::FaultType::kMissingPrefixListItemsS});
  cases.push_back({"backbone n=32", backboneScenario(32),
                   inject::FaultType::kMissingPrefixListItemsS});
  cases.push_back({"dcn 2x2 (9 devices)", dcnScenario(2, 2),
                   inject::FaultType::kMissingPbrPermit});
  cases.push_back({"dcn 4x3 (19 devices)", dcnScenario(4, 3),
                   inject::FaultType::kMissingPbrPermit});
  cases.push_back({"dcn 6x4 (35 devices)", dcnScenario(6, 4),
                   inject::FaultType::kMissingPbrPermit});

  bench::Table table({"Incident network", "Devices", "Config lines",
                      "MetaProv N", "AED N", "ACR N"},
                     {22, 9, 14, 12, 14, 8});
  table.printHeader();

  inject::FaultInjector injector(17);
  for (auto& c : cases) {
    const auto incident = injector.inject(c.scenario.built, c.fault);
    if (!incident) {
      table.printRow({c.label, "-", "-", "-", "-", "-"});
      continue;
    }
    const repair::SearchSpaceReport report =
        repair::measureSearchSpaces(incident->network, c.scenario.intents);
    table.printRow({c.label, std::to_string(report.devices),
                    std::to_string(report.total_lines),
                    std::to_string(report.metaprov_leaves),
                    "2^" + bench::fmt(report.aed_log2, 0),
                    std::to_string(report.acr_leaves)});
  }
  table.printRule();
  std::puts(
      "\nshape check: AED's exponent tracks total config lines (the paper's\n"
      "'at least 2^12 for a 12-line snippet'); MetaProv and ACR track the\n"
      "incident's provenance footprint and stay flat by comparison.");
  return 0;
}
