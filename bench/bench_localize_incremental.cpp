// Full vs incremental LOCALIZE across fat-tree sizes.
//
// For each DCN scenario the harness generates the intent-derived probe
// suite, applies a single-device candidate edit, then times (a) the
// from-scratch LOCALIZE pipeline — full simulation, full probe suite, full
// coverage extraction, spectrum rebuilt test by test — and (b) the cached
// pipeline seeded with the unedited anchor: delta simulation with forked
// provenance, probe outcomes and coverage rows reused for tests whose read
// sets avoid the blast radius, and spectrum rows swapped in place. Both
// paths must produce identical verdicts, coverage and SBFL rankings under
// every metric — the harness verifies all of it before reporting a single
// number, so a speedup can never come from a wrong answer.
//
//   bench_localize_incremental [--reps N] [--smoke] [--json]
//
// --smoke runs the smallest fabric once (CI wiring check); --json replaces
// the table with a machine-readable array (committed as
// BENCH_localize_incremental.json for regression tracking). On the 8x8
// fabric the harness gates itself: a cached LOCALIZE below 3x the full
// pipeline is a regression and exits non-zero.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "bench/util.hpp"
#include "core/scenarios.hpp"
#include "localize/coverage.hpp"
#include "localize/incremental.hpp"
#include "localize/sbfl.hpp"
#include "routing/simulator.hpp"
#include "verify/verifier.hpp"

namespace {

using namespace acr;

struct Edit {
  std::string label;
  std::string device;
  std::function<void(topo::Network&)> apply;
};

struct Case {
  std::string scenario;
  int routers = 0;
  std::string edit;
  std::size_t tests = 0;
  double full_ms = 0;
  double inc_ms = 0;
  std::size_t probe_hits = 0;
  std::size_t probe_misses = 0;
  std::size_t derivations_reused = 0;

  [[nodiscard]] double speedup() const {
    return inc_ms > 0 ? full_ms / inc_ms : 0;
  }
};

double medianMs(std::vector<double>& samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

struct FullLocalize {
  std::vector<verify::TestResult> results;
  std::vector<std::set<cfg::LineId>> coverage;
  sbfl::Spectrum spectrum;
};

FullLocalize fullLocalize(const topo::Network& network,
                          const std::vector<verify::Intent>& intents,
                          const std::vector<verify::TestCase>& tests,
                          const route::SimOptions& options) {
  FullLocalize out;
  const route::SimResult sim = route::Simulator(network).run(options);
  const verify::Verifier verifier(intents, options);
  out.results = verifier.runTests(network, sim, tests);
  for (const auto& result : out.results) {
    out.coverage.push_back(sbfl::coverageOf(network, sim, result));
    out.spectrum.addTest(out.coverage.back(), result.passed);
  }
  return out;
}

bool sameLocalization(const FullLocalize& full,
                      const sbfl::LocalizeOutcome& incremental) {
  if (incremental.results.size() != full.results.size()) return false;
  for (std::size_t i = 0; i < full.results.size(); ++i) {
    if (incremental.results[i]->passed != full.results[i].passed) return false;
    if (incremental.results[i]->reason != full.results[i].reason) return false;
    if (*incremental.coverage[i] != full.coverage[i]) return false;
  }
  for (const sbfl::Metric metric : sbfl::allMetrics()) {
    const std::vector<sbfl::LineScore> expected = full.spectrum.rank(metric);
    const std::vector<sbfl::LineScore> actual =
        incremental.spectrum.rank(metric);
    if (actual.size() != expected.size()) return false;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      if (actual[i].line != expected[i].line) return false;
      if (actual[i].suspiciousness != expected[i].suspiciousness) return false;
      if (actual[i].failed_cover != expected[i].failed_cover) return false;
      if (actual[i].passed_cover != expected[i].passed_cover) return false;
    }
  }
  return true;
}

Case runCase(const Scenario& scenario, const Edit& edit, int reps) {
  route::SimOptions options;
  options.record_provenance = true;

  const std::vector<verify::TestCase> tests =
      verify::generateTests(scenario.intents, 1);

  topo::Network edited = scenario.network();
  edit.apply(edited);
  edited.renumberAll();

  sbfl::LocalizeCache cache(scenario.network(), scenario.intents, tests,
                            options, false);
  (void)cache.localize(scenario.network(), {});  // prime the anchor
  const sbfl::LocalizeOutcome incremental =
      cache.localize(edited, {edit.device});
  if (incremental.sim_kind != "delta") {
    std::fprintf(stderr, "%s / %s: cache fell back (%s)\n",
                 scenario.name.c_str(), edit.label.c_str(),
                 incremental.sim_kind.c_str());
    std::exit(1);
  }
  const FullLocalize full =
      fullLocalize(edited, scenario.intents, tests, options);
  if (!sameLocalization(full, incremental)) {
    std::fprintf(stderr,
                 "%s / %s: incremental localization differs from full run\n",
                 scenario.name.c_str(), edit.label.c_str());
    std::exit(1);
  }

  std::vector<double> full_samples;
  std::vector<double> inc_samples;
  for (int rep = 0; rep < reps; ++rep) {
    auto start = std::chrono::steady_clock::now();
    const FullLocalize timed_full =
        fullLocalize(edited, scenario.intents, tests, options);
    (void)timed_full.spectrum.rank(sbfl::Metric::kTarantula);
    auto mid = std::chrono::steady_clock::now();
    const sbfl::LocalizeOutcome timed_inc =
        cache.localize(edited, {edit.device});
    (void)timed_inc.spectrum.rank(sbfl::Metric::kTarantula);
    auto end = std::chrono::steady_clock::now();
    full_samples.push_back(
        std::chrono::duration<double, std::milli>(mid - start).count());
    inc_samples.push_back(
        std::chrono::duration<double, std::milli>(end - mid).count());
    if (timed_inc.results.size() != full.results.size()) {
      std::fprintf(stderr, "non-deterministic rerun\n");
      std::exit(1);
    }
  }

  Case result;
  result.scenario = scenario.name;
  result.routers = static_cast<int>(scenario.network().configs.size());
  result.edit = edit.label;
  result.tests = tests.size();
  result.full_ms = medianMs(full_samples);
  result.inc_ms = medianMs(inc_samples);
  result.probe_hits = incremental.probe_hits;
  result.probe_misses = incremental.probe_misses;
  result.derivations_reused = incremental.derivations_reused;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  int reps = 9;
  bool smoke = false;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else {
      std::fprintf(stderr,
                   "usage: bench_localize_incremental [--reps N] [--smoke] "
                   "[--json]\n");
      return 2;
    }
  }

  std::vector<std::pair<int, int>> fabrics = {{2, 2}, {4, 4}, {8, 8}};
  if (smoke) {
    fabrics = {{2, 2}};
    reps = 1;
  }

  // Per-fabric edit set. The "typical" edit touches the far corner tor —
  // representative of an injected fault's repair candidates, which rarely
  // sit on the intent hub. The hub edit is the adversarial worst case: the
  // suite is a hub-star, so nearly every probe traverses the edited device
  // and its shifted line numbers legitimately invalidate their coverage
  // rows. It is reported but not gated.
  const auto editsFor = [](int pods, int tors) {
    const std::string far_tor =
        "tor" + std::to_string(pods) + "_" + std::to_string(tors);
    std::vector<Edit> edits;
    edits.push_back({"tor redistribute (typical)", far_tor,
                     [far_tor](topo::Network& network) {
                       network.config(far_tor)->bgp->redistributes.clear();
                     }});
    edits.push_back({"hub tor redistribute (worst case)", "tor1_1",
                     [](topo::Network& network) {
                       network.config("tor1_1")->bgp->redistributes.clear();
                     }});
    edits.push_back({"agg prefix-list (wide)", "agg1a",
                     [](topo::Network& network) {
                       auto& lists = network.config("agg1a")->prefix_lists;
                       for (auto& list : lists) {
                         if (list.name == "POD_LOCAL" && list.entries.size() > 1) {
                           list.entries.pop_back();
                         }
                       }
                     }});
    return edits;
  };

  std::vector<Case> cases;
  for (const auto& [pods, tors] : fabrics) {
    const Scenario scenario = dcnScenario(pods, tors);
    for (const Edit& edit : editsFor(pods, tors)) {
      cases.push_back(runCase(scenario, edit, reps));
    }
  }

  // Self-gate on the flagship fabric: the narrow edit on dcn-8x8 must keep
  // its >=3x advantage or the incremental pipeline has regressed. Checked
  // after the report is emitted so a regression still shows its numbers.
  const auto gate = [&]() -> int {
    if (smoke) return 0;
    for (const Case& c : cases) {
      if (c.scenario == "dcn-8x8" && c.edit == "tor redistribute (typical)" &&
          c.speedup() < 3.0) {
        std::fprintf(stderr, "GATE: %s / %s speedup %.1fx < 3.0x\n",
                     c.scenario.c_str(), c.edit.c_str(), c.speedup());
        return 1;
      }
    }
    return 0;
  };

  if (json) {
    std::puts("[");
    for (std::size_t i = 0; i < cases.size(); ++i) {
      const Case& c = cases[i];
      std::printf(
          "  {\"scenario\": \"%s\", \"routers\": %d, \"edit\": \"%s\", "
          "\"tests\": %zu, \"full_ms\": %.3f, \"incremental_ms\": %.3f, "
          "\"speedup\": %.1f, \"probe_hits\": %zu, \"probe_misses\": %zu, "
          "\"derivations_reused\": %zu}%s\n",
          c.scenario.c_str(), c.routers, c.edit.c_str(), c.tests, c.full_ms,
          c.inc_ms, c.speedup(), c.probe_hits, c.probe_misses,
          c.derivations_reused, i + 1 < cases.size() ? "," : "");
    }
    std::puts("]");
    return gate();
  }

  bench::section(
      "full vs incremental LOCALIZE, single-device edits (median of " +
      std::to_string(reps) + " reps, results verified identical)");
  bench::Table table({"scenario", "routers", "edit", "tests", "full ms",
                      "inc ms", "speedup", "hits", "misses", "deriv reuse"});
  table.printHeader();
  for (const Case& c : cases) {
    table.printRow({c.scenario, std::to_string(c.routers), c.edit,
                    std::to_string(c.tests), bench::fmt(c.full_ms, 3),
                    bench::fmt(c.inc_ms, 3), bench::fmt(c.speedup(), 1) + "x",
                    std::to_string(c.probe_hits),
                    std::to_string(c.probe_misses),
                    std::to_string(c.derivations_reused)});
  }
  table.printRule();
  return gate();
}
