// Figure 2 / §5 reproduction: the route-flapping incident end to end.
//
// Prints: (1) the oscillation the simulator detects for 10.0/16; (2) the
// Tarantula localization table for router A (the right-hand columns of
// Figure 2b); (3) the solved symbolic value (§5 step 2); (4) the §2.3
// comparison — MetaProv-style single-site fix vs AED-style synthesis vs the
// full ACR loop.
#include <cstdio>

#include "bench/util.hpp"
#include "core/acr.hpp"

int main() {
  using namespace acr;
  Scenario scenario = figure2Scenario(/*faulty=*/true);

  bench::section("Simulation of the incident network");
  route::SimOptions sim_options;
  sim_options.record_provenance = true;
  const route::SimResult sim =
      route::Simulator(scenario.network()).run(sim_options);
  std::printf("converged: %s after %d rounds\n", sim.converged ? "yes" : "no",
              sim.rounds);
  for (const auto& prefix : sim.flapping) {
    std::printf("route flapping detected for %s (the paper's 10.0/16)\n",
                prefix.str().c_str());
  }

  bench::section("Tarantula suspiciousness, router A (cf. Figure 2b)");
  const verify::Verifier verifier(scenario.intents, sim_options);
  const auto tests = verify::generateTests(scenario.intents, 1);
  const auto results = verifier.runTests(scenario.network(), sim, tests);
  sbfl::Spectrum spectrum;
  std::vector<std::set<cfg::LineId>> coverage;
  for (const auto& result : results) {
    coverage.push_back(sbfl::coverageOf(scenario.network(), sim, result));
    spectrum.addTest(coverage.back(), result.passed);
  }
  const cfg::DeviceConfig* a = scenario.network().config("A");
  bench::Table table({"Line", "Configuration", "failed(s)", "passed(s)",
                      "Suspiciousness"},
                     {6, 52, 10, 10, 15});
  table.printHeader();
  const auto index = a->buildLineIndex();
  const auto ranked = spectrum.rank(sbfl::Metric::kTarantula);
  for (const auto& [line_no, info] : index) {
    double score = 0;
    int failed = 0, passed = 0;
    for (const auto& entry : ranked) {
      if (entry.line.device == "A" && entry.line.line == line_no) {
        score = entry.suspiciousness;
        failed = entry.failed_cover;
        passed = entry.passed_cover;
      }
    }
    table.printRow({std::to_string(line_no), info.text,
                    std::to_string(failed), std::to_string(passed),
                    bench::fmt(score, 2)});
  }
  table.printRule();

  bench::section("Solved symbolic value (P and not F)");
  const std::vector<sbfl::ResultRow> rows(results.begin(), results.end());
  const std::vector<sbfl::CoverageRow> cov_rows(coverage.begin(),
                                                coverage.end());
  const fix::RepairContext context{scenario.network(), sim, scenario.intents,
                                   rows, cov_rows};
  const fix::PrefixListConstraints constraints = fix::collectListConstraints(
      context, "A", *a->findPrefixList("default_all"));
  std::printf("P (must stay in var):");
  for (const auto& prefix : constraints.required) {
    std::printf(" %s", prefix.str().c_str());
  }
  std::printf("\nF (must leave var): ");
  for (const auto& prefix : constraints.forbidden) {
    std::printf(" %s", prefix.str().c_str());
  }
  const auto model = fix::solveListModel(constraints);
  std::printf("\nvar =");
  if (model) {
    for (const auto& prefix : *model) std::printf(" %s", prefix.str().c_str());
  }
  std::printf("\n");

  bench::section("Method comparison on the incident (cf. §2.3)");
  bench::Table cmp({"Method", "Search space", "Resolved", "Regressions",
                    "Validations", "Time (ms)"},
                   {10, 22, 10, 13, 13, 11});
  cmp.printHeader();

  const repair::BaselineResult metaprov =
      repair::provenanceRepair(scenario.network(), scenario.intents);
  cmp.printRow({"MetaProv",
                std::to_string(metaprov.search_space) + " leaves",
                metaprov.resolved ? "yes" : "NO",
                metaprov.regressions ? "YES" : "no", "0 (unvalidated)",
                bench::fmt(metaprov.elapsed_ms, 2)});

  repair::SynthesisRepairOptions synth_options;
  synth_options.budget = 400;
  const repair::BaselineResult aed = repair::synthesisRepair(
      scenario.network(), scenario.intents, synth_options);
  cmp.printRow({"AED", "2^" + bench::fmt(aed.aed_log2_space, 0) + " states",
                aed.resolved ? "yes" : "NO", aed.regressions ? "YES" : "no",
                std::to_string(aed.explored),
                bench::fmt(aed.elapsed_ms, 2)});

  const repair::AcrEngine engine(scenario.intents);
  const repair::RepairResult acr = engine.repair(scenario.network());
  cmp.printRow({"ACR", std::to_string(acr.search_space) + " leaves",
                acr.success ? "yes" : "NO", "no (validated)",
                std::to_string(acr.validations),
                bench::fmt(acr.elapsed_ms, 2)});
  cmp.printRule();

  bench::section("ACR repair transcript");
  std::printf("%s\n", acr.summary().c_str());
  for (const auto& diff : acr.diff) std::printf("%s", diff.str().c_str());

  const bool repaired_converges =
      route::Simulator(acr.repaired).run().converged;
  std::printf("\nrepaired network converges: %s\n",
              repaired_converges ? "yes" : "NO");
  return acr.success && repaired_converges ? 0 : 1;
}
