// Overhead of the observability subsystem (docs/observability.md).
//
// Two claims are checked, matching the PR acceptance gates:
//   1. Disabled tracing is free: a Span guard costs one relaxed atomic load
//      and the repair-campaign workload stays within noise (< 2%) of the
//      pre-PR build. The external comparison against the seed binary lives
//      in BENCH_obs_overhead.json; this harness produces the post-PR side
//      plus a direct ns/span microbenchmark.
//   2. Enabled tracing costs < 10% on the same workload.
//
// Usage: bench_obs_overhead [incidents] [seed] [samples]
//
// The campaign runs single-worker (jobs=1) so the numbers measure the obs
// code, not scheduler jitter. The last stdout line is a machine-readable
// JSON summary for scripts.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench/util.hpp"
#include "core/acr.hpp"
#include "obs/trace.hpp"

namespace {

double wallMs(const std::chrono::steady_clock::time_point& started) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - started)
      .count();
}

double median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  const std::size_t n = values.size();
  return n % 2 == 1 ? values[n / 2]
                    : (values[n / 2 - 1] + values[n / 2]) / 2.0;
}

double campaignMs(const acr::CampaignOptions& options, bool tracing) {
  acr::obs::Tracer::global().clear();
  acr::obs::Tracer::global().setEnabled(tracing);
  const auto started = std::chrono::steady_clock::now();
  const acr::CampaignResult campaign = acr::runCampaign(options);
  const double ms = wallMs(started);
  if (campaign.records.empty()) std::exit(1);  // workload must run
  acr::obs::Tracer::global().setEnabled(false);
  acr::obs::Tracer::global().clear();
  return ms;
}

/// ns per Span construct+destruct. With tracing disabled this is the cost
/// the whole pipeline pays when nobody asked for a trace — it must stay at
/// "one predictable branch" magnitude, not "allocation" magnitude.
double spanNs(bool tracing) {
  acr::obs::Tracer::global().clear();
  acr::obs::Tracer::global().setEnabled(tracing);
  constexpr int kSpans = 200000;
  const auto started = std::chrono::steady_clock::now();
  for (int i = 0; i < kSpans; ++i) {
    acr::obs::Span span("bench.span");
  }
  const double ms = wallMs(started);
  acr::obs::Tracer::global().setEnabled(false);
  acr::obs::Tracer::global().clear();
  return ms * 1e6 / kSpans;
}

}  // namespace

int main(int argc, char** argv) {
  acr::CampaignOptions options;
  options.incidents = argc > 1 ? std::atoi(argv[1]) : 40;
  options.seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;
  options.jobs = 1;
  const int samples = argc > 3 ? std::atoi(argv[3]) : 5;

  std::printf("obs overhead: campaign incidents=%d seed=%llu jobs=1, "
              "%d sample(s), median reported\n",
              options.incidents,
              static_cast<unsigned long long>(options.seed), samples);

  // Interleave the two modes so drift (thermal, cache warmup) hits both.
  std::vector<double> disabled_ms;
  std::vector<double> enabled_ms;
  for (int i = 0; i < samples; ++i) {
    disabled_ms.push_back(campaignMs(options, /*tracing=*/false));
    enabled_ms.push_back(campaignMs(options, /*tracing=*/true));
  }
  const double disabled = median(disabled_ms);
  const double enabled = median(enabled_ms);
  const double overhead_pct = (enabled / disabled - 1.0) * 100.0;
  const double span_off_ns = spanNs(false);
  const double span_on_ns = spanNs(true);

  acr::bench::Table table({"mode", "campaign ms", "span ns"}, {22, 14, 12});
  table.printHeader();
  char ms_text[32];
  char ns_text[32];
  std::snprintf(ms_text, sizeof(ms_text), "%.1f", disabled);
  std::snprintf(ns_text, sizeof(ns_text), "%.1f", span_off_ns);
  table.printRow({"tracing disabled", ms_text, ns_text});
  std::snprintf(ms_text, sizeof(ms_text), "%.1f", enabled);
  std::snprintf(ns_text, sizeof(ns_text), "%.1f", span_on_ns);
  table.printRow({"tracing enabled", ms_text, ns_text});
  table.printRule();
  std::printf("enabled overhead: %.2f%% (acceptance gate: < 10%%)\n",
              overhead_pct);

  std::printf("{\"incidents\":%d,\"seed\":%llu,\"samples\":%d,"
              "\"disabled_ms\":%.1f,\"enabled_ms\":%.1f,"
              "\"enabled_overhead_pct\":%.2f,"
              "\"span_disabled_ns\":%.1f,\"span_enabled_ns\":%.1f}\n",
              options.incidents,
              static_cast<unsigned long long>(options.seed), samples,
              disabled, enabled, overhead_pct, span_off_ns, span_on_ns);
  return overhead_pct < 10.0 ? 0 : 1;
}
