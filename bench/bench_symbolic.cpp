// Concrete template loop vs selective symbolic simulation on a multi-device
// fault class: cross-pod prefix-list holes in a DCN fabric.
//
// The harness punches the same hole into several pods at once — the
// 20.<pod>/16 VIP entry is dropped from POD_LOCAL on both aggs of each holed
// pod — and adds one explicit cross-pod probe intent per hole. The concrete
// template loop repairs this class one device-local patch at a time, paying
// roughly one LOCALIZE/FIXGEN/VALIDATE iteration per pod. The symbolic pass
// symbolizes every suspect list, accumulates P ∧ ¬F constraints across all
// failing probes, and asks the solver for one model that plugs every hole —
// a single VALIDATE round, regardless of how many pods are broken.
//
//   bench_symbolic [--reps N] [--smoke] [--json]
//
// --smoke runs the 4x2 fabric with two holed pods once (CI wiring check);
// --json replaces the table with a machine-readable array (committed as
// BENCH_symbolic.json for regression tracking). Both paths must converge to
// a verified-green network before any number is reported. On the 8x8 fabric
// the harness gates itself: the symbolic pass must need at most half the
// engine iterations of the concrete loop, and must not regress wall-clock.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/util.hpp"
#include "core/scenarios.hpp"
#include "repair/engine.hpp"
#include "verify/verifier.hpp"

namespace {

using namespace acr;

verify::Intent probeIntent(const std::string& src, const std::string& dst) {
  verify::Intent intent;
  intent.kind = verify::IntentKind::kReachability;
  intent.name = src + "->" + dst;
  intent.space.src_space = *net::Prefix::parse(src);
  intent.space.dst_space = *net::Prefix::parse(dst);
  return intent;
}

/// A DCN fabric with the VIP entry of POD_LOCAL removed on both aggs of
/// each pod in `holes`, plus one explicit cross-pod probe per holed pod
/// (the auto-generated suite only reliably exercises pod 1's VIP).
Scenario holedDcn(int pods, int tors, const std::vector<int>& holes) {
  Scenario scenario = dcnScenario(pods, tors);
  for (int pod : holes) {
    for (const char* side : {"a", "b"}) {
      const std::string agg = "agg" + std::to_string(pod) + side;
      cfg::PrefixList* list =
          scenario.built.network.config(agg)->findPrefixList("POD_LOCAL");
      if (list == nullptr || list->entries.size() < 2) {
        std::fprintf(stderr, "%s: no POD_LOCAL to hole\n", agg.c_str());
        std::exit(1);
      }
      list->entries.erase(list->entries.begin() + 1, list->entries.end());
    }
    const std::string src =
        "10." + std::to_string(pod == 1 ? 2 : 1) + ".1.0/24";
    const std::string vip = "20." + std::to_string(pod) + ".1.0/24";
    scenario.intents.push_back(probeIntent(src, vip));
  }
  scenario.built.network.renumberAll();
  return scenario;
}

struct Run {
  bool success = false;
  int iterations = 0;
  std::uint64_t validations = 0;
  double ms = 0;
};

struct Case {
  std::string scenario;
  int routers = 0;
  int holed_pods = 0;
  Run concrete;
  Run symbolic;

  [[nodiscard]] double iter_ratio() const {
    return symbolic.iterations > 0
               ? static_cast<double>(concrete.iterations) /
                     symbolic.iterations
               : 0;
  }
  [[nodiscard]] double speedup() const {
    return symbolic.ms > 0 ? concrete.ms / symbolic.ms : 0;
  }
};

double medianMs(std::vector<double>& samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

Run runRepair(const Scenario& scenario, const repair::RepairOptions& options,
              int reps, const char* label) {
  const repair::AcrEngine engine(scenario.intents, options);
  Run run;
  std::vector<double> samples;
  for (int rep = 0; rep < reps; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    const repair::RepairResult result = engine.repair(scenario.network());
    const auto end = std::chrono::steady_clock::now();
    samples.push_back(
        std::chrono::duration<double, std::milli>(end - start).count());
    if (rep > 0 && (result.success != run.success ||
                    result.iterations != run.iterations)) {
      std::fprintf(stderr, "%s / %s: non-deterministic rerun\n",
                   scenario.name.c_str(), label);
      std::exit(1);
    }
    run.success = result.success;
    run.iterations = result.iterations;
    run.validations = result.validations;
    if (rep == 0) {
      // Reported numbers must never come from an unrepaired network.
      if (!result.success) {
        std::fprintf(stderr, "%s / %s: repair failed: %s\n",
                     scenario.name.c_str(), label,
                     result.summary().c_str());
        std::exit(1);
      }
      const verify::VerifyResult check =
          verify::Verifier(scenario.intents).verify(result.repaired);
      if (!check.ok()) {
        std::fprintf(stderr, "%s / %s: repaired network fails %d tests\n",
                     scenario.name.c_str(), label, check.tests_failed);
        std::exit(1);
      }
    }
  }
  run.ms = medianMs(samples);
  return run;
}

Case runCase(int pods, int tors, int holed_pods, int reps) {
  std::vector<int> holes;
  for (int pod = 1; pod <= holed_pods; ++pod) holes.push_back(pod);
  const Scenario scenario = holedDcn(pods, tors, holes);

  repair::RepairOptions concrete;  // the template loop as shipped
  repair::RepairOptions symbolic;
  symbolic.symbolic = true;
  symbolic.symbolic_max_variables = 16;
  symbolic.symbolic_fork_budget = 8;

  Case result;
  result.scenario = scenario.name;
  result.routers = static_cast<int>(scenario.network().configs.size());
  result.holed_pods = holed_pods;
  result.concrete = runRepair(scenario, concrete, reps, "concrete");
  result.symbolic = runRepair(scenario, symbolic, reps, "symbolic");
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  int reps = 3;
  bool smoke = false;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else {
      std::fprintf(stderr, "usage: bench_symbolic [--reps N] [--smoke] [--json]\n");
      return 2;
    }
  }

  // {pods, tors, holed pods}. The 8x8/4-pod case is the gated flagship.
  std::vector<std::array<int, 3>> fabrics = {{4, 2, 2}, {8, 8, 4}};
  if (smoke) {
    fabrics = {{4, 2, 2}};
    reps = 1;
  }

  std::vector<Case> cases;
  for (const auto& [pods, tors, holed] : fabrics) {
    cases.push_back(runCase(pods, tors, holed, reps));
  }

  // Self-gate on the flagship fabric: fewer than 2x fewer engine iterations
  // (or a wall-clock regression) means the symbolic pass has stopped paying
  // for itself. Checked after the report so a regression shows its numbers.
  const auto gate = [&]() -> int {
    if (smoke) return 0;
    for (const Case& c : cases) {
      if (c.scenario != "dcn-8x8") continue;
      if (c.iter_ratio() < 2.0) {
        std::fprintf(stderr, "GATE: %s iteration ratio %.1fx < 2.0x\n",
                     c.scenario.c_str(), c.iter_ratio());
        return 1;
      }
      // 10% tolerance absorbs timing noise; the iteration gate above is the
      // deterministic one.
      if (c.symbolic.ms > c.concrete.ms * 1.10) {
        std::fprintf(stderr,
                     "GATE: %s symbolic %.1fms regresses concrete %.1fms\n",
                     c.scenario.c_str(), c.symbolic.ms, c.concrete.ms);
        return 1;
      }
    }
    return 0;
  };

  if (json) {
    std::puts("[");
    for (std::size_t i = 0; i < cases.size(); ++i) {
      const Case& c = cases[i];
      std::printf(
          "  {\"scenario\": \"%s\", \"routers\": %d, \"holed_pods\": %d, "
          "\"concrete_iterations\": %d, \"concrete_validations\": %llu, "
          "\"concrete_ms\": %.1f, \"symbolic_iterations\": %d, "
          "\"symbolic_validations\": %llu, \"symbolic_ms\": %.1f, "
          "\"iteration_ratio\": %.1f, \"speedup\": %.1f}%s\n",
          c.scenario.c_str(), c.routers, c.holed_pods, c.concrete.iterations,
          static_cast<unsigned long long>(c.concrete.validations),
          c.concrete.ms, c.symbolic.iterations,
          static_cast<unsigned long long>(c.symbolic.validations),
          c.symbolic.ms, c.iter_ratio(), c.speedup(),
          i + 1 < cases.size() ? "," : "");
    }
    std::puts("]");
    return gate();
  }

  bench::section(
      "concrete loop vs symbolic VALIDATE, cross-pod prefix holes (median "
      "of " +
      std::to_string(reps) + " reps, repairs verified green)");
  bench::Table table({"scenario", "routers", "holes", "conc iters",
                      "conc vals", "conc ms", "symb iters", "symb vals",
                      "symb ms", "iter ratio", "speedup"});
  table.printHeader();
  for (const Case& c : cases) {
    table.printRow({c.scenario, std::to_string(c.routers),
                    std::to_string(c.holed_pods),
                    std::to_string(c.concrete.iterations),
                    std::to_string(c.concrete.validations),
                    bench::fmt(c.concrete.ms, 1),
                    std::to_string(c.symbolic.iterations),
                    std::to_string(c.symbolic.validations),
                    bench::fmt(c.symbolic.ms, 1),
                    bench::fmt(c.iter_ratio(), 1) + "x",
                    bench::fmt(c.speedup(), 1) + "x"});
  }
  table.printRule();
  return gate();
}
