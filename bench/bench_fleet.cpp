// Fleet serving benchmark: idle-connection capacity of the epoll event
// loop, and saturation throughput of 1/2/4-worker fleets on the
// cached-snapshot workload.
//
// Part 1 (idle): opens thousands of TCP connections to one acrd worker
// and holds them idle. The event loop must absorb them without spawning
// threads (thread count stays flat) and keep answering requests promptly
// on a fresh connection. The thread-per-connection design this replaced
// would have needed one thread per connection.
//
// Part 2 (saturation): N distinct backbone scenarios are served by
// 1/2/4 in-process workers behind FleetRouter's consistent-hash routing.
// Each worker's SnapshotCache byte budget is deliberately set to ~60% of
// the total working set: a single node cycles its LRU (every request
// misses and pays parse + simulate + verify), while a 4-node fleet's
// shards each fit comfortably in one node's budget, so after warmup every
// request hits. The speedup is therefore aggregate *cache capacity* —
// exactly the resource affinity routing multiplies — which is also why it
// shows up even on a single-CPU host. Saturation req/s is measured
// closed-loop with `--clients` concurrent client threads (each its own
// FleetRouter), reporting fleet-wide p50/p99 and per-node p99.
//
//   bench_fleet [--requests N] [--idle N] [--clients N] [--smoke] [--json]
//
// --json replaces the tables with a machine-readable object (committed as
// BENCH_fleet.json for regression tracking); --smoke shrinks everything
// for CI wiring checks and skips the gates. Full runs self-gate: exit 1
// if fewer than 5000 idle connections are held, if idling grows the
// thread count, or if the 4-worker fleet saturates below 2.5x the single
// node.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "bench/util.hpp"
#include "core/acr.hpp"
#include "core/serialization.hpp"
#include "fleet/router.hpp"
#include "service/client.hpp"
#include "service/server.hpp"
#include "util/metrics.hpp"

namespace {

using namespace acr;

/// One in-process acrd worker with its own metrics registry.
struct Worker {
  util::MetricsRegistry metrics;
  service::RepairService repair_service;
  service::TcpServer server;
  std::thread serve_thread;

  explicit Worker(service::ServiceOptions options)
      : repair_service([&] {
          options.metrics = &metrics;
          return options;
        }()),
        server(repair_service, {}),
        serve_thread([this] { server.serve(); }) {}

  ~Worker() {
    server.stop();
    serve_thread.join();
    repair_service.drain();
  }

  [[nodiscard]] fleet::FleetNodeConfig node() const {
    return fleet::FleetNodeConfig{"127.0.0.1", server.port()};
  }
};

int threadCount() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("Threads:", 0) == 0) {
      return std::atoi(line.c_str() + 8);
    }
  }
  return -1;
}

double ms(std::chrono::steady_clock::duration d) {
  return std::chrono::duration<double, std::milli>(d).count();
}

double percentile(std::vector<double>& sorted_ms, double q) {
  if (sorted_ms.empty()) return 0;
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted_ms.size() - 1));
  return sorted_ms[rank];
}

// ---------------------------------------------------------------- idle --

struct IdleResult {
  int target = 0;
  int opened = 0;
  std::int64_t gauge = 0;
  int threads_before = 0;
  int threads_after = 0;
  double stats_ms = 0;  // responsiveness probe while fully loaded
};

IdleResult runIdle(int target) {
  IdleResult result;
  result.target = target;
  service::ServiceOptions options;
  Worker worker(options);
  result.threads_before = threadCount();

  std::vector<int> fds;
  fds.reserve(static_cast<std::size_t>(target));
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(static_cast<std::uint16_t>(worker.server.port()));
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  for (int i = 0; i < target; ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) break;
    int attempts = 0;
    while (::connect(fd, reinterpret_cast<const sockaddr*>(&address),
                     sizeof(address)) != 0 &&
           ++attempts < 50) {
      // Transient refusals while the accept loop drains its backlog.
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    if (attempts >= 50) {
      ::close(fd);
      break;
    }
    fds.push_back(fd);
  }
  result.opened = static_cast<int>(fds.size());

  // Let the event loop finish accepting, then read its own census.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    result.gauge = worker.metrics.gauge("service.connections.open").value();
    if (result.gauge >= result.opened) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  result.threads_after = threadCount();

  // The loaded server must still answer a fresh connection promptly.
  {
    service::Client client("127.0.0.1", worker.server.port());
    service::Json request;
    request.set("op", "stats");
    const auto before = std::chrono::steady_clock::now();
    const service::Json response = client.call(request);
    result.stats_ms = ms(std::chrono::steady_clock::now() - before);
    if (const service::Json* ok = response.find("ok");
        ok == nullptr || !ok->asBool()) {
      std::fprintf(stderr, "stats under load failed: %s\n",
                   response.str().c_str());
      std::exit(1);
    }
  }

  for (const int fd : fds) ::close(fd);
  return result;
}

// ---------------------------------------------------------- saturation --

std::uint64_t directoryBytes(const std::string& dir) {
  std::uint64_t total = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.is_regular_file()) total += entry.file_size();
  }
  return total;
}

struct SweepResult {
  int nodes = 0;
  int requests = 0;
  double elapsed_s = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double hit_rate = 0;
  /// node name -> (requests served, p99 ms) — the per-node tail.
  std::map<std::string, std::pair<int, double>> per_node;

  [[nodiscard]] double throughput() const {
    return elapsed_s > 0 ? requests / elapsed_s : 0;
  }
};

SweepResult runSweep(const std::vector<std::string>& dirs, int node_count,
                     int clients, int requests,
                     std::uint64_t per_node_budget) {
  service::ServiceOptions options;
  options.cache.byte_budget = per_node_budget;
  options.scheduler.queue_limit = 4 * requests;
  std::vector<std::unique_ptr<Worker>> workers;
  std::vector<fleet::FleetNodeConfig> nodes;
  for (int i = 0; i < node_count; ++i) {
    workers.push_back(std::make_unique<Worker>(options));
    nodes.push_back(workers.back()->node());
  }

  const auto makeRequest = [](const std::string& dir) {
    service::Json request;
    request.set("op", "submit");
    request.set("dir", dir);
    request.set("command", "verify");
    request.set("wait", true);
    return request;
  };

  // Warmup pass: learn each dir's shard owner and prime the caches (the
  // single-node configuration thrashes regardless — that is the point).
  std::vector<std::string> owner_of(dirs.size());
  {
    fleet::FleetRouter router(nodes);
    for (std::size_t i = 0; i < dirs.size(); ++i) {
      owner_of[i] = router.nodeFor(dirs[i]);
      const service::Json response = router.submit(makeRequest(dirs[i]));
      const service::Json* ok = response.find("ok");
      if (ok == nullptr || !ok->asBool()) {
        std::fprintf(stderr, "warmup submit failed: %s\n",
                     response.str().c_str());
        std::exit(1);
      }
    }
  }

  // Measured phase: each client thread drives its own router (routers
  // share nothing; the ring maps every thread's requests identically),
  // cycling the dirs from a staggered start so threads do not convoy.
  std::vector<std::vector<std::pair<std::size_t, double>>> samples(
      static_cast<std::size_t>(clients));
  std::atomic<int> remaining{requests};
  const auto start = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        fleet::FleetRouter router(nodes);
        std::size_t at = dirs.size() * static_cast<std::size_t>(c) /
                         static_cast<std::size_t>(clients);
        while (remaining.fetch_sub(1) > 0) {
          const std::size_t dir_index = at++ % dirs.size();
          const auto before = std::chrono::steady_clock::now();
          const service::Json response =
              router.submit(makeRequest(dirs[dir_index]));
          const double latency_ms =
              ms(std::chrono::steady_clock::now() - before);
          const service::Json* ok = response.find("ok");
          if (ok == nullptr || !ok->asBool()) {
            std::fprintf(stderr, "submit failed: %s\n",
                         response.str().c_str());
            std::exit(1);
          }
          samples[static_cast<std::size_t>(c)].emplace_back(dir_index,
                                                            latency_ms);
        }
      });
    }
    for (auto& thread : threads) thread.join();
  }
  const auto end = std::chrono::steady_clock::now();

  SweepResult result;
  result.nodes = node_count;
  result.elapsed_s = std::chrono::duration<double>(end - start).count();
  std::vector<double> all;
  std::map<std::string, std::vector<double>> by_node;
  for (const auto& per_client : samples) {
    for (const auto& [dir_index, latency_ms] : per_client) {
      all.push_back(latency_ms);
      by_node[owner_of[dir_index]].push_back(latency_ms);
    }
  }
  result.requests = static_cast<int>(all.size());
  std::sort(all.begin(), all.end());
  result.p50_ms = percentile(all, 0.50);
  result.p99_ms = percentile(all, 0.99);
  for (auto& [node, latencies] : by_node) {
    std::sort(latencies.begin(), latencies.end());
    result.per_node[node] = {static_cast<int>(latencies.size()),
                             percentile(latencies, 0.99)};
  }
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  for (const auto& worker : workers) {
    const service::SnapshotCache::Stats stats =
        worker->repair_service.cache().stats();
    hits += stats.hits;
    misses += stats.misses;
  }
  result.hit_rate = hits + misses == 0
                        ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(hits + misses);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  int requests = 96;
  int idle_target = 5000;
  int clients = 4;
  bool smoke = false;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
      requests = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--idle") == 0 && i + 1 < argc) {
      idle_target = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--clients") == 0 && i + 1 < argc) {
      clients = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else {
      std::fprintf(stderr,
                   "usage: bench_fleet [--requests N] [--idle N] "
                   "[--clients N] [--smoke] [--json]\n");
      return 2;
    }
  }
  if (smoke) {
    idle_target = std::min(idle_target, 256);
    requests = std::min(requests, 24);
    clients = std::min(clients, 2);
  }

  // Distinct backbone scenarios: distinct fingerprints, hence distinct
  // cache entries and distinct ring positions.
  const int scenario_count = smoke ? 6 : 16;
  const int backbone_base = smoke ? 6 : 8;
  const std::filesystem::path scratch =
      std::filesystem::temp_directory_path() /
      ("acr_bench_fleet_" + std::to_string(::getpid()));
  std::filesystem::create_directories(scratch);
  std::vector<std::string> dirs;
  std::uint64_t total_bytes = 0;
  for (int i = 0; i < scenario_count; ++i) {
    const int n = backbone_base + i;
    const std::string dir = (scratch / ("bb" + std::to_string(n))).string();
    saveScenario(backboneScenario(n), dir);
    dirs.push_back(dir);
    total_bytes += directoryBytes(dir);
  }
  // The design point: one node's cache cannot hold the working set (LRU
  // cycles, every request misses) but a 4-node fleet's shards fit.
  const std::uint64_t per_node_budget =
      total_bytes * 6 / 10;

  if (!json) {
    bench::section("idle connections: epoll event loop holding " +
                   std::to_string(idle_target) + " idle clients");
  }
  const IdleResult idle = runIdle(idle_target);
  if (!json) {
    bench::Table table({"target", "held", "gauge", "threads before",
                        "threads after", "stats p. load ms"});
    table.printHeader();
    table.printRow({std::to_string(idle.target), std::to_string(idle.opened),
                    std::to_string(idle.gauge),
                    std::to_string(idle.threads_before),
                    std::to_string(idle.threads_after),
                    bench::fmt(idle.stats_ms, 3)});
    table.printRule();
  }

  if (!json) {
    bench::section(
        "fleet saturation: " + std::to_string(scenario_count) +
        " backbone scenarios, per-node cache budget = 60% of working set (" +
        std::to_string(per_node_budget / 1024) + " KiB), " +
        std::to_string(clients) + " clients, " + std::to_string(requests) +
        " requests per fleet size");
  }
  std::vector<SweepResult> sweeps;
  for (const int node_count : {1, 2, 4}) {
    sweeps.push_back(
        runSweep(dirs, node_count, clients, requests, per_node_budget));
  }
  if (!json) {
    bench::Table table({"nodes", "req/s", "p50 ms", "p99 ms",
                        "cache hit rate", "per-node p99 ms"});
    table.printHeader();
    for (const SweepResult& sweep : sweeps) {
      std::string per_node;
      for (const auto& [node, stats] : sweep.per_node) {
        if (!per_node.empty()) per_node += " ";
        per_node += bench::fmt(stats.second, 1);
      }
      table.printRow({std::to_string(sweep.nodes),
                      bench::fmt(sweep.throughput(), 1),
                      bench::fmt(sweep.p50_ms, 3), bench::fmt(sweep.p99_ms, 3),
                      bench::pct(sweep.hit_rate), per_node});
    }
    table.printRule();
  }

  const double speedup =
      sweeps.front().throughput() > 0
          ? sweeps.back().throughput() / sweeps.front().throughput()
          : 0;
  if (!json) {
    std::printf("\n4-node speedup over single node: %.2fx\n", speedup);
  }

  if (json) {
    std::puts("{");
    std::printf("  \"idle\": {\"target\": %d, \"held\": %d, \"gauge\": %lld, "
                "\"threads_before\": %d, \"threads_after\": %d, "
                "\"stats_under_load_ms\": %.3f},\n",
                idle.target, idle.opened,
                static_cast<long long>(idle.gauge), idle.threads_before,
                idle.threads_after, idle.stats_ms);
    std::printf("  \"scenarios\": %d, \"working_set_bytes\": %llu, "
                "\"per_node_cache_budget_bytes\": %llu, \"clients\": %d,\n",
                scenario_count,
                static_cast<unsigned long long>(total_bytes),
                static_cast<unsigned long long>(per_node_budget), clients);
    std::puts("  \"saturation\": [");
    for (std::size_t i = 0; i < sweeps.size(); ++i) {
      const SweepResult& sweep = sweeps[i];
      std::string per_node;
      for (const auto& [node, stats] : sweep.per_node) {
        if (!per_node.empty()) per_node += ", ";
        char buffer[128];
        std::snprintf(buffer, sizeof(buffer),
                      "{\"requests\": %d, \"p99_ms\": %.3f}", stats.first,
                      stats.second);
        per_node += buffer;
      }
      std::printf("    {\"nodes\": %d, \"requests\": %d, "
                  "\"throughput_rps\": %.1f, \"p50_ms\": %.3f, "
                  "\"p99_ms\": %.3f, \"cache_hit_rate\": %.3f, "
                  "\"per_node\": [%s]}%s\n",
                  sweep.nodes, sweep.requests, sweep.throughput(),
                  sweep.p50_ms, sweep.p99_ms, sweep.hit_rate,
                  per_node.c_str(), i + 1 < sweeps.size() ? "," : "");
    }
    std::puts("  ],");
    std::printf("  \"speedup_4x\": %.2f\n", speedup);
    std::puts("}");
  }

  std::filesystem::remove_all(scratch);

  if (!smoke) {
    bool failed = false;
    if (idle.opened < idle_target || idle.gauge < idle.opened) {
      std::fprintf(stderr,
                   "GATE: held %d/%d idle connections (gauge %lld)\n",
                   idle.opened, idle_target,
                   static_cast<long long>(idle.gauge));
      failed = true;
    }
    if (idle.threads_after > idle.threads_before) {
      std::fprintf(stderr, "GATE: idle connections grew threads %d -> %d\n",
                   idle.threads_before, idle.threads_after);
      failed = true;
    }
    if (speedup < 2.5) {
      std::fprintf(stderr, "GATE: 4-node speedup %.2fx < 2.5x\n", speedup);
      failed = true;
    }
    if (failed) return 1;
  }
  return 0;
}
