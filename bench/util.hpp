// Shared table/report helpers for the benchmark harnesses.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace acr::bench {

/// Fixed-width text table, printed as the harness accumulates rows.
class Table {
 public:
  explicit Table(std::vector<std::string> headers,
                 std::vector<int> widths = {})
      : headers_(std::move(headers)), widths_(std::move(widths)) {
    if (widths_.empty()) {
      for (const auto& header : headers_) {
        widths_.push_back(static_cast<int>(header.size()) + 4);
      }
    }
  }

  void printHeader() const {
    printRule();
    printRow(headers_);
    printRule();
  }

  void printRow(const std::vector<std::string>& cells) const {
    std::string line = "|";
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const int width = i < widths_.size() ? widths_[i] : 12;
      char buffer[256];
      std::snprintf(buffer, sizeof(buffer), " %-*s|", width - 1,
                    cells[i].c_str());
      line += buffer;
    }
    std::puts(line.c_str());
  }

  void printRule() const {
    std::string line = "+";
    for (const int width : widths_) {
      line += std::string(static_cast<std::size_t>(width), '-');
      line += '+';
    }
    std::puts(line.c_str());
  }

 private:
  std::vector<std::string> headers_;
  std::vector<int> widths_;
};

inline std::string fmt(double value, int decimals = 1) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
  return buffer;
}

inline std::string pct(double ratio, int decimals = 1) {
  return fmt(ratio * 100.0, decimals) + "%";
}

inline void section(const std::string& title) {
  std::puts("");
  std::puts(("== " + title + " ==").c_str());
}

}  // namespace acr::bench
