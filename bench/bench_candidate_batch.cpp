// Cross-candidate batch evaluation: per-candidate delta runs vs one shared
// delta tree (docs/architecture.md §14).
//
// The workload mirrors a VALIDATE round: every candidate shares a wide base
// edit (the population's current patch — an agg prefix-list change whose
// blast radius spans the fabric) and adds one narrow edit of its own (a
// ToR-local static route). The per-candidate path re-propagates the shared
// base once per candidate (DeltaSimulator from the anchor); the batch path
// propagates it once and forks each candidate off the base node via
// copy-on-write undo logs (route::DeltaTree).
//
// Both paths must produce byte-identical results — before timing anything,
// the harness verifies every tree leaf route-by-route against both a
// from-scratch simulation and the per-candidate delta run, and requires
// that no path fell back. A speedup can never come from a wrong answer.
//
//   bench_candidate_batch [--reps N] [--smoke] [--json]
//
// --smoke runs the smallest fabric once (CI wiring check); --json replaces
// the table with a machine-readable array (committed as
// BENCH_candidate_batch.json for regression tracking). Full runs self-gate:
// the harness exits non-zero if the dcn-8x8 batch speedup drops below 5x.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "bench/util.hpp"
#include "core/scenarios.hpp"
#include "routing/delta.hpp"
#include "routing/delta_tree.hpp"
#include "routing/simulator.hpp"

namespace {

using namespace acr;

struct Case {
  std::string scenario;
  int routers = 0;
  int leaves = 0;
  double per_candidate_ms = 0;  // DeltaSimulator from anchor, per candidate
  double tree_ms = 0;           // DeltaTree ctor + setBase + all leaves
  int leaf_rounds = 0;          // median leaf-segment rounds
  std::uint64_t undo_entries = 0;  // median leaf undo-log size

  [[nodiscard]] double speedup() const {
    return tree_ms > 0 ? per_candidate_ms / tree_ms : 0;
  }
};

double medianMs(std::vector<double>& samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

bool sameResult(const route::SimResult& a, const route::SimResult& b) {
  if (a.converged != b.converged || a.flapping != b.flapping ||
      a.rib.size() != b.rib.size()) {
    return false;
  }
  auto b_it = b.rib.begin();
  for (const auto& [router, routes] : a.rib) {
    if (router != b_it->first || routes.size() != b_it->second.size()) {
      return false;
    }
    auto entry_it = b_it->second.begin();
    for (const auto& [prefix, route_entry] : routes) {
      if (prefix != entry_it->first ||
          route_entry.key() != entry_it->second.key() ||
          route_entry.ecmp != entry_it->second.ecmp) {
        return false;
      }
      ++entry_it;
    }
    ++b_it;
  }
  return true;
}

/// The shared base edit: drop the VIP half of agg1a's pod-local import
/// filter — every VIP route through this agg is re-decided fabric-wide
/// (the "wide" edit of bench_sim_incremental).
void applyBaseEdit(topo::Network& network) {
  auto& lists = network.config("agg1a")->prefix_lists;
  for (auto& list : lists) {
    if (list.name == "POD_LOCAL" && list.entries.size() > 1) {
      list.entries.pop_back();
    }
  }
}

struct Candidate {
  std::string device;    // the ToR the candidate edits
  topo::Network network; // base + this candidate's own edit
};

/// Candidate edits fork one narrow edit each off the shared base: a static
/// route to a fresh prefix on a distinct ToR. Only the first ToR of a pod
/// redistributes static routes, so on t >= 2 the new route stays in that
/// ToR's own RIB — the smallest honest blast radius a config edit can have.
std::vector<Candidate> makeCandidates(const topo::Network& base, int pods,
                                      int tors, int max_candidates) {
  std::vector<Candidate> candidates;
  for (int p = 1; p <= pods; ++p) {
    for (int t = 2; t <= tors; ++t) {
      if (static_cast<int>(candidates.size()) >= max_candidates) {
        return candidates;
      }
      const std::string tor =
          "tor" + std::to_string(p) + "_" + std::to_string(t);
      Candidate candidate;
      candidate.device = tor;
      candidate.network = base;
      const int index = static_cast<int>(candidates.size());
      // Next hop inside the ToR's connected servers subnet (10.p.t.0/24,
      // interface address .1) so the static route resolves.
      candidate.network.config(tor)->static_routes.push_back(
          cfg::StaticRouteConfig{
              net::Prefix(net::Ipv4Address::fromOctets(
                              10, 200, static_cast<std::uint8_t>(index), 0),
                          24),
              net::Ipv4Address::fromOctets(10, static_cast<std::uint8_t>(p),
                                           static_cast<std::uint8_t>(t), 11),
              0});
      candidate.network.renumberAll();
      candidates.push_back(std::move(candidate));
    }
  }
  return candidates;
}

Case runCase(const Scenario& scenario, int pods, int tors, int reps) {
  route::SimOptions options;
  options.record_provenance = false;

  const topo::Network& anchor_network = scenario.network();
  const route::SimResult anchor = route::Simulator(anchor_network).run(options);
  if (!anchor.converged) {
    std::fprintf(stderr, "%s: anchor did not converge\n",
                 scenario.name.c_str());
    std::exit(1);
  }

  topo::Network base = anchor_network;
  applyBaseEdit(base);
  base.renumberAll();

  const std::vector<Candidate> candidates =
      makeCandidates(base, pods, tors, /*max_candidates=*/24);
  if (candidates.empty()) {
    std::fprintf(stderr, "%s: no candidate ToRs\n", scenario.name.c_str());
    std::exit(1);
  }

  // --- identity check: tree leaf == per-candidate delta == full run -------
  const route::DeltaSimulator delta(anchor_network, anchor);
  std::vector<int> leaf_rounds;
  std::vector<std::uint64_t> undo_entries;
  {
    route::DeltaTree tree(anchor_network, anchor, options);
    tree.setBase(base, {"agg1a"});
    for (const Candidate& candidate : candidates) {
      const route::SimResult full =
          route::Simulator(candidate.network).run(options);
      route::DeltaStats stats;
      const route::SimResult per_candidate = delta.run(
          candidate.network, {"agg1a", candidate.device}, options, &stats);
      if (!stats.used_delta) {
        std::fprintf(stderr, "%s / %s: per-candidate delta fell back (%s)\n",
                     scenario.name.c_str(), candidate.device.c_str(),
                     stats.fallback_reason.c_str());
        std::exit(1);
      }
      if (!sameResult(per_candidate, full)) {
        std::fprintf(stderr, "%s / %s: per-candidate delta differs from "
                     "full run\n",
                     scenario.name.c_str(), candidate.device.c_str());
        std::exit(1);
      }
      bool leaf_ok = false;
      tree.leaf(candidate.network, {candidate.device},
                [&](const route::SimResult& view,
                    const route::TreeLeafStats& stats_leaf) {
                  if (!stats_leaf.used_delta) {
                    std::fprintf(stderr, "%s / %s: tree leaf fell back (%s)\n",
                                 scenario.name.c_str(),
                                 candidate.device.c_str(),
                                 stats_leaf.fallback_reason.c_str());
                    std::exit(1);
                  }
                  leaf_ok = sameResult(view, full);
                  leaf_rounds.push_back(stats_leaf.rounds);
                  undo_entries.push_back(stats_leaf.undo_entries);
                });
      if (!leaf_ok) {
        std::fprintf(stderr, "%s / %s: tree leaf differs from full run\n",
                     scenario.name.c_str(), candidate.device.c_str());
        std::exit(1);
      }
    }
  }

  // --- timing --------------------------------------------------------------
  std::vector<double> per_candidate_samples;
  std::vector<double> tree_samples;
  std::size_t expect_rib = 0;
  for (int rep = 0; rep < reps; ++rep) {
    auto start = std::chrono::steady_clock::now();
    std::size_t per_candidate_rib = 0;
    for (const Candidate& candidate : candidates) {
      per_candidate_rib +=
          delta.run(candidate.network, {"agg1a", candidate.device}, options)
              .rib.size();
    }
    auto mid = std::chrono::steady_clock::now();
    std::size_t tree_rib = 0;
    {
      route::DeltaTree tree(anchor_network, anchor, options);
      tree.setBase(base, {"agg1a"});
      for (const Candidate& candidate : candidates) {
        tree.leaf(candidate.network, {candidate.device},
                  [&](const route::SimResult& view,
                      const route::TreeLeafStats&) {
                    tree_rib += view.rib.size();
                  });
      }
    }
    auto end = std::chrono::steady_clock::now();
    per_candidate_samples.push_back(
        std::chrono::duration<double, std::milli>(mid - start).count());
    tree_samples.push_back(
        std::chrono::duration<double, std::milli>(end - mid).count());
    if (rep == 0) {
      expect_rib = per_candidate_rib;
    }
    if (per_candidate_rib != expect_rib || tree_rib != expect_rib) {
      std::fprintf(stderr, "non-deterministic rerun\n");
      std::exit(1);
    }
  }

  std::sort(leaf_rounds.begin(), leaf_rounds.end());
  std::sort(undo_entries.begin(), undo_entries.end());

  Case result;
  result.scenario = scenario.name;
  result.routers = static_cast<int>(anchor_network.configs.size());
  result.leaves = static_cast<int>(candidates.size());
  result.per_candidate_ms = medianMs(per_candidate_samples);
  result.tree_ms = medianMs(tree_samples);
  result.leaf_rounds = leaf_rounds[leaf_rounds.size() / 2];
  result.undo_entries = undo_entries[undo_entries.size() / 2];
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  int reps = 9;
  bool smoke = false;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else {
      std::fprintf(stderr,
                   "usage: bench_candidate_batch [--reps N] [--smoke] "
                   "[--json]\n");
      return 2;
    }
  }

  std::vector<std::pair<int, int>> fabrics = {{2, 2}, {4, 4}, {8, 8}};
  if (smoke) {
    fabrics = {{2, 2}};
    reps = 1;
  }

  std::vector<Case> cases;
  for (const auto& [pods, tors] : fabrics) {
    cases.push_back(runCase(dcnScenario(pods, tors), pods, tors, reps));
  }

  if (json) {
    std::puts("[");
    for (std::size_t i = 0; i < cases.size(); ++i) {
      const Case& c = cases[i];
      std::printf(
          "  {\"scenario\": \"%s\", \"routers\": %d, \"leaves\": %d, "
          "\"per_candidate_ms\": %.3f, \"tree_ms\": %.3f, "
          "\"speedup\": %.1f, \"leaf_rounds\": %d, "
          "\"undo_entries\": %llu}%s\n",
          c.scenario.c_str(), c.routers, c.leaves, c.per_candidate_ms,
          c.tree_ms, c.speedup(), c.leaf_rounds,
          static_cast<unsigned long long>(c.undo_entries),
          i + 1 < cases.size() ? "," : "");
    }
    std::puts("]");
  } else {
    bench::section(
        "per-candidate delta vs shared delta tree, one VALIDATE round "
        "(median of " +
        std::to_string(reps) + " reps, results verified identical)");
    bench::Table table({"scenario", "routers", "leaves", "per-cand ms",
                        "tree ms", "speedup", "leaf rounds", "undo entries"});
    table.printHeader();
    for (const Case& c : cases) {
      table.printRow({c.scenario, std::to_string(c.routers),
                      std::to_string(c.leaves),
                      bench::fmt(c.per_candidate_ms, 3),
                      bench::fmt(c.tree_ms, 3), bench::fmt(c.speedup(), 1) + "x",
                      std::to_string(c.leaf_rounds),
                      std::to_string(c.undo_entries)});
    }
    table.printRule();
  }

  // Regression gate: the committed claim is a >= 5x batch win on the
  // largest fabric. Smoke runs only check wiring on the smallest one.
  if (!smoke) {
    for (const Case& c : cases) {
      if (c.scenario == "dcn-8x8" && c.speedup() < 5.0) {
        std::fprintf(stderr,
                     "bench_candidate_batch: dcn-8x8 speedup %.1fx below the "
                     "5x gate\n",
                     c.speedup());
        return 1;
      }
    }
  }
  return 0;
}
