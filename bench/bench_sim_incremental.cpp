// Full vs delta simulation across fat-tree sizes and edit blast radii.
//
// For each DCN scenario the harness converges a baseline once, applies a
// single-device candidate edit, then times (a) a from-scratch Simulator::run
// of the edited network and (b) a DeltaSimulator run seeded with the
// baseline fixpoint. Both paths must produce byte-identical results — the
// harness verifies the RIBs route-by-route before it reports a single
// number, so a speedup can never come from a wrong answer.
//
//   bench_sim_incremental [--reps N] [--smoke] [--json]
//
// --smoke runs the smallest fabric once (CI wiring check); --json replaces
// the table with a machine-readable array (committed as
// BENCH_sim_incremental.json for regression tracking).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench/util.hpp"
#include "core/scenarios.hpp"
#include "routing/delta.hpp"
#include "routing/simulator.hpp"

namespace {

using namespace acr;

struct Edit {
  std::string label;   // what the candidate update touches
  std::string device;  // the single changed device
  std::function<void(topo::Network&)> apply;
};

struct Case {
  std::string scenario;
  int routers = 0;
  std::string edit;
  double full_ms = 0;
  double delta_ms = 0;
  int full_rounds = 0;
  int delta_rounds = 0;
  std::uint64_t dirty_prefixes = 0;
  std::uint64_t work_items = 0;

  [[nodiscard]] double speedup() const {
    return delta_ms > 0 ? full_ms / delta_ms : 0;
  }
};

double medianMs(std::vector<double>& samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

bool sameResult(const route::SimResult& a, const route::SimResult& b) {
  // Rib::identicalTo compares effective per-entry state (source, learned-from,
  // next hop, AS path, local-pref, MED) plus the ECMP sets — the same fields
  // the old route-by-route key() walk covered, now with an O(1) shared-page
  // fast path.
  return a.converged == b.converged && a.flapping == b.flapping &&
         a.rib.identicalTo(b.rib);
}

Case runCase(const Scenario& scenario, const Edit& edit, int reps) {
  route::SimOptions options;
  options.record_provenance = false;

  const route::SimResult baseline =
      route::Simulator(scenario.network()).run(options);
  if (!baseline.converged) {
    std::fprintf(stderr, "%s: baseline did not converge\n",
                 scenario.name.c_str());
    std::exit(1);
  }

  topo::Network edited = scenario.network();
  edit.apply(edited);
  edited.renumberAll();

  const route::DeltaSimulator delta(scenario.network(), baseline);
  route::DeltaStats stats;
  const route::SimResult full = route::Simulator(edited).run(options);
  const route::SimResult incremental =
      delta.run(edited, {edit.device}, options, &stats);
  if (!stats.used_delta) {
    std::fprintf(stderr, "%s / %s: delta fell back (%s)\n",
                 scenario.name.c_str(), edit.label.c_str(),
                 stats.fallback_reason.c_str());
    std::exit(1);
  }
  if (!sameResult(incremental, full)) {
    std::fprintf(stderr, "%s / %s: delta result differs from full run\n",
                 scenario.name.c_str(), edit.label.c_str());
    std::exit(1);
  }

  std::vector<double> full_samples;
  std::vector<double> delta_samples;
  for (int rep = 0; rep < reps; ++rep) {
    auto start = std::chrono::steady_clock::now();
    const route::SimResult timed_full = route::Simulator(edited).run(options);
    auto mid = std::chrono::steady_clock::now();
    const route::SimResult timed_delta =
        delta.run(edited, {edit.device}, options);
    auto end = std::chrono::steady_clock::now();
    full_samples.push_back(
        std::chrono::duration<double, std::milli>(mid - start).count());
    delta_samples.push_back(
        std::chrono::duration<double, std::milli>(end - mid).count());
    if (timed_full.rounds != full.rounds ||
        timed_delta.rib.size() != full.rib.size()) {
      std::fprintf(stderr, "non-deterministic rerun\n");
      std::exit(1);
    }
  }

  Case result;
  result.scenario = scenario.name;
  result.routers = static_cast<int>(scenario.network().configs.size());
  result.edit = edit.label;
  result.full_ms = medianMs(full_samples);
  result.delta_ms = medianMs(delta_samples);
  result.full_rounds = full.rounds;
  result.delta_rounds = stats.rounds;
  result.dirty_prefixes = stats.dirty_prefixes;
  result.work_items = stats.work_items;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  int reps = 9;
  bool smoke = false;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else {
      std::fprintf(stderr,
                   "usage: bench_sim_incremental [--reps N] [--smoke] "
                   "[--json]\n");
      return 2;
    }
  }

  std::vector<std::pair<int, int>> fabrics = {{2, 2}, {4, 4}, {8, 8}};
  if (smoke) {
    fabrics = {{2, 2}};
    reps = 1;
  }

  const std::vector<Edit> edits = {
      {"tor redistribute (narrow)", "tor1_1",
       [](topo::Network& network) {
         network.config("tor1_1")->bgp->redistributes.clear();
       }},
      {"agg prefix-list (wide)", "agg1a",
       [](topo::Network& network) {
         // Drop the VIP half of the pod-local import filter: every VIP
         // route through this agg is re-decided fabric-wide.
         auto& lists = network.config("agg1a")->prefix_lists;
         for (auto& list : lists) {
           if (list.name == "POD_LOCAL" && list.entries.size() > 1) {
             list.entries.pop_back();
           }
         }
       }},
  };

  std::vector<Case> cases;
  for (const auto& [pods, tors] : fabrics) {
    const Scenario scenario = dcnScenario(pods, tors);
    for (const Edit& edit : edits) {
      cases.push_back(runCase(scenario, edit, reps));
    }
  }

  if (json) {
    std::puts("[");
    for (std::size_t i = 0; i < cases.size(); ++i) {
      const Case& c = cases[i];
      std::printf(
          "  {\"scenario\": \"%s\", \"routers\": %d, \"edit\": \"%s\", "
          "\"full_ms\": %.3f, \"delta_ms\": %.3f, \"speedup\": %.1f, "
          "\"full_rounds\": %d, \"delta_rounds\": %d, "
          "\"dirty_prefixes\": %llu, \"work_items\": %llu}%s\n",
          c.scenario.c_str(), c.routers, c.edit.c_str(), c.full_ms,
          c.delta_ms, c.speedup(), c.full_rounds, c.delta_rounds,
          static_cast<unsigned long long>(c.dirty_prefixes),
          static_cast<unsigned long long>(c.work_items),
          i + 1 < cases.size() ? "," : "");
    }
    std::puts("]");
    return 0;
  }

  bench::section("full vs delta simulation, single-device edits (median of " +
                 std::to_string(reps) + " reps, results verified identical)");
  bench::Table table({"scenario", "routers", "edit", "full ms", "delta ms",
                      "speedup", "dirty", "work items"});
  table.printHeader();
  for (const Case& c : cases) {
    table.printRow({c.scenario, std::to_string(c.routers), c.edit,
                    bench::fmt(c.full_ms, 3), bench::fmt(c.delta_ms, 3),
                    bench::fmt(c.speedup(), 1) + "x",
                    std::to_string(c.dirty_prefixes),
                    std::to_string(c.work_items)});
  }
  table.printRule();
  return 0;
}
