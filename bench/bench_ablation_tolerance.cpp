// Ablation: plain intent validation vs k-failure-tolerance-aware validation
// in the repair loop (§1's k-failure tolerance as a repair objective).
//
// On the Figure-2 incident the minimal plain repair disables one override
// site and leaves the other as a latent fault; tolerance-aware fitness
// (RepairOptions::tolerance_k = 1) forces the paper's complete two-site
// repair. This bench quantifies the price (validations, time) and the
// benefit (no residual violating failure scenarios).
#include <cstdio>

#include "bench/util.hpp"
#include "core/acr.hpp"

int main() {
  using namespace acr;
  const Scenario scenario = figure2Scenario(/*faulty=*/true);

  bench::Table table({"Validation target", "Repaired", "Changes",
                      "Validations", "Time (ms)", "Latent 1-failure viol."},
                     {20, 10, 9, 13, 11, 24});
  table.printHeader();
  for (const int k : {0, 1}) {
    repair::RepairOptions options;
    options.tolerance_k = k;
    options.seed = 2;
    const repair::RepairResult result =
        repair::AcrEngine(scenario.intents, options).repair(scenario.network());
    const verify::FailureToleranceReport residual =
        verify::verifyUnderFailures(result.repaired, scenario.intents);
    int residual_failures = 0;
    for (const auto& violation : residual.violations) {
      residual_failures += violation.tests_failed;
    }
    table.printRow({k == 0 ? "plain intents" : "intents + 1-failure",
                    result.success ? "yes" : "NO",
                    std::to_string(result.changes.size()),
                    std::to_string(result.validations),
                    bench::fmt(result.elapsed_ms, 1),
                    std::to_string(residual_failures)});
  }
  table.printRule();
  std::puts(
      "\nshape check: the plain repair is intent-clean but leaves latent\n"
      "violations under single link failures; the tolerance-aware repair\n"
      "spends more validations and removes them all (the paper's complete\n"
      "two-site Figure-2 fix).");
  return 0;
}
