// Parallel campaign runner: wall-clock speedup vs. worker count, with the
// determinism contract checked on every row — per-fault-type repair counts
// must be identical at every `jobs` value, or the speedup is meaningless.
//
// Usage: bench_campaign_parallel [incidents] [seed] [max_jobs]
//        (max_jobs defaults to hardware concurrency)
#include <chrono>
#include <cstdlib>
#include <map>

#include "bench/util.hpp"
#include "core/acr.hpp"
#include "util/thread_pool.hpp"

namespace {

struct Run {
  double wall_ms = 0.0;
  std::map<acr::inject::FaultType, std::pair<int, int>> by_type;  // count, ok
  int repaired = 0;
  int records = 0;
};

Run runAt(const acr::CampaignOptions& base, int jobs) {
  acr::CampaignOptions options = base;
  options.jobs = jobs;
  const auto started = std::chrono::steady_clock::now();
  const acr::CampaignResult campaign = acr::runCampaign(options);
  Run run;
  run.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - started)
                    .count();
  run.records = static_cast<int>(campaign.records.size());
  run.repaired = campaign.repairedCount();
  for (const auto& record : campaign.records) {
    auto& [count, ok] = run.by_type[record.type];
    ++count;
    if (record.repair.success) ++ok;
  }
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  const int incidents = argc > 1 ? std::atoi(argv[1]) : 80;
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;
  const int max_jobs = argc > 3 ? std::atoi(argv[3])
                                : acr::util::ThreadPool::hardwareJobs();

  std::printf(
      "ACR parallel campaign: %d incidents (seed %llu), %d hardware "
      "thread(s)\n",
      incidents, static_cast<unsigned long long>(seed),
      acr::util::ThreadPool::hardwareJobs());

  acr::CampaignOptions options;
  options.incidents = incidents;
  options.seed = seed;

  const Run baseline = runAt(options, 1);

  acr::bench::Table table(
      {"Jobs", "Wall ms", "Speedup", "Records", "Repaired", "Identical"},
      {6, 12, 9, 9, 10, 11});
  table.printHeader();
  table.printRow({"1", acr::bench::fmt(baseline.wall_ms),
                  "1.0x", std::to_string(baseline.records),
                  std::to_string(baseline.repaired), "baseline"});

  bool all_identical = true;
  for (int jobs = 2; jobs <= max_jobs; jobs *= 2) {
    const Run run = runAt(options, jobs);
    const bool identical = run.by_type == baseline.by_type &&
                           run.records == baseline.records &&
                           run.repaired == baseline.repaired;
    all_identical = all_identical && identical;
    table.printRow({std::to_string(jobs), acr::bench::fmt(run.wall_ms),
                    acr::bench::fmt(baseline.wall_ms / run.wall_ms) + "x",
                    std::to_string(run.records), std::to_string(run.repaired),
                    identical ? "yes" : "NO"});
  }
  table.printRule();

  std::printf(
      "\nper-type repair counts %s across worker counts — parallelism "
      "changes\nwall-clock only, never the reproduced tables.\n",
      all_identical ? "identical" : "DIVERGED");
  return all_identical ? 0 : 1;
}
