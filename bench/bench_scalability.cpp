// Scalability sweep (the paper's challenge #2): how simulation,
// verification and the full repair loop scale with network size, for both
// scenario families. The paper's target is tens of thousands of devices on
// production hardware; the shape to check here is that ACR's per-incident
// cost is dominated by a small number of simulations and stays polynomial,
// while the AED-style synthesis space (also printed) grows exponentially.
//
// Usage: bench_scalability [seed]
#include <chrono>
#include <cstdlib>

#include "bench/util.hpp"
#include "core/acr.hpp"

namespace {

double msSince(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

void sweep(const std::string& family, const std::vector<acr::Scenario>& sizes,
           acr::inject::FaultType fault, std::uint64_t seed) {
  acr::bench::section(family + " sweep");
  acr::bench::Table table({"Network", "Devices", "Lines", "Intents",
                           "Sim (ms)", "Verify (ms)", "Repair (ms)",
                           "Validations", "AED space"},
                          {16, 9, 8, 9, 10, 12, 12, 12, 11});
  table.printHeader();
  for (const auto& scenario : sizes) {
    auto start = std::chrono::steady_clock::now();
    const acr::route::SimResult sim =
        acr::route::Simulator(scenario.network()).run();
    const double sim_ms = msSince(start);

    const acr::verify::Verifier verifier(scenario.intents);
    start = std::chrono::steady_clock::now();
    const acr::verify::VerifyResult verdict =
        verifier.verify(scenario.network());
    const double verify_ms = msSince(start);
    if (!verdict.ok()) {
      table.printRow({scenario.name, "-", "-", "-", "-", "-",
                      "pristine network failed verification", "-", "-"});
      continue;
    }

    acr::inject::FaultInjector injector(seed);
    const auto incident = injector.inject(scenario.built, fault);
    std::string repair_ms = "-";
    std::string validations = "-";
    if (incident) {
      const acr::repair::AcrEngine engine(scenario.intents);
      const acr::repair::RepairResult result =
          engine.repair(incident->network);
      repair_ms = acr::bench::fmt(result.elapsed_ms, 1) +
                  (result.success ? "" : " (FAILED)");
      validations = std::to_string(result.validations);
    }
    table.printRow({scenario.name,
                    std::to_string(scenario.network().configs.size()),
                    std::to_string(scenario.network().totalLines()),
                    std::to_string(scenario.intents.size()),
                    acr::bench::fmt(sim_ms, 1), acr::bench::fmt(verify_ms, 1),
                    repair_ms, validations,
                    "2^" + std::to_string(scenario.network().totalLines())});
    (void)sim;
  }
  table.printRule();
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 23;

  std::vector<acr::Scenario> dcns;
  for (const int pods : {2, 4, 6, 8}) dcns.push_back(acr::dcnScenario(pods, 3));
  sweep("DCN (Clos, 3 ToRs/pod)", dcns,
        acr::inject::FaultType::kExtraPbrRedirect, seed);

  std::vector<acr::Scenario> backbones;
  for (const int n : {8, 16, 32, 48}) {
    backbones.push_back(acr::backboneScenario(n));
  }
  sweep("WAN backbone (ring+chords)", backbones,
        acr::inject::FaultType::kMissingPrefixListItemsS, seed);
  return 0;
}
