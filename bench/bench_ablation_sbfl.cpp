// Ablation (paper §6, "computing suspiciousness scores"): how the choice of
// SBFL metric — Tarantula (the paper's), Ochiai, Jaccard, DStar(2), and a
// random-localization floor — affects repair success and effort on the same
// incident corpus.
//
// Usage: bench_ablation_sbfl [incidents] [seed]
#include <cstdlib>

#include "bench/util.hpp"
#include "core/acr.hpp"

int main(int argc, char** argv) {
  const int incidents = argc > 1 ? std::atoi(argv[1]) : 40;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 3;

  std::printf("SBFL metric ablation over %d incidents (seed %llu)\n",
              incidents, static_cast<unsigned long long>(seed));

  acr::bench::Table table({"Metric", "Repaired", "Avg iterations",
                           "Avg validations", "Avg ms"},
                          {12, 10, 16, 17, 10});
  table.printHeader();

  const acr::sbfl::Metric metrics[] = {
      acr::sbfl::Metric::kTarantula,   acr::sbfl::Metric::kOchiai,
      acr::sbfl::Metric::kJaccard,     acr::sbfl::Metric::kDstar2,
      acr::sbfl::Metric::kOp2,         acr::sbfl::Metric::kKulczynski2,
      acr::sbfl::Metric::kRandom};
  for (const auto metric : metrics) {
    acr::CampaignOptions options;
    options.incidents = incidents;
    options.seed = seed;  // identical corpus across metrics
    options.repair.metric = metric;
    const acr::CampaignResult campaign = acr::runCampaign(options);
    long iterations = 0;
    long validations = 0;
    double ms = 0;
    int repaired = 0;
    for (const auto& record : campaign.records) {
      if (record.repair.success) ++repaired;
      iterations += record.repair.iterations;
      validations += static_cast<long>(record.repair.validations);
      ms += record.repair.elapsed_ms;
    }
    const double n = std::max<std::size_t>(campaign.records.size(), 1);
    table.printRow({acr::sbfl::metricName(metric),
                    std::to_string(repaired) + "/" +
                        std::to_string(campaign.records.size()),
                    acr::bench::fmt(iterations / n, 2),
                    acr::bench::fmt(validations / n, 1),
                    acr::bench::fmt(ms / n, 1)});
  }
  table.printRule();
  return 0;
}
