// §6 "Hypotheses for ACR": the plastic-surgery hypothesis assumes devices
// with the same role have similar configurations, so repairs can be copied
// or solved from same-role donors. The paper asks for this to be *validated*
// per network class before trusting template repair there.
//
// This harness measures, for each scenario family:
//   * structural config similarity (Jaccard over shape-normalized lines —
//     addresses and numbers blanked) between same-role and different-role
//     device pairs;
//   * donor availability: the fraction of (device, policy) definitions for
//     which some same-role device defines a policy of the same name — the
//     precondition of the restore-policy / restore-peer-group templates.
//
// Expected shape: same-role similarity far above different-role similarity
// in the DCN (the paper's claim for DCNs), high everywhere in the uniform
// backbone, and donor availability near 100% outside singleton roles.
#include <cctype>
#include <map>
#include <set>

#include "bench/util.hpp"
#include "core/acr.hpp"

namespace {

/// Blanks every digit run so only the configuration *shape* remains:
/// "peer 172.16.0.2 as-number 65002" -> "peer #.#.#.# as-number #".
std::string normalizeLine(const std::string& line) {
  std::string out;
  bool in_number = false;
  for (const char c : line) {
    if (std::isdigit(static_cast<unsigned char>(c))) {
      if (!in_number) out += '#';
      in_number = true;
    } else {
      out += c;
      in_number = false;
    }
  }
  return out;
}

std::set<std::string> shapeOf(const acr::cfg::DeviceConfig& device) {
  std::set<std::string> lines;
  for (const auto& line : device.renderLines()) {
    lines.insert(normalizeLine(line));
  }
  return lines;
}

double jaccard(const std::set<std::string>& a, const std::set<std::string>& b) {
  std::size_t common = 0;
  for (const auto& line : a) {
    if (b.count(line) != 0) ++common;
  }
  const std::size_t total = a.size() + b.size() - common;
  return total == 0 ? 1.0 : static_cast<double>(common) / total;
}

struct SimilarityStats {
  double same_role_sum = 0;
  int same_role_pairs = 0;
  double cross_role_sum = 0;
  int cross_role_pairs = 0;
};

}  // namespace

int main() {
  acr::bench::Table table({"Scenario", "Same-role sim.", "Cross-role sim.",
                           "Ratio", "Donor availability"},
                          {16, 16, 17, 8, 20});
  table.printHeader();

  for (const char* family : {"figure2", "dcn", "backbone"}) {
    const acr::Scenario scenario = acr::scenarioByFamily(family, 4, 3, 12);
    const auto& network = scenario.network();

    std::map<std::string, std::set<std::string>> shapes;
    for (const auto& [name, device] : network.configs) {
      shapes[name] = shapeOf(device);
    }
    const auto roleOf = [&](const std::string& name) {
      const auto* decl = network.topology.findRouter(name);
      return decl == nullptr ? std::string{} : decl->role;
    };

    SimilarityStats stats;
    const auto& routers = network.topology.routers();
    for (std::size_t i = 0; i < routers.size(); ++i) {
      for (std::size_t j = i + 1; j < routers.size(); ++j) {
        const double similarity =
            jaccard(shapes[routers[i].name], shapes[routers[j].name]);
        if (routers[i].role == routers[j].role) {
          stats.same_role_sum += similarity;
          ++stats.same_role_pairs;
        } else {
          stats.cross_role_sum += similarity;
          ++stats.cross_role_pairs;
        }
      }
    }

    // Donor availability for policy definitions.
    int definitions = 0;
    int with_donor = 0;
    for (const auto& [name, device] : network.configs) {
      for (const auto& policy : device.policies) {
        ++definitions;
        for (const auto& [other_name, other] : network.configs) {
          if (other_name != name && roleOf(other_name) == roleOf(name) &&
              other.findPolicy(policy.name) != nullptr) {
            ++with_donor;
            break;
          }
        }
      }
    }

    const double same = stats.same_role_pairs == 0
                            ? 0
                            : stats.same_role_sum / stats.same_role_pairs;
    const double cross = stats.cross_role_pairs == 0
                             ? 0
                             : stats.cross_role_sum / stats.cross_role_pairs;
    table.printRow({scenario.name, acr::bench::fmt(same, 3),
                    acr::bench::fmt(cross, 3),
                    cross == 0 ? "-" : acr::bench::fmt(same / cross, 2) + "x",
                    definitions == 0
                        ? "-"
                        : acr::bench::pct(double(with_donor) / definitions)});
  }
  table.printRule();
  std::puts(
      "\nhypothesis check: same-role structural similarity must dominate\n"
      "cross-role similarity (plastic surgery viable), and donor\n"
      "availability bounds how often restore-from-donor templates apply.");
  return 0;
}
