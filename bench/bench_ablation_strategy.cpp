// Ablation (paper §4.2, "generation strategy"): template-guided random
// search vs brute-force application of every applicable template to every
// suspicious line. Brute force explores a larger forest per iteration (more
// validations); search keeps the per-iteration cost near-constant.
//
// Usage: bench_ablation_strategy [incidents] [seed]
#include <cstdlib>

#include "bench/util.hpp"
#include "core/acr.hpp"

int main(int argc, char** argv) {
  const int incidents = argc > 1 ? std::atoi(argv[1]) : 40;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 3;

  std::printf("generation-strategy ablation over %d incidents (seed %llu)\n",
              incidents, static_cast<unsigned long long>(seed));

  acr::bench::Table table({"Strategy", "Repaired", "Avg iterations",
                           "Avg validations", "Forest leaves", "Avg ms"},
                          {16, 10, 16, 17, 15, 10});
  table.printHeader();
  struct Mode {
    const char* label;
    bool brute_force;
    bool history;
  };
  for (const Mode mode : {Mode{"search", false, false},
                          Mode{"search+history", false, true},
                          Mode{"brute-force", true, false}}) {
    acr::CampaignOptions options;
    options.incidents = incidents;
    options.seed = seed;
    options.repair.brute_force = mode.brute_force;
    options.share_history = mode.history;
    const acr::CampaignResult campaign = acr::runCampaign(options);
    long iterations = 0;
    long validations = 0;
    long leaves = 0;
    double ms = 0;
    int repaired = 0;
    for (const auto& record : campaign.records) {
      if (record.repair.success) ++repaired;
      iterations += record.repair.iterations;
      validations += static_cast<long>(record.repair.validations);
      leaves += static_cast<long>(record.repair.search_space);
      ms += record.repair.elapsed_ms;
    }
    const double n = std::max<std::size_t>(campaign.records.size(), 1);
    table.printRow({mode.label,
                    std::to_string(repaired) + "/" +
                        std::to_string(campaign.records.size()),
                    acr::bench::fmt(iterations / n, 2),
                    acr::bench::fmt(validations / n, 1),
                    acr::bench::fmt(leaves / n, 1),
                    acr::bench::fmt(ms / n, 1)});
  }
  table.printRule();
  return 0;
}
