// Throughput/latency of the repair service under concurrent load.
//
// Drives an in-process RepairService through its TCP front end with 1, 4
// and 16 blocking clients, with and without the snapshot cache, measuring
// requests/s and per-request p50/p99. Each request is a `submit` with
// "wait":true of the figure2-faulty verify (the cache's best case: a hit
// skips parse + simulate + verify entirely) — so the with/without-cache
// delta is exactly the snapshot cache's value.
//
//   bench_service_throughput [--requests N] [--json]
//
// --json appends a machine-readable dump after the tables (one object per
// configuration) for plotting / regression tracking.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench/util.hpp"
#include "core/acr.hpp"
#include "core/serialization.hpp"
#include "service/client.hpp"
#include "service/server.hpp"
#include "util/metrics.hpp"

namespace {

using namespace acr;

struct RunResult {
  int clients = 0;
  bool cache = false;
  int requests = 0;
  double elapsed_s = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double hit_rate = 0;

  [[nodiscard]] double throughput() const {
    return elapsed_s > 0 ? requests / elapsed_s : 0;
  }
};

double percentile(std::vector<double>& sorted_ms, double q) {
  if (sorted_ms.empty()) return 0;
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted_ms.size() - 1));
  return sorted_ms[rank];
}

RunResult runOnce(const std::string& scenario_dir, int clients, bool cache,
                  int requests) {
  util::MetricsRegistry metrics;
  service::ServiceOptions options;
  options.scheduler.queue_limit = 4 * requests;  // measure latency, not rejects
  options.cache_enabled = cache;
  options.metrics = &metrics;
  service::RepairService repair_service(options);
  service::TcpServer server(repair_service, {});
  std::thread serve_thread([&] { server.serve(); });

  std::vector<std::vector<double>> latencies(
      static_cast<std::size_t>(clients));
  std::atomic<int> remaining{requests};
  const auto start = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      workers.emplace_back([&, c] {
        service::Client client("127.0.0.1", server.port());
        service::Json request;
        request.set("op", "submit");
        request.set("dir", scenario_dir);
        request.set("command", "verify");
        request.set("wait", true);
        while (remaining.fetch_sub(1) > 0) {
          const auto before = std::chrono::steady_clock::now();
          const service::Json response = client.call(request);
          const auto after = std::chrono::steady_clock::now();
          const service::Json* ok = response.find("ok");
          if (ok == nullptr || !ok->asBool()) {
            std::fprintf(stderr, "request failed: %s\n",
                         response.str().c_str());
            std::exit(1);
          }
          latencies[static_cast<std::size_t>(c)].push_back(
              std::chrono::duration<double, std::milli>(after - before)
                  .count());
        }
      });
    }
    for (auto& worker : workers) worker.join();
  }
  const auto end = std::chrono::steady_clock::now();

  server.stop();
  serve_thread.join();
  repair_service.drain();

  RunResult result;
  result.clients = clients;
  result.cache = cache;
  result.elapsed_s = std::chrono::duration<double>(end - start).count();
  std::vector<double> all;
  for (const auto& per_client : latencies) {
    all.insert(all.end(), per_client.begin(), per_client.end());
  }
  result.requests = static_cast<int>(all.size());
  std::sort(all.begin(), all.end());
  result.p50_ms = percentile(all, 0.50);
  result.p99_ms = percentile(all, 0.99);
  result.hit_rate = repair_service.cache().stats().hitRate();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  int requests = 200;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
      requests = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else {
      std::fprintf(stderr,
                   "usage: bench_service_throughput [--requests N] [--json]\n");
      return 2;
    }
  }

  const std::filesystem::path scratch =
      std::filesystem::temp_directory_path() /
      ("acr_bench_service_" + std::to_string(::getpid()));
  std::filesystem::create_directories(scratch);
  saveScenario(figure2Scenario(true), scratch.string());

  bench::section("service throughput: remote verify of figure2-faulty, " +
                 std::to_string(requests) + " requests per configuration");
  bench::Table table({"clients", "cache", "req/s", "p50 ms", "p99 ms",
                      "cache hit rate"});
  table.printHeader();
  std::vector<RunResult> results;
  for (const bool cache : {false, true}) {
    for (const int clients : {1, 4, 16}) {
      const RunResult result =
          runOnce(scratch.string(), clients, cache, requests);
      results.push_back(result);
      table.printRow({std::to_string(result.clients),
                      result.cache ? "on" : "off",
                      bench::fmt(result.throughput(), 0),
                      bench::fmt(result.p50_ms, 3),
                      bench::fmt(result.p99_ms, 3),
                      result.cache ? bench::pct(result.hit_rate) : "-"});
    }
  }
  table.printRule();

  if (json) {
    std::puts("");
    std::puts("[");
    for (std::size_t i = 0; i < results.size(); ++i) {
      const RunResult& r = results[i];
      std::printf("  {\"clients\": %d, \"cache\": %s, \"requests\": %d, "
                  "\"throughput_rps\": %.1f, \"p50_ms\": %.3f, "
                  "\"p99_ms\": %.3f, \"cache_hit_rate\": %.3f}%s\n",
                  r.clients, r.cache ? "true" : "false", r.requests,
                  r.throughput(), r.p50_ms, r.p99_ms, r.hit_rate,
                  i + 1 < results.size() ? "," : "");
    }
    std::puts("]");
  }

  std::filesystem::remove_all(scratch);
  return 0;
}
