// Incident campaigns: sample faults with the Table-1 distribution, inject
// them into fresh scenarios, repair with ACR, and record everything the
// benches need (per-type success, iteration counts, resolving time,
// verifier work). This is the synthetic stand-in for the paper's study of
// 100+ production incidents.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/scenarios.hpp"
#include "faultinject/faults.hpp"
#include "repair/engine.hpp"

namespace acr {

struct CampaignOptions {
  int incidents = 100;
  std::uint64_t seed = 42;
  repair::RepairOptions repair;
  int dcn_pods = 3;
  int dcn_tors = 2;
  int backbone_n = 8;
  /// Re-sampling attempts when an injection yields no intent violation.
  int max_attempts_per_incident = 8;
  /// Share one fix::RepairHistory across all incidents (§3.2 obs. 1): later
  /// repairs are guided by the templates that resolved earlier ones.
  /// Inherently order-dependent, so it forces sequential execution (`jobs`
  /// is ignored).
  bool share_history = false;
  /// Worker threads for the incident fan-out; 0 = hardware concurrency.
  /// Every incident owns its scenario, verifier state and RNG streams
  /// (split deterministically from `seed`), so the resulting records are
  /// identical — not just statistically equivalent — at any `jobs` value;
  /// only wall-clock changes.
  int jobs = 0;
};

struct IncidentRecord {
  inject::FaultType type = inject::FaultType::kMissingRedistribution;
  std::string scenario;
  std::string description;
  int injected_lines = 0;
  bool violated = false;  // the fault produced at least one failing test
  repair::RepairResult repair;  // meaningful only when `violated`
};

struct CampaignResult {
  std::vector<IncidentRecord> records;

  [[nodiscard]] int violatedCount() const;
  [[nodiscard]] int repairedCount() const;
};

[[nodiscard]] CampaignResult runCampaign(const CampaignOptions& options);

/// Repairs one network against an intent spec (facade used by examples).
[[nodiscard]] repair::RepairResult repairNetwork(
    const topo::Network& faulty, const std::vector<verify::Intent>& intents,
    const repair::RepairOptions& options = {});

}  // namespace acr
