#include "core/serialization.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace acr {

namespace {

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream stream(line);
  std::string token;
  while (stream >> token) tokens.push_back(token);
  return tokens;
}

void writeFile(const std::filesystem::path& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path.string());
  out << content;
}

std::string readFile(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read " + path.string());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

net::Prefix parsePrefixOrThrow(const std::string& token, int line_no) {
  const auto prefix = net::Prefix::parse(token);
  if (!prefix || token.find('/') == std::string::npos) {
    throw std::runtime_error("line " + std::to_string(line_no) +
                             ": malformed prefix '" + token + "'");
  }
  return *prefix;
}

net::Ipv4Address parseAddressOrThrow(const std::string& token, int line_no) {
  const auto address = net::Ipv4Address::parse(token);
  if (!address) {
    throw std::runtime_error("line " + std::to_string(line_no) +
                             ": malformed address '" + token + "'");
  }
  return *address;
}

}  // namespace

std::string topologyToText(
    const topo::Topology& topology,
    const std::vector<topo::SubnetExpectation>& subnets) {
  std::string out = "# acr topology\n";
  for (const auto& router : topology.routers()) {
    out += "router " + router.name + ' ' + std::to_string(router.asn) + ' ' +
           router.router_id.str() + ' ' +
           (router.role.empty() ? "-" : router.role) + '\n';
  }
  for (const auto& link : topology.links()) {
    out += "link " + link.a + ' ' + link.b + ' ' + link.subnet.str() + '\n';
  }
  for (const auto& subnet : subnets) {
    out += "subnet " + subnet.router + ' ' + subnet.prefix.str() + ' ' +
           subnet.name;
    if (subnet.via_static) out += " static";
    if (subnet.quarantined) out += " quarantined";
    out += '\n';
  }
  return out;
}

void parseTopologyText(const std::string& text, topo::Topology& topology,
                       std::vector<topo::SubnetExpectation>& subnets) {
  std::istringstream stream(text);
  std::string line;
  int line_no = 0;
  while (std::getline(stream, line)) {
    ++line_no;
    const auto tokens = tokenize(line);
    if (tokens.empty() || tokens[0][0] == '#') continue;
    if (tokens[0] == "router" && tokens.size() == 5) {
      topo::RouterDecl router;
      router.name = tokens[1];
      router.asn = static_cast<std::uint32_t>(std::stoul(tokens[2]));
      router.router_id = parseAddressOrThrow(tokens[3], line_no);
      router.role = tokens[4] == "-" ? "" : tokens[4];
      topology.addRouter(router);
    } else if (tokens[0] == "link" && tokens.size() == 4) {
      topology.addLink(topo::LinkDecl{tokens[1], tokens[2],
                                      parsePrefixOrThrow(tokens[3], line_no)});
    } else if (tokens[0] == "subnet" && tokens.size() >= 4) {
      topo::SubnetExpectation subnet;
      subnet.router = tokens[1];
      subnet.prefix = parsePrefixOrThrow(tokens[2], line_no);
      subnet.name = tokens[3];
      for (std::size_t i = 4; i < tokens.size(); ++i) {
        if (tokens[i] == "static") {
          subnet.via_static = true;
        } else if (tokens[i] == "quarantined") {
          subnet.quarantined = true;
        } else {
          throw std::runtime_error("line " + std::to_string(line_no) +
                                   ": unknown subnet flag '" + tokens[i] + "'");
        }
      }
      topology.addSubnet(
          topo::SubnetDecl{subnet.router, subnet.prefix, subnet.name});
      subnets.push_back(std::move(subnet));
    } else {
      throw std::runtime_error("line " + std::to_string(line_no) +
                               ": unknown topology statement '" + tokens[0] +
                               "'");
    }
  }
}

std::string intentsToText(const std::vector<verify::Intent>& intents) {
  std::string out = "# acr intents\n";
  for (const auto& intent : intents) {
    out += verify::intentKindName(intent.kind) + ' ' + intent.name + ' ' +
           intent.space.src_space.str() + ' ' + intent.space.dst_space.str() +
           '\n';
  }
  return out;
}

std::vector<verify::Intent> parseIntentsText(const std::string& text) {
  std::vector<verify::Intent> intents;
  std::istringstream stream(text);
  std::string line;
  int line_no = 0;
  while (std::getline(stream, line)) {
    ++line_no;
    const auto tokens = tokenize(line);
    if (tokens.empty() || tokens[0][0] == '#') continue;
    if (tokens.size() != 4) {
      throw std::runtime_error("line " + std::to_string(line_no) +
                               ": intent expects <kind> <name> <src> <dst>");
    }
    verify::Intent intent;
    if (tokens[0] == "reachability") {
      intent.kind = verify::IntentKind::kReachability;
    } else if (tokens[0] == "isolation") {
      intent.kind = verify::IntentKind::kIsolation;
    } else if (tokens[0] == "loop-free") {
      intent.kind = verify::IntentKind::kLoopFree;
    } else if (tokens[0] == "blackhole-free") {
      intent.kind = verify::IntentKind::kBlackholeFree;
    } else {
      throw std::runtime_error("line " + std::to_string(line_no) +
                               ": unknown intent kind '" + tokens[0] + "'");
    }
    intent.name = tokens[1];
    intent.space.src_space = parsePrefixOrThrow(tokens[2], line_no);
    intent.space.dst_space = parsePrefixOrThrow(tokens[3], line_no);
    intents.push_back(std::move(intent));
  }
  return intents;
}

void saveScenario(const Scenario& scenario, const std::string& directory,
                  const SaveOptions& options) {
  const std::filesystem::path dir(directory);
  std::filesystem::create_directories(dir);
  writeFile(dir / "topology.acr",
            topologyToText(scenario.built.network.topology,
                           scenario.built.subnets));
  writeFile(dir / "intents.acr", intentsToText(scenario.intents));
  for (const auto& [name, device] : scenario.built.network.configs) {
    writeFile(dir / (name + ".cfg"), cfg::renderAs(device, options.dialect));
  }
}

Scenario loadScenario(const std::string& directory) {
  const std::filesystem::path dir(directory);
  Scenario scenario;
  scenario.name = dir.filename().string();
  parseTopologyText(readFile(dir / "topology.acr"),
                    scenario.built.network.topology, scenario.built.subnets);
  scenario.intents = parseIntentsText(readFile(dir / "intents.acr"));
  for (const auto& router : scenario.built.network.topology.routers()) {
    const std::string text = readFile(dir / (router.name + ".cfg"));
    scenario.built.network.configs[router.name] =
        cfg::parseAs(text, cfg::detectDialect(text));
  }
  return scenario;
}

}  // namespace acr
