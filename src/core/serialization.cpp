#include "core/serialization.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <sstream>
#include <stdexcept>

namespace acr {

namespace {

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream stream(line);
  std::string token;
  while (stream >> token) tokens.push_back(token);
  return tokens;
}

void writeFile(const std::filesystem::path& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path.string());
  out << content;
}

std::string readFile(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read " + path.string());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

net::Prefix parsePrefixOrThrow(const std::string& token, int line_no) {
  const auto prefix = net::Prefix::parse(token);
  if (!prefix || token.find('/') == std::string::npos) {
    throw std::runtime_error("line " + std::to_string(line_no) +
                             ": malformed prefix '" + token + "'");
  }
  return *prefix;
}

net::Ipv4Address parseAddressOrThrow(const std::string& token, int line_no) {
  const auto address = net::Ipv4Address::parse(token);
  if (!address) {
    throw std::runtime_error("line " + std::to_string(line_no) +
                             ": malformed address '" + token + "'");
  }
  return *address;
}

}  // namespace

std::string topologyToText(
    const topo::Topology& topology,
    const std::vector<topo::SubnetExpectation>& subnets) {
  std::string out = "# acr topology\n";
  for (const auto& router : topology.routers()) {
    out += "router " + router.name + ' ' + std::to_string(router.asn) + ' ' +
           router.router_id.str() + ' ' +
           (router.role.empty() ? "-" : router.role) + '\n';
  }
  for (const auto& link : topology.links()) {
    out += "link " + link.a + ' ' + link.b + ' ' + link.subnet.str() + '\n';
  }
  for (const auto& subnet : subnets) {
    out += "subnet " + subnet.router + ' ' + subnet.prefix.str() + ' ' +
           subnet.name;
    if (subnet.via_static) out += " static";
    if (subnet.quarantined) out += " quarantined";
    out += '\n';
  }
  return out;
}

void parseTopologyText(const std::string& text, topo::Topology& topology,
                       std::vector<topo::SubnetExpectation>& subnets) {
  std::istringstream stream(text);
  std::string line;
  int line_no = 0;
  while (std::getline(stream, line)) {
    ++line_no;
    const auto tokens = tokenize(line);
    if (tokens.empty() || tokens[0][0] == '#') continue;
    if (tokens[0] == "router" && tokens.size() == 5) {
      topo::RouterDecl router;
      router.name = tokens[1];
      router.asn = static_cast<std::uint32_t>(std::stoul(tokens[2]));
      router.router_id = parseAddressOrThrow(tokens[3], line_no);
      router.role = tokens[4] == "-" ? "" : tokens[4];
      topology.addRouter(router);
    } else if (tokens[0] == "link" && tokens.size() == 4) {
      topology.addLink(topo::LinkDecl{tokens[1], tokens[2],
                                      parsePrefixOrThrow(tokens[3], line_no)});
    } else if (tokens[0] == "subnet" && tokens.size() >= 4) {
      topo::SubnetExpectation subnet;
      subnet.router = tokens[1];
      subnet.prefix = parsePrefixOrThrow(tokens[2], line_no);
      subnet.name = tokens[3];
      for (std::size_t i = 4; i < tokens.size(); ++i) {
        if (tokens[i] == "static") {
          subnet.via_static = true;
        } else if (tokens[i] == "quarantined") {
          subnet.quarantined = true;
        } else {
          throw std::runtime_error("line " + std::to_string(line_no) +
                                   ": unknown subnet flag '" + tokens[i] + "'");
        }
      }
      topology.addSubnet(
          topo::SubnetDecl{subnet.router, subnet.prefix, subnet.name});
      subnets.push_back(std::move(subnet));
    } else {
      throw std::runtime_error("line " + std::to_string(line_no) +
                               ": unknown topology statement '" + tokens[0] +
                               "'");
    }
  }
}

std::string intentsToText(const std::vector<verify::Intent>& intents) {
  std::string out = "# acr intents\n";
  for (const auto& intent : intents) {
    out += verify::intentKindName(intent.kind) + ' ' + intent.name + ' ' +
           intent.space.src_space.str() + ' ' + intent.space.dst_space.str() +
           '\n';
  }
  return out;
}

std::vector<verify::Intent> parseIntentsText(const std::string& text) {
  std::vector<verify::Intent> intents;
  std::istringstream stream(text);
  std::string line;
  int line_no = 0;
  while (std::getline(stream, line)) {
    ++line_no;
    const auto tokens = tokenize(line);
    if (tokens.empty() || tokens[0][0] == '#') continue;
    if (tokens.size() != 4) {
      throw std::runtime_error("line " + std::to_string(line_no) +
                               ": intent expects <kind> <name> <src> <dst>");
    }
    verify::Intent intent;
    if (tokens[0] == "reachability") {
      intent.kind = verify::IntentKind::kReachability;
    } else if (tokens[0] == "isolation") {
      intent.kind = verify::IntentKind::kIsolation;
    } else if (tokens[0] == "loop-free") {
      intent.kind = verify::IntentKind::kLoopFree;
    } else if (tokens[0] == "blackhole-free") {
      intent.kind = verify::IntentKind::kBlackholeFree;
    } else {
      throw std::runtime_error("line " + std::to_string(line_no) +
                               ": unknown intent kind '" + tokens[0] + "'");
    }
    intent.name = tokens[1];
    intent.space.src_space = parsePrefixOrThrow(tokens[2], line_no);
    intent.space.dst_space = parsePrefixOrThrow(tokens[3], line_no);
    intents.push_back(std::move(intent));
  }
  return intents;
}

void saveScenario(const Scenario& scenario, const std::string& directory,
                  const SaveOptions& options) {
  const std::filesystem::path dir(directory);
  std::filesystem::create_directories(dir);
  writeFile(dir / "topology.acr",
            topologyToText(scenario.built.network.topology,
                           scenario.built.subnets));
  writeFile(dir / "intents.acr", intentsToText(scenario.intents));
  for (const auto& [name, device] : scenario.built.network.configs) {
    writeFile(dir / (name + ".cfg"), cfg::renderAs(device, options.dialect));
  }
}

namespace {

/// FNV-1a 64-bit, folding in the filename so that swapping two routers'
/// configs changes the fingerprint even when the byte multiset does not.
void hashChunk(std::uint64_t& hash, const std::string& label,
               const std::string& bytes) {
  const auto mix = [&hash](const char* data, std::size_t size) {
    for (std::size_t i = 0; i < size; ++i) {
      hash ^= static_cast<unsigned char>(data[i]);
      hash *= 0x100000001b3ULL;
    }
  };
  mix(label.data(), label.size());
  mix("\0", 1);
  mix(bytes.data(), bytes.size());
  mix("\0", 1);
}

/// Reads every scenario file (regular *.acr / *.cfg) in sorted filename
/// order, handing (filename, bytes) to `consume`. The shared walk behind
/// fingerprintScenarioDir and LoadScenario — one definition of "scenario
/// content" so the fingerprint can never drift from what gets parsed.
void forEachScenarioFile(
    const std::string& directory,
    const std::function<void(const std::string&, const std::string&)>&
        consume) {
  const std::filesystem::path dir(directory);
  if (!std::filesystem::is_directory(dir)) {
    throw std::runtime_error("not a scenario directory: " + directory);
  }
  std::vector<std::string> names;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string extension = entry.path().extension().string();
    if (extension == ".acr" || extension == ".cfg") {
      names.push_back(entry.path().filename().string());
    }
  }
  std::sort(names.begin(), names.end());
  for (const auto& name : names) {
    consume(name, readFile(dir / name));
  }
}

constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ULL;

}  // namespace

ScenarioFingerprint fingerprintScenarioDir(const std::string& directory) {
  ScenarioFingerprint fingerprint;
  fingerprint.hash = kFnvOffsetBasis;
  forEachScenarioFile(directory, [&fingerprint](const std::string& name,
                                                const std::string& bytes) {
    hashChunk(fingerprint.hash, name, bytes);
    fingerprint.bytes += bytes.size();
  });
  return fingerprint;
}

LoadedScenario LoadScenario(const std::string& directory) {
  LoadedScenario loaded;
  loaded.content_hash = kFnvOffsetBasis;
  Scenario& scenario = loaded.scenario;
  scenario.name = std::filesystem::path(directory).filename().string();

  std::map<std::string, std::string> files;
  forEachScenarioFile(directory, [&](const std::string& name,
                                     const std::string& bytes) {
    hashChunk(loaded.content_hash, name, bytes);
    loaded.content_bytes += bytes.size();
    files.emplace(name, bytes);
  });

  const auto required = [&files, &directory](
                            const std::string& name) -> const std::string& {
    const auto it = files.find(name);
    if (it == files.end()) {
      throw std::runtime_error("cannot read " + directory + "/" + name);
    }
    return it->second;
  };

  parseTopologyText(required("topology.acr"),
                    scenario.built.network.topology, scenario.built.subnets);
  scenario.intents = parseIntentsText(required("intents.acr"));
  for (const auto& router : scenario.built.network.topology.routers()) {
    const std::string& text = required(router.name + ".cfg");
    scenario.built.network.configs[router.name] =
        cfg::parseAs(text, cfg::detectDialect(text));
  }
  return loaded;
}

Scenario loadScenario(const std::string& directory) {
  return LoadScenario(directory).scenario;
}

}  // namespace acr
