// Scenario = generated network + the operator intent specification derived
// from its subnet expectations. This is the level benches and examples work
// at: build a scenario, inject a fault, repair, measure.
#pragma once

#include <string>
#include <vector>

#include "topo/generators.hpp"
#include "verify/intent.hpp"

namespace acr {

struct Scenario {
  std::string name;
  topo::BuiltNetwork built;
  std::vector<verify::Intent> intents;

  [[nodiscard]] const topo::Network& network() const { return built.network; }
};

/// Derives the intent specification from a built network's subnet
/// expectations (§4.1: "the specifications ... already cover most errors of
/// interest"):
///   * reachability: every subnet to/from a hub subnet, consecutive subnet
///     pairs, and every subnet to the first VIP range;
///   * loop- and blackhole-freedom towards every subnet;
///   * isolation of every quarantined subnet from every other subnet.
[[nodiscard]] std::vector<verify::Intent> buildIntents(
    const topo::BuiltNetwork& built);

[[nodiscard]] Scenario figure2Scenario(bool faulty = false);
[[nodiscard]] Scenario dcnScenario(int pods, int tors_per_pod);
[[nodiscard]] Scenario backboneScenario(int n);

/// Scenario by family name ("figure2" | "dcn" | "backbone") with default
/// sizes — the fault catalog names its preferred family this way.
[[nodiscard]] Scenario scenarioByFamily(const std::string& family,
                                        int dcn_pods = 3, int dcn_tors = 2,
                                        int backbone_n = 8);

}  // namespace acr
