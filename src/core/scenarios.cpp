#include "core/scenarios.hpp"

namespace acr {

namespace {

verify::Intent makeIntent(verify::IntentKind kind, const std::string& name,
                          const net::Prefix& src, const net::Prefix& dst) {
  verify::Intent intent;
  intent.kind = kind;
  intent.name = name;
  intent.space.src_space = src;
  intent.space.dst_space = dst;
  return intent;
}

}  // namespace

std::vector<verify::Intent> buildIntents(const topo::BuiltNetwork& built) {
  std::vector<verify::Intent> intents;
  std::vector<const topo::SubnetExpectation*> open;
  std::vector<const topo::SubnetExpectation*> quarantined;
  const topo::SubnetExpectation* vip = nullptr;
  for (const auto& subnet : built.subnets) {
    if (subnet.quarantined) {
      quarantined.push_back(&subnet);
    } else {
      open.push_back(&subnet);
      if (vip == nullptr && subnet.via_static) vip = &subnet;
    }
  }
  if (open.empty()) return intents;
  const topo::SubnetExpectation* hub = open.front();

  for (const auto* subnet : open) {
    if (subnet != hub) {
      intents.push_back(makeIntent(verify::IntentKind::kReachability,
                                   subnet->name + "->" + hub->name,
                                   subnet->prefix, hub->prefix));
      intents.push_back(makeIntent(verify::IntentKind::kReachability,
                                   hub->name + "->" + subnet->name,
                                   hub->prefix, subnet->prefix));
    }
    if (vip != nullptr && subnet != vip) {
      intents.push_back(makeIntent(verify::IntentKind::kReachability,
                                   subnet->name + "->" + vip->name,
                                   subnet->prefix, vip->prefix));
    }
    intents.push_back(makeIntent(verify::IntentKind::kLoopFree,
                                 "loopfree:" + subnet->name, hub->prefix,
                                 subnet->prefix));
    intents.push_back(makeIntent(verify::IntentKind::kBlackholeFree,
                                 "blackholefree:" + subnet->name, hub->prefix,
                                 subnet->prefix));
  }
  for (std::size_t i = 0; i + 1 < open.size(); ++i) {
    intents.push_back(makeIntent(verify::IntentKind::kReachability,
                                 open[i]->name + "->" + open[i + 1]->name,
                                 open[i]->prefix, open[i + 1]->prefix));
  }
  for (const auto* q : quarantined) {
    for (const auto* subnet : open) {
      // A subnet on the quarantined range's own first-hop router reaches it
      // locally by construction; isolation is only meaningful across the
      // fabric.
      if (subnet->router == q->router) continue;
      intents.push_back(makeIntent(verify::IntentKind::kIsolation,
                                   subnet->name + "-x->" + q->name,
                                   subnet->prefix, q->prefix));
    }
  }
  return intents;
}

Scenario figure2Scenario(bool faulty) {
  Scenario scenario;
  scenario.name = faulty ? "figure2-faulty" : "figure2";
  scenario.built = faulty ? topo::buildFigure2Faulty() : topo::buildFigure2();
  scenario.intents = buildIntents(scenario.built);
  return scenario;
}

Scenario dcnScenario(int pods, int tors_per_pod) {
  Scenario scenario;
  scenario.name = "dcn-" + std::to_string(pods) + "x" +
                  std::to_string(tors_per_pod);
  scenario.built = topo::buildDcn(pods, tors_per_pod);
  scenario.intents = buildIntents(scenario.built);
  return scenario;
}

Scenario backboneScenario(int n) {
  Scenario scenario;
  scenario.name = "backbone-" + std::to_string(n);
  scenario.built = topo::buildBackbone(n);
  scenario.intents = buildIntents(scenario.built);
  return scenario;
}

Scenario scenarioByFamily(const std::string& family, int dcn_pods,
                          int dcn_tors, int backbone_n) {
  if (family == "figure2") return figure2Scenario(/*faulty=*/false);
  if (family == "backbone") return backboneScenario(backbone_n);
  return dcnScenario(dcn_pods, dcn_tors);
}

}  // namespace acr
