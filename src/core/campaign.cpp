#include "core/campaign.hpp"

#include "verify/verifier.hpp"

namespace acr {

int CampaignResult::violatedCount() const {
  int count = 0;
  for (const auto& record : records) {
    if (record.violated) ++count;
  }
  return count;
}

int CampaignResult::repairedCount() const {
  int count = 0;
  for (const auto& record : records) {
    if (record.violated && record.repair.success) ++count;
  }
  return count;
}

CampaignResult runCampaign(const CampaignOptions& options) {
  CampaignResult campaign;
  inject::FaultInjector injector(options.seed);
  std::shared_ptr<fix::RepairHistory> history;
  if (options.share_history) history = std::make_shared<fix::RepairHistory>();

  for (int i = 0; i < options.incidents; ++i) {
    IncidentRecord record;
    bool have_incident = false;
    for (int attempt = 0;
         attempt < options.max_attempts_per_incident && !have_incident;
         ++attempt) {
      const inject::FaultType type = injector.sampleType();
      const inject::FaultSpec& spec = inject::specOf(type);
      Scenario scenario = scenarioByFamily(spec.scenario, options.dcn_pods,
                                           options.dcn_tors,
                                           options.backbone_n);
      const auto incident = injector.inject(scenario.built, type);
      if (!incident) continue;

      const verify::Verifier verifier(scenario.intents,
                                      options.repair.sim_options);
      const verify::VerifyResult verdict = verifier.verify(
          incident->network, options.repair.samples_per_intent);
      if (verdict.tests_failed == 0) continue;  // masked by redundancy

      record.type = type;
      record.scenario = scenario.name;
      record.description = incident->description;
      record.injected_lines = incident->changed_lines;
      record.violated = true;

      repair::RepairOptions repair_options = options.repair;
      repair_options.seed = options.seed + static_cast<std::uint64_t>(i);
      if (history != nullptr) repair_options.history = history;
      const repair::AcrEngine engine(scenario.intents, repair_options);
      record.repair = engine.repair(incident->network);
      have_incident = true;
    }
    if (have_incident) campaign.records.push_back(std::move(record));
  }
  return campaign;
}

repair::RepairResult repairNetwork(const topo::Network& faulty,
                                   const std::vector<verify::Intent>& intents,
                                   const repair::RepairOptions& options) {
  return repair::AcrEngine(intents, options).repair(faulty);
}

}  // namespace acr
