#include "core/campaign.hpp"

#include <algorithm>
#include <optional>

#include "util/metrics.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "verify/verifier.hpp"

namespace acr {

int CampaignResult::violatedCount() const {
  int count = 0;
  for (const auto& record : records) {
    if (record.violated) ++count;
  }
  return count;
}

int CampaignResult::repairedCount() const {
  int count = 0;
  for (const auto& record : records) {
    if (record.violated && record.repair.success) ++count;
  }
  return count;
}

namespace {

/// One incident, fully self-contained. Every random draw comes from streams
/// split from (seed, index) — stream 2*index drives fault sampling and
/// injection, stream 2*index+1 drives the repair search — so the returned
/// record is a pure function of (options, index), never of worker count or
/// scheduling order. That is the campaign's determinism contract.
std::optional<IncidentRecord> runIncident(
    const CampaignOptions& options, int index,
    const std::shared_ptr<fix::RepairHistory>& history) {
  util::MetricsRegistry& metrics = util::MetricsRegistry::global();
  inject::FaultInjector injector(
      util::streamSeed(options.seed, 2 * static_cast<std::uint64_t>(index)));

  for (int attempt = 0; attempt < options.max_attempts_per_incident;
       ++attempt) {
    const inject::FaultType type = injector.sampleType();
    const inject::FaultSpec& spec = inject::specOf(type);
    Scenario scenario = scenarioByFamily(spec.scenario, options.dcn_pods,
                                         options.dcn_tors, options.backbone_n);
    const auto incident = injector.inject(scenario.built, type);
    if (!incident) continue;

    const verify::Verifier verifier(scenario.intents,
                                    options.repair.sim_options);
    const verify::VerifyResult verdict = verifier.verify(
        incident->network, options.repair.samples_per_intent);
    if (verdict.tests_failed == 0) {  // masked by redundancy
      metrics.counter("campaign.masked_attempts").add(1);
      continue;
    }

    IncidentRecord record;
    record.type = type;
    record.scenario = scenario.name;
    record.description = incident->description;
    record.injected_lines = incident->changed_lines;
    record.violated = true;

    repair::RepairOptions repair_options = options.repair;
    repair_options.seed = util::streamSeed(
        options.seed, 2 * static_cast<std::uint64_t>(index) + 1);
    if (history != nullptr) repair_options.history = history;
    const repair::AcrEngine engine(scenario.intents, repair_options);
    record.repair = engine.repair(incident->network);
    return record;
  }
  return std::nullopt;
}

}  // namespace

CampaignResult runCampaign(const CampaignOptions& options) {
  util::MetricsRegistry& metrics = util::MetricsRegistry::global();
  std::shared_ptr<fix::RepairHistory> history;
  if (options.share_history) history = std::make_shared<fix::RepairHistory>();
  // Shared history makes incident i's template draws depend on the repairs
  // of incidents < i — inherently sequential.
  const int jobs = history != nullptr ? 1 : util::resolveJobs(options.jobs);

  // Each worker writes only its own slot; the records are assembled in
  // incident order afterwards, so the result is scheduling-independent.
  std::vector<std::optional<IncidentRecord>> slots(
      static_cast<std::size_t>(std::max(0, options.incidents)));
  util::Histogram& incident_ms = metrics.histogram("campaign.incident_ms");
  util::parallelFor(jobs, static_cast<int>(slots.size()), [&](int index) {
    const util::ScopedTimer timer(incident_ms);
    slots[static_cast<std::size_t>(index)] =
        runIncident(options, index, history);
  });

  CampaignResult campaign;
  campaign.records.reserve(slots.size());
  for (auto& slot : slots) {
    if (slot.has_value()) campaign.records.push_back(std::move(*slot));
  }
  metrics.counter("campaign.incidents").add(campaign.records.size());
  metrics.counter("campaign.violated")
      .add(static_cast<std::uint64_t>(campaign.violatedCount()));
  metrics.counter("campaign.repaired")
      .add(static_cast<std::uint64_t>(campaign.repairedCount()));
  return campaign;
}

repair::RepairResult repairNetwork(const topo::Network& faulty,
                                   const std::vector<verify::Intent>& intents,
                                   const repair::RepairOptions& options) {
  return repair::AcrEngine(intents, options).repair(faulty);
}

}  // namespace acr
