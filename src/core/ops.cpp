#include "core/ops.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>

#include "core/campaign.hpp"
#include "repair/report.hpp"

namespace acr::ops {

namespace {

void appendf(std::string& out, const char* format, ...)
    __attribute__((format(printf, 2, 3)));

void appendf(std::string& out, const char* format, ...) {
  char buffer[1024];
  va_list args;
  va_start(args, format);
  const int written = std::vsnprintf(buffer, sizeof(buffer), format, args);
  va_end(args);
  if (written > 0) out.append(buffer, std::min<std::size_t>(
                                  static_cast<std::size_t>(written),
                                  sizeof(buffer) - 1));
}

}  // namespace

bool verifyOk(const route::SimResult& sim,
              const verify::VerifyResult& result) {
  return result.ok() && sim.converged;
}

std::string renderVerifyText(const Scenario& scenario,
                             const route::SimResult& sim,
                             const verify::VerifyResult& result) {
  std::string out;
  appendf(out, "control plane: %s (%d rounds)\n",
          sim.converged ? "converged" : "NOT CONVERGED", sim.rounds);
  for (const auto& prefix : sim.flapping) {
    appendf(out, "  route flapping: %s\n", prefix.str().c_str());
  }
  for (const auto& session : sim.sessions) {
    if (!session.up) {
      appendf(out, "  session DOWN %s-%s: %s\n", session.a.c_str(),
              session.b.c_str(), session.down_reason.c_str());
    }
  }
  appendf(out, "%d/%d tests failing\n", result.tests_failed,
          result.tests_run);
  for (const auto* failure : result.failures()) {
    appendf(out, "  FAIL %s -- %s\n",
            scenario.intents[failure->test.intent_index].str().c_str(),
            failure->reason.c_str());
  }
  return out;
}

VerifyOutcome verifyScenario(const Scenario& scenario) {
  VerifyOutcome outcome;
  outcome.sim = route::Simulator(scenario.network()).run();
  const verify::Verifier verifier(scenario.intents, route::SimOptions{});
  outcome.result = verifier.verify(scenario.network());
  outcome.text = renderVerifyText(scenario, outcome.sim, outcome.result);
  outcome.ok = verifyOk(outcome.sim, outcome.result);
  return outcome;
}

RepairOutcome repairScenario(const Scenario& scenario,
                             const repair::RepairOptions& options,
                             bool report) {
  RepairOutcome outcome;
  outcome.result =
      repairNetwork(scenario.network(), scenario.intents, options);
  if (report) {
    outcome.text = repair::renderReport(outcome.result);
  } else {
    outcome.text = outcome.result.summary() + '\n';
    for (const auto& diff : outcome.result.diff) outcome.text += diff.str();
  }
  return outcome;
}

}  // namespace acr::ops
