#include "core/ops.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>

#include "core/campaign.hpp"
#include "repair/report.hpp"

namespace acr::ops {

namespace {

void appendf(std::string& out, const char* format, ...)
    __attribute__((format(printf, 2, 3)));

void appendf(std::string& out, const char* format, ...) {
  char buffer[1024];
  va_list args;
  va_start(args, format);
  const int written = std::vsnprintf(buffer, sizeof(buffer), format, args);
  va_end(args);
  if (written > 0) out.append(buffer, std::min<std::size_t>(
                                  static_cast<std::size_t>(written),
                                  sizeof(buffer) - 1));
}

}  // namespace

bool verifyOk(const route::SimResult& sim,
              const verify::VerifyResult& result) {
  return result.ok() && sim.converged;
}

std::string renderVerifyText(const Scenario& scenario,
                             const route::SimResult& sim,
                             const verify::VerifyResult& result) {
  std::string out;
  appendf(out, "control plane: %s (%d rounds)\n",
          sim.converged ? "converged" : "NOT CONVERGED", sim.rounds);
  for (const auto& prefix : sim.flapping) {
    appendf(out, "  route flapping: %s\n", prefix.str().c_str());
  }
  for (const auto& session : sim.sessions) {
    if (!session.up) {
      appendf(out, "  session DOWN %s-%s: %s\n", session.a.c_str(),
              session.b.c_str(), session.down_reason.c_str());
    }
  }
  appendf(out, "%d/%d tests failing\n", result.tests_failed,
          result.tests_run);
  for (const auto* failure : result.failures()) {
    appendf(out, "  FAIL %s -- %s\n",
            scenario.intents[failure->test.intent_index].str().c_str(),
            failure->reason.c_str());
  }
  return out;
}

VerifyOutcome verifyScenario(const Scenario& scenario) {
  VerifyOutcome outcome;
  outcome.sim = route::Simulator(scenario.network()).run();
  const verify::Verifier verifier(scenario.intents, route::SimOptions{});
  outcome.result = verifier.verify(scenario.network());
  outcome.text = renderVerifyText(scenario, outcome.sim, outcome.result);
  outcome.ok = verifyOk(outcome.sim, outcome.result);
  return outcome;
}

util::Json repairOptionsJson(const repair::RepairOptions& options) {
  util::Json json{util::Json::Object{}};
  json.set("metric", util::Json(sbfl::metricName(options.metric)));
  json.set("max_iterations", util::Json(options.max_iterations));
  json.set("top_k_lines", util::Json(options.top_k_lines));
  json.set("max_candidates", util::Json(options.max_candidates));
  json.set("max_proposals_per_line",
           util::Json(options.max_proposals_per_line));
  json.set("samples_per_intent", util::Json(options.samples_per_intent));
  json.set("seed", util::Json(static_cast<std::uint64_t>(options.seed)));
  json.set("use_incremental", util::Json(options.use_incremental));
  json.set("batch_validate", util::Json(options.batch_validate));
  json.set("brute_force", util::Json(options.brute_force));
  json.set("use_crossover", util::Json(options.use_crossover));
  json.set("crossover_pairs", util::Json(options.crossover_pairs));
  json.set("coverage_guided_tests",
           util::Json(options.coverage_guided_tests));
  json.set("multipath", util::Json(options.multipath));
  json.set("tolerance_k", util::Json(options.tolerance_k));
  json.set("tolerance_max_scenarios",
           util::Json(options.tolerance_max_scenarios));
  json.set("symbolic", util::Json(options.symbolic));
  // Fixed-precision string (like recorded scores) so the rendering can
  // never drift between platforms.
  char suspicion[32];
  std::snprintf(suspicion, sizeof(suspicion), "%.6f",
                options.symbolic_suspicion);
  json.set("symbolic_suspicion", util::Json(std::string(suspicion)));
  json.set("symbolic_max_variables",
           util::Json(options.symbolic_max_variables));
  json.set("symbolic_fork_budget", util::Json(options.symbolic_fork_budget));
  // validate_jobs is deliberately absent: it is a wall-clock knob with no
  // effect on results or recording events, and including it would break the
  // "recordings are byte-identical at any --jobs value" contract.
  return json;
}

repair::RepairOptions repairOptionsFromJson(const util::Json& json) {
  repair::RepairOptions options;
  const auto intField = [&json](const char* key, int fallback) {
    const util::Json* value = json.find(key);
    return value != nullptr ? static_cast<int>(value->asInt(fallback))
                            : fallback;
  };
  const auto boolField = [&json](const char* key, bool fallback) {
    const util::Json* value = json.find(key);
    return value != nullptr ? value->asBool(fallback) : fallback;
  };
  if (const util::Json* metric = json.find("metric")) {
    if (const auto parsed = sbfl::metricByName(metric->asString())) {
      options.metric = *parsed;
    }
  }
  options.max_iterations = intField("max_iterations", options.max_iterations);
  options.top_k_lines = intField("top_k_lines", options.top_k_lines);
  options.max_candidates = intField("max_candidates", options.max_candidates);
  options.max_proposals_per_line =
      intField("max_proposals_per_line", options.max_proposals_per_line);
  options.samples_per_intent =
      intField("samples_per_intent", options.samples_per_intent);
  if (const util::Json* seed = json.find("seed")) {
    options.seed = seed->asUint(options.seed);
  }
  options.use_incremental =
      boolField("use_incremental", options.use_incremental);
  options.batch_validate = boolField("batch_validate", options.batch_validate);
  options.brute_force = boolField("brute_force", options.brute_force);
  options.use_crossover = boolField("use_crossover", options.use_crossover);
  options.crossover_pairs =
      intField("crossover_pairs", options.crossover_pairs);
  options.coverage_guided_tests =
      boolField("coverage_guided_tests", options.coverage_guided_tests);
  options.multipath = boolField("multipath", options.multipath);
  options.tolerance_k = intField("tolerance_k", options.tolerance_k);
  options.tolerance_max_scenarios =
      intField("tolerance_max_scenarios", options.tolerance_max_scenarios);
  options.symbolic = boolField("symbolic", options.symbolic);
  if (const util::Json* suspicion = json.find("symbolic_suspicion")) {
    if (suspicion->kind() == util::Json::Kind::kString) {
      try {
        options.symbolic_suspicion = std::stod(suspicion->asString());
      } catch (...) {
        // keep the default on malformed input
      }
    }
  }
  options.symbolic_max_variables =
      intField("symbolic_max_variables", options.symbolic_max_variables);
  options.symbolic_fork_budget =
      intField("symbolic_fork_budget", options.symbolic_fork_budget);
  return options;
}

RepairOutcome repairScenario(const Scenario& scenario,
                             const repair::RepairOptions& options,
                             bool report) {
  RepairOutcome outcome;
  outcome.result =
      repairNetwork(scenario.network(), scenario.intents, options);
  if (report) {
    outcome.text = repair::renderReport(outcome.result);
  } else {
    outcome.text = outcome.result.summary() + '\n';
    for (const auto& diff : outcome.result.diff) outcome.text += diff.str();
  }
  return outcome;
}

}  // namespace acr::ops
