// Shared offline operations: the exact verify/repair text (and success
// verdicts) that `acrctl` prints, factored out so the repair service can
// produce byte-identical results. The service's determinism contract —
// a remote `submit` returns the same bytes as the equivalent offline
// `acrctl verify`/`acrctl repair` run — holds by construction because both
// paths call these helpers; the stress test and the acrd smoke script
// additionally check it end to end.
#pragma once

#include <string>

#include "core/scenarios.hpp"
#include "repair/engine.hpp"
#include "routing/simulator.hpp"
#include "util/json.hpp"
#include "verify/verifier.hpp"

namespace acr::ops {

/// True when every intent test passed AND the control plane converged —
/// the exit-code contract of `acrctl verify` (a diverging control plane is
/// a failure even if the sampled tests happen to pass).
[[nodiscard]] bool verifyOk(const route::SimResult& sim,
                            const verify::VerifyResult& result);

/// Renders the `acrctl verify` output from precomputed pieces (the
/// service's snapshot-cache hit path re-renders from cached state).
[[nodiscard]] std::string renderVerifyText(const Scenario& scenario,
                                           const route::SimResult& sim,
                                           const verify::VerifyResult& result);

struct VerifyOutcome {
  route::SimResult sim;
  verify::VerifyResult result;
  std::string text;  // exactly what `acrctl verify` prints
  bool ok = false;   // exit code 0 iff true
};

/// Simulates + verifies a scenario and renders the CLI text.
[[nodiscard]] VerifyOutcome verifyScenario(const Scenario& scenario);

struct RepairOutcome {
  repair::RepairResult result;
  std::string text;  // exactly what `acrctl repair [--report]` prints
};

/// Runs the repair engine and renders the CLI text (summary + diff, or the
/// markdown report when `report` is set).
[[nodiscard]] RepairOutcome repairScenario(const Scenario& scenario,
                                           const repair::RepairOptions& options,
                                           bool report = false);

/// The byte-affecting repair knobs as JSON — what a flight recording's
/// `begin` event embeds so `acrctl explain --replay` can reconstruct the
/// exact run. Round-trips with repairOptionsFromJson: FromJson(Json(o))
/// renders back to the same bytes. Deliberately excludes the knobs a replay
/// must not inherit: time_budget_ms and validate_jobs (wall-clock knobs —
/// leaving the latter out is what keeps recordings byte-identical at any
/// --jobs value), cancel/recorder/baseline_sim/history (pointers), and
/// sim_options (not reachable from the CLI; a recording made with
/// non-default sim options is not replayable).
[[nodiscard]] util::Json repairOptionsJson(const repair::RepairOptions& options);

/// Inverse of repairOptionsJson; fields absent from `json` keep their
/// RepairOptions defaults.
[[nodiscard]] repair::RepairOptions repairOptionsFromJson(
    const util::Json& json);

}  // namespace acr::ops
