// Umbrella header: the public API of the ACR library.
//
// Typical use (see examples/quickstart.cpp):
//
//   acr::Scenario scenario = acr::figure2Scenario(/*faulty=*/true);
//   acr::repair::RepairResult result =
//       acr::repairNetwork(scenario.network(), scenario.intents);
//   std::cout << result.summary();
#pragma once

#include "config/ast.hpp"
#include "config/cisco.hpp"
#include "config/diff.hpp"
#include "config/parser.hpp"
#include "core/campaign.hpp"
#include "core/scenarios.hpp"
#include "core/serialization.hpp"
#include "dataplane/trace.hpp"
#include "faultinject/faults.hpp"
#include "fixgen/change.hpp"
#include "fixgen/history.hpp"
#include "localize/coverage.hpp"
#include "localize/sbfl.hpp"
#include "localize/testgen.hpp"
#include "netcore/five_tuple.hpp"
#include "netcore/ipv4.hpp"
#include "netcore/prefix.hpp"
#include "netcore/prefix_trie.hpp"
#include "provenance/negative.hpp"
#include "provenance/provenance.hpp"
#include "repair/baselines.hpp"
#include "repair/engine.hpp"
#include "repair/report.hpp"
#include "repair/searchspace.hpp"
#include "routing/simulator.hpp"
#include "smt/solver.hpp"
#include "topo/generators.hpp"
#include "topo/network.hpp"
#include "verify/failures.hpp"
#include "verify/incremental.hpp"
#include "verify/verifier.hpp"
