// On-disk scenario format: a directory holding the topology, the intent
// specification and one configuration file per device. This is the exchange
// format of the `acrctl` CLI — export a generated scenario, edit configs
// with any tool (in either dialect), verify/triage/repair the result.
//
// Layout:
//   <dir>/topology.acr      router/link/subnet declarations
//   <dir>/intents.acr       one intent per line
//   <dir>/<router>.cfg      device configuration (huawei or cisco dialect)
//
// topology.acr grammar (line-oriented, '#' comments):
//   router <name> <asn> <router-id> <role>
//   link <a> <b> <subnet/len>
//   subnet <router> <prefix/len> <name> [static] [quarantined]
//
// intents.acr grammar:
//   reachability|isolation|loop-free|blackhole-free <name> <src/len> <dst/len>
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "config/cisco.hpp"
#include "core/scenarios.hpp"

namespace acr {

struct SaveOptions {
  cfg::Dialect dialect = cfg::Dialect::kHuawei;
};

/// Writes the scenario to `directory` (created if missing). Throws
/// std::runtime_error on I/O failure.
void saveScenario(const Scenario& scenario, const std::string& directory,
                  const SaveOptions& options = {});

/// Loads a scenario from `directory`. Config dialects are auto-detected per
/// file. Throws std::runtime_error (I/O, malformed topology/intents) or
/// cfg::ParseError (malformed configs).
[[nodiscard]] Scenario loadScenario(const std::string& directory);

/// Content fingerprint of a scenario directory: FNV-1a over the (filename,
/// bytes) of every regular `*.acr` / `*.cfg` file, in sorted filename
/// order. A pure function of the scenario bytes — two directories with
/// identical contents hash identically regardless of path or mtime, and a
/// one-byte config edit changes the hash. This is the key of the service's
/// snapshot cache; computing it needs no parsing, so a cache probe costs
/// one directory read.
struct ScenarioFingerprint {
  std::uint64_t hash = 0;
  std::uint64_t bytes = 0;  // total bytes hashed
};

[[nodiscard]] ScenarioFingerprint fingerprintScenarioDir(
    const std::string& directory);

/// A loaded scenario together with its content fingerprint.
struct LoadedScenario {
  Scenario scenario;
  std::uint64_t content_hash = 0;
  std::uint64_t content_bytes = 0;  // total bytes hashed
};

/// The one scenario-directory load path, shared by every `acrctl`
/// subcommand and the repair service: loads each file exactly once,
/// fingerprinting the bytes as they stream through the parsers. Same
/// failure modes as loadScenario(), plus a clearer error when `directory`
/// is missing or not a directory.
[[nodiscard]] LoadedScenario LoadScenario(const std::string& directory);

/// Serialization helpers (used by the loaders and tested directly).
[[nodiscard]] std::string topologyToText(const topo::Topology& topology,
                                         const std::vector<topo::SubnetExpectation>& subnets);
[[nodiscard]] std::string intentsToText(const std::vector<verify::Intent>& intents);
void parseTopologyText(const std::string& text, topo::Topology& topology,
                       std::vector<topo::SubnetExpectation>& subnets);
[[nodiscard]] std::vector<verify::Intent> parseIntentsText(const std::string& text);

}  // namespace acr
