// On-disk scenario format: a directory holding the topology, the intent
// specification and one configuration file per device. This is the exchange
// format of the `acrctl` CLI — export a generated scenario, edit configs
// with any tool (in either dialect), verify/triage/repair the result.
//
// Layout:
//   <dir>/topology.acr      router/link/subnet declarations
//   <dir>/intents.acr       one intent per line
//   <dir>/<router>.cfg      device configuration (huawei or cisco dialect)
//
// topology.acr grammar (line-oriented, '#' comments):
//   router <name> <asn> <router-id> <role>
//   link <a> <b> <subnet/len>
//   subnet <router> <prefix/len> <name> [static] [quarantined]
//
// intents.acr grammar:
//   reachability|isolation|loop-free|blackhole-free <name> <src/len> <dst/len>
#pragma once

#include <string>
#include <vector>

#include "config/cisco.hpp"
#include "core/scenarios.hpp"

namespace acr {

struct SaveOptions {
  cfg::Dialect dialect = cfg::Dialect::kHuawei;
};

/// Writes the scenario to `directory` (created if missing). Throws
/// std::runtime_error on I/O failure.
void saveScenario(const Scenario& scenario, const std::string& directory,
                  const SaveOptions& options = {});

/// Loads a scenario from `directory`. Config dialects are auto-detected per
/// file. Throws std::runtime_error (I/O, malformed topology/intents) or
/// cfg::ParseError (malformed configs).
[[nodiscard]] Scenario loadScenario(const std::string& directory);

/// Serialization helpers (used by the loaders and tested directly).
[[nodiscard]] std::string topologyToText(const topo::Topology& topology,
                                         const std::vector<topo::SubnetExpectation>& subnets);
[[nodiscard]] std::string intentsToText(const std::vector<verify::Intent>& intents);
void parseTopologyText(const std::string& text, topo::Topology& topology,
                       std::vector<topo::SubnetExpectation>& subnets);
[[nodiscard]] std::vector<verify::Intent> parseIntentsText(const std::string& text);

}  // namespace acr
