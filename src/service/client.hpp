// Blocking client for the acrd wire protocol (docs/service.md): one TCP
// connection, one request line out, one response line back per call().
// `acrctl remote` is a thin shell around this; tests and benches drive it
// directly.
#pragma once

#include <string>

#include "service/json.hpp"

namespace acr::service {

class Client {
 public:
  /// Connects immediately; throws std::runtime_error when acrd is not
  /// listening on host:port.
  Client(const std::string& host, int port);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Sends one request, blocks for its response line (a `submit` with
  /// "wait":true blocks until the job finished server-side). Throws
  /// std::runtime_error on connection loss or a malformed response.
  [[nodiscard]] Json call(const Json& request);

 private:
  int fd_ = -1;
  std::string buffer_;  // bytes past the last consumed response line
};

}  // namespace acr::service
