// Blocking client for the acrd wire protocol (docs/service.md): one TCP
// connection, one request line out, one response line back per call().
// `acrctl remote` is a thin shell around this; tests, benches and the
// fleet router drive it directly.
#pragma once

#include <string>

#include "service/json.hpp"

namespace acr::service {

struct ClientOptions {
  /// Give up connecting after this long (a dead node must not hang the
  /// caller — the fleet router polls many nodes). 0 = block forever.
  int connect_timeout_ms = 5000;
  /// Per-call() ceiling on waiting for response bytes. 0 = block forever:
  /// the right default, because a `submit` with "wait":true legitimately
  /// blocks for the whole repair. Set it for control-plane calls (stats,
  /// status) that should answer in milliseconds.
  int io_timeout_ms = 0;
};

class Client {
 public:
  /// Connects immediately; throws std::runtime_error when acrd is not
  /// listening on host:port or does not accept within connect_timeout_ms.
  Client(const std::string& host, int port, const ClientOptions& options = {});
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Sends one request, blocks for its response line (a `submit` with
  /// "wait":true blocks until the job finished server-side). Throws
  /// std::runtime_error on connection loss, a malformed response, or an
  /// io_timeout_ms overrun.
  [[nodiscard]] Json call(const Json& request);

 private:
  const ClientOptions options_;
  int fd_ = -1;
  std::string buffer_;  // bytes past the last consumed response line
};

}  // namespace acr::service
