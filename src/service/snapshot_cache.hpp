// Content-addressed snapshot cache.
//
// The key is the scenario directory's content fingerprint
// (core::LoadScenario's FNV-1a over topology.acr, intents.acr and the
// per-router configs), NOT its path: two directories with identical bytes
// share one entry, and editing a single config byte is simply a different
// key — there is no invalidation protocol to get wrong. A hit skips the
// expensive cold start a one-shot `acrctl` run pays every time: parsing
// every config, converging the control-plane simulation, and running the
// full intent suite to prime the incremental verifier's anchor state.
//
// Entries are immutable and shared (shared_ptr<const Snapshot>), so any
// number of concurrent jobs read one snapshot while the cache evicts
// others. Eviction is LRU under a configured byte budget, accounted in
// serialized scenario bytes (the fingerprinted size — stable across runs
// and cheap to know before parsing).
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/ops.hpp"
#include "core/serialization.hpp"
#include "routing/simulator.hpp"
#include "util/metrics.hpp"
#include "verify/verifier.hpp"

namespace acr::service {

/// Everything reusable about one scenario content: the parsed scenario,
/// the converged baseline simulation, and the baseline intent verdicts
/// (the incremental verifier's anchor state, reused across requests).
struct Snapshot {
  LoadedScenario loaded;
  route::SimResult baseline_sim;
  verify::VerifyResult baseline_verify;
  bool verify_ok = false;
  std::string verify_text;  // exactly what `acrctl verify` prints
};

struct SnapshotCacheOptions {
  std::uint64_t byte_budget = 256ull << 20;  // serialized scenario bytes
  /// Registry for service.cache_* counters; nullptr = process-global.
  util::MetricsRegistry* metrics = nullptr;
};

class SnapshotCache {
 public:
  using Options = SnapshotCacheOptions;

  explicit SnapshotCache(const Options& options = {});

  /// The cached snapshot for the directory's *current* content, loading
  /// and priming one on a miss. Fingerprints the directory on every call —
  /// reading bytes is cheap next to parse + simulate + verify — so a stale
  /// path simply hashes to a different (new) entry. Throws what
  /// core::LoadScenario throws on unreadable/malformed directories.
  [[nodiscard]] std::shared_ptr<const Snapshot> fetch(
      const std::string& directory);

  /// Cache lookup by fingerprint only (no filesystem access); nullptr on
  /// miss. Counts a hit, refreshes LRU.
  [[nodiscard]] std::shared_ptr<const Snapshot> lookup(std::uint64_t hash);

  /// Inserts (or replaces) a snapshot, then evicts least-recently-used
  /// entries until the byte budget holds (the newest entry always stays).
  void insert(std::shared_ptr<const Snapshot> snapshot);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t entries = 0;
    std::uint64_t bytes = 0;
    [[nodiscard]] double hitRate() const {
      const std::uint64_t total = hits + misses;
      return total == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(total);
    }
  };
  [[nodiscard]] Stats stats() const;

 private:
  void evictLockedPastBudget();

  const Options options_;
  util::MetricsRegistry& metrics_;

  mutable std::mutex mutex_;
  /// LRU order, most recent at the front.
  std::list<std::uint64_t> order_;
  struct Entry {
    std::shared_ptr<const Snapshot> snapshot;
    std::list<std::uint64_t>::iterator position;
  };
  std::unordered_map<std::uint64_t, Entry> entries_;
  std::uint64_t bytes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

/// Loads + primes a snapshot without a cache (the cache's miss path and
/// the `--no-cache` service mode share this).
[[nodiscard]] std::shared_ptr<const Snapshot> makeSnapshot(
    const std::string& directory);

}  // namespace acr::service
