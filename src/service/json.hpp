// Compatibility spelling: the JSON value moved to util/json.hpp so layers
// below the service (obs, tools) can use it without depending on the wire
// protocol. Service code keeps saying `service::Json`.
#pragma once

#include "util/json.hpp"

namespace acr::service {

using Json = ::acr::util::Json;

}  // namespace acr::service
