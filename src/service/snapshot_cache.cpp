#include "service/snapshot_cache.hpp"

namespace acr::service {

std::shared_ptr<const Snapshot> makeSnapshot(const std::string& directory) {
  auto snapshot = std::make_shared<Snapshot>();
  snapshot->loaded = LoadScenario(directory);
  ops::VerifyOutcome outcome = ops::verifyScenario(snapshot->loaded.scenario);
  snapshot->baseline_sim = std::move(outcome.sim);
  snapshot->baseline_verify = std::move(outcome.result);
  snapshot->verify_ok = outcome.ok;
  snapshot->verify_text = std::move(outcome.text);
  return snapshot;
}

SnapshotCache::SnapshotCache(const Options& options)
    : options_(options),
      metrics_(options.metrics != nullptr ? *options.metrics
                                          : util::MetricsRegistry::global()) {}

std::shared_ptr<const Snapshot> SnapshotCache::fetch(
    const std::string& directory) {
  const ScenarioFingerprint fingerprint = fingerprintScenarioDir(directory);
  if (std::shared_ptr<const Snapshot> hit = lookup(fingerprint.hash)) {
    return hit;
  }
  // Load outside the lock: parsing + priming is the expensive part and must
  // not serialize unrelated requests. Two racing misses on the same content
  // both load; the insert is idempotent (same key, equivalent value).
  std::shared_ptr<const Snapshot> snapshot = makeSnapshot(directory);
  insert(snapshot);
  return snapshot;
}

std::shared_ptr<const Snapshot> SnapshotCache::lookup(std::uint64_t hash) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(hash);
  if (it == entries_.end()) {
    ++misses_;
    metrics_.counter("service.cache_misses").add(1);
    return nullptr;
  }
  ++hits_;
  metrics_.counter("service.cache_hits").add(1);
  order_.erase(it->second.position);
  order_.push_front(hash);
  it->second.position = order_.begin();
  return it->second.snapshot;
}

void SnapshotCache::insert(std::shared_ptr<const Snapshot> snapshot) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t hash = snapshot->loaded.content_hash;
  const auto it = entries_.find(hash);
  if (it != entries_.end()) {  // racing miss: keep the existing entry fresh
    order_.erase(it->second.position);
    order_.push_front(hash);
    it->second.position = order_.begin();
    return;
  }
  order_.push_front(hash);
  entries_.emplace(hash,
                   Entry{std::move(snapshot), order_.begin()});
  bytes_ += entries_.at(hash).snapshot->loaded.content_bytes;
  evictLockedPastBudget();
}

void SnapshotCache::evictLockedPastBudget() {
  while (bytes_ > options_.byte_budget && order_.size() > 1) {
    const std::uint64_t victim = order_.back();
    order_.pop_back();
    const auto it = entries_.find(victim);
    bytes_ -= it->second.snapshot->loaded.content_bytes;
    entries_.erase(it);
    ++evictions_;
    metrics_.counter("service.cache_evictions").add(1);
  }
}

SnapshotCache::Stats SnapshotCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  Stats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.evictions = evictions_;
  stats.entries = entries_.size();
  stats.bytes = bytes_;
  return stats;
}

}  // namespace acr::service
