// The repair service: request dispatch (embeddable) and the acrd TCP
// front end.
//
// RepairService is the daemon's brain with no I/O of its own — it maps one
// decoded wire-protocol request (docs/service.md) to one response, backed
// by the JobScheduler and the SnapshotCache. Embedders (tests, benches,
// other binaries) drive it directly; acrd wraps it in a TcpServer.
//
// TcpServer speaks the newline-delimited JSON protocol over a local TCP
// socket: one request line in, one response line out, any number of
// exchanges per connection, one thread per connection (a `submit` with
// "wait":true parks its connection thread in the scheduler, which is
// exactly what a blocking client wants).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/json.hpp"
#include "service/scheduler.hpp"
#include "service/snapshot_cache.hpp"

namespace acr::service {

struct ServiceOptions {
  SchedulerOptions scheduler;
  SnapshotCache::Options cache;
  bool cache_enabled = true;
  /// Registry for service.requests / service.request_ms; nullptr = global.
  util::MetricsRegistry* metrics = nullptr;
};

class RepairService {
 public:
  explicit RepairService(const ServiceOptions& options = {});

  /// Dispatches one request ("op": submit | status | result | cancel |
  /// stats | shutdown) to one response. Never throws: malformed requests
  /// and handler errors come back as {"ok":false,"error":...}.
  [[nodiscard]] Json handle(const Json& request);

  /// Line-oriented entry: parse, dispatch, render (the TCP framing).
  [[nodiscard]] std::string handleLine(const std::string& line);

  /// Stops admitting jobs and waits for queued + running jobs to finish.
  void drain();

  /// True once a `shutdown` request was handled; the serve loop polls it.
  [[nodiscard]] bool shutdownRequested() const {
    return shutdown_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] JobScheduler& scheduler() { return scheduler_; }
  [[nodiscard]] SnapshotCache& cache() { return cache_; }

 private:
  Json handleSubmit(const Json& request);
  Json handleStatus(const Json& request);
  Json handleResult(const Json& request);
  Json handleCancel(const Json& request);
  Json handleStats();

  const ServiceOptions options_;
  util::MetricsRegistry& metrics_;
  SnapshotCache cache_;
  JobScheduler scheduler_;  // declared after the cache: jobs use it
  std::atomic<bool> shutdown_{false};
  const std::chrono::steady_clock::time_point started_ =
      std::chrono::steady_clock::now();  // `stats` reports uptime_ms
};

struct TcpServerOptions {
  std::string host = "127.0.0.1";
  int port = 0;  // 0 = ephemeral; read the bound port back via port()
  /// Optional external stop flag (e.g. a signal handler's); polled by
  /// serve() alongside the service's own shutdown flag.
  const std::atomic<bool>* stop = nullptr;
};

class TcpServer {
 public:
  /// Binds + listens immediately (throws std::runtime_error on failure).
  TcpServer(RepairService& service, const TcpServerOptions& options = {});
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  [[nodiscard]] int port() const { return port_; }

  /// Accept loop. Returns when stop() is called, the external stop flag
  /// rises, or the service handles a `shutdown` request. Joins every
  /// connection thread before returning (connections still mid-request
  /// finish their current line).
  void serve();

  /// Makes serve() return; callable from any thread.
  void stop();

 private:
  void handleConnection(int fd);

  RepairService& service_;
  const TcpServerOptions options_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::mutex threads_mutex_;
  std::vector<std::thread> threads_;
};

}  // namespace acr::service
