// The repair service: request dispatch (embeddable) and the acrd TCP
// front end.
//
// RepairService is the daemon's brain with no I/O of its own — it maps one
// decoded wire-protocol request (docs/service.md) to one response, backed
// by the JobScheduler and the SnapshotCache. Embedders (tests, benches,
// other binaries) drive it directly; acrd wraps it in a TcpServer.
//
// Two dispatch surfaces over the same handlers:
//   * handle()/handleLine() — synchronous; ops that wait (`submit`/
//     `submit_batch`/`result` with "wait":true) block the calling thread.
//   * handleAsync()/handleLineAsync() — non-blocking; waiting ops park a
//     completion callback in the scheduler (JobScheduler::onFinished) and
//     invoke `done` from whichever thread finishes the job. Everything
//     else answers before returning. Both surfaces render byte-identical
//     responses; the event-loop TcpServer uses the async one so a blocked
//     `wait` costs a parked callback, not a parked thread.
//
// TcpServer speaks the newline-delimited JSON protocol over a local TCP
// socket: one request line in, one response line out, any number of
// exchanges per connection. Since the fleet PR it is an epoll event loop
// (src/service/event_loop.hpp) — thousands of idle connections cost no
// threads — instead of the original thread-per-connection design.
// Requests on one connection are still answered strictly in order.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "service/json.hpp"
#include "service/scheduler.hpp"
#include "service/snapshot_cache.hpp"

namespace acr::service {

class EventLoop;

struct ServiceOptions {
  SchedulerOptions scheduler;
  SnapshotCache::Options cache;
  bool cache_enabled = true;
  /// Registry for service.requests / service.request_ms; nullptr = global.
  util::MetricsRegistry* metrics = nullptr;
};

class RepairService {
 public:
  explicit RepairService(const ServiceOptions& options = {});

  /// Dispatches one request ("op": submit | submit_batch | status |
  /// result | cancel | stats | shutdown) to one response. Never throws:
  /// malformed requests and handler errors come back as
  /// {"ok":false,"error":...}.
  [[nodiscard]] Json handle(const Json& request);

  /// Line-oriented entry: parse, dispatch, render (the TCP framing).
  [[nodiscard]] std::string handleLine(const std::string& line);

  /// Non-blocking dispatch: `done` receives the response exactly once —
  /// before returning for every op that can answer immediately, later
  /// (from a job-finishing thread) for waiting ops. Responses are
  /// byte-identical to handle()'s for the same request and job state.
  void handleAsync(const Json& request, std::function<void(Json)> done);

  /// Line-oriented async entry (the event loop's framing).
  void handleLineAsync(const std::string& line,
                       std::function<void(std::string)> done);

  /// Stops admitting jobs and waits for queued + running jobs to finish.
  void drain();

  /// True once a `shutdown` request was handled; the serve loop polls it.
  [[nodiscard]] bool shutdownRequested() const {
    return shutdown_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] JobScheduler& scheduler() { return scheduler_; }
  [[nodiscard]] SnapshotCache& cache() { return cache_; }
  [[nodiscard]] util::MetricsRegistry& metrics() { return metrics_; }

 private:
  /// One admitted (or rejected) submission. `response` is exactly what a
  /// plain non-wait `submit` answers: {"ok":true,"id":...,"status":...}
  /// or the rejection/error object.
  struct SubmitOutcome {
    bool accepted = false;
    std::uint64_t id = 0;
    Json response;
  };

  /// Admission only — never blocks, never waits. Shared by the sync and
  /// async submit paths and by submit_batch items.
  SubmitOutcome submitOne(const Json& request);
  /// Renders a finished job exactly like `result` does (ok/id/status/
  /// exit/output/trace). Only call once the job reached kDone/kCancelled.
  Json resultResponse(std::uint64_t id);

  Json handleSubmit(const Json& request);
  Json handleSubmitBatch(const Json& request);
  /// Merges the batch's shared defaults with one item's overrides into a
  /// standalone submit request; nullopt when the item is not an object.
  static std::optional<Json> mergeBatchItem(const Json& request,
                                            const Json& item);
  Json handleStatus(const Json& request);
  Json handleResult(const Json& request);
  Json handleCancel(const Json& request);
  Json handleStats();
  Json dispatch(const Json& request);  // everything but the waiting paths

  const ServiceOptions options_;
  util::MetricsRegistry& metrics_;
  SnapshotCache cache_;
  JobScheduler scheduler_;  // declared after the cache: jobs use it
  std::atomic<bool> shutdown_{false};
  const std::chrono::steady_clock::time_point started_ =
      std::chrono::steady_clock::now();  // `stats` reports uptime_ms
};

struct TcpServerOptions {
  std::string host = "127.0.0.1";
  int port = 0;  // 0 = ephemeral; read the bound port back via port()
  /// Optional external stop flag (e.g. a signal handler's); polled by
  /// serve() alongside the service's own shutdown flag.
  const std::atomic<bool>* stop = nullptr;
  /// A request line larger than this is answered with {"ok":false,...}
  /// and the connection dropped — bounded buffering, not OOM-by-client.
  std::size_t max_line_bytes = 1 << 20;
};

/// The TCP front end: an epoll event loop (one thread, edge-triggered
/// accept/read/write state machines, per-connection line buffers). Wire
/// behaviour is unchanged from the thread-per-connection original —
/// byte-identical responses, in-order responses per connection — but
/// idle connections now cost one fd each, and a blocking `wait` parks a
/// scheduler callback instead of a connection thread.
class TcpServer {
 public:
  /// Binds + listens immediately (throws std::runtime_error on failure).
  TcpServer(RepairService& service, const TcpServerOptions& options = {});
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  [[nodiscard]] int port() const;

  /// Event loop. Returns when stop() is called, the external stop flag
  /// rises, or the service handles a `shutdown` request — after every
  /// in-flight request has been answered and flushed.
  void serve();

  /// Makes serve() return; callable from any thread.
  void stop();

 private:
  std::unique_ptr<EventLoop> loop_;
};

}  // namespace acr::service
