#include "service/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace acr::service {

Client::Client(const std::string& host, int port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw std::runtime_error(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &address.sin_addr) != 1) {
    ::close(fd_);
    throw std::runtime_error("bad address " + host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&address),
                sizeof(address)) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("cannot connect to " + host + ":" +
                             std::to_string(port) + ": " + reason +
                             " (is acrd running?)");
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Json Client::call(const Json& request) {
  const std::string line = request.str() + '\n';
  std::size_t sent = 0;
  while (sent < line.size()) {
    const ssize_t wrote =
        ::send(fd_, line.data() + sent, line.size() - sent, MSG_NOSIGNAL);
    if (wrote <= 0) throw std::runtime_error("connection lost (send)");
    sent += static_cast<std::size_t>(wrote);
  }
  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      const std::string response = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      std::optional<Json> parsed = Json::parse(response);
      if (!parsed) throw std::runtime_error("malformed response: " + response);
      return std::move(*parsed);
    }
    char chunk[4096];
    const ssize_t received = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (received == 0) throw std::runtime_error("connection closed by acrd");
    if (received < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("recv: ") + std::strerror(errno));
    }
    buffer_.append(chunk, static_cast<std::size_t>(received));
  }
}

}  // namespace acr::service
