#include "service/client.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace acr::service {

Client::Client(const std::string& host, int port, const ClientOptions& options)
    : options_(options) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw std::runtime_error(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &address.sin_addr) != 1) {
    ::close(fd_);
    throw std::runtime_error("bad address " + host);
  }
  // Non-blocking connect so a dead or wedged node fails within
  // connect_timeout_ms instead of the kernel's minutes-long default.
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (options_.connect_timeout_ms > 0) {
    ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
  }
  int rc = ::connect(fd_, reinterpret_cast<sockaddr*>(&address),
                     sizeof(address));
  if (rc != 0 && errno == EINPROGRESS) {
    pollfd waiter{fd_, POLLOUT, 0};
    const int ready = ::poll(&waiter, 1, options_.connect_timeout_ms);
    if (ready <= 0) {
      ::close(fd_);
      fd_ = -1;
      throw std::runtime_error(
          "cannot connect to " + host + ":" + std::to_string(port) +
          ": timed out after " + std::to_string(options_.connect_timeout_ms) +
          "ms (is acrd running?)");
    }
    int error = 0;
    socklen_t length = sizeof error;
    ::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &error, &length);
    rc = error == 0 ? 0 : -1;
    errno = error;
  }
  if (rc != 0) {
    const std::string reason = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("cannot connect to " + host + ":" +
                             std::to_string(port) + ": " + reason +
                             " (is acrd running?)");
  }
  if (options_.connect_timeout_ms > 0) ::fcntl(fd_, F_SETFL, flags);
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Json Client::call(const Json& request) {
  const std::string line = request.str() + '\n';
  std::size_t sent = 0;
  while (sent < line.size()) {
    const ssize_t wrote =
        ::send(fd_, line.data() + sent, line.size() - sent, MSG_NOSIGNAL);
    if (wrote <= 0) throw std::runtime_error("connection lost (send)");
    sent += static_cast<std::size_t>(wrote);
  }
  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      const std::string response = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      std::optional<Json> parsed = Json::parse(response);
      if (!parsed) throw std::runtime_error("malformed response: " + response);
      return std::move(*parsed);
    }
    if (options_.io_timeout_ms > 0) {
      pollfd waiter{fd_, POLLIN, 0};
      const int ready = ::poll(&waiter, 1, options_.io_timeout_ms);
      if (ready == 0) {
        throw std::runtime_error("acrd response timed out after " +
                                 std::to_string(options_.io_timeout_ms) +
                                 "ms");
      }
      if (ready < 0) {
        if (errno == EINTR) continue;
        throw std::runtime_error(std::string("poll: ") + std::strerror(errno));
      }
    }
    char chunk[4096];
    const ssize_t received = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (received == 0) throw std::runtime_error("connection closed by acrd");
    if (received < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("recv: ") + std::strerror(errno));
    }
    buffer_.append(chunk, static_cast<std::size_t>(received));
  }
}

}  // namespace acr::service
