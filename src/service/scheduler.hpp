// Bounded, priority-aware job scheduler for the repair service.
//
// Layered on util::ThreadPool: the pool supplies the workers and its FIFO
// queue carries one opaque "run the next job" task per accepted submission;
// the scheduler owns the *ordering* (a priority index over the pending
// jobs, FIFO within a priority) plus everything the pool deliberately does
// not do — admission control (a bounded queue that rejects with a
// retry-after hint instead of growing without bound), cancellation (queued
// jobs are dequeued outright; running jobs get a cooperative flag that
// repair::RepairOptions::cancel plumbs into the engine's iteration
// boundary), and graceful drain (stop admitting, then wait for queued and
// running work to finish — never dropping an accepted job).
//
// Determinism: the scheduler never reorders work *within* a job and jobs
// never share mutable state (each loads its own scenario snapshot), so the
// bytes a job produces are independent of queue order, worker count and
// concurrent load — the same contract the campaign runner's fan-out keeps.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/trace.hpp"
#include "util/metrics.hpp"
#include "util/thread_pool.hpp"

namespace acr::service {

enum class JobStatus : std::uint8_t { kQueued, kRunning, kDone, kCancelled };

[[nodiscard]] std::string jobStatusName(JobStatus status);

/// What a job hands back: the process-style exit code and the exact bytes
/// the equivalent offline CLI run would have printed.
struct JobResult {
  int exit_code = 0;
  std::string output;
};

struct SchedulerOptions {
  int workers = 0;           // 0 = one per hardware thread
  int queue_limit = 64;      // queued (not yet running) jobs
  int retry_after_ms = 100;  // backpressure hint sent with rejections
  /// Registry for service.jobs_* counters and the queue-wait / run-time
  /// histograms; nullptr = the process-global registry.
  util::MetricsRegistry* metrics = nullptr;
};

class JobScheduler {
 public:
  /// Job body. `cancelled` is the job's own flag — long-running work polls
  /// it (the repair engine does, per iteration) and may return early.
  using Work = std::function<JobResult(const std::atomic<bool>& cancelled)>;

  explicit JobScheduler(const SchedulerOptions& options = {});
  ~JobScheduler();  // drains: accepted jobs always finish

  JobScheduler(const JobScheduler&) = delete;
  JobScheduler& operator=(const JobScheduler&) = delete;

  struct Submitted {
    bool accepted = false;
    std::uint64_t id = 0;        // valid when accepted
    int retry_after_ms = 0;      // backpressure hint when rejected
    std::string reject_reason;   // "queue full" | "draining"
  };

  /// Admits a job, or rejects it when the queue is full / the scheduler is
  /// draining. Higher priority runs earlier; FIFO within one priority.
  [[nodiscard]] Submitted submit(int priority, Work work);

  [[nodiscard]] std::optional<JobStatus> status(std::uint64_t id) const;

  /// The trace context captured at submit (zero-valued when the submitter
  /// had none). Lets the wire protocol echo the trace id in `result`.
  [[nodiscard]] std::optional<obs::TraceContext> trace(std::uint64_t id) const;

  /// Result of a finished job. `wait` blocks until the job finishes.
  /// nullopt: unknown id, or the job is not finished yet (wait == false).
  [[nodiscard]] std::optional<JobResult> result(std::uint64_t id, bool wait);

  /// Parks a one-shot completion callback: invoked exactly once when the
  /// job reaches kDone/kCancelled — immediately (in the caller's thread)
  /// when it already has, else from whichever thread finishes the job.
  /// This is how the event-loop server waits without a blocked thread:
  /// `submit wait:true` parks a callback here instead of a connection
  /// thread in result(). False: unknown id (callback not invoked).
  bool onFinished(std::uint64_t id, std::function<void()> callback);

  /// Queued job: removed from the queue, never runs, status kCancelled.
  /// Running job: raises its flag (the job decides when to stop; its status
  /// becomes kCancelled when it returns). False: unknown or already done.
  /// `only_if_queued` refuses to touch a running job (returns false and
  /// leaves it alone) — the fleet router's work-stealing path migrates
  /// queued jobs to another node and must never kill one mid-run.
  bool cancel(std::uint64_t id, bool only_if_queued = false);

  /// Stops admitting and blocks until every queued + running job finished.
  /// Idempotent; submit() rejects with "draining" afterwards.
  void drain();

  [[nodiscard]] int queueDepth() const;
  /// Queued jobs per priority level (only levels with at least one queued
  /// job appear). The `stats` wire response exposes this as
  /// `queue_by_priority`.
  [[nodiscard]] std::map<int, int> queueDepthByPriority() const;
  [[nodiscard]] int runningCount() const;
  [[nodiscard]] int workerCount() const { return pool_.size(); }

 private:
  struct Job {
    std::uint64_t id = 0;
    JobStatus status = JobStatus::kQueued;
    Work work;
    JobResult result;
    std::atomic<bool> cancelled{false};
    std::chrono::steady_clock::time_point enqueued;
    /// The submitter's trace context, reinstalled around the job body so
    /// its spans nest under the submit (the pool task that runs a job is
    /// not necessarily the task its submit enqueued — the context must
    /// travel with the job, not the task).
    obs::TraceContext trace;
    /// Parked onFinished callbacks, fired (outside the lock) by whichever
    /// thread moves the job to kDone/kCancelled.
    std::vector<std::function<void()>> on_finished;
  };

  void runOne();

  const SchedulerOptions options_;
  util::MetricsRegistry& metrics_;

  mutable std::mutex mutex_;
  std::condition_variable finished_;  // any job reaching kDone/kCancelled
  std::uint64_t next_id_ = 1;
  bool draining_ = false;
  int running_ = 0;
  /// Priority index over the queued jobs: key (-priority, id) so begin() is
  /// the highest priority, oldest first.
  std::map<std::pair<std::int64_t, std::uint64_t>, std::shared_ptr<Job>>
      pending_;
  std::unordered_map<std::uint64_t, std::shared_ptr<Job>> jobs_;
  /// Last member: workers may still be signalling finished_ when drain()
  /// returns, so the pool must join them before the members above die.
  util::ThreadPool pool_;
};

}  // namespace acr::service
