#include "service/event_loop.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "service/server.hpp"

namespace acr::service {

namespace {

int throwOnError(int fd, const char* what) {
  if (fd < 0) {
    throw std::runtime_error(std::string(what) + ": " + std::strerror(errno));
  }
  return fd;
}

}  // namespace

EventLoop::CompletionQueue::~CompletionQueue() {
  if (wake_fd >= 0) ::close(wake_fd);
}

void EventLoop::CompletionQueue::post(std::uint64_t connection_id,
                                      std::string&& response) {
  {
    const std::lock_guard<std::mutex> lock(mutex);
    items.emplace_back(connection_id, std::move(response));
  }
  const std::uint64_t one = 1;
  // The queue owns wake_fd, so this write can never hit a recycled
  // descriptor — at worst (loop already gone) it lands in an eventfd
  // nobody reads again.
  [[maybe_unused]] const ssize_t n = ::write(wake_fd, &one, sizeof one);
}

EventLoop::EventLoop(RepairService& service, const EventLoopOptions& options)
    : service_(service),
      options_(options),
      metrics_(options.metrics != nullptr ? *options.metrics
                                          : util::MetricsRegistry::global()),
      completions_(std::make_shared<CompletionQueue>()) {
  completions_->wake_fd =
      throwOnError(::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC), "eventfd");
  listen_fd_ = throwOnError(
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0),
      "socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &address.sin_addr) != 1) {
    ::close(listen_fd_);
    throw std::runtime_error("bad listen address " + options_.host);
  }
  // Backlog sized for fleet fan-in: bench_fleet opens thousands of
  // connections in a burst and SOMAXCONN (typically 4096+) absorbs it.
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&address),
             sizeof address) != 0 ||
      ::listen(listen_fd_, SOMAXCONN) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(listen_fd_);
    throw std::runtime_error("cannot listen on " + options_.host + ":" +
                             std::to_string(options_.port) + ": " + reason);
  }
  socklen_t length = sizeof address;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&address), &length);
  port_ = ntohs(address.sin_port);
  epoll_fd_ = throwOnError(::epoll_create1(EPOLL_CLOEXEC), "epoll_create1");
  epoll_event event{};
  event.events = EPOLLIN | EPOLLET;
  event.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &event);
  event.data.fd = completions_->wake_fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, completions_->wake_fd, &event);
}

EventLoop::~EventLoop() {
  for (const auto& [fd, connection] : by_fd_) {
    ::close(fd);
    metrics_.gauge("service.connections.open").sub(1);
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  // wake_fd is owned by completions_ and closes with its last reference —
  // which may be a still-parked scheduler callback, not us.
}

bool EventLoop::stopRequested() const {
  if (stopping_.load(std::memory_order_relaxed)) return true;
  if (options_.stop != nullptr &&
      options_.stop->load(std::memory_order_relaxed)) {
    return true;
  }
  return service_.shutdownRequested();
}

void EventLoop::stop() {
  stopping_.store(true, std::memory_order_relaxed);
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n =
      ::write(completions_->wake_fd, &one, sizeof one);
}

void EventLoop::serve() {
  loop_thread_ = std::this_thread::get_id();
  bool draining = false;
  std::vector<int> idle;
  for (;;) {
    if (stopRequested()) {
      if (!draining) {
        draining = true;
        // Stop accepting immediately; existing conversations finish.
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
        ::close(listen_fd_);
        listen_fd_ = -1;
      }
      idle.clear();
      for (const auto& [fd, connection] : by_fd_) {
        if (!connection.waiting && connection.out.empty()) idle.push_back(fd);
      }
      for (const int fd : idle) closeConnection(by_fd_.at(fd));
      // Anything left is mid-request (a parked wait) or mid-flush; keep
      // looping until their responses are out the door.
      if (by_fd_.empty()) break;
    }
    epoll_event events[128];
    const int ready = ::epoll_wait(epoll_fd_, events, 128, 200);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < ready; ++i) {
      const int fd = events[i].data.fd;
      if (fd == listen_fd_) {
        acceptReady();
        continue;
      }
      if (fd == completions_->wake_fd) {
        // Clear the edge before draining (below): a post landing after
        // the drain re-signals it, so nothing sleeps through a tick.
        std::uint64_t counter = 0;
        while (::read(fd, &counter, sizeof counter) > 0) {
        }
        continue;
      }
      const auto it = by_fd_.find(fd);
      if (it == by_fd_.end()) continue;  // closed earlier in this batch
      if ((events[i].events & (EPOLLERR | EPOLLHUP)) != 0) {
        closeConnection(it->second);
        continue;
      }
      if ((events[i].events & (EPOLLIN | EPOLLRDHUP)) != 0) {
        readReady(it->second);
      }
      const auto still = by_fd_.find(fd);
      if (still != by_fd_.end() && (events[i].events & EPOLLOUT) != 0) {
        flush(still->second);
      }
    }
    drainCompletions();
  }
}

void EventLoop::acceptReady() {
  for (;;) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // EAGAIN: edge drained. Anything else (EMFILE, aborted handshake):
      // stop too — with ET the next arrival re-triggers us.
      return;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    epoll_event event{};
    event.events = EPOLLIN | EPOLLOUT | EPOLLRDHUP | EPOLLET;
    event.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event) != 0) {
      ::close(fd);
      continue;
    }
    Connection connection;
    connection.fd = fd;
    connection.id = next_connection_id_++;
    fd_by_id_.emplace(connection.id, fd);
    by_fd_.emplace(fd, std::move(connection));
    metrics_.counter("service.connections.accepted").add(1);
    metrics_.gauge("service.connections.open").add(1);
  }
}

void EventLoop::readReady(Connection& connection) {
  const std::uint64_t id = connection.id;
  char chunk[65536];
  for (;;) {
    const ssize_t received = ::recv(connection.fd, chunk, sizeof chunk, 0);
    if (received > 0) {
      connection.in.append(chunk, static_cast<std::size_t>(received));
      continue;
    }
    if (received == 0) {
      connection.eof = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    closeConnection(connection);
    return;
  }
  resume(id);
}

void EventLoop::processLines(Connection& connection) {
  // Same framing as the threaded server: split on '\n' exactly — no \r
  // handling, no empty-line skipping (an empty line is a malformed-JSON
  // request and earns that error response).
  while (!connection.waiting && !connection.closing) {
    const auto newline = connection.in.find('\n');
    if (newline == std::string::npos) {
      if (connection.in.size() > options_.max_line_bytes) {
        rejectOversizedLine(connection);
      }
      return;
    }
    if (newline > options_.max_line_bytes) {
      rejectOversizedLine(connection);
      return;
    }
    const std::string line = connection.in.substr(0, newline);
    connection.in.erase(0, newline + 1);
    dispatchLine(connection, line);
  }
}

void EventLoop::rejectOversizedLine(Connection& connection) {
  Json response;
  response.set("ok", false);
  response.set("error", "request line exceeds " +
                            std::to_string(options_.max_line_bytes) +
                            " bytes");
  connection.out += response.str();
  connection.out += '\n';
  connection.in.clear();
  connection.closing = true;  // flush the error, then drop the connection
  metrics_.counter("service.connections.dropped").add(1);
}

void EventLoop::dispatchLine(Connection& connection, const std::string& line) {
  connection.waiting = true;
  const std::uint64_t previous = dispatching_;
  dispatching_ = connection.id;
  // The callback can outlive this loop (the client may vanish mid-job,
  // leaving a parked scheduler callback to fire during a later drain), so
  // the off-thread path touches only the by-value captures — never `this`.
  service_.handleLineAsync(line,
                           [queue = completions_, loop = loop_thread_, this,
                            id = connection.id](std::string response) {
                             if (std::this_thread::get_id() == loop) {
                               deliver(id, std::move(response));
                               return;
                             }
                             queue->post(id, std::move(response));
                           });
  dispatching_ = previous;
}

void EventLoop::deliver(std::uint64_t connection_id, std::string&& response) {
  const auto it = fd_by_id_.find(connection_id);
  if (it == fd_by_id_.end()) return;  // connection died while the job ran
  Connection& connection = by_fd_.at(it->second);
  connection.out += response;
  connection.out += '\n';
  connection.waiting = false;
  // A synchronous answer is resumed by the enclosing processLines/
  // readReady; a cross-connection wakeup (a cancel unparking another
  // connection's waiter) must be pushed out now or it would sit until
  // that connection's next socket event.
  if (connection_id != dispatching_) resume(connection_id);
}

void EventLoop::resume(std::uint64_t connection_id) {
  const auto it = fd_by_id_.find(connection_id);
  if (it == fd_by_id_.end()) return;
  const int fd = it->second;
  processLines(by_fd_.at(fd));  // never closes the connection
  flush(by_fd_.at(fd));         // may close it
  const auto still = by_fd_.find(fd);
  if (still == by_fd_.end()) return;
  Connection& connection = still->second;
  if (connection.eof && !connection.waiting && connection.out.empty()) {
    closeConnection(connection);
  }
}

void EventLoop::drainCompletions() {
  std::vector<std::pair<std::uint64_t, std::string>> items;
  {
    const std::lock_guard<std::mutex> lock(completions_->mutex);
    items.swap(completions_->items);
  }
  for (auto& [connection_id, response] : items) {
    deliver(connection_id, std::move(response));
  }
}

void EventLoop::flush(Connection& connection) {
  while (!connection.out.empty()) {
    const ssize_t sent = ::send(connection.fd, connection.out.data(),
                                connection.out.size(), MSG_NOSIGNAL);
    if (sent > 0) {
      connection.out.erase(0, static_cast<std::size_t>(sent));
      continue;
    }
    if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (sent < 0 && errno == EINTR) continue;
    closeConnection(connection);
    return;
  }
  if (connection.closing) closeConnection(connection);
}

void EventLoop::closeConnection(Connection& connection) {
  const int fd = connection.fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  fd_by_id_.erase(connection.id);
  metrics_.gauge("service.connections.open").sub(1);
  by_fd_.erase(fd);  // invalidates `connection`
}

}  // namespace acr::service
