// Epoll event-loop front end for the repair service.
//
// One thread, edge-triggered epoll, non-blocking sockets: accept, read and
// write are small state machines over per-connection line buffers, so an
// idle connection costs one fd and a couple of buffers — not a thread. The
// old thread-per-connection server stopped scaling at a few hundred
// clients (64 concurrent repairs was its design point); this loop holds
// thousands of idle connections and still answers in-flight requests in
// order.
//
// Dispatch goes through RepairService::handleLineAsync: a request that can
// answer immediately is answered inside the loop iteration; a waiting op
// (`submit`/`submit_batch`/`result` with "wait":true) parks a scheduler
// completion callback, and the finishing worker thread posts the response
// to the loop through an eventfd-signalled completion queue. While a
// connection has a response pending, its further pipelined lines stay
// buffered — responses per connection are strictly in request order, the
// same contract the threaded server kept by construction.
//
// Framing hygiene the threaded server lacked: a request line longer than
// max_line_bytes is answered with {"ok":false,...} and the connection is
// dropped (bounded buffering instead of OOM-by-client), counted in
// service.connections.dropped.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/metrics.hpp"

namespace acr::service {

class RepairService;

struct EventLoopOptions {
  std::string host = "127.0.0.1";
  int port = 0;  // 0 = ephemeral; read the bound port back via port()
  /// Optional external stop flag (e.g. a signal handler's); polled by
  /// serve() alongside the service's own shutdown flag.
  const std::atomic<bool>* stop = nullptr;
  /// Longest accepted request line; above it the client gets an error
  /// response and the connection is closed.
  std::size_t max_line_bytes = 1 << 20;
  /// Registry for the service.connections.* gauge/counters; nullptr =
  /// the process-global registry.
  util::MetricsRegistry* metrics = nullptr;
};

class EventLoop {
 public:
  /// Binds + listens immediately (throws std::runtime_error on failure).
  EventLoop(RepairService& service, const EventLoopOptions& options = {});
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  [[nodiscard]] int port() const { return port_; }

  /// Runs the loop in the calling thread. Returns once a stop condition
  /// rose (stop(), the external flag, or a handled `shutdown` request)
  /// AND every in-flight request has been answered and flushed; idle
  /// connections are then closed.
  void serve();

  /// Makes serve() return; callable from any thread (wakes the loop).
  void stop();

 private:
  struct Connection {
    int fd = -1;
    std::uint64_t id = 0;  // completion-queue key; immune to fd reuse
    std::string in;        // bytes past the last consumed request line
    std::string out;       // response bytes not yet written
    bool waiting = false;  // a dispatched request's response is pending
    bool closing = false;  // flush `out`, then close (protocol violation)
    bool eof = false;      // client half-closed; close once !waiting
  };

  /// Off-loop responses, posted by job-finishing worker threads. Shared
  /// (not a member) so a completion callback that outlives the loop —
  /// its connection died while the job ran — posts into a still-valid
  /// queue instead of a dangling `this`. Owns the eventfd for the same
  /// reason: a post after the loop died writes to an fd nobody reads,
  /// never to a recycled descriptor.
  struct CompletionQueue {
    std::mutex mutex;
    std::vector<std::pair<std::uint64_t, std::string>> items;
    int wake_fd = -1;
    ~CompletionQueue();
    void post(std::uint64_t connection_id, std::string&& response);
  };

  void acceptReady();
  void readReady(Connection& connection);
  /// Consumes complete lines from `in` until one goes async or the buffer
  /// runs dry; enforces max_line_bytes. Never closes the connection.
  void processLines(Connection& connection);
  void dispatchLine(Connection& connection, const std::string& line);
  void rejectOversizedLine(Connection& connection);
  /// Appends one finished response; when the response did not complete
  /// synchronously inside this connection's own dispatch, also resumes
  /// the connection (pipeline + flush).
  void deliver(std::uint64_t connection_id, std::string&& response);
  /// Pipeline + flush + close-on-eof for one connection, by id (the
  /// connection may die at any step; every step re-looks it up).
  void resume(std::uint64_t connection_id);
  void drainCompletions();
  void closeConnection(Connection& connection);
  /// Writes `out` until done or EAGAIN; may close (peer gone, or a
  /// `closing` connection fully flushed).
  void flush(Connection& connection);
  [[nodiscard]] bool stopRequested() const;

  RepairService& service_;
  const EventLoopOptions options_;
  util::MetricsRegistry& metrics_;
  std::shared_ptr<CompletionQueue> completions_;
  int epoll_fd_ = -1;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::uint64_t next_connection_id_ = 1;
  /// Connection whose dispatch is currently on the stack (0 = none):
  /// lets deliver() tell a synchronous answer (the enclosing
  /// processLines keeps going) from a cross-connection wakeup (resume
  /// explicitly or the response would sit until the next event).
  std::uint64_t dispatching_ = 0;
  std::unordered_map<int, Connection> by_fd_;
  std::unordered_map<std::uint64_t, int> fd_by_id_;
  std::thread::id loop_thread_;  // set by serve(); enables sync delivery
};

}  // namespace acr::service
