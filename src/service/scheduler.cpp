#include "service/scheduler.hpp"

namespace acr::service {

std::string jobStatusName(JobStatus status) {
  switch (status) {
    case JobStatus::kQueued: return "queued";
    case JobStatus::kRunning: return "running";
    case JobStatus::kDone: return "done";
    case JobStatus::kCancelled: return "cancelled";
  }
  return "?";
}

JobScheduler::JobScheduler(const SchedulerOptions& options)
    : options_(options),
      metrics_(options.metrics != nullptr ? *options.metrics
                                          : util::MetricsRegistry::global()),
      pool_(util::resolveJobs(options.workers)) {}

JobScheduler::~JobScheduler() { drain(); }

JobScheduler::Submitted JobScheduler::submit(int priority, Work work) {
  Submitted submitted;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (draining_) {
      submitted.reject_reason = "draining";
      submitted.retry_after_ms = options_.retry_after_ms;
      metrics_.counter("service.jobs_rejected").add(1);
      return submitted;
    }
    if (static_cast<int>(pending_.size()) >= options_.queue_limit) {
      submitted.reject_reason = "queue full";
      submitted.retry_after_ms = options_.retry_after_ms;
      metrics_.counter("service.jobs_rejected").add(1);
      return submitted;
    }
    auto job = std::make_shared<Job>();
    job->id = next_id_++;
    job->work = std::move(work);
    job->enqueued = std::chrono::steady_clock::now();
    job->trace = obs::currentContext();
    pending_.emplace(std::make_pair(-static_cast<std::int64_t>(priority),
                                    job->id),
                     job);
    jobs_.emplace(job->id, job);
    submitted.accepted = true;
    submitted.id = job->id;
  }
  metrics_.counter("service.jobs_submitted").add(1);
  // One pool task per accepted job; the task picks whatever pending job has
  // the highest priority *when it runs*, so the pool's FIFO never inverts
  // our ordering.
  pool_.submit([this] { runOne(); });
  return submitted;
}

void JobScheduler::runOne() {
  std::shared_ptr<Job> job;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (pending_.empty()) return;  // its job was cancelled while queued
    const auto it = pending_.begin();
    job = it->second;
    pending_.erase(it);
    job->status = JobStatus::kRunning;
    ++running_;
  }
  const double queue_wait_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - job->enqueued)
          .count();
  metrics_.histogram("service.queue_wait_ms").observe(queue_wait_ms);
  JobResult result;
  {
    // The job's lifecycle span: nested under whatever span submitted it
    // (e.g. acrd's wire handler, which carries the client's trace id).
    const obs::ContextScope ctx(job->trace);
    obs::Span span("service.job");
    span.attr("id", static_cast<std::int64_t>(job->id));
    span.attr("queue_wait_ms", queue_wait_ms);
    const util::ScopedTimer timer(metrics_.histogram("service.job_ms"));
    try {
      result = job->work(job->cancelled);
    } catch (const std::exception& error) {
      result.exit_code = 1;
      result.output = std::string("error: ") + error.what() + '\n';
    }
    span.attr("status", job->cancelled.load(std::memory_order_relaxed)
                            ? "cancelled"
                            : "done");
  }
  std::vector<std::function<void()>> callbacks;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    job->result = std::move(result);
    job->status = job->cancelled.load(std::memory_order_relaxed)
                      ? JobStatus::kCancelled
                      : JobStatus::kDone;
    --running_;
    if (job->status == JobStatus::kCancelled) {
      metrics_.counter("service.jobs_cancelled").add(1);
    } else {
      metrics_.counter("service.jobs_completed").add(1);
    }
    callbacks = std::move(job->on_finished);
    job->on_finished.clear();
  }
  finished_.notify_all();
  for (const auto& callback : callbacks) callback();
}

bool JobScheduler::onFinished(std::uint64_t id,
                              std::function<void()> callback) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) return false;
    const std::shared_ptr<Job>& job = it->second;
    if (job->status == JobStatus::kQueued ||
        job->status == JobStatus::kRunning) {
      job->on_finished.push_back(std::move(callback));
      return true;
    }
  }
  callback();  // already finished: fire in the caller's thread, no lock held
  return true;
}

std::optional<JobStatus> JobScheduler::status(std::uint64_t id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  return it->second->status;
}

std::optional<obs::TraceContext> JobScheduler::trace(std::uint64_t id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  return it->second->trace;
}

std::optional<JobResult> JobScheduler::result(std::uint64_t id, bool wait) {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  const std::shared_ptr<Job> job = it->second;
  const auto done = [&job] {
    return job->status == JobStatus::kDone ||
           job->status == JobStatus::kCancelled;
  };
  if (!done()) {
    if (!wait) return std::nullopt;
    finished_.wait(lock, done);
  }
  return job->result;
}

bool JobScheduler::cancel(std::uint64_t id, bool only_if_queued) {
  std::shared_ptr<Job> job;
  std::vector<std::function<void()>> callbacks;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) return false;
    job = it->second;
    switch (job->status) {
      case JobStatus::kQueued: {
        // Remove from the priority index (linear: the index is bounded by
        // queue_limit).
        for (auto pending = pending_.begin(); pending != pending_.end();
             ++pending) {
          if (pending->second == job) {
            pending_.erase(pending);
            break;
          }
        }
        job->status = JobStatus::kCancelled;
        job->result = JobResult{1, "cancelled before start\n"};
        metrics_.counter("service.jobs_cancelled").add(1);
        callbacks = std::move(job->on_finished);
        job->on_finished.clear();
        break;
      }
      case JobStatus::kRunning:
        if (only_if_queued) return false;  // migration must not kill it
        job->cancelled.store(true, std::memory_order_relaxed);
        break;
      case JobStatus::kDone:
      case JobStatus::kCancelled:
        return false;
    }
  }
  finished_.notify_all();
  for (const auto& callback : callbacks) callback();
  return true;
}

void JobScheduler::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  draining_ = true;
  finished_.wait(lock, [this] { return pending_.empty() && running_ == 0; });
}

int JobScheduler::queueDepth() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(pending_.size());
}

std::map<int, int> JobScheduler::queueDepthByPriority() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::map<int, int> depths;
  for (const auto& [key, job] : pending_) {
    ++depths[static_cast<int>(-key.first)];
  }
  return depths;
}

int JobScheduler::runningCount() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return running_;
}

}  // namespace acr::service
