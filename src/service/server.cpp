#include "service/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "core/ops.hpp"
#include "localize/sbfl.hpp"
#include "obs/trace.hpp"

namespace acr::service {

namespace {

Json errorResponse(const std::string& message) {
  Json response;
  response.set("ok", false);
  response.set("error", message);
  return response;
}

SchedulerOptions withMetrics(SchedulerOptions options,
                             util::MetricsRegistry* metrics) {
  if (options.metrics == nullptr) options.metrics = metrics;
  return options;
}

SnapshotCache::Options withMetrics(SnapshotCache::Options options,
                                   util::MetricsRegistry* metrics) {
  if (options.metrics == nullptr) options.metrics = metrics;
  return options;
}

}  // namespace

RepairService::RepairService(const ServiceOptions& options)
    : options_(options),
      metrics_(options.metrics != nullptr ? *options.metrics
                                          : util::MetricsRegistry::global()),
      cache_(withMetrics(options.cache, &metrics_)),
      scheduler_(withMetrics(options.scheduler, &metrics_)) {}

Json RepairService::handle(const Json& request) {
  metrics_.counter("service.requests").add(1);
  const util::ScopedTimer timer(metrics_.histogram("service.request_ms"));
  if (!request.isObject()) return errorResponse("request must be an object");
  const Json* op = request.find("op");
  if (op == nullptr) return errorResponse("missing \"op\"");
  const std::string& verb = op->asString();
  obs::Span span("service.request");
  span.attr("op", verb);
  try {
    if (verb == "submit") return handleSubmit(request);
    if (verb == "status") return handleStatus(request);
    if (verb == "result") return handleResult(request);
    if (verb == "cancel") return handleCancel(request);
    if (verb == "stats") return handleStats();
    if (verb == "shutdown") {
      shutdown_.store(true, std::memory_order_relaxed);
      Json response;
      response.set("ok", true);
      response.set("draining", true);
      return response;
    }
  } catch (const std::exception& error) {
    return errorResponse(error.what());
  }
  return errorResponse("unknown op \"" + verb + "\"");
}

std::string RepairService::handleLine(const std::string& line) {
  const std::optional<Json> request = Json::parse(line);
  if (!request) return errorResponse("malformed JSON").str();
  return handle(*request).str();
}

Json RepairService::handleSubmit(const Json& request) {
  const Json* dir_field = request.find("dir");
  if (dir_field == nullptr || dir_field->asString().empty()) {
    return errorResponse("submit requires \"dir\"");
  }
  const std::string dir = dir_field->asString();

  std::string command = "repair";
  if (const Json* field = request.find("command")) command = field->asString();
  if (command != "repair" && command != "verify") {
    return errorResponse("unknown command \"" + command +
                         "\" (repair | verify)");
  }

  repair::RepairOptions repair_options;  // CLI defaults: seed 1, tarantula
  if (const Json* field = request.find("seed")) {
    repair_options.seed = field->asUint(1);
  }
  if (const Json* field = request.find("jobs")) {
    repair_options.validate_jobs = static_cast<int>(field->asInt(1));
  }
  if (const Json* field = request.find("metric")) {
    const std::optional<sbfl::Metric> metric =
        sbfl::metricByName(field->asString());
    if (!metric) {
      return errorResponse("unknown metric \"" + field->asString() + "\"");
    }
    repair_options.metric = *metric;
  }
  const bool report = request.find("report") != nullptr &&
                      request.find("report")->asBool();
  int priority = 0;
  if (const Json* field = request.find("priority")) {
    priority = static_cast<int>(field->asInt(0));
  }

  // Wire-protocol trace propagation: a client that carries a trace sends
  // its trace id (and the submitting span as "parent"); the job's spans
  // then join the client's trace instead of starting a fresh one.
  obs::TraceContext wire_trace = obs::currentContext();
  if (const Json* field = request.find("trace")) {
    wire_trace.trace_id = field->asUint();
    wire_trace.span_id = wire_trace.trace_id;
    if (const Json* parent = request.find("parent")) {
      wire_trace.span_id = parent->asUint();
    }
  }
  const obs::ContextScope trace_scope(wire_trace);

  const bool cache_enabled = options_.cache_enabled;
  SnapshotCache* cache = &cache_;
  const JobScheduler::Submitted submitted = scheduler_.submit(
      priority,
      [dir, command, repair_options, report, cache_enabled,
       cache](const std::atomic<bool>& cancelled) -> JobResult {
        try {
          if (command == "verify") {
            const std::shared_ptr<const Snapshot> snapshot =
                cache_enabled ? cache->fetch(dir) : makeSnapshot(dir);
            return JobResult{snapshot->verify_ok ? 0 : 1,
                             snapshot->verify_text};
          }
          repair::RepairOptions options = repair_options;
          options.cancel = &cancelled;
          // Cache hit: reuse the parsed scenario AND its primed baseline
          // simulation — the engine adopts the latter as its incremental
          // verifier's anchor instead of re-converging (same converged
          // state, same bytes as the offline run). Cache off: plain load,
          // no priming.
          ops::RepairOutcome outcome;
          if (cache_enabled) {
            const std::shared_ptr<const Snapshot> snapshot = cache->fetch(dir);
            options.baseline_sim = &snapshot->baseline_sim;
            outcome =
                ops::repairScenario(snapshot->loaded.scenario, options, report);
          } else {
            outcome =
                ops::repairScenario(LoadScenario(dir).scenario, options, report);
          }
          return JobResult{outcome.result.success ? 0 : 1,
                           std::move(outcome.text)};
        } catch (const std::exception& error) {
          return JobResult{1, std::string("error: ") + error.what() + '\n'};
        }
      });

  if (!submitted.accepted) {
    Json response = errorResponse(submitted.reject_reason);
    response.set("retry_after_ms", submitted.retry_after_ms);
    return response;
  }

  if (request.find("wait") != nullptr && request.find("wait")->asBool()) {
    Json waited = request;
    waited.set("id", submitted.id);
    waited.set("wait", true);
    return handleResult(waited);
  }

  Json response;
  response.set("ok", true);
  response.set("id", submitted.id);
  response.set("status", jobStatusName(JobStatus::kQueued));
  if (wire_trace.trace_id != 0) response.set("trace", wire_trace.trace_id);
  return response;
}

Json RepairService::handleStatus(const Json& request) {
  const Json* id_field = request.find("id");
  if (id_field == nullptr) return errorResponse("status requires \"id\"");
  const std::uint64_t id = id_field->asUint();
  const std::optional<JobStatus> status = scheduler_.status(id);
  if (!status) return errorResponse("unknown job id");
  Json response;
  response.set("ok", true);
  response.set("id", id);
  response.set("status", jobStatusName(*status));
  return response;
}

Json RepairService::handleResult(const Json& request) {
  const Json* id_field = request.find("id");
  if (id_field == nullptr) return errorResponse("result requires \"id\"");
  const std::uint64_t id = id_field->asUint();
  const bool wait =
      request.find("wait") != nullptr && request.find("wait")->asBool();
  if (!scheduler_.status(id)) return errorResponse("unknown job id");
  const std::optional<JobResult> result = scheduler_.result(id, wait);
  if (!result) {
    Json response = errorResponse("not finished");
    response.set("id", id);
    response.set("status", jobStatusName(*scheduler_.status(id)));
    return response;
  }
  Json response;
  response.set("ok", true);
  response.set("id", id);
  response.set("status", jobStatusName(*scheduler_.status(id)));
  response.set("exit", result->exit_code);
  response.set("output", result->output);
  if (const std::optional<obs::TraceContext> trace = scheduler_.trace(id)) {
    if (trace->trace_id != 0) response.set("trace", trace->trace_id);
  }
  return response;
}

Json RepairService::handleCancel(const Json& request) {
  const Json* id_field = request.find("id");
  if (id_field == nullptr) return errorResponse("cancel requires \"id\"");
  const std::uint64_t id = id_field->asUint();
  if (!scheduler_.status(id)) return errorResponse("unknown job id");
  if (!scheduler_.cancel(id)) return errorResponse("already finished");
  Json response;
  response.set("ok", true);
  response.set("id", id);
  return response;
}

Json RepairService::handleStats() {
  Json response;
  response.set("ok", true);
  response.set("uptime_ms",
               static_cast<std::int64_t>(
                   std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - started_)
                       .count()));
  response.set("queue_depth", scheduler_.queueDepth());
  Json by_priority{Json::Object{}};
  for (const auto& [priority, depth] : scheduler_.queueDepthByPriority()) {
    by_priority.set(std::to_string(priority), depth);
  }
  response.set("queue_by_priority", std::move(by_priority));
  response.set("running", scheduler_.runningCount());
  response.set("workers", scheduler_.workerCount());
  const SnapshotCache::Stats cache = cache_.stats();
  Json cache_json;
  cache_json.set("enabled", options_.cache_enabled);
  cache_json.set("entries", cache.entries);
  cache_json.set("bytes", cache.bytes);
  cache_json.set("hits", cache.hits);
  cache_json.set("misses", cache.misses);
  cache_json.set("evictions", cache.evictions);
  cache_json.set("hit_rate", cache.hitRate());
  response.set("cache", std::move(cache_json));
  // The registry renders its own JSON; re-parse so the dump nests as a
  // value instead of a quoted string.
  if (std::optional<Json> metrics = Json::parse(metrics_.renderJson())) {
    response.set("metrics", std::move(*metrics));
  }
  return response;
}

void RepairService::drain() { scheduler_.drain(); }

// ---------------------------------------------------------------------------
// TCP front end
// ---------------------------------------------------------------------------

TcpServer::TcpServer(RepairService& service, const TcpServerOptions& options)
    : service_(service), options_(options) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(static_cast<std::uint16_t>(options.port));
  if (::inet_pton(AF_INET, options.host.c_str(), &address.sin_addr) != 1) {
    ::close(listen_fd_);
    throw std::runtime_error("bad listen address " + options.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&address),
             sizeof(address)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("cannot listen on " + options.host + ":" +
                             std::to_string(options.port) + ": " + reason);
  }
  sockaddr_in bound{};
  socklen_t bound_size = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_size);
  port_ = static_cast<int>(ntohs(bound.sin_port));
}

TcpServer::~TcpServer() {
  stop();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  const std::lock_guard<std::mutex> lock(threads_mutex_);
  for (auto& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
}

void TcpServer::stop() { stopping_.store(true, std::memory_order_relaxed); }

void TcpServer::serve() {
  while (!stopping_.load(std::memory_order_relaxed) &&
         !service_.shutdownRequested() &&
         (options_.stop == nullptr ||
          !options_.stop->load(std::memory_order_relaxed))) {
    pollfd poller{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&poller, 1, /*timeout_ms=*/200);
    if (ready < 0) {
      if (errno == EINTR) continue;  // a signal: re-check the stop flags
      break;
    }
    if (ready == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    const std::lock_guard<std::mutex> lock(threads_mutex_);
    threads_.emplace_back([this, fd] { handleConnection(fd); });
  }
  stopping_.store(true, std::memory_order_relaxed);
  const std::lock_guard<std::mutex> lock(threads_mutex_);
  for (auto& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
  threads_.clear();
}

void TcpServer::handleConnection(int fd) {
  // Receive timeout so the thread notices stop() even on an idle
  // connection; in-flight requests always get their response first.
  timeval timeout{0, 200 * 1000};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  std::string buffer;
  char chunk[4096];
  for (;;) {
    const ssize_t received = ::recv(fd, chunk, sizeof(chunk), 0);
    if (received == 0) break;  // client closed
    if (received < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
        if (stopping_.load(std::memory_order_relaxed)) break;
        continue;
      }
      break;
    }
    buffer.append(chunk, static_cast<std::size_t>(received));
    std::size_t newline;
    while ((newline = buffer.find('\n')) != std::string::npos) {
      const std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (line.empty()) continue;
      const std::string response = service_.handleLine(line) + '\n';
      std::size_t sent = 0;
      while (sent < response.size()) {
        const ssize_t wrote =
            ::send(fd, response.data() + sent, response.size() - sent,
                   MSG_NOSIGNAL);
        if (wrote <= 0) break;
        sent += static_cast<std::size_t>(wrote);
      }
    }
  }
  ::close(fd);
}

}  // namespace acr::service
