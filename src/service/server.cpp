#include "service/server.hpp"

#include <cstring>
#include <stdexcept>
#include <utility>

#include "core/ops.hpp"
#include "localize/sbfl.hpp"
#include "obs/trace.hpp"
#include "service/event_loop.hpp"

namespace acr::service {

namespace {

Json errorResponse(const std::string& message) {
  Json response;
  response.set("ok", false);
  response.set("error", message);
  return response;
}

SchedulerOptions withMetrics(SchedulerOptions options,
                             util::MetricsRegistry* metrics) {
  if (options.metrics == nullptr) options.metrics = metrics;
  return options;
}

SnapshotCache::Options withMetrics(SnapshotCache::Options options,
                                   util::MetricsRegistry* metrics) {
  if (options.metrics == nullptr) options.metrics = metrics;
  return options;
}

}  // namespace

RepairService::RepairService(const ServiceOptions& options)
    : options_(options),
      metrics_(options.metrics != nullptr ? *options.metrics
                                          : util::MetricsRegistry::global()),
      cache_(withMetrics(options.cache, &metrics_)),
      scheduler_(withMetrics(options.scheduler, &metrics_)) {}

Json RepairService::dispatch(const Json& request) {
  const std::string& verb = request.find("op")->asString();
  try {
    if (verb == "submit") return handleSubmit(request);
    if (verb == "submit_batch") return handleSubmitBatch(request);
    if (verb == "status") return handleStatus(request);
    if (verb == "result") return handleResult(request);
    if (verb == "cancel") return handleCancel(request);
    if (verb == "stats") return handleStats();
    if (verb == "shutdown") {
      shutdown_.store(true, std::memory_order_relaxed);
      Json response;
      response.set("ok", true);
      response.set("draining", true);
      return response;
    }
  } catch (const std::exception& error) {
    return errorResponse(error.what());
  }
  return errorResponse("unknown op \"" + verb + "\"");
}

Json RepairService::handle(const Json& request) {
  metrics_.counter("service.requests").add(1);
  const util::ScopedTimer timer(metrics_.histogram("service.request_ms"));
  if (!request.isObject()) return errorResponse("request must be an object");
  const Json* op = request.find("op");
  if (op == nullptr) return errorResponse("missing \"op\"");
  obs::Span span("service.request");
  span.attr("op", op->asString());
  return dispatch(request);
}

std::string RepairService::handleLine(const std::string& line) {
  const std::optional<Json> request = Json::parse(line);
  if (!request) return errorResponse("malformed JSON").str();
  return handle(*request).str();
}

void RepairService::handleAsync(const Json& request,
                                std::function<void(Json)> done) {
  metrics_.counter("service.requests").add(1);
  if (!request.isObject()) {
    done(errorResponse("request must be an object"));
    return;
  }
  const Json* op = request.find("op");
  if (op == nullptr) {
    done(errorResponse("missing \"op\""));
    return;
  }
  const std::string& verb = op->asString();
  const bool wait =
      request.find("wait") != nullptr && request.find("wait")->asBool();
  obs::Span span("service.request");
  span.attr("op", verb);

  // Only the waiting paths need special treatment: everything else
  // answers before returning, through the very same handlers the
  // synchronous surface uses.
  try {
    if (verb == "submit" && wait) {
      const SubmitOutcome submitted = submitOne(request);
      if (!submitted.accepted) {
        done(submitted.response);
        return;
      }
      const std::uint64_t id = submitted.id;
      scheduler_.onFinished(
          id, [this, id, done = std::move(done)] { done(resultResponse(id)); });
      return;
    }
    if (verb == "submit_batch" && wait) {
      const Json* items = request.find("items");
      if (items == nullptr || items->kind() != Json::Kind::kArray ||
          items->asArray().empty()) {
        done(errorResponse("submit_batch requires a non-empty \"items\" array"));
        return;
      }
      // Admit everything first (order fixed by the items array), then park
      // one completion callback per accepted job; the last job to finish
      // assembles and delivers the batch response.
      struct BatchState {
        std::vector<Json> entries;
        std::atomic<std::size_t> remaining{0};
        std::function<void(Json)> done;
      };
      auto state = std::make_shared<BatchState>();
      state->entries.resize(items->asArray().size());
      state->done = std::move(done);
      std::vector<std::pair<std::size_t, std::uint64_t>> accepted;
      for (std::size_t i = 0; i < items->asArray().size(); ++i) {
        const std::optional<Json> merged =
            mergeBatchItem(request, items->asArray()[i]);
        if (!merged) {
          state->entries[i] = errorResponse("batch item must be an object");
          continue;
        }
        const SubmitOutcome submitted = submitOne(*merged);
        if (!submitted.accepted) {
          state->entries[i] = submitted.response;
          continue;
        }
        accepted.emplace_back(i, submitted.id);
      }
      const auto assemble = [](BatchState& batch) {
        Json response;
        response.set("ok", true);
        response.set("jobs", Json{Json::Array(batch.entries.begin(),
                                              batch.entries.end())});
        return response;
      };
      if (accepted.empty()) {
        state->done(assemble(*state));
        return;
      }
      state->remaining.store(accepted.size(), std::memory_order_relaxed);
      for (const auto& [index, id] : accepted) {
        scheduler_.onFinished(id, [this, state, assemble, index = index,
                                   id = id] {
          state->entries[index] = resultResponse(id);
          if (state->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            state->done(assemble(*state));
          }
        });
      }
      return;
    }
    if (verb == "result" && wait) {
      const Json* id_field = request.find("id");
      if (id_field == nullptr) {
        done(errorResponse("result requires \"id\""));
        return;
      }
      const std::uint64_t id = id_field->asUint();
      if (!scheduler_.status(id)) {
        done(errorResponse("unknown job id"));
        return;
      }
      scheduler_.onFinished(
          id, [this, id, done = std::move(done)] { done(resultResponse(id)); });
      return;
    }
  } catch (const std::exception& error) {
    done(errorResponse(error.what()));
    return;
  }

  const util::ScopedTimer timer(metrics_.histogram("service.request_ms"));
  done(dispatch(request));
}

void RepairService::handleLineAsync(const std::string& line,
                                    std::function<void(std::string)> done) {
  const std::optional<Json> request = Json::parse(line);
  if (!request) {
    done(errorResponse("malformed JSON").str());
    return;
  }
  handleAsync(*request,
              [done = std::move(done)](Json response) { done(response.str()); });
}

RepairService::SubmitOutcome RepairService::submitOne(const Json& request) {
  SubmitOutcome outcome;
  const Json* dir_field = request.find("dir");
  if (dir_field == nullptr || dir_field->asString().empty()) {
    outcome.response = errorResponse("submit requires \"dir\"");
    return outcome;
  }
  const std::string dir = dir_field->asString();

  std::string command = "repair";
  if (const Json* field = request.find("command")) command = field->asString();
  if (command != "repair" && command != "verify") {
    outcome.response = errorResponse("unknown command \"" + command +
                                     "\" (repair | verify)");
    return outcome;
  }

  repair::RepairOptions repair_options;  // CLI defaults: seed 1, tarantula
  if (const Json* field = request.find("seed")) {
    repair_options.seed = field->asUint(1);
  }
  if (const Json* field = request.find("jobs")) {
    repair_options.validate_jobs = static_cast<int>(field->asInt(1));
  }
  if (const Json* field = request.find("metric")) {
    const std::optional<sbfl::Metric> metric =
        sbfl::metricByName(field->asString());
    if (!metric) {
      outcome.response =
          errorResponse("unknown metric \"" + field->asString() + "\"");
      return outcome;
    }
    repair_options.metric = *metric;
  }
  const bool report = request.find("report") != nullptr &&
                      request.find("report")->asBool();
  int priority = 0;
  if (const Json* field = request.find("priority")) {
    priority = static_cast<int>(field->asInt(0));
  }

  // Wire-protocol trace propagation: a client that carries a trace sends
  // its trace id (and the submitting span as "parent"); the job's spans
  // then join the client's trace instead of starting a fresh one.
  obs::TraceContext wire_trace = obs::currentContext();
  if (const Json* field = request.find("trace")) {
    wire_trace.trace_id = field->asUint();
    wire_trace.span_id = wire_trace.trace_id;
    if (const Json* parent = request.find("parent")) {
      wire_trace.span_id = parent->asUint();
    }
  }
  const obs::ContextScope trace_scope(wire_trace);

  const bool cache_enabled = options_.cache_enabled;
  SnapshotCache* cache = &cache_;
  const JobScheduler::Submitted submitted = scheduler_.submit(
      priority,
      [dir, command, repair_options, report, cache_enabled,
       cache](const std::atomic<bool>& cancelled) -> JobResult {
        try {
          if (command == "verify") {
            const std::shared_ptr<const Snapshot> snapshot =
                cache_enabled ? cache->fetch(dir) : makeSnapshot(dir);
            return JobResult{snapshot->verify_ok ? 0 : 1,
                             snapshot->verify_text};
          }
          repair::RepairOptions options = repair_options;
          options.cancel = &cancelled;
          // Cache hit: reuse the parsed scenario AND its primed baseline
          // simulation — the engine adopts the latter as its incremental
          // verifier's anchor instead of re-converging (same converged
          // state, same bytes as the offline run). Cache off: plain load,
          // no priming.
          ops::RepairOutcome outcome;
          if (cache_enabled) {
            const std::shared_ptr<const Snapshot> snapshot = cache->fetch(dir);
            options.baseline_sim = &snapshot->baseline_sim;
            outcome =
                ops::repairScenario(snapshot->loaded.scenario, options, report);
          } else {
            outcome =
                ops::repairScenario(LoadScenario(dir).scenario, options, report);
          }
          return JobResult{outcome.result.success ? 0 : 1,
                           std::move(outcome.text)};
        } catch (const std::exception& error) {
          return JobResult{1, std::string("error: ") + error.what() + '\n'};
        }
      });

  if (!submitted.accepted) {
    outcome.response = errorResponse(submitted.reject_reason);
    outcome.response.set("retry_after_ms", submitted.retry_after_ms);
    return outcome;
  }

  outcome.accepted = true;
  outcome.id = submitted.id;
  outcome.response.set("ok", true);
  outcome.response.set("id", submitted.id);
  outcome.response.set("status", jobStatusName(JobStatus::kQueued));
  if (wire_trace.trace_id != 0) {
    outcome.response.set("trace", wire_trace.trace_id);
  }
  return outcome;
}

Json RepairService::resultResponse(std::uint64_t id) {
  Json response;
  response.set("ok", true);
  response.set("id", id);
  response.set("status", jobStatusName(*scheduler_.status(id)));
  const std::optional<JobResult> result = scheduler_.result(id, /*wait=*/false);
  response.set("exit", result->exit_code);
  response.set("output", result->output);
  if (const std::optional<obs::TraceContext> trace = scheduler_.trace(id)) {
    if (trace->trace_id != 0) response.set("trace", trace->trace_id);
  }
  return response;
}

Json RepairService::handleSubmit(const Json& request) {
  const SubmitOutcome submitted = submitOne(request);
  if (!submitted.accepted) return submitted.response;
  if (request.find("wait") != nullptr && request.find("wait")->asBool()) {
    (void)scheduler_.result(submitted.id, /*wait=*/true);
    return resultResponse(submitted.id);
  }
  return submitted.response;
}

std::optional<Json> RepairService::mergeBatchItem(const Json& request,
                                                  const Json& item) {
  if (!item.isObject()) return std::nullopt;
  // Top-level fields are the batch's shared defaults; the item overrides
  // field by field. `op`/`items`/`wait` never merge — an item is always a
  // plain non-waiting submit.
  Json merged;
  merged.set("op", "submit");
  for (const char* key :
       {"dir", "command", "seed", "metric", "jobs", "priority", "report",
        "trace", "parent"}) {
    if (const Json* field = request.find(key)) merged.set(key, *field);
  }
  for (const auto& [key, value] : item.asObject()) {
    if (key == "op" || key == "items" || key == "wait") continue;
    merged.set(key, value);
  }
  return merged;
}

Json RepairService::handleSubmitBatch(const Json& request) {
  const Json* items = request.find("items");
  if (items == nullptr || items->kind() != Json::Kind::kArray ||
      items->asArray().empty()) {
    return errorResponse("submit_batch requires a non-empty \"items\" array");
  }
  const bool wait =
      request.find("wait") != nullptr && request.find("wait")->asBool();
  // Admit every item before waiting on any: one round-trip admits the
  // whole batch, and rejected items surface their own backpressure entry
  // while the accepted ones still run.
  std::vector<Json> entries(items->asArray().size());
  std::vector<std::pair<std::size_t, std::uint64_t>> accepted;
  for (std::size_t i = 0; i < items->asArray().size(); ++i) {
    const std::optional<Json> merged =
        mergeBatchItem(request, items->asArray()[i]);
    if (!merged) {
      entries[i] = errorResponse("batch item must be an object");
      continue;
    }
    const SubmitOutcome submitted = submitOne(*merged);
    if (!submitted.accepted) {
      entries[i] = submitted.response;
      continue;
    }
    accepted.emplace_back(i, submitted.id);
    entries[i] = submitted.response;
  }
  if (wait) {
    for (const auto& [index, id] : accepted) {
      (void)scheduler_.result(id, /*wait=*/true);
      entries[index] = resultResponse(id);
    }
  }
  Json response;
  response.set("ok", true);
  response.set("jobs", Json{Json::Array(entries.begin(), entries.end())});
  return response;
}

Json RepairService::handleStatus(const Json& request) {
  const Json* id_field = request.find("id");
  if (id_field == nullptr) return errorResponse("status requires \"id\"");
  const std::uint64_t id = id_field->asUint();
  const std::optional<JobStatus> status = scheduler_.status(id);
  if (!status) return errorResponse("unknown job id");
  Json response;
  response.set("ok", true);
  response.set("id", id);
  response.set("status", jobStatusName(*status));
  return response;
}

Json RepairService::handleResult(const Json& request) {
  const Json* id_field = request.find("id");
  if (id_field == nullptr) return errorResponse("result requires \"id\"");
  const std::uint64_t id = id_field->asUint();
  const bool wait =
      request.find("wait") != nullptr && request.find("wait")->asBool();
  if (!scheduler_.status(id)) return errorResponse("unknown job id");
  const std::optional<JobResult> result = scheduler_.result(id, wait);
  if (!result) {
    Json response = errorResponse("not finished");
    response.set("id", id);
    response.set("status", jobStatusName(*scheduler_.status(id)));
    return response;
  }
  return resultResponse(id);
}

Json RepairService::handleCancel(const Json& request) {
  const Json* id_field = request.find("id");
  if (id_field == nullptr) return errorResponse("cancel requires \"id\"");
  const std::uint64_t id = id_field->asUint();
  const std::optional<JobStatus> status = scheduler_.status(id);
  if (!status) return errorResponse("unknown job id");
  // "if_queued": only dequeue a job that has not started — the fleet
  // router's rebalance path migrates queued work and must never kill a
  // running job. Plain cancel keeps its raise-the-flag semantics.
  const bool if_queued = request.find("if_queued") != nullptr &&
                         request.find("if_queued")->asBool();
  if (!scheduler_.cancel(id, if_queued)) {
    if (if_queued && scheduler_.status(id) == JobStatus::kRunning) {
      return errorResponse("already running");
    }
    return errorResponse("already finished");
  }
  Json response;
  response.set("ok", true);
  response.set("id", id);
  return response;
}

Json RepairService::handleStats() {
  Json response;
  response.set("ok", true);
  response.set("uptime_ms",
               static_cast<std::int64_t>(
                   std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - started_)
                       .count()));
  response.set("queue_depth", scheduler_.queueDepth());
  Json by_priority{Json::Object{}};
  for (const auto& [priority, depth] : scheduler_.queueDepthByPriority()) {
    by_priority.set(std::to_string(priority), depth);
  }
  response.set("queue_by_priority", std::move(by_priority));
  response.set("running", scheduler_.runningCount());
  response.set("workers", scheduler_.workerCount());
  // Connection-level gauges, written by the event-loop front end (zero
  // for an embedded service with no TCP listener).
  Json connections;
  connections.set("open", metrics_.gauge("service.connections.open").value());
  connections.set("accepted",
                  metrics_.counter("service.connections.accepted").value());
  connections.set("dropped",
                  metrics_.counter("service.connections.dropped").value());
  response.set("connections", std::move(connections));
  const SnapshotCache::Stats cache = cache_.stats();
  Json cache_json;
  cache_json.set("enabled", options_.cache_enabled);
  cache_json.set("entries", cache.entries);
  cache_json.set("bytes", cache.bytes);
  cache_json.set("hits", cache.hits);
  cache_json.set("misses", cache.misses);
  cache_json.set("evictions", cache.evictions);
  cache_json.set("hit_rate", cache.hitRate());
  response.set("cache", std::move(cache_json));
  // The registry renders its own JSON; re-parse so the dump nests as a
  // value instead of a quoted string.
  if (std::optional<Json> metrics = Json::parse(metrics_.renderJson())) {
    response.set("metrics", std::move(*metrics));
  }
  return response;
}

void RepairService::drain() { scheduler_.drain(); }

// ---------------------------------------------------------------------------
// TCP front end — a thin veneer over the epoll event loop
// ---------------------------------------------------------------------------

TcpServer::TcpServer(RepairService& service, const TcpServerOptions& options) {
  EventLoopOptions loop_options;
  loop_options.host = options.host;
  loop_options.port = options.port;
  loop_options.stop = options.stop;
  loop_options.max_line_bytes = options.max_line_bytes;
  loop_options.metrics = &service.metrics();
  loop_ = std::make_unique<EventLoop>(service, loop_options);
}

TcpServer::~TcpServer() = default;

int TcpServer::port() const { return loop_->port(); }

void TcpServer::serve() { loop_->serve(); }

void TcpServer::stop() { loop_->stop(); }

}  // namespace acr::service
