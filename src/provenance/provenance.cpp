#include "provenance/provenance.hpp"

#include <utility>

namespace acr::prov {

void ProvenanceGraph::freeze() {
  if (tail_.empty()) return;
  std::vector<Derivation> merged;
  merged.reserve(size());
  if (base_ != nullptr) {
    merged.insert(merged.end(), base_->begin(), base_->end());
  }
  for (Derivation& node : tail_) merged.push_back(std::move(node));
  tail_.clear();
  base_ = std::make_shared<const std::vector<Derivation>>(std::move(merged));
}

ProvenanceGraph ProvenanceGraph::fork() const {
  ProvenanceGraph forked;
  forked.base_ = base_;
  forked.tail_ = tail_;  // empty when frozen — the O(1) path
  return forked;
}

void ProvenanceGraph::collectLines(DerivationId id,
                                   std::set<cfg::LineId>& out) const {
  while (id != kNoDerivation) {
    const Derivation& node = at(id);
    out.insert(node.lines.begin(), node.lines.end());
    id = node.parent;
  }
}

bool ProvenanceGraph::chainTouches(DerivationId id,
                                   const std::set<cfg::LineId>& lines) const {
  while (id != kNoDerivation) {
    const Derivation& node = at(id);
    for (const cfg::LineId& line : node.lines) {
      if (lines.count(line) != 0) return true;
    }
    id = node.parent;
  }
  return false;
}

int ProvenanceGraph::chainLength(DerivationId id) const {
  int length = 0;
  while (id != kNoDerivation) {
    ++length;
    id = at(id).parent;
  }
  return length;
}

void ProvenanceGraph::collectLinesForPrefix(const net::Prefix& prefix,
                                            std::set<cfg::LineId>& out) const {
  const auto scan = [&](const std::vector<Derivation>& nodes) {
    for (const Derivation& node : nodes) {
      if (node.prefix == prefix) {
        out.insert(node.lines.begin(), node.lines.end());
      }
    }
  };
  if (base_ != nullptr) scan(*base_);
  scan(tail_);
}

int ProvenanceGraph::leafCount(DerivationId id) const {
  std::set<cfg::LineId> lines;
  collectLines(id, lines);
  return static_cast<int>(lines.size());
}

}  // namespace acr::prov
