#include "provenance/provenance.hpp"

namespace acr::prov {

void ProvenanceGraph::collectLines(DerivationId id,
                                   std::set<cfg::LineId>& out) const {
  while (id != kNoDerivation) {
    const Derivation& node = at(id);
    out.insert(node.lines.begin(), node.lines.end());
    id = node.parent;
  }
}

int ProvenanceGraph::chainLength(DerivationId id) const {
  int length = 0;
  while (id != kNoDerivation) {
    ++length;
    id = at(id).parent;
  }
  return length;
}

void ProvenanceGraph::collectLinesForPrefix(const net::Prefix& prefix,
                                            std::set<cfg::LineId>& out) const {
  for (const Derivation& node : nodes_) {
    if (node.prefix == prefix) {
      out.insert(node.lines.begin(), node.lines.end());
    }
  }
}

int ProvenanceGraph::leafCount(DerivationId id) const {
  std::set<cfg::LineId> lines;
  collectLines(id, lines);
  return static_cast<int>(lines.size());
}

}  // namespace acr::prov
