// Negative provenance: explaining the *absence* of a route (Y!, NSDI'14 —
// the paper's citation [26] for provenance-based coverage).
//
// Positive provenance answers "which config lines produced this route";
// SBFL additionally needs "which config lines are responsible for this
// route NOT existing" when a test blackholes. explainAbsence() walks
// backwards from the router that lacked the route, across every neighbor
// that could have supplied it, and blames the first obstacle on each path:
//
//   * kSessionDown       — the BGP session that would carry it is down
//   * kNotRedistributed  — the origin has the route but no redistribute
//   * kExportDenied      — the neighbor's export policy dropped it
//   * kImportDenied      — this router's import policy dropped it
//   * kLoopRejected      — receiver-side AS-path loop prevention fired
//   * kNoOrigination     — the expected origin has no interface/static route
//   * kNeighborLacksRoute— recursion: the neighbor is missing it too
//
// Every reason carries the configuration lines an operator (or SBFL) should
// look at. The union of lines over all frontier reasons is the negative
// coverage of a blackholed test.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "provenance/provenance.hpp"
#include "routing/simulator.hpp"
#include "topo/network.hpp"

namespace acr::prov {

struct AbsenceReason {
  enum class Kind : std::uint8_t {
    kNoOrigination,
    kNotRedistributed,
    kSessionDown,
    kExportDenied,
    kImportDenied,
    kLoopRejected,
    kNeighborLacksRoute,
  };
  Kind kind = Kind::kNeighborLacksRoute;
  std::string router;    // where the obstacle sits
  std::string neighbor;  // the would-be supplier (when applicable)
  std::vector<cfg::LineId> lines;
  std::string detail;

  [[nodiscard]] std::string str() const;
};

[[nodiscard]] std::string absenceKindName(AbsenceReason::Kind kind);

struct AbsenceExplanation {
  std::vector<AbsenceReason> reasons;
  /// Every router whose RIB or sessions the walk consulted — the
  /// explanation's state read set. A cached explanation stays valid as long
  /// as none of these routers' state for the walked prefix changed, which
  /// is what lets the incremental localizer reuse blackhole coverage rows
  /// across candidates.
  std::set<std::string> consulted;
  /// The subset of `consulted` whose *configuration* the walk actually
  /// read: the expected origin (origination machinery), both endpoints of a
  /// down session (peer statements), and supplier/receiver pairs where the
  /// supplier held the route (redistribution gates, export and import
  /// policies). A visited router whose sessions are all up and whose
  /// neighbors all lack the route contributes no config read — the walk
  /// only looked at its RIB and sessions — so a config edit there cannot
  /// change this explanation. Every blamed line's device is in this set.
  std::set<std::string> config_reads;

  [[nodiscard]] std::set<cfg::LineId> lines() const;
  [[nodiscard]] bool blames(AbsenceReason::Kind kind) const;
  [[nodiscard]] std::string str() const;
};

/// Why does `router` have no route for `prefix`? Requires the simulation the
/// question is about (sessions + RIBs are read from it).
[[nodiscard]] AbsenceExplanation explainAbsence(const topo::Network& network,
                                                const route::SimResult& sim,
                                                const std::string& router,
                                                const net::Prefix& prefix);

}  // namespace acr::prov
