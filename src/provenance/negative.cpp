#include "provenance/negative.hpp"

#include <algorithm>
#include <functional>
#include <optional>

#include "routing/policy_eval.hpp"

namespace acr::prov {

std::string absenceKindName(AbsenceReason::Kind kind) {
  switch (kind) {
    case AbsenceReason::Kind::kNoOrigination:
      return "no-origination";
    case AbsenceReason::Kind::kNotRedistributed:
      return "not-redistributed";
    case AbsenceReason::Kind::kSessionDown:
      return "session-down";
    case AbsenceReason::Kind::kExportDenied:
      return "export-denied";
    case AbsenceReason::Kind::kImportDenied:
      return "import-denied";
    case AbsenceReason::Kind::kLoopRejected:
      return "loop-rejected";
    case AbsenceReason::Kind::kNeighborLacksRoute:
      return "neighbor-lacks-route";
  }
  return "?";
}

std::string AbsenceReason::str() const {
  std::string out = absenceKindName(kind) + " at " + router;
  if (!neighbor.empty()) out += " (from " + neighbor + ")";
  if (!detail.empty()) out += ": " + detail;
  return out;
}

std::set<cfg::LineId> AbsenceExplanation::lines() const {
  std::set<cfg::LineId> out;
  for (const auto& reason : reasons) {
    out.insert(reason.lines.begin(), reason.lines.end());
  }
  return out;
}

bool AbsenceExplanation::blames(AbsenceReason::Kind kind) const {
  return std::any_of(reasons.begin(), reasons.end(),
                     [&](const AbsenceReason& reason) {
                       return reason.kind == kind;
                     });
}

std::string AbsenceExplanation::str() const {
  std::string out;
  for (const auto& reason : reasons) {
    out += reason.str();
    out += '\n';
  }
  return out;
}

AbsenceExplanation explainAbsence(const topo::Network& network,
                                  const route::SimResult& sim,
                                  const std::string& router,
                                  const net::Prefix& prefix) {
  AbsenceExplanation out;
  std::set<std::string> visited;

  // The router that is *supposed* to originate the prefix.
  std::string expected_origin;
  for (const auto& subnet : network.topology.subnets()) {
    if (subnet.prefix == prefix ||
        subnet.prefix.contains(prefix.address())) {
      expected_origin = subnet.router;
      break;
    }
  }

  if (!expected_origin.empty()) out.consulted.insert(expected_origin);

  const std::function<void(const std::string&)> explain =
      [&](const std::string& current) {
        if (!visited.insert(current).second) return;
        out.consulted.insert(current);
        const cfg::DeviceConfig* device = network.config(current);
        if (device == nullptr) return;

        // Origination check at the expected origin.
        if (current == expected_origin) {
          out.config_reads.insert(current);
          bool via_connected = false;
          bool via_static = false;
          std::vector<cfg::LineId> origin_lines;
          for (const auto& itf : device->interfaces) {
            if (itf.connectedPrefix().contains(prefix.address())) {
              via_connected = true;
              origin_lines.push_back(cfg::LineId{current, itf.ip_line});
            }
          }
          for (const auto& sr : device->static_routes) {
            if (sr.prefix.contains(prefix.address())) {
              const bool resolvable = std::any_of(
                  device->interfaces.begin(), device->interfaces.end(),
                  [&](const cfg::InterfaceConfig& itf) {
                    return itf.connectedPrefix().contains(sr.next_hop);
                  });
              if (resolvable) {
                via_static = true;
                origin_lines.push_back(cfg::LineId{current, sr.line});
              }
            }
          }
          if (!via_connected && !via_static) {
            AbsenceReason reason;
            reason.kind = AbsenceReason::Kind::kNoOrigination;
            reason.router = current;
            reason.detail = "no interface or resolvable static route covers " +
                            prefix.str();
            if (device->bgp) {
              reason.lines.push_back(cfg::LineId{current, device->bgp->line});
              for (const auto& redist : device->bgp->redistributes) {
                reason.lines.push_back(cfg::LineId{current, redist.line});
              }
            }
            out.reasons.push_back(std::move(reason));
          } else if (device->bgp) {
            const bool redistributed =
                (via_static &&
                 device->bgp->redistributes_source(cfg::RedistSource::kStatic)) ||
                (via_connected && device->bgp->redistributes_source(
                                      cfg::RedistSource::kConnected));
            if (!redistributed) {
              AbsenceReason reason;
              reason.kind = AbsenceReason::Kind::kNotRedistributed;
              reason.router = current;
              reason.detail =
                  std::string("route exists via ") +
                  (via_static ? "static" : "connected") +
                  " but is never injected into BGP";
              reason.lines = origin_lines;
              reason.lines.push_back(cfg::LineId{current, device->bgp->line});
              out.reasons.push_back(std::move(reason));
            }
          }
        }
        if (current == expected_origin) return;  // walked to the root

        const std::uint32_t own_asn =
            network.topology.findRouter(current) != nullptr
                ? network.topology.findRouter(current)->asn
                : 0;

        for (const auto& session : sim.sessions) {
          if (session.a != current && session.b != current) continue;
          const std::string neighbor =
              session.a == current ? session.b : session.a;
          out.consulted.insert(neighbor);
          const net::Ipv4Address neighbor_address =
              session.a == current ? session.b_address : session.a_address;
          const net::Ipv4Address own_address =
              session.a == current ? session.a_address : session.b_address;

          if (!session.up) {
            out.config_reads.insert(current);
            out.config_reads.insert(neighbor);
            AbsenceReason reason;
            reason.kind = AbsenceReason::Kind::kSessionDown;
            reason.router = current;
            reason.neighbor = neighbor;
            reason.detail = session.down_reason;
            if (device->bgp) {
              const cfg::PeerConfig* peer =
                  device->bgp->findPeer(neighbor_address);
              if (peer != nullptr) {
                reason.lines.push_back(cfg::LineId{current, peer->as_line});
              }
            }
            const cfg::DeviceConfig* other = network.config(neighbor);
            if (other != nullptr && other->bgp) {
              const cfg::PeerConfig* peer = other->bgp->findPeer(own_address);
              if (peer != nullptr) {
                reason.lines.push_back(cfg::LineId{neighbor, peer->as_line});
              }
            }
            out.reasons.push_back(std::move(reason));
            continue;
          }

          const cfg::DeviceConfig* supplier = network.config(neighbor);
          const std::optional<route::Route> their_route =
              sim.rib.routeOf(neighbor, prefix);
          if (!their_route) {
            explain(neighbor);  // the obstacle is further upstream
            continue;
          }
          // The supplier holds the route: from here the walk evaluates its
          // redistribution gates and export policy, and this router's loop
          // check and import policy — config reads on both sides.
          out.config_reads.insert(current);
          out.config_reads.insert(neighbor);
          if (supplier == nullptr || !supplier->bgp || !device->bgp) continue;
          const topo::RouterDecl* supplier_decl =
              network.topology.findRouter(neighbor);
          const std::uint32_t supplier_asn =
              supplier_decl != nullptr ? supplier_decl->asn : 0;

          // Redistribution gate at the supplier.
          if (their_route->source == route::RouteSource::kStatic &&
              !supplier->bgp->redistributes_source(cfg::RedistSource::kStatic)) {
            AbsenceReason reason;
            reason.kind = AbsenceReason::Kind::kNotRedistributed;
            reason.router = neighbor;
            reason.neighbor = current;
            reason.detail = "static route held but 'redistribute static' missing";
            reason.lines.push_back(cfg::LineId{neighbor, supplier->bgp->line});
            out.reasons.push_back(std::move(reason));
            continue;
          }
          if (their_route->source == route::RouteSource::kConnected &&
              !supplier->bgp->redistributes_source(
                  cfg::RedistSource::kConnected)) {
            AbsenceReason reason;
            reason.kind = AbsenceReason::Kind::kNotRedistributed;
            reason.router = neighbor;
            reason.neighbor = current;
            reason.detail =
                "connected route held but 'redistribute connected' missing";
            reason.lines.push_back(cfg::LineId{neighbor, supplier->bgp->line});
            out.reasons.push_back(std::move(reason));
            continue;
          }

          // Export policy at the supplier.
          const cfg::PeerConfig* their_peer =
              supplier->bgp->findPeer(own_address);
          route::Route announced = *their_route;
          if (their_peer != nullptr) {
            const route::PolicyBinding binding = route::resolvePolicyBinding(
                *supplier, *their_peer, route::Direction::kExport);
            if (binding.bound) {
              const route::PolicyVerdict verdict = route::applyRoutePolicy(
                  *supplier, binding.policy, announced, supplier_asn);
              if (!verdict.permitted) {
                AbsenceReason reason;
                reason.kind = AbsenceReason::Kind::kExportDenied;
                reason.router = neighbor;
                reason.neighbor = current;
                reason.detail = "export policy " + binding.policy +
                                " denies " + prefix.str();
                reason.lines = binding.lines;
                reason.lines.insert(reason.lines.end(), verdict.lines.begin(),
                                    verdict.lines.end());
                out.reasons.push_back(std::move(reason));
                continue;
              }
              announced = verdict.route;
            }
          }
          if (announced.as_path.empty() ||
              announced.as_path.front() != supplier_asn) {
            announced.as_path.insert(announced.as_path.begin(), supplier_asn);
          }

          // Receiver-side loop prevention.
          if (std::find(announced.as_path.begin(), announced.as_path.end(),
                        own_asn) != announced.as_path.end()) {
            AbsenceReason reason;
            reason.kind = AbsenceReason::Kind::kLoopRejected;
            reason.router = current;
            reason.neighbor = neighbor;
            reason.detail = "own AS " + std::to_string(own_asn) +
                            " appears in the advertised path " +
                            announced.pathStr();
            const cfg::PeerConfig* peer = device->bgp->findPeer(neighbor_address);
            if (peer != nullptr) {
              reason.lines.push_back(cfg::LineId{current, peer->as_line});
            }
            out.reasons.push_back(std::move(reason));
            continue;
          }

          // Import policy at this router.
          const cfg::PeerConfig* peer = device->bgp->findPeer(neighbor_address);
          if (peer != nullptr) {
            const route::PolicyBinding binding = route::resolvePolicyBinding(
                *device, *peer, route::Direction::kImport);
            if (binding.bound) {
              const route::PolicyVerdict verdict = route::applyRoutePolicy(
                  *device, binding.policy, announced, own_asn);
              if (!verdict.permitted) {
                AbsenceReason reason;
                reason.kind = AbsenceReason::Kind::kImportDenied;
                reason.router = current;
                reason.neighbor = neighbor;
                reason.detail = "import policy " + binding.policy +
                                " denies " + prefix.str();
                reason.lines = binding.lines;
                reason.lines.insert(reason.lines.end(), verdict.lines.begin(),
                                    verdict.lines.end());
                out.reasons.push_back(std::move(reason));
                continue;
              }
            }
          }
        }
      };

  explain(router);
  return out;
}

}  // namespace acr::prov
