// Network provenance: a DAG of route derivations recorded by the simulator.
//
// Every candidate route a router accepts gets a Derivation node holding the
// configuration lines evaluated while producing it (peer statements, policy
// nodes, matched prefix-list entries, static-route and redistribution lines)
// and a parent pointer to the derivation of the advertising router's route.
//
// Two consumers:
//   * coverage extraction for SBFL — a test's coverage is the union of lines
//     on the derivation chains of the routes its packet used (the paper's
//     §4.1, mirroring Y!/NetCov);
//   * the MetaProv baseline and Figure 3 — its search space is the set of
//     leaf config lines of the provenance tree of the failed event.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "config/ast.hpp"
#include "netcore/prefix.hpp"

namespace acr::prov {

using DerivationId = std::int32_t;
inline constexpr DerivationId kNoDerivation = -1;

struct Derivation {
  std::string router;
  net::Prefix prefix;
  DerivationId parent = kNoDerivation;
  std::vector<cfg::LineId> lines;
};

class ProvenanceGraph {
 public:
  DerivationId add(Derivation derivation) {
    nodes_.push_back(std::move(derivation));
    return static_cast<DerivationId>(nodes_.size()) - 1;
  }

  [[nodiscard]] const Derivation& at(DerivationId id) const {
    return nodes_.at(static_cast<std::size_t>(id));
  }

  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] bool empty() const { return nodes_.empty(); }
  void clear() { nodes_.clear(); }

  /// Union of config lines along the whole derivation chain of `id`.
  void collectLines(DerivationId id, std::set<cfg::LineId>& out) const;

  /// Number of derivation steps (routers traversed) in the chain.
  [[nodiscard]] int chainLength(DerivationId id) const;

  /// Number of distinct config lines on the chain — the provenance-tree
  /// leaf count that defines MetaProv's search space (Figure 3a).
  [[nodiscard]] int leafCount(DerivationId id) const;

  /// Union of config lines across EVERY derivation recorded for `prefix`
  /// (all routers, all simulation rounds). For an oscillating prefix the
  /// final-state chain only reflects one cycle state; the lines "executed"
  /// by the flap are the union over the whole cycle.
  void collectLinesForPrefix(const net::Prefix& prefix,
                             std::set<cfg::LineId>& out) const;

 private:
  std::vector<Derivation> nodes_;
};

}  // namespace acr::prov
