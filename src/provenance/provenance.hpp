// Network provenance: a DAG of route derivations recorded by the simulator.
//
// Every candidate route a router accepts gets a Derivation node holding the
// configuration lines evaluated while producing it (peer statements, policy
// nodes, matched prefix-list entries, static-route and redistribution lines)
// and a parent pointer to the derivation of the advertising router's route.
//
// Two consumers:
//   * coverage extraction for SBFL — a test's coverage is the union of lines
//     on the derivation chains of the routes its packet used (the paper's
//     §4.1, mirroring Y!/NetCov);
//   * the MetaProv baseline and Figure 3 — its search space is the set of
//     leaf config lines of the provenance tree of the failed event.
//
// Storage is copy-on-write: nodes live in an immutable shared base segment
// plus a per-graph append tail. `freeze()` folds the tail into the base;
// `fork()` produces a graph sharing the frozen base, so a delta simulation
// can append candidate-specific derivations without copying the anchor's
// graph — unchanged entries keep their anchor DerivationIds byte-for-byte.
#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "config/ast.hpp"
#include "netcore/prefix.hpp"

namespace acr::prov {

using DerivationId = std::int32_t;
inline constexpr DerivationId kNoDerivation = -1;

struct Derivation {
  std::string router;
  net::Prefix prefix;
  DerivationId parent = kNoDerivation;
  std::vector<cfg::LineId> lines;
};

class ProvenanceGraph {
 public:
  DerivationId add(Derivation derivation) {
    tail_.push_back(std::move(derivation));
    return static_cast<DerivationId>(baseSize() + tail_.size()) - 1;
  }

  [[nodiscard]] const Derivation& at(DerivationId id) const {
    const auto idx = static_cast<std::size_t>(id);
    const std::size_t base = baseSize();
    if (idx < base) return (*base_)[idx];
    return tail_.at(idx - base);
  }

  [[nodiscard]] std::size_t size() const { return baseSize() + tail_.size(); }
  [[nodiscard]] bool empty() const { return size() == 0; }
  void clear() {
    base_.reset();
    tail_.clear();
  }

  /// Folds the append tail into the immutable shared base. Idempotent.
  /// After freezing, `fork()` is O(1) and every existing DerivationId stays
  /// valid in both the original and all forks.
  void freeze();

  /// A graph sharing this graph's frozen base segment. Ids recorded so far
  /// resolve identically in the fork; appends to either graph are invisible
  /// to the other. Cheap when this graph is frozen (the usual case: freeze
  /// the anchor once, fork per candidate); otherwise the unfrozen tail is
  /// deep-copied so the fork is still correct.
  [[nodiscard]] ProvenanceGraph fork() const;

  /// Number of nodes in the frozen base segment (0 when never frozen).
  [[nodiscard]] std::size_t frozenSize() const { return baseSize(); }

  /// Union of config lines along the whole derivation chain of `id`.
  void collectLines(DerivationId id, std::set<cfg::LineId>& out) const;

  /// Number of derivation steps (routers traversed) in the chain.
  [[nodiscard]] int chainLength(DerivationId id) const;

  /// Whether any line on the derivation chain of `id` is in `lines`. The
  /// selective-symbolic layer uses this to tell if a route's selection
  /// decision flowed through a symbolized config field (without
  /// materializing the whole chain's line set).
  [[nodiscard]] bool chainTouches(DerivationId id,
                                  const std::set<cfg::LineId>& lines) const;

  /// Number of distinct config lines on the chain — the provenance-tree
  /// leaf count that defines MetaProv's search space (Figure 3a).
  [[nodiscard]] int leafCount(DerivationId id) const;

  /// Union of config lines across EVERY derivation recorded for `prefix`
  /// (all routers, all simulation rounds). For an oscillating prefix the
  /// final-state chain only reflects one cycle state; the lines "executed"
  /// by the flap are the union over the whole cycle.
  void collectLinesForPrefix(const net::Prefix& prefix,
                             std::set<cfg::LineId>& out) const;

 private:
  [[nodiscard]] std::size_t baseSize() const {
    return base_ == nullptr ? 0 : base_->size();
  }

  std::shared_ptr<const std::vector<Derivation>> base_;
  std::vector<Derivation> tail_;
};

}  // namespace acr::prov
