#include "topo/network.hpp"

namespace acr::topo {

std::vector<cfg::ConfigDiff> diffNetworks(const Network& before,
                                          const Network& after) {
  std::vector<cfg::ConfigDiff> diffs;
  for (const auto& [name, new_config] : after.configs) {
    const cfg::DeviceConfig* old_config = before.config(name);
    if (old_config == nullptr) continue;
    cfg::ConfigDiff diff = cfg::diffDevice(*old_config, new_config);
    if (!diff.empty()) diffs.push_back(std::move(diff));
  }
  return diffs;
}

}  // namespace acr::topo
