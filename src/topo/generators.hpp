// Scenario generators: topology + known-good configurations + metadata that
// the intent builder (core/scenarios) turns into verification specs.
//
// Three families:
//   * figure2*: the paper's exact incident network (4 backbone routers,
//     2 PoPs, 1 DCN, AS-path override policies). The `faulty` variant ships
//     the over-broad `0.0.0.0 0` prefix-list that causes the 10.0/16 flap.
//   * buildDcn: a 3-tier Clos DCN (cores / aggs / ToRs) with server subnets,
//     VIP ranges via static+redistribute, per-pod import filters via peer
//     groups, a quarantine subnet, and PBR edge policies — one realistic
//     home for each of Table 1's misconfiguration types.
//   * buildBackbone: a WAN ring with chords where every router applies a
//     Figure-2-style AS-path override scoped to regional prefixes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "topo/network.hpp"

namespace acr::topo {

struct SubnetExpectation {
  std::string name;
  std::string router;
  net::Prefix prefix;
  bool via_static = false;   // originated by static route + redistribution
  bool quarantined = false;  // must be unreachable from every other subnet
};

struct BuiltNetwork {
  Network network;
  std::vector<SubnetExpectation> subnets;

  [[nodiscard]] const SubnetExpectation* findSubnet(const std::string& name) const {
    for (const auto& subnet : subnets) {
      if (subnet.name == name) return &subnet;
    }
    return nullptr;
  }
};

/// The Figure-2 network with *correct* override scopes (converges, all
/// intents hold).
[[nodiscard]] BuiltNetwork buildFigure2();

/// The Figure-2 network as it was during the incident: the `default_all`
/// prefix-list on A and C is the catch-all "0.0.0.0 0", so the AS-path
/// override applies to every imported route and 10.0/16 flaps.
[[nodiscard]] BuiltNetwork buildFigure2Faulty();

/// 3-tier Clos DCN: 2 cores, `pods` pods with 2 aggs and `tors_per_pod`
/// ToRs each. Roughly 2 + pods*(2 + tors_per_pod) devices.
[[nodiscard]] BuiltNetwork buildDcn(int pods, int tors_per_pod);

/// WAN backbone ring of `n` routers with chords and per-region override
/// policies.
[[nodiscard]] BuiltNetwork buildBackbone(int n);

/// Random connected network: a spanning tree plus ~n/2 extra edges, a PoP
/// per router, a VIP (static + redistribute) on every third router, and
/// maintenance-policy noise. No override policies, so a correct build
/// always converges — the property-test substrate for "does the pipeline
/// hold beyond the hand-designed families".
[[nodiscard]] BuiltNetwork buildRandom(int n, unsigned seed);

}  // namespace acr::topo
