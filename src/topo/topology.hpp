// Physical topology: routers, point-to-point links (each with a /30 transfer
// subnet) and edge subnets (PoPs, DCN server ranges) attached to routers.
//
// The topology is the ground truth the configuration is supposed to match;
// the routing simulator uses it to resolve peering addresses to routers and
// to deliver packets on attached subnets.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "netcore/ipv4.hpp"
#include "netcore/prefix.hpp"

namespace acr::topo {

struct RouterDecl {
  std::string name;
  std::uint32_t asn = 0;
  net::Ipv4Address router_id;
  std::string role;  // free-form: "core", "agg", "tor", "backbone", ...
};

struct LinkDecl {
  std::string a;
  std::string b;
  net::Prefix subnet;  // /30; endpoint `a` owns .1, endpoint `b` owns .2

  [[nodiscard]] net::Ipv4Address addressOf(const std::string& router) const;
  [[nodiscard]] std::string otherEnd(const std::string& router) const;
  [[nodiscard]] bool touches(const std::string& router) const {
    return a == router || b == router;
  }
};

struct SubnetDecl {
  std::string router;  // owning router
  net::Prefix prefix;
  std::string name;  // e.g. "PoP_B"
};

class Topology {
 public:
  void addRouter(RouterDecl router);
  void addLink(LinkDecl link);
  void addSubnet(SubnetDecl subnet);

  [[nodiscard]] const std::vector<RouterDecl>& routers() const { return routers_; }
  [[nodiscard]] const std::vector<LinkDecl>& links() const { return links_; }
  [[nodiscard]] const std::vector<SubnetDecl>& subnets() const { return subnets_; }

  [[nodiscard]] const RouterDecl* findRouter(const std::string& name) const;
  [[nodiscard]] std::vector<const LinkDecl*> linksOf(const std::string& router) const;
  [[nodiscard]] std::vector<std::string> neighborsOf(const std::string& router) const;
  [[nodiscard]] std::vector<const SubnetDecl*> subnetsOf(const std::string& router) const;
  [[nodiscard]] const SubnetDecl* findSubnet(const std::string& name) const;

  /// Router owning the given peering address, if any.
  [[nodiscard]] std::optional<std::string> routerAt(net::Ipv4Address address) const;

  /// Peering address used by `router` on its link towards `neighbor`.
  [[nodiscard]] std::optional<net::Ipv4Address> peeringAddress(
      const std::string& router, const std::string& neighbor) const;

  /// Router owning the subnet that contains `address` (edge subnets only).
  [[nodiscard]] std::optional<std::string> subnetOwner(net::Ipv4Address address) const;

 private:
  std::vector<RouterDecl> routers_;
  std::vector<LinkDecl> links_;
  std::vector<SubnetDecl> subnets_;
};

}  // namespace acr::topo
