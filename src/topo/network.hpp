// A Network = topology + the per-device configurations under analysis.
//
// This is the value passed through the whole ACR pipeline: fault injection
// mutates configs, the simulator computes RIBs/FIBs from them, the verifier
// judges intents, and the repair engine edits them.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "config/ast.hpp"
#include "config/diff.hpp"
#include "topo/topology.hpp"

namespace acr::topo {

struct Network {
  Topology topology;
  std::map<std::string, cfg::DeviceConfig> configs;

  [[nodiscard]] const cfg::DeviceConfig* config(const std::string& router) const {
    const auto it = configs.find(router);
    return it == configs.end() ? nullptr : &it->second;
  }
  [[nodiscard]] cfg::DeviceConfig* config(const std::string& router) {
    const auto it = configs.find(router);
    return it == configs.end() ? nullptr : &it->second;
  }

  /// Re-numbers every device config; call after any structural edit.
  void renumberAll() {
    for (auto& [name, config] : configs) config.renumber();
  }

  /// Total configuration lines across all devices (the raw search space).
  [[nodiscard]] int totalLines() const {
    int total = 0;
    for (const auto& [name, config] : configs) total += config.lineCount();
    return total;
  }
};

/// Per-device diffs between two versions of the same network (devices whose
/// configs are identical are omitted).
[[nodiscard]] std::vector<cfg::ConfigDiff> diffNetworks(const Network& before,
                                                        const Network& after);

}  // namespace acr::topo
