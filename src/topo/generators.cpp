#include "topo/generators.hpp"

#include <algorithm>
#include <random>
#include <set>
#include <string>

namespace acr::topo {

namespace {

/// Sequential /30 transfer-subnet allocator out of 172.16.0.0/12.
class LinkAllocator {
 public:
  net::Prefix next() {
    const net::Prefix subnet(net::Ipv4Address(next_), 30);
    next_ += 4;
    return subnet;
  }

 private:
  std::uint32_t next_ = net::Ipv4Address::fromOctets(172, 16, 0, 0).value();
};

cfg::DeviceConfig& ensureRouter(BuiltNetwork& built, const std::string& name,
                                std::uint32_t asn, net::Ipv4Address router_id,
                                const std::string& role) {
  built.network.topology.addRouter(RouterDecl{name, asn, router_id, role});
  cfg::DeviceConfig device;
  device.hostname = name;
  cfg::BgpConfig bgp;
  bgp.asn = asn;
  bgp.router_id = router_id;
  bgp.redistributes.push_back(
      cfg::RedistributeConfig{cfg::RedistSource::kConnected, 0});
  device.bgp = bgp;
  auto [it, inserted] = built.network.configs.emplace(name, std::move(device));
  return it->second;
}

/// Adds a link, the two transfer interfaces and the two `peer ... as-number`
/// statements.
void connect(BuiltNetwork& built, const std::string& a, const std::string& b,
             LinkAllocator& alloc) {
  Topology& topology = built.network.topology;
  const LinkDecl link{a, b, alloc.next()};
  topology.addLink(link);
  for (const std::string& self : {a, b}) {
    const std::string other = link.otherEnd(self);
    cfg::DeviceConfig& device = *built.network.config(self);
    cfg::InterfaceConfig itf;
    itf.name = "eth" + std::to_string(device.interfaces.size());
    itf.address = link.addressOf(self);
    itf.prefix_length = 30;
    device.interfaces.push_back(itf);
    cfg::PeerConfig peer;
    peer.address = link.addressOf(other);
    peer.remote_as = topology.findRouter(other)->asn;
    device.bgp->peers.push_back(peer);
  }
}

/// Attaches a connected edge subnet (interface + topology record).
void attachConnectedSubnet(BuiltNetwork& built, const std::string& router,
                           const net::Prefix& prefix, const std::string& name,
                           bool quarantined = false) {
  built.network.topology.addSubnet(SubnetDecl{router, prefix, name});
  cfg::DeviceConfig& device = *built.network.config(router);
  cfg::InterfaceConfig itf;
  itf.name = "eth" + std::to_string(device.interfaces.size());
  itf.address = net::Ipv4Address(prefix.address().value() + 1);
  itf.prefix_length = prefix.length();
  device.interfaces.push_back(itf);
  built.subnets.push_back(
      SubnetExpectation{name, router, prefix, /*via_static=*/false, quarantined});
}

/// Attaches a subnet originated by a static route (+ redistribute static).
void attachStaticSubnet(BuiltNetwork& built, const std::string& router,
                        const net::Prefix& prefix, const std::string& name,
                        net::Ipv4Address next_hop) {
  built.network.topology.addSubnet(SubnetDecl{router, prefix, name});
  cfg::DeviceConfig& device = *built.network.config(router);
  device.static_routes.push_back(cfg::StaticRouteConfig{prefix, next_hop, 0});
  if (!device.bgp->redistributes_source(cfg::RedistSource::kStatic)) {
    device.bgp->redistributes.push_back(
        cfg::RedistributeConfig{cfg::RedistSource::kStatic, 0});
  }
  built.subnets.push_back(
      SubnetExpectation{name, router, prefix, /*via_static=*/true, false});
}

cfg::PrefixList makeList(const std::string& name,
                         const std::vector<cfg::PrefixListEntry>& entries) {
  cfg::PrefixList list;
  list.name = name;
  list.entries = entries;
  return list;
}

cfg::PrefixListEntry entryOf(int index, const net::Prefix& prefix,
                             std::uint8_t ge = 0, std::uint8_t le = 0,
                             cfg::Action action = cfg::Action::kPermit) {
  cfg::PrefixListEntry entry;
  entry.index = index;
  entry.action = action;
  entry.prefix = prefix;
  entry.greater_equal = ge;
  entry.less_equal = le;
  return entry;
}

net::Prefix pfx(std::string_view text) { return *net::Prefix::parse(text); }

/// The Figure-2 Override_All policy: rewrite the AS_PATH of routes matching
/// `list` to the local AS; let everything else through unchanged.
cfg::RoutePolicy makeOverridePolicy(const std::string& name,
                                    const std::string& list) {
  cfg::RoutePolicy policy;
  policy.name = name;
  cfg::PolicyNode rewrite;
  rewrite.index = 10;
  rewrite.action = cfg::Action::kPermit;
  rewrite.matches.push_back(cfg::PolicyMatch{cfg::MatchKind::kIpPrefixList, list, 0});
  rewrite.actions.push_back(
      cfg::PolicyAction{cfg::PolicyActionKind::kAsPathOverwrite, 0, 0});
  policy.nodes.push_back(rewrite);
  cfg::PolicyNode pass;
  pass.index = 20;
  pass.action = cfg::Action::kPermit;
  policy.nodes.push_back(pass);
  return policy;
}

/// The unbound deny-all maintenance policy found on production devices;
/// pure localization noise in the correct network, and the raw material of
/// the "fail to dis-enable route map" fault (Table 1).
cfg::RoutePolicy makeMaintPolicy() {
  cfg::RoutePolicy policy;
  policy.name = "MAINT";
  cfg::PolicyNode deny;
  deny.index = 10;
  deny.action = cfg::Action::kDeny;
  policy.nodes.push_back(deny);
  return policy;
}

}  // namespace

// ===========================================================================
// Figure 2: the paper's incident network
// ===========================================================================

BuiltNetwork buildFigure2() {
  BuiltNetwork built;
  LinkAllocator alloc;

  // Router-ids are chosen so the decision-process tiebreak (lowest peer
  // router-id) matches the incident narrative: S wins ties at C, A wins ties
  // at S.
  ensureRouter(built, "A", 65001, net::Ipv4Address::fromOctets(1, 1, 1, 2),
               "backbone");
  ensureRouter(built, "B", 65002, net::Ipv4Address::fromOctets(1, 1, 1, 3),
               "backbone");
  ensureRouter(built, "C", 65003, net::Ipv4Address::fromOctets(1, 1, 1, 4),
               "backbone");
  ensureRouter(built, "S", 65004, net::Ipv4Address::fromOctets(1, 1, 1, 1),
               "backbone");

  connect(built, "A", "B", alloc);
  connect(built, "B", "C", alloc);
  connect(built, "C", "S", alloc);  // the new session that triggered the flap
  connect(built, "S", "A", alloc);

  attachConnectedSubnet(built, "A", pfx("10.70.0.0/16"), "PoP_A");
  attachConnectedSubnet(built, "B", pfx("10.0.0.0/16"), "PoP_B");
  attachConnectedSubnet(built, "S", pfx("20.0.0.0/16"), "DCN_S");

  // A rewrites routes imported from S, intended scope: the regional
  // aggregates 10.70/16 (its PoP) and 20.0/16 (the DCN behind S).
  {
    cfg::DeviceConfig& a = *built.network.config("A");
    a.prefix_lists.push_back(makeList(
        "default_all", {entryOf(10, pfx("10.70.0.0/16"), 16, 32),
                        entryOf(20, pfx("20.0.0.0/16"), 16, 32)}));
    a.policies.push_back(makeOverridePolicy("Override_All", "default_all"));
    a.bgp->findPeer(built.network.topology.peeringAddress("S", "A").value())
        ->import_policy = "Override_All";
  }
  // C rewrites routes imported from S, intended scope: the DCN 20.0/16.
  {
    cfg::DeviceConfig& c = *built.network.config("C");
    c.prefix_lists.push_back(
        makeList("default_all", {entryOf(10, pfx("20.0.0.0/16"), 16, 32)}));
    c.policies.push_back(makeOverridePolicy("Override_All", "default_all"));
    c.bgp->findPeer(built.network.topology.peeringAddress("S", "C").value())
        ->import_policy = "Override_All";
  }
  // B and S carry the same policy pattern toward their PoP/DCN CE sessions,
  // which this model does not represent as BGP peers; the definitions remain
  // as (realistic) unbound configuration.
  {
    cfg::DeviceConfig& b = *built.network.config("B");
    b.prefix_lists.push_back(
        makeList("default_all", {entryOf(10, pfx("10.0.0.0/16"), 16, 32)}));
    b.policies.push_back(makeOverridePolicy("Override_All", "default_all"));
    cfg::DeviceConfig& s = *built.network.config("S");
    s.prefix_lists.push_back(
        makeList("default_all", {entryOf(10, pfx("20.0.0.0/16"), 16, 32)}));
    s.policies.push_back(makeOverridePolicy("Override_All", "default_all"));
  }

  built.network.renumberAll();
  return built;
}

BuiltNetwork buildFigure2Faulty() {
  BuiltNetwork built = buildFigure2();
  // The incident configuration: `default_all` is the catch-all "0.0.0.0 0"
  // (Figure 2b line 11), so the override applies to *every* route imported
  // from S — including 10.0/16, whose AS_PATH history it erases.
  for (const std::string router : {"A", "C"}) {
    cfg::PrefixList* list = built.network.config(router)->findPrefixList("default_all");
    list->entries.clear();
    list->entries.push_back(entryOf(10, pfx("0.0.0.0/0")));
  }
  built.network.renumberAll();
  return built;
}

// ===========================================================================
// 3-tier Clos DCN
// ===========================================================================

BuiltNetwork buildDcn(int pods, int tors_per_pod) {
  BuiltNetwork built;
  LinkAllocator alloc;

  const int cores = 2;
  for (int i = 1; i <= cores; ++i) {
    ensureRouter(built, "core" + std::to_string(i), 64500 + i,
                 net::Ipv4Address::fromOctets(1, 0, 0, std::uint8_t(i)), "core");
  }

  std::uint32_t next_asn = 64512;
  for (int p = 1; p <= pods; ++p) {
    // The last pod is a "legacy" single-aggregation pod — the paper notes
    // that multiple generations of architectures coexist; legacy pods have
    // no redundancy, which is where single-line faults become visible.
    const bool legacy = (p == pods && pods >= 2);
    const int aggs = legacy ? 1 : 2;
    std::vector<std::string> agg_names;
    for (int j = 1; j <= aggs; ++j) {
      const std::string name =
          "agg" + std::to_string(p) + (j == 1 ? "a" : "b");
      ensureRouter(built, name, next_asn++,
                   net::Ipv4Address::fromOctets(2, std::uint8_t(p),
                                                std::uint8_t(j), 1),
                   legacy ? "agg-legacy" : "agg");
      agg_names.push_back(name);
      for (int i = 1; i <= cores; ++i) {
        connect(built, name, "core" + std::to_string(i), alloc);
      }
    }

    // Per-pod import filter: drop quarantined routes, accept only this pod's
    // aggregates; everything else from a ToR is denied (default deny).
    for (const std::string& agg : agg_names) {
      cfg::DeviceConfig& device = *built.network.config(agg);
      device.prefix_lists.push_back(makeList(
          "QUAR", {entryOf(10, pfx("30.0.0.0/16"), 16, 32)}));
      device.prefix_lists.push_back(makeList(
          "POD_LOCAL",
          {entryOf(10, net::Prefix(net::Ipv4Address::fromOctets(
                                       10, std::uint8_t(p), 0, 0),
                                   16),
                   16, 32),
           entryOf(20, net::Prefix(net::Ipv4Address::fromOctets(
                                       20, std::uint8_t(p), 0, 0),
                                   16),
                   16, 32)}));
      cfg::RoutePolicy tor_in;
      tor_in.name = "TOR_IN";
      cfg::PolicyNode quarantine;
      quarantine.index = 5;
      quarantine.action = cfg::Action::kDeny;
      quarantine.matches.push_back(
          cfg::PolicyMatch{cfg::MatchKind::kIpPrefixList, "QUAR", 0});
      tor_in.nodes.push_back(quarantine);
      cfg::PolicyNode pod_local;
      pod_local.index = 10;
      pod_local.action = cfg::Action::kPermit;
      pod_local.matches.push_back(
          cfg::PolicyMatch{cfg::MatchKind::kIpPrefixList, "POD_LOCAL", 0});
      tor_in.nodes.push_back(pod_local);
      device.policies.push_back(tor_in);
      device.policies.push_back(makeMaintPolicy());
      device.bgp->groups.push_back(
          cfg::PeerGroupConfig{"TORS", 0, "TOR_IN", 0, "", 0});
    }

    for (int t = 1; t <= tors_per_pod; ++t) {
      const std::string tor =
          "tor" + std::to_string(p) + "_" + std::to_string(t);
      ensureRouter(built, tor, next_asn++,
                   net::Ipv4Address::fromOctets(3, std::uint8_t(p),
                                                std::uint8_t(t), 1),
                   legacy ? "tor-legacy" : "tor");
      for (const std::string& agg : agg_names) {
        connect(built, tor, agg, alloc);
        // Enrol the ToR in the agg's TORS peer group.
        cfg::DeviceConfig& agg_device = *built.network.config(agg);
        agg_device.bgp->findPeer(
            built.network.topology.peeringAddress(tor, agg).value())
            ->group = "TORS";
      }

      const net::Prefix servers(
          net::Ipv4Address::fromOctets(10, std::uint8_t(p), std::uint8_t(t), 0),
          24);
      attachConnectedSubnet(built, tor, servers,
                            "servers_" + std::to_string(p) + "_" +
                                std::to_string(t));

      // The first ToR of each pod hosts a VIP range reachable through a
      // static route to a load-balancer host, redistributed into BGP.
      if (t == 1) {
        const net::Prefix vip(
            net::Ipv4Address::fromOctets(20, std::uint8_t(p), 1, 0), 24);
        attachStaticSubnet(built, tor, vip, "vip_" + std::to_string(p),
                           net::Ipv4Address(servers.address().value() + 10));
      }

      // Edge PBR: permit fabric and VIP traffic plus the quarantine range
      // (quarantine isolation is enforced by the agg route filters), deny
      // the rest.
      cfg::PbrPolicy edge;
      edge.name = "EDGE";
      cfg::PbrRule r10;
      r10.index = 10;
      r10.action = cfg::PbrAction::kPermit;
      r10.destination = pfx("10.0.0.0/8");
      edge.rules.push_back(r10);
      cfg::PbrRule r15;
      r15.index = 15;
      r15.action = cfg::PbrAction::kPermit;
      r15.destination = pfx("30.0.0.0/16");
      edge.rules.push_back(r15);
      cfg::PbrRule r20;
      r20.index = 20;
      r20.action = cfg::PbrAction::kPermit;
      r20.destination = pfx("20.0.0.0/8");
      edge.rules.push_back(r20);
      cfg::PbrRule r30;
      r30.index = 30;
      r30.action = cfg::PbrAction::kDeny;
      edge.rules.push_back(r30);
      cfg::DeviceConfig& tor_device = *built.network.config(tor);
      tor_device.pbr_policies.push_back(edge);
      tor_device.policies.push_back(makeMaintPolicy());
    }
  }

  // Quarantine subnet on the last ToR of the first pod: advertised by its
  // owner but filtered at the aggregation layer, so it must stay unreachable.
  {
    const std::string host = "tor1_" + std::to_string(tors_per_pod);
    attachConnectedSubnet(built, host, pfx("30.0.0.0/16"), "quarantine",
                          /*quarantined=*/true);
  }

  built.network.renumberAll();
  return built;
}

// ===========================================================================
// WAN backbone
// ===========================================================================

BuiltNetwork buildBackbone(int n) {
  BuiltNetwork built;
  LinkAllocator alloc;

  for (int i = 1; i <= n; ++i) {
    ensureRouter(built, "R" + std::to_string(i), 65000 + i,
                 net::Ipv4Address::fromOctets(1, 1, std::uint8_t(i / 256),
                                              std::uint8_t(i % 256)),
                 "backbone");
  }
  for (int i = 1; i <= n; ++i) {
    connect(built, "R" + std::to_string(i),
            "R" + std::to_string(i % n + 1), alloc);  // ring
  }
  for (int i = 1; i + 2 <= n; i += 2) {
    connect(built, "R" + std::to_string(i), "R" + std::to_string(i + 2),
            alloc);  // chords
  }

  for (int i = 1; i <= n; ++i) {
    const std::string name = "R" + std::to_string(i);
    const net::Prefix pop(
        net::Ipv4Address::fromOctets(10, std::uint8_t(i % 256), 0, 0), 16);
    attachConnectedSubnet(built, name, pop, "pop_" + std::to_string(i));
    if (i % 3 == 1) {
      const net::Prefix vip(
          net::Ipv4Address::fromOctets(20, std::uint8_t(i % 256), 0, 0), 16);
      attachStaticSubnet(built, name, vip, "vip_" + std::to_string(i),
                         net::Ipv4Address(pop.address().value() + 10));
    }
    built.network.config(name)->policies.push_back(makeMaintPolicy());
  }

  // Regional override policies on chord sessions, Figure-2 style: each chord
  // endpoint rewrites the AS_PATH of the *partner region's* prefixes.
  for (int i = 1; i + 2 <= n; i += 2) {
    const int j = i + 2;
    for (const auto& [self, other] : {std::pair{i, j}, std::pair{j, i}}) {
      const std::string self_name = "R" + std::to_string(self);
      const std::string other_name = "R" + std::to_string(other);
      cfg::DeviceConfig& device = *built.network.config(self_name);
      std::vector<cfg::PrefixListEntry> entries = {
          entryOf(10,
                  net::Prefix(net::Ipv4Address::fromOctets(
                                  10, std::uint8_t(other % 256), 0, 0),
                              16),
                  16, 32)};
      if (other % 3 == 1) {
        entries.push_back(
            entryOf(20,
                    net::Prefix(net::Ipv4Address::fromOctets(
                                    20, std::uint8_t(other % 256), 0, 0),
                                16),
                    16, 32));
      }
      device.prefix_lists.push_back(makeList("REGION", entries));
      device.policies.push_back(
          makeOverridePolicy("Override_Region", "REGION"));
      device.bgp
          ->findPeer(built.network.topology.peeringAddress(other_name, self_name)
                         .value())
          ->import_policy = "Override_Region";
    }
  }

  // Private range on the last router, guarded by an export policy bound on
  // every session. The guard policy and its prefix-list are part of the
  // org-wide base config (defined on every router, bound only where a
  // private range exists) — which is what makes the plastic-surgery repair
  // of a deleted policy possible.
  for (int i = 1; i <= n; ++i) {
    cfg::DeviceConfig& device = *built.network.config("R" + std::to_string(i));
    device.prefix_lists.push_back(
        makeList("PRIVATE", {entryOf(10, pfx("30.0.0.0/16"), 16, 32)}));
    cfg::RoutePolicy guard;
    guard.name = "EXPORT_GUARD";
    cfg::PolicyNode deny;
    deny.index = 5;
    deny.action = cfg::Action::kDeny;
    deny.matches.push_back(
        cfg::PolicyMatch{cfg::MatchKind::kIpPrefixList, "PRIVATE", 0});
    guard.nodes.push_back(deny);
    cfg::PolicyNode pass;
    pass.index = 10;
    pass.action = cfg::Action::kPermit;
    guard.nodes.push_back(pass);
    device.policies.push_back(guard);
  }
  {
    const std::string name = "R" + std::to_string(n);
    attachConnectedSubnet(built, name, pfx("30.0.0.0/16"), "private",
                          /*quarantined=*/true);
    cfg::DeviceConfig& device = *built.network.config(name);
    for (auto& peer : device.bgp->peers) peer.export_policy = "EXPORT_GUARD";
  }

  built.network.renumberAll();
  return built;
}

// ===========================================================================
// Random connected network (property-test substrate)
// ===========================================================================

BuiltNetwork buildRandom(int n, unsigned seed) {
  BuiltNetwork built;
  LinkAllocator alloc;
  std::mt19937 rng(seed);

  for (int i = 1; i <= n; ++i) {
    ensureRouter(built, "N" + std::to_string(i), 64000 + i,
                 net::Ipv4Address::fromOctets(9, std::uint8_t(i / 256),
                                              std::uint8_t(i % 256), 1),
                 "random");
  }

  // Spanning tree first (guarantees connectivity), then extra chords.
  std::set<std::pair<int, int>> edges;
  for (int i = 2; i <= n; ++i) {
    std::uniform_int_distribution<int> pick(1, i - 1);
    const int j = pick(rng);
    edges.insert({j, i});
    connect(built, "N" + std::to_string(j), "N" + std::to_string(i), alloc);
  }
  const int extra = n / 2;
  std::uniform_int_distribution<int> any(1, n);
  for (int e = 0; e < extra; ++e) {
    const int a = any(rng);
    const int b = any(rng);
    if (a == b) continue;
    const auto edge = std::minmax(a, b);
    if (!edges.insert({edge.first, edge.second}).second) continue;
    connect(built, "N" + std::to_string(edge.first),
            "N" + std::to_string(edge.second), alloc);
  }

  for (int i = 1; i <= n; ++i) {
    const std::string name = "N" + std::to_string(i);
    const net::Prefix pop(
        net::Ipv4Address::fromOctets(10, std::uint8_t(i % 256), 0, 0), 16);
    attachConnectedSubnet(built, name, pop, "net_" + std::to_string(i));
    if (i % 3 == 0) {
      const net::Prefix vip(
          net::Ipv4Address::fromOctets(20, std::uint8_t(i % 256), 0, 0), 16);
      attachStaticSubnet(built, name, vip, "svc_" + std::to_string(i),
                         net::Ipv4Address(pop.address().value() + 10));
    }
    if (i % 4 == 0) {
      built.network.config(name)->policies.push_back(makeMaintPolicy());
    }
  }

  built.network.renumberAll();
  return built;
}

}  // namespace acr::topo
