#include "topo/topology.hpp"

namespace acr::topo {

net::Ipv4Address LinkDecl::addressOf(const std::string& router) const {
  const std::uint32_t base = subnet.address().value();
  if (router == a) return net::Ipv4Address(base + 1);
  if (router == b) return net::Ipv4Address(base + 2);
  return net::Ipv4Address(0);
}

std::string LinkDecl::otherEnd(const std::string& router) const {
  if (router == a) return b;
  if (router == b) return a;
  return {};
}

void Topology::addRouter(RouterDecl router) {
  routers_.push_back(std::move(router));
}

void Topology::addLink(LinkDecl link) { links_.push_back(std::move(link)); }

void Topology::addSubnet(SubnetDecl subnet) {
  subnets_.push_back(std::move(subnet));
}

const RouterDecl* Topology::findRouter(const std::string& name) const {
  for (const auto& router : routers_) {
    if (router.name == name) return &router;
  }
  return nullptr;
}

std::vector<const LinkDecl*> Topology::linksOf(const std::string& router) const {
  std::vector<const LinkDecl*> result;
  for (const auto& link : links_) {
    if (link.touches(router)) result.push_back(&link);
  }
  return result;
}

std::vector<std::string> Topology::neighborsOf(const std::string& router) const {
  std::vector<std::string> result;
  for (const auto& link : links_) {
    if (link.touches(router)) result.push_back(link.otherEnd(router));
  }
  return result;
}

std::vector<const SubnetDecl*> Topology::subnetsOf(
    const std::string& router) const {
  std::vector<const SubnetDecl*> result;
  for (const auto& subnet : subnets_) {
    if (subnet.router == router) result.push_back(&subnet);
  }
  return result;
}

const SubnetDecl* Topology::findSubnet(const std::string& name) const {
  for (const auto& subnet : subnets_) {
    if (subnet.name == name) return &subnet;
  }
  return nullptr;
}

std::optional<std::string> Topology::routerAt(net::Ipv4Address address) const {
  for (const auto& link : links_) {
    if (link.addressOf(link.a) == address) return link.a;
    if (link.addressOf(link.b) == address) return link.b;
  }
  return std::nullopt;
}

std::optional<net::Ipv4Address> Topology::peeringAddress(
    const std::string& router, const std::string& neighbor) const {
  for (const auto& link : links_) {
    if ((link.a == router && link.b == neighbor) ||
        (link.b == router && link.a == neighbor)) {
      return link.addressOf(router);
    }
  }
  return std::nullopt;
}

std::optional<std::string> Topology::subnetOwner(net::Ipv4Address address) const {
  for (const auto& subnet : subnets_) {
    if (subnet.prefix.contains(address)) return subnet.router;
  }
  return std::nullopt;
}

}  // namespace acr::topo
