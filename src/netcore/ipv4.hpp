// IPv4 address value type used throughout ACR.
//
// Addresses are stored in host byte order so arithmetic (masking, ranges,
// trie walks) is plain integer arithmetic. Parsing accepts full dotted-quad
// notation as well as the abbreviated forms that appear in the paper and in
// operator shorthand ("10.0" == 10.0.0.0).
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace acr::net {

class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  explicit constexpr Ipv4Address(std::uint32_t host_order) : value_(host_order) {}

  /// Builds an address from its four octets, most significant first.
  static constexpr Ipv4Address fromOctets(std::uint8_t a, std::uint8_t b,
                                          std::uint8_t c, std::uint8_t d) {
    return Ipv4Address((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
                       (std::uint32_t{c} << 8) | std::uint32_t{d});
  }

  /// Parses "a.b.c.d". Abbreviated forms "a", "a.b" and "a.b.c" are accepted
  /// and right-padded with zero octets ("10.70" -> 10.70.0.0), matching the
  /// notation used in the paper (e.g. "10.0/16"). Returns nullopt on any
  /// malformed input; never throws.
  [[nodiscard]] static std::optional<Ipv4Address> parse(std::string_view text);

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }

  /// Dotted-quad rendering, always four octets.
  [[nodiscard]] std::string str() const;

  friend constexpr auto operator<=>(Ipv4Address, Ipv4Address) = default;

 private:
  std::uint32_t value_ = 0;
};

}  // namespace acr::net
