#include "netcore/ipv4.hpp"

#include <charconv>

namespace acr::net {

std::optional<Ipv4Address> Ipv4Address::parse(std::string_view text) {
  if (text.empty()) return std::nullopt;
  std::uint32_t value = 0;
  int octets = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t dot = text.find('.', pos);
    const std::string_view part =
        text.substr(pos, dot == std::string_view::npos ? dot : dot - pos);
    if (part.empty() || part.size() > 3) return std::nullopt;
    unsigned octet = 0;
    const auto [ptr, ec] =
        std::from_chars(part.data(), part.data() + part.size(), octet);
    if (ec != std::errc{} || ptr != part.data() + part.size() || octet > 255) {
      return std::nullopt;
    }
    if (++octets > 4) return std::nullopt;
    value = (value << 8) | octet;
    if (dot == std::string_view::npos) break;
    pos = dot + 1;
  }
  // Right-pad abbreviated forms: "10.70" denotes 10.70.0.0.
  value <<= 8 * (4 - octets);
  return Ipv4Address(value);
}

std::string Ipv4Address::str() const {
  std::string out;
  out.reserve(15);
  for (int shift = 24; shift >= 0; shift -= 8) {
    out += std::to_string((value_ >> shift) & 0xFF);
    if (shift != 0) out += '.';
  }
  return out;
}

}  // namespace acr::net
