// Packet header 5-tuple and deterministic header-space sampling.
//
// Intents in the verifier describe header spaces; the SBFL test generator
// samples one concrete packet per intent from that space (§4.1 of the paper).
#pragma once

#include <compare>
#include <cstdint>
#include <string>

#include "netcore/ipv4.hpp"
#include "netcore/prefix.hpp"

namespace acr::net {

enum class Protocol : std::uint8_t {
  kAny = 0,
  kIcmp = 1,
  kTcp = 6,
  kUdp = 17,
};

[[nodiscard]] std::string protocolName(Protocol protocol);

struct FiveTuple {
  Ipv4Address src;
  Ipv4Address dst;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  Protocol protocol = Protocol::kAny;

  friend auto operator<=>(const FiveTuple&, const FiveTuple&) = default;

  [[nodiscard]] std::string str() const;
};

/// Header space of an intent: source and destination prefixes plus an
/// optional protocol/port restriction.
struct HeaderSpace {
  Prefix src_space;
  Prefix dst_space;
  Protocol protocol = Protocol::kAny;
  std::uint16_t dst_port = 0;  // 0 = any

  [[nodiscard]] bool matches(const FiveTuple& packet) const;

  /// Deterministic sample: a representative packet from the space, seeded so
  /// repeated sampling with distinct seeds spreads across the space.
  [[nodiscard]] FiveTuple sample(std::uint64_t seed = 0) const;

  [[nodiscard]] std::string str() const;

  friend auto operator<=>(const HeaderSpace&, const HeaderSpace&) = default;
};

}  // namespace acr::net
