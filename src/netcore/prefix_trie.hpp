// Binary prefix trie with longest-prefix match, the core lookup structure of
// FIBs and prefix-list evaluation.
//
// Header-only template. Values are stored per exact prefix; lookups return
// the value of the longest inserted prefix containing the query address.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "netcore/ipv4.hpp"
#include "netcore/prefix.hpp"

namespace acr::net {

template <typename T>
class PrefixTrie {
 public:
  PrefixTrie() : root_(std::make_unique<Node>()) {}

  PrefixTrie(const PrefixTrie& other) : root_(cloneNode(other.root_.get())) {
    size_ = other.size_;
  }
  PrefixTrie& operator=(const PrefixTrie& other) {
    if (this != &other) {
      root_ = cloneNode(other.root_.get());
      size_ = other.size_;
    }
    return *this;
  }
  PrefixTrie(PrefixTrie&&) noexcept = default;
  PrefixTrie& operator=(PrefixTrie&&) noexcept = default;

  /// Inserts or replaces the value at `prefix`. Returns true when the prefix
  /// was not present before.
  bool insert(const Prefix& prefix, T value) {
    Node* node = descend(prefix, /*create=*/true);
    const bool fresh = !node->value.has_value();
    node->value = std::move(value);
    if (fresh) ++size_;
    return fresh;
  }

  /// Removes the value at exactly `prefix`; returns true when one existed.
  bool erase(const Prefix& prefix) {
    Node* node = descend(prefix, /*create=*/false);
    if (node == nullptr || !node->value.has_value()) return false;
    node->value.reset();
    --size_;
    return true;
  }

  [[nodiscard]] const T* exactMatch(const Prefix& prefix) const {
    const Node* node = descendConst(prefix);
    return (node != nullptr && node->value) ? &*node->value : nullptr;
  }

  [[nodiscard]] T* exactMatch(const Prefix& prefix) {
    Node* node = descend(prefix, /*create=*/false);
    return (node != nullptr && node->value) ? &*node->value : nullptr;
  }

  /// Longest-prefix match: value of the longest inserted prefix containing
  /// `address`, or nullptr when no prefix matches.
  [[nodiscard]] const T* longestMatch(Ipv4Address address) const {
    const Node* node = root_.get();
    const T* best = node->value ? &*node->value : nullptr;
    for (int bit = 31; bit >= 0 && node != nullptr; --bit) {
      const std::size_t side = (address.value() >> bit) & 1U;
      node = node->child[side].get();
      if (node != nullptr && node->value) best = &*node->value;
    }
    return best;
  }

  /// Matched prefix alongside the value.
  [[nodiscard]] std::optional<std::pair<Prefix, T>> longestMatchEntry(
      Ipv4Address address) const {
    const Node* node = root_.get();
    std::optional<std::pair<Prefix, T>> best;
    if (node->value) best = {Prefix(Ipv4Address(0), 0), *node->value};
    std::uint32_t bits = 0;
    for (int depth = 1; depth <= 32; ++depth) {
      const std::size_t side = (address.value() >> (32 - depth)) & 1U;
      node = node->child[side].get();
      if (node == nullptr) break;
      bits = (bits << 1) | static_cast<std::uint32_t>(side);
      if (node->value) {
        best = {Prefix(Ipv4Address(bits << (32 - depth)),
                       static_cast<std::uint8_t>(depth)),
                *node->value};
      }
    }
    return best;
  }

  /// Visits every (prefix, value) pair in address order.
  void visit(const std::function<void(const Prefix&, const T&)>& fn) const {
    visitNode(root_.get(), 0, 0, fn);
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  void clear() {
    root_ = std::make_unique<Node>();
    size_ = 0;
  }

 private:
  struct Node {
    std::optional<T> value;
    std::unique_ptr<Node> child[2];
  };

  static std::unique_ptr<Node> cloneNode(const Node* node) {
    auto copy = std::make_unique<Node>();
    copy->value = node->value;
    for (int i = 0; i < 2; ++i) {
      if (node->child[i]) copy->child[i] = cloneNode(node->child[i].get());
    }
    return copy;
  }

  Node* descend(const Prefix& prefix, bool create) {
    Node* node = root_.get();
    for (int depth = 1; depth <= prefix.length(); ++depth) {
      const std::size_t side =
          (prefix.address().value() >> (32 - depth)) & 1U;
      if (!node->child[side]) {
        if (!create) return nullptr;
        node->child[side] = std::make_unique<Node>();
      }
      node = node->child[side].get();
    }
    return node;
  }

  [[nodiscard]] const Node* descendConst(const Prefix& prefix) const {
    const Node* node = root_.get();
    for (int depth = 1; depth <= prefix.length(); ++depth) {
      const std::size_t side =
          (prefix.address().value() >> (32 - depth)) & 1U;
      node = node->child[side].get();
      if (node == nullptr) return nullptr;
    }
    return node;
  }

  static void visitNode(const Node* node, std::uint32_t bits, int depth,
                        const std::function<void(const Prefix&, const T&)>& fn) {
    if (node == nullptr) return;
    if (node->value) {
      fn(Prefix(Ipv4Address(depth == 0 ? 0 : bits << (32 - depth)),
                static_cast<std::uint8_t>(depth)),
         *node->value);
    }
    for (std::size_t side = 0; side < 2; ++side) {
      visitNode(node->child[side].get(), (bits << 1) | side, depth + 1, fn);
    }
  }

  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
};

}  // namespace acr::net
