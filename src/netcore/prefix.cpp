#include "netcore/prefix.hpp"

#include <algorithm>
#include <charconv>

namespace acr::net {

std::optional<Prefix> Prefix::parse(std::string_view text) {
  const std::size_t slash = text.find('/');
  const std::string_view addr_part =
      slash == std::string_view::npos ? text : text.substr(0, slash);
  const auto address = Ipv4Address::parse(addr_part);
  if (!address) return std::nullopt;
  unsigned length = 32;
  if (slash != std::string_view::npos) {
    const std::string_view len_part = text.substr(slash + 1);
    const auto [ptr, ec] = std::from_chars(
        len_part.data(), len_part.data() + len_part.size(), length);
    if (ec != std::errc{} || ptr != len_part.data() + len_part.size() ||
        length > 32) {
      return std::nullopt;
    }
  }
  return Prefix(*address, static_cast<std::uint8_t>(length));
}

std::pair<Prefix, Prefix> Prefix::children() const {
  const auto child_len = static_cast<std::uint8_t>(length_ + 1);
  const std::uint32_t high_bit = 1U << (32 - child_len);
  return {Prefix(address_, child_len),
          Prefix(Ipv4Address(address_.value() | high_bit), child_len)};
}

std::string Prefix::str() const {
  return address_.str() + '/' + std::to_string(length_);
}

std::vector<Prefix> subtract(const Prefix& from, const Prefix& remove) {
  if (remove.contains(from)) return {};
  if (!from.contains(remove)) return {from};
  // `remove` is a strict sub-prefix: walk from `from` toward `remove`,
  // emitting the sibling of each step — those siblings exactly cover
  // from \ remove.
  std::vector<Prefix> result;
  Prefix current = from;
  while (current.length() < remove.length()) {
    const auto [left, right] = current.children();
    if (left.contains(remove)) {
      result.push_back(right);
      current = left;
    } else {
      result.push_back(left);
      current = right;
    }
  }
  std::sort(result.begin(), result.end(),
            [](const Prefix& a, const Prefix& b) {
              return a.address() < b.address();
            });
  return result;
}

std::vector<Prefix> subtract(const Prefix& from,
                             std::span<const Prefix> removes) {
  std::vector<Prefix> remaining{from};
  for (const Prefix& remove : removes) {
    std::vector<Prefix> next;
    for (const Prefix& piece : remaining) {
      auto pieces = subtract(piece, remove);
      next.insert(next.end(), pieces.begin(), pieces.end());
    }
    remaining = std::move(next);
  }
  return minimizeCover(std::move(remaining));
}

std::vector<Prefix> minimizeCover(std::vector<Prefix> prefixes) {
  if (prefixes.empty()) return prefixes;
  bool changed = true;
  while (changed) {
    changed = false;
    std::sort(prefixes.begin(), prefixes.end(),
              [](const Prefix& a, const Prefix& b) {
                return a.address() != b.address()
                           ? a.address() < b.address()
                           : a.length() < b.length();
              });
    std::vector<Prefix> next;
    for (const Prefix& p : prefixes) {
      if (!next.empty() && next.back().contains(p)) {
        changed = true;  // drop contained prefix
        continue;
      }
      if (!next.empty() && next.back().length() == p.length() &&
          p.length() > 0) {
        const Prefix parent(next.back().address(),
                            static_cast<std::uint8_t>(p.length() - 1));
        if (parent.contains(next.back()) && parent.contains(p) &&
            next.back() != p) {
          next.back() = parent;  // merge sibling pair
          changed = true;
          continue;
        }
      }
      next.push_back(p);
    }
    prefixes = std::move(next);
  }
  return prefixes;
}

}  // namespace acr::net
