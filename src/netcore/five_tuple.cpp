#include "netcore/five_tuple.hpp"

namespace acr::net {

std::string protocolName(Protocol protocol) {
  switch (protocol) {
    case Protocol::kAny:
      return "any";
    case Protocol::kIcmp:
      return "icmp";
    case Protocol::kTcp:
      return "tcp";
    case Protocol::kUdp:
      return "udp";
  }
  return "proto-" + std::to_string(static_cast<int>(protocol));
}

std::string FiveTuple::str() const {
  return protocolName(protocol) + ' ' + src.str() + ':' +
         std::to_string(src_port) + " -> " + dst.str() + ':' +
         std::to_string(dst_port);
}

bool HeaderSpace::matches(const FiveTuple& packet) const {
  if (!src_space.contains(packet.src)) return false;
  if (!dst_space.contains(packet.dst)) return false;
  if (protocol != Protocol::kAny && packet.protocol != protocol) return false;
  if (dst_port != 0 && packet.dst_port != dst_port) return false;
  return true;
}

FiveTuple HeaderSpace::sample(std::uint64_t seed) const {
  // SplitMix64 step: cheap, deterministic, well spread.
  auto mix = [](std::uint64_t x) {
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
  };
  const std::uint64_t r = mix(seed + 1);
  FiveTuple packet;
  const std::uint32_t src_host_bits = ~src_space.mask();
  const std::uint32_t dst_host_bits = ~dst_space.mask();
  packet.src = Ipv4Address(src_space.address().value() |
                           (static_cast<std::uint32_t>(r) & src_host_bits));
  packet.dst = Ipv4Address(dst_space.address().value() |
                           (static_cast<std::uint32_t>(r >> 32) & dst_host_bits));
  packet.protocol = protocol == Protocol::kAny ? Protocol::kTcp : protocol;
  packet.src_port = static_cast<std::uint16_t>(1024 + (r % 50000));
  packet.dst_port = dst_port != 0 ? dst_port : 80;
  return packet;
}

std::string HeaderSpace::str() const {
  std::string out = src_space.str() + " -> " + dst_space.str();
  if (protocol != Protocol::kAny) out += ' ' + protocolName(protocol);
  if (dst_port != 0) out += ":" + std::to_string(dst_port);
  return out;
}

}  // namespace acr::net
