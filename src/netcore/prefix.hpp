// IPv4 prefixes and exact prefix arithmetic.
//
// Prefixes are canonical (host bits masked off). Besides the usual
// containment/overlap queries, this module provides exact prefix
// *subtraction*, which the fix-generation solver (acr::smt) relies on: when a
// required super-prefix contains a forbidden sub-prefix, the super-prefix is
// split into the minimal set of prefixes covering everything but the
// forbidden part.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "netcore/ipv4.hpp"

namespace acr::net {

class Prefix {
 public:
  /// Default prefix is 0.0.0.0/0 (the full address space).
  constexpr Prefix() = default;

  /// Canonicalizes: host bits beyond `length` are cleared.
  constexpr Prefix(Ipv4Address address, std::uint8_t length)
      : length_(length > 32 ? 32 : length),
        address_(Ipv4Address(address.value() & maskFor(length_))) {}

  /// Parses "10.0.0.0/16", the paper's shorthand "10.0/16", or a bare address
  /// (treated as /32). Returns nullopt on malformed input.
  [[nodiscard]] static std::optional<Prefix> parse(std::string_view text);

  [[nodiscard]] constexpr Ipv4Address address() const { return address_; }
  [[nodiscard]] constexpr std::uint8_t length() const { return length_; }
  [[nodiscard]] constexpr std::uint32_t mask() const { return maskFor(length_); }

  [[nodiscard]] constexpr bool contains(Ipv4Address a) const {
    return (a.value() & mask()) == address_.value();
  }
  /// True when every address of `other` lies inside this prefix.
  [[nodiscard]] constexpr bool contains(const Prefix& other) const {
    return length_ <= other.length_ && contains(other.address_);
  }
  [[nodiscard]] constexpr bool overlaps(const Prefix& other) const {
    return contains(other) || other.contains(*this);
  }

  [[nodiscard]] constexpr Ipv4Address firstAddress() const { return address_; }
  [[nodiscard]] constexpr Ipv4Address lastAddress() const {
    return Ipv4Address(address_.value() | ~mask());
  }

  /// The two child prefixes of length+1. Precondition: length() < 32.
  [[nodiscard]] std::pair<Prefix, Prefix> children() const;

  /// "10.0.0.0/16" rendering.
  [[nodiscard]] std::string str() const;

  friend constexpr auto operator<=>(const Prefix&, const Prefix&) = default;

 private:
  static constexpr std::uint32_t maskFor(std::uint8_t length) {
    return length == 0 ? 0U : ~std::uint32_t{0} << (32 - length);
  }

  std::uint8_t length_ = 0;
  Ipv4Address address_{};
};

/// Exact set difference `from \ remove` as a minimal list of prefixes,
/// ordered by address. Empty when `remove` covers `from`; {from} when they
/// are disjoint.
[[nodiscard]] std::vector<Prefix> subtract(const Prefix& from, const Prefix& remove);

/// Set difference against a list of prefixes to remove.
[[nodiscard]] std::vector<Prefix> subtract(const Prefix& from,
                                           std::span<const Prefix> removes);

/// Collapses a prefix list: drops prefixes contained in another and merges
/// sibling pairs into their parent, repeatedly, yielding a minimal cover of
/// the same address set.
[[nodiscard]] std::vector<Prefix> minimizeCover(std::vector<Prefix> prefixes);

}  // namespace acr::net
