#include "smt/solver.hpp"

#include <algorithm>
#include <limits>
#include <span>

#include "obs/record.hpp"
#include "obs/trace.hpp"

namespace acr::smt {

namespace {

std::string renderCover(const std::vector<net::Prefix>& cover) {
  std::string rendered;
  for (const auto& prefix : cover) {
    if (!rendered.empty()) rendered += ",";
    rendered += prefix.str();
  }
  return rendered.empty() ? "(empty)" : rendered;
}

// Queries fire only on the engine thread (FIX is sequential), so recording
// them here — via the thread-local recorder the engine installed — keeps
// the event order deterministic.
void recordQuery(const Solver& solver, const SolveResult& result) {
  obs::FlightRecorder* recorder = obs::currentRecorder();
  if (recorder == nullptr) return;
  std::vector<std::string> constraints;
  constraints.reserve(solver.constraints().size());
  for (const auto& constraint : solver.constraints()) {
    constraints.push_back(constraint.str());
  }
  std::vector<std::pair<std::string, std::string>> model;
  for (const auto& [name, cover] : result.model.prefix_sets) {
    model.emplace_back(name, renderCover(cover));
  }
  for (const auto& [name, value] : result.model.ints) {
    model.emplace_back(name, std::to_string(value));
  }
  // Annotated queries (the symbolic layer) carry the full variable detail:
  // site, original value, per-variable constraint count and model delta.
  std::vector<obs::FlightRecorder::SmtVar> vars;
  if (!solver.annotations().empty()) {
    for (const auto& [name, kind] : solver.variables()) {
      obs::FlightRecorder::SmtVar var;
      var.name = name;
      var.kind = varKindName(kind);
      const auto meta = solver.annotations().find(name);
      if (meta != solver.annotations().end()) {
        var.device = meta->second.device;
        var.line = meta->second.line;
        var.original = meta->second.original;
      }
      for (const auto& constraint : solver.constraints()) {
        if (constraint.variable == name || constraint.other == name) {
          ++var.constraints;
        }
      }
      if (result.sat) {
        if (kind == VarKind::kPrefixSet) {
          var.value = renderCover(result.model.prefix_sets.at(name));
        } else {
          var.value = std::to_string(result.model.ints.at(name));
        }
        var.changed = !var.original.empty() && var.value != var.original;
      }
      vars.push_back(std::move(var));
    }
  }
  recorder->smtQuery(static_cast<int>(solver.variableCount()), constraints,
                     result.sat, model, result.conflict, vars);
}

}  // namespace

std::string varKindName(VarKind kind) {
  return kind == VarKind::kPrefixSet ? "prefix-set" : "int";
}

std::string Constraint::str() const {
  switch (kind) {
    case Kind::kMember:
      return prefix.str() + " in " + variable;
    case Kind::kNotMember:
      return prefix.str() + " not-in " + variable;
    case Kind::kIntEq:
      return variable + " == " + std::to_string(value);
    case Kind::kIntNeq:
      return variable + " != " + std::to_string(value);
    case Kind::kIntOneOf: {
      std::string out = variable + " in {";
      for (std::size_t i = 0; i < values.size(); ++i) {
        if (i != 0) out += ", ";
        out += std::to_string(values[i]);
      }
      return out + '}';
    }
    case Kind::kIntLt:
      return variable + " < " + std::to_string(value);
    case Kind::kIntGt:
      return variable + " > " + std::to_string(value);
    case Kind::kIntLtVar:
      return variable + " < " + other;
    case Kind::kIntGtVar:
      return variable + " > " + other;
  }
  return "?";
}

void Solver::declare(const std::string& name, VarKind kind) {
  variables_.emplace(name, kind);
}

void Solver::annotate(const std::string& name, VarKind kind, VarMeta meta) {
  declare(name, kind);
  annotations_[name] = std::move(meta);
}

void Solver::preferInt(const std::string& name, std::uint64_t value) {
  declare(name, VarKind::kInt);
  preferred_ints_[name] = value;
}

void Solver::preferPrefixes(const std::string& name,
                            std::vector<net::Prefix> prefixes) {
  declare(name, VarKind::kPrefixSet);
  preferred_prefixes_[name] = std::move(prefixes);
}

void Solver::require(Constraint constraint) {
  constraints_.push_back(std::move(constraint));
}

void Solver::requireMember(const std::string& variable,
                           const net::Prefix& prefix) {
  declare(variable, VarKind::kPrefixSet);
  Constraint c;
  c.kind = Constraint::Kind::kMember;
  c.variable = variable;
  c.prefix = prefix;
  require(std::move(c));
}

void Solver::requireNotMember(const std::string& variable,
                              const net::Prefix& prefix) {
  declare(variable, VarKind::kPrefixSet);
  Constraint c;
  c.kind = Constraint::Kind::kNotMember;
  c.variable = variable;
  c.prefix = prefix;
  require(std::move(c));
}

void Solver::requireIntEq(const std::string& variable, std::uint64_t value) {
  declare(variable, VarKind::kInt);
  Constraint c;
  c.kind = Constraint::Kind::kIntEq;
  c.variable = variable;
  c.value = value;
  require(std::move(c));
}

void Solver::requireIntNeq(const std::string& variable, std::uint64_t value) {
  declare(variable, VarKind::kInt);
  Constraint c;
  c.kind = Constraint::Kind::kIntNeq;
  c.variable = variable;
  c.value = value;
  require(std::move(c));
}

void Solver::requireIntOneOf(const std::string& variable,
                             std::vector<std::uint64_t> values) {
  declare(variable, VarKind::kInt);
  Constraint c;
  c.kind = Constraint::Kind::kIntOneOf;
  c.variable = variable;
  c.values = std::move(values);
  require(std::move(c));
}

void Solver::requireIntLt(const std::string& variable, std::uint64_t value) {
  declare(variable, VarKind::kInt);
  Constraint c;
  c.kind = Constraint::Kind::kIntLt;
  c.variable = variable;
  c.value = value;
  require(std::move(c));
}

void Solver::requireIntGt(const std::string& variable, std::uint64_t value) {
  declare(variable, VarKind::kInt);
  Constraint c;
  c.kind = Constraint::Kind::kIntGt;
  c.variable = variable;
  c.value = value;
  require(std::move(c));
}

void Solver::requireIntLtVar(const std::string& variable,
                             const std::string& other) {
  declare(variable, VarKind::kInt);
  declare(other, VarKind::kInt);
  Constraint c;
  c.kind = Constraint::Kind::kIntLtVar;
  c.variable = variable;
  c.other = other;
  require(std::move(c));
}

void Solver::requireIntGtVar(const std::string& variable,
                             const std::string& other) {
  declare(variable, VarKind::kInt);
  declare(other, VarKind::kInt);
  Constraint c;
  c.kind = Constraint::Kind::kIntGtVar;
  c.variable = variable;
  c.other = other;
  require(std::move(c));
}

namespace {

/// Solves one PrefixSet variable. Unsat iff a NotMember prefix *contains*
/// (or equals) a Member prefix — excluding it would necessarily exclude the
/// required one too; the conflict names both contradicting constraints.
///
/// Without a preference the model is the minimal cover of required minus
/// forbidden (exact subtraction). With a preferred (original) cover, every
/// original entry that overlaps no forbidden prefix is kept verbatim and
/// only the required prefixes it misses add new pieces — the fewest-changed-
/// lines model the symbolic layer asks for.
bool solvePrefixSet(const std::string& name,
                    const std::vector<const Constraint*>& constraints,
                    const std::vector<net::Prefix>* preferred,
                    std::vector<net::Prefix>& out, std::string& conflict) {
  std::vector<net::Prefix> required;
  std::vector<net::Prefix> forbidden;
  for (const Constraint* c : constraints) {
    if (c->kind == Constraint::Kind::kMember) required.push_back(c->prefix);
    if (c->kind == Constraint::Kind::kNotMember) forbidden.push_back(c->prefix);
  }
  for (const Constraint* f : constraints) {
    if (f->kind != Constraint::Kind::kNotMember) continue;
    for (const Constraint* r : constraints) {
      if (r->kind != Constraint::Kind::kMember) continue;
      if (f->prefix.contains(r->prefix)) {
        conflict =
            name + ": '" + r->str() + "' contradicts '" + f->str() + "'";
        return false;
      }
    }
  }
  std::vector<net::Prefix> cover;
  if (preferred != nullptr) {
    for (const auto& keep : *preferred) {
      const bool violates =
          std::any_of(forbidden.begin(), forbidden.end(),
                      [&](const net::Prefix& f) { return f.overlaps(keep); });
      if (!violates) cover.push_back(keep);
    }
  }
  const std::vector<net::Prefix> kept = cover;
  for (const auto& r : required) {
    // A forbidden prefix strictly inside a required one: split the required
    // prefix around it; pieces an original entry already covers add nothing.
    for (const auto& piece :
         net::subtract(r, std::span<const net::Prefix>(forbidden))) {
      auto missing = net::subtract(piece, std::span<const net::Prefix>(kept));
      cover.insert(cover.end(), missing.begin(), missing.end());
    }
  }
  out = net::minimizeCover(std::move(cover));
  return true;
}

/// Joint solver state for one Int variable: interval bounds tightened by
/// propagation, explicit exclusions and an optional OneOf domain.
struct IntState {
  std::uint64_t lo = 0;
  std::uint64_t hi = std::numeric_limits<std::uint64_t>::max();
  std::vector<std::uint64_t> excluded;
  std::optional<std::vector<std::uint64_t>> domain;  // sorted, deduped

  [[nodiscard]] bool allows(std::uint64_t v) const {
    if (v < lo || v > hi) return false;
    if (std::find(excluded.begin(), excluded.end(), v) != excluded.end()) {
      return false;
    }
    if (domain &&
        !std::binary_search(domain->begin(), domain->end(), v)) {
      return false;
    }
    return true;
  }

  /// Smallest feasible value, or nullopt. Exclusion lists are tiny (one per
  /// Neq constraint), so the skip-forward scan is bounded.
  [[nodiscard]] std::optional<std::uint64_t> lowest() const {
    if (domain) {
      for (const std::uint64_t v : *domain) {
        if (allows(v)) return v;
      }
      return std::nullopt;
    }
    std::uint64_t v = lo;
    while (v <= hi) {
      if (allows(v)) return v;
      if (v == std::numeric_limits<std::uint64_t>::max()) break;
      ++v;
    }
    return std::nullopt;
  }
};

/// One propagation pass over every Int constraint; returns false on a
/// contradiction (conflict set). `changed` reports whether any bound moved.
bool propagateOnce(const std::vector<const Constraint*>& constraints,
                   std::map<std::string, IntState>& states, bool& changed,
                   std::string& conflict) {
  changed = false;
  const auto tightenLo = [&](IntState& s, std::uint64_t lo) {
    if (lo > s.lo) {
      s.lo = lo;
      changed = true;
    }
  };
  const auto tightenHi = [&](IntState& s, std::uint64_t hi) {
    if (hi < s.hi) {
      s.hi = hi;
      changed = true;
    }
  };
  for (const Constraint* c : constraints) {
    IntState& s = states.at(c->variable);
    switch (c->kind) {
      case Constraint::Kind::kIntEq:
        tightenLo(s, c->value);
        tightenHi(s, c->value);
        break;
      case Constraint::Kind::kIntLt:
        if (c->value == 0) {
          conflict = c->variable + ": unsatisfiable '" + c->str() + "'";
          return false;
        }
        tightenHi(s, c->value - 1);
        break;
      case Constraint::Kind::kIntGt:
        if (c->value == std::numeric_limits<std::uint64_t>::max()) {
          conflict = c->variable + ": unsatisfiable '" + c->str() + "'";
          return false;
        }
        tightenLo(s, c->value + 1);
        break;
      case Constraint::Kind::kIntLtVar: {
        IntState& o = states.at(c->other);
        if (o.hi == 0) {
          conflict = c->variable + ": unsatisfiable '" + c->str() + "'";
          return false;
        }
        tightenHi(s, o.hi - 1);
        tightenLo(o, s.lo == std::numeric_limits<std::uint64_t>::max()
                         ? s.lo
                         : s.lo + 1);
        break;
      }
      case Constraint::Kind::kIntGtVar: {
        IntState& o = states.at(c->other);
        if (o.lo == std::numeric_limits<std::uint64_t>::max()) {
          conflict = c->variable + ": unsatisfiable '" + c->str() + "'";
          return false;
        }
        tightenLo(s, o.lo + 1);
        if (s.hi > 0) tightenHi(o, s.hi - 1);
        break;
      }
      default:
        break;
    }
    if (s.lo > s.hi) {
      conflict = c->variable + ": interval empty after '" + c->str() + "'";
      return false;
    }
  }
  for (const auto& [name, s] : states) {
    if (s.lo > s.hi) {
      conflict = name + ": cross-variable propagation emptied the interval";
      return false;
    }
  }
  return true;
}

bool propagateToFixpoint(const std::vector<const Constraint*>& constraints,
                         std::map<std::string, IntState>& states,
                         std::string& conflict) {
  // Each productive pass tightens at least one bound; the pass count is
  // bounded by the constraint count (difference-logic fixpoint), with a
  // hard cap as a defensive backstop.
  const std::size_t max_passes = 2 * constraints.size() + 2;
  for (std::size_t pass = 0; pass < max_passes; ++pass) {
    bool changed = false;
    if (!propagateOnce(constraints, states, changed, conflict)) return false;
    if (!changed) return true;
  }
  return true;
}

/// Solves every Int variable jointly: seed intervals/domains from the unary
/// constraints, propagate cross-variable orderings to a fixpoint, then
/// assign greedily in name order — the preferred (original) value when
/// feasible, else the smallest feasible value — re-propagating after every
/// assignment. For the difference-constraint conjunctions the symbolic layer
/// emits, lower-bound assignment after a fixpoint is always consistent, so
/// the greedy pass is exact; a preferred value that breaks a later variable
/// is retried without the preference before reporting unsat.
bool solveInts(const std::map<std::string, VarKind>& variables,
               const std::vector<const Constraint*>& constraints,
               const std::map<std::string, std::uint64_t>& preferred,
               std::map<std::string, std::uint64_t>& out,
               std::string& conflict) {
  std::map<std::string, IntState> states;
  for (const auto& [name, kind] : variables) {
    if (kind == VarKind::kInt) states.emplace(name, IntState{});
  }
  if (states.empty()) return true;
  // Unary seeding: equalities/exclusions/domains (the satellite edge case —
  // an *empty* OneOf list is an explicit contradiction, reported as such
  // instead of sliding through as an exhausted scan).
  for (const Constraint* c : constraints) {
    IntState& s = states.at(c->variable);
    switch (c->kind) {
      case Constraint::Kind::kIntNeq:
        s.excluded.push_back(c->value);
        break;
      case Constraint::Kind::kIntOneOf: {
        if (c->values.empty()) {
          conflict = c->variable + ": unsatisfiable '" + c->str() +
                     "' (empty one-of domain)";
          return false;
        }
        std::vector<std::uint64_t> sorted = c->values;
        std::sort(sorted.begin(), sorted.end());
        sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
        if (!s.domain) {
          s.domain = std::move(sorted);
        } else {
          std::vector<std::uint64_t> merged;
          std::set_intersection(s.domain->begin(), s.domain->end(),
                                sorted.begin(), sorted.end(),
                                std::back_inserter(merged));
          s.domain = std::move(merged);
        }
        if (s.domain->empty()) {
          conflict = c->variable + ": one-of domains have no common value";
          return false;
        }
        break;
      }
      default:
        break;
    }
  }
  // Conflicting equalities get the historical direct message.
  {
    std::map<std::string, std::uint64_t> fixed;
    for (const Constraint* c : constraints) {
      if (c->kind != Constraint::Kind::kIntEq) continue;
      const auto [it, inserted] = fixed.emplace(c->variable, c->value);
      if (!inserted && it->second != c->value) {
        conflict = c->variable + ": conflicting equalities " +
                   std::to_string(it->second) + " vs " +
                   std::to_string(c->value);
        return false;
      }
    }
  }
  if (!propagateToFixpoint(constraints, states, conflict)) return false;

  // Greedy assignment with retry-without-preference.
  const auto assign = [&](const std::string& name, std::uint64_t value,
                          std::map<std::string, IntState>& scratch,
                          std::string& local_conflict) {
    IntState& s = scratch.at(name);
    s.lo = value;
    s.hi = value;
    return propagateToFixpoint(constraints, scratch, local_conflict);
  };
  std::vector<std::string> names;
  names.reserve(states.size());
  for (const auto& [name, s] : states) names.push_back(name);
  for (const std::string& name : names) {
    // Re-fetch per iteration: successful assignments replace `states`.
    IntState& s = states.at(name);
    std::vector<std::uint64_t> candidates;
    const auto pref = preferred.find(name);
    if (pref != preferred.end() && s.allows(pref->second)) {
      candidates.push_back(pref->second);
    }
    const auto lowest = s.lowest();
    if (lowest && (candidates.empty() || candidates.front() != *lowest)) {
      candidates.push_back(*lowest);
    }
    if (candidates.empty()) {
      conflict = name + ": no feasible value in [" + std::to_string(s.lo) +
                 ", " + std::to_string(s.hi) + "]";
      if (s.domain) conflict += " within its one-of domain";
      return false;
    }
    bool assigned = false;
    std::string last_conflict;
    for (const std::uint64_t value : candidates) {
      std::map<std::string, IntState> scratch = states;
      if (assign(name, value, scratch, last_conflict)) {
        states = std::move(scratch);
        out[name] = value;
        assigned = true;
        break;
      }
    }
    if (!assigned) {
      conflict = last_conflict.empty()
                     ? name + ": cross-variable propagation found no assignment"
                     : last_conflict;
      return false;
    }
  }
  return true;
}

}  // namespace

SolveResult Solver::solve() const {
  obs::Span span("smt.solve");
  span.attr("variables", static_cast<std::int64_t>(variables_.size()))
      .attr("constraints", static_cast<std::int64_t>(constraints_.size()));
  SolveResult result;
  const auto unsat = [&]() -> SolveResult& {
    result.sat = false;
    result.model = Model{};
    span.attr("sat", std::int64_t{0});
    recordQuery(*this, result);
    return result;
  };
  std::map<std::string, std::vector<const Constraint*>> grouped;
  std::vector<const Constraint*> int_constraints;
  for (const auto& constraint : constraints_) {
    grouped[constraint.variable].push_back(&constraint);
    switch (constraint.kind) {
      case Constraint::Kind::kMember:
      case Constraint::Kind::kNotMember:
        break;
      default:
        int_constraints.push_back(&constraint);
        break;
    }
  }
  for (const auto& [name, kind] : variables_) {
    if (kind != VarKind::kPrefixSet) continue;
    const auto it = grouped.find(name);
    static const std::vector<const Constraint*> kEmpty;
    const auto& constraints = it == grouped.end() ? kEmpty : it->second;
    const auto preferred = preferred_prefixes_.find(name);
    std::vector<net::Prefix> cover;
    if (!solvePrefixSet(
            name, constraints,
            preferred == preferred_prefixes_.end() ? nullptr
                                                   : &preferred->second,
            cover, result.conflict)) {
      return unsat();
    }
    result.model.prefix_sets[name] = std::move(cover);
  }
  if (!solveInts(variables_, int_constraints, preferred_ints_,
                 result.model.ints, result.conflict)) {
    return unsat();
  }
  result.sat = true;
  span.attr("sat", std::int64_t{1});
  recordQuery(*this, result);
  return result;
}

}  // namespace acr::smt
