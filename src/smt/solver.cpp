#include "smt/solver.hpp"

#include <algorithm>

#include "obs/record.hpp"
#include "obs/trace.hpp"

namespace acr::smt {

namespace {

// Queries fire only on the engine thread (FIX is sequential), so recording
// them here — via the thread-local recorder the engine installed — keeps
// the event order deterministic.
void recordQuery(const Solver& solver, const SolveResult& result) {
  obs::FlightRecorder* recorder = obs::currentRecorder();
  if (recorder == nullptr) return;
  std::vector<std::string> constraints;
  constraints.reserve(solver.constraints().size());
  for (const auto& constraint : solver.constraints()) {
    constraints.push_back(constraint.str());
  }
  std::vector<std::pair<std::string, std::string>> model;
  for (const auto& [name, cover] : result.model.prefix_sets) {
    std::string rendered;
    for (const auto& prefix : cover) {
      if (!rendered.empty()) rendered += ",";
      rendered += prefix.str();
    }
    model.emplace_back(name, rendered.empty() ? "(empty)" : rendered);
  }
  for (const auto& [name, value] : result.model.ints) {
    model.emplace_back(name, std::to_string(value));
  }
  recorder->smtQuery(static_cast<int>(solver.variableCount()), constraints,
                     result.sat, model, result.conflict);
}

}  // namespace

std::string Constraint::str() const {
  switch (kind) {
    case Kind::kMember:
      return prefix.str() + " in " + variable;
    case Kind::kNotMember:
      return prefix.str() + " not-in " + variable;
    case Kind::kIntEq:
      return variable + " == " + std::to_string(value);
    case Kind::kIntNeq:
      return variable + " != " + std::to_string(value);
    case Kind::kIntOneOf: {
      std::string out = variable + " in {";
      for (std::size_t i = 0; i < values.size(); ++i) {
        if (i != 0) out += ", ";
        out += std::to_string(values[i]);
      }
      return out + '}';
    }
  }
  return "?";
}

void Solver::declare(const std::string& name, VarKind kind) {
  variables_.emplace(name, kind);
}

void Solver::require(Constraint constraint) {
  constraints_.push_back(std::move(constraint));
}

void Solver::requireMember(const std::string& variable,
                           const net::Prefix& prefix) {
  declare(variable, VarKind::kPrefixSet);
  Constraint c;
  c.kind = Constraint::Kind::kMember;
  c.variable = variable;
  c.prefix = prefix;
  require(std::move(c));
}

void Solver::requireNotMember(const std::string& variable,
                              const net::Prefix& prefix) {
  declare(variable, VarKind::kPrefixSet);
  Constraint c;
  c.kind = Constraint::Kind::kNotMember;
  c.variable = variable;
  c.prefix = prefix;
  require(std::move(c));
}

void Solver::requireIntEq(const std::string& variable, std::uint64_t value) {
  declare(variable, VarKind::kInt);
  Constraint c;
  c.kind = Constraint::Kind::kIntEq;
  c.variable = variable;
  c.value = value;
  require(std::move(c));
}

void Solver::requireIntNeq(const std::string& variable, std::uint64_t value) {
  declare(variable, VarKind::kInt);
  Constraint c;
  c.kind = Constraint::Kind::kIntNeq;
  c.variable = variable;
  c.value = value;
  require(std::move(c));
}

void Solver::requireIntOneOf(const std::string& variable,
                             std::vector<std::uint64_t> values) {
  declare(variable, VarKind::kInt);
  Constraint c;
  c.kind = Constraint::Kind::kIntOneOf;
  c.variable = variable;
  c.values = std::move(values);
  require(std::move(c));
}

namespace {

/// Solves one PrefixSet variable: include every Member prefix, then carve
/// out every NotMember prefix by exact subtraction. Unsat iff a NotMember
/// prefix *contains* (or equals) a Member prefix — excluding it would
/// necessarily exclude the required one too.
bool solvePrefixSet(const std::string& name,
                    const std::vector<const Constraint*>& constraints,
                    std::vector<net::Prefix>& out, std::string& conflict) {
  std::vector<net::Prefix> required;
  std::vector<net::Prefix> forbidden;
  for (const Constraint* c : constraints) {
    if (c->kind == Constraint::Kind::kMember) required.push_back(c->prefix);
    if (c->kind == Constraint::Kind::kNotMember) forbidden.push_back(c->prefix);
  }
  for (const auto& f : forbidden) {
    for (const auto& r : required) {
      if (f.contains(r)) {
        conflict = name + ": required " + r.str() + " lies inside forbidden " +
                   f.str();
        return false;
      }
    }
  }
  std::vector<net::Prefix> cover;
  for (const auto& r : required) {
    // A forbidden prefix strictly inside a required one: split the required
    // prefix around it.
    auto pieces = net::subtract(r, std::span<const net::Prefix>(forbidden));
    cover.insert(cover.end(), pieces.begin(), pieces.end());
  }
  out = net::minimizeCover(std::move(cover));
  return true;
}

bool solveInt(const std::string& name,
              const std::vector<const Constraint*>& constraints,
              std::uint64_t& out, std::string& conflict) {
  std::optional<std::uint64_t> fixed;
  std::vector<std::uint64_t> excluded;
  std::optional<std::vector<std::uint64_t>> domain;
  for (const Constraint* c : constraints) {
    switch (c->kind) {
      case Constraint::Kind::kIntEq:
        if (fixed && *fixed != c->value) {
          conflict = name + ": conflicting equalities " +
                     std::to_string(*fixed) + " vs " + std::to_string(c->value);
          return false;
        }
        fixed = c->value;
        break;
      case Constraint::Kind::kIntNeq:
        excluded.push_back(c->value);
        break;
      case Constraint::Kind::kIntOneOf:
        if (!domain) {
          domain = c->values;
        } else {
          std::vector<std::uint64_t> merged;
          for (const auto v : *domain) {
            if (std::find(c->values.begin(), c->values.end(), v) !=
                c->values.end()) {
              merged.push_back(v);
            }
          }
          domain = std::move(merged);
        }
        break;
      default:
        break;
    }
  }
  const auto allowed = [&](std::uint64_t v) {
    return std::find(excluded.begin(), excluded.end(), v) == excluded.end();
  };
  if (fixed) {
    if (!allowed(*fixed)) {
      conflict = name + ": value " + std::to_string(*fixed) + " is excluded";
      return false;
    }
    if (domain && std::find(domain->begin(), domain->end(), *fixed) ==
                      domain->end()) {
      conflict = name + ": value " + std::to_string(*fixed) +
                 " is outside its domain";
      return false;
    }
    out = *fixed;
    return true;
  }
  if (domain) {
    for (const auto v : *domain) {
      if (allowed(v)) {
        out = v;
        return true;
      }
    }
    conflict = name + ": domain exhausted";
    return false;
  }
  // Unconstrained but for exclusions: pick the smallest non-excluded value.
  std::uint64_t v = 0;
  while (!allowed(v)) ++v;
  out = v;
  return true;
}

}  // namespace

SolveResult Solver::solve() const {
  obs::Span span("smt.solve");
  span.attr("variables", static_cast<std::int64_t>(variables_.size()))
      .attr("constraints", static_cast<std::int64_t>(constraints_.size()));
  SolveResult result;
  std::map<std::string, std::vector<const Constraint*>> grouped;
  for (const auto& constraint : constraints_) {
    grouped[constraint.variable].push_back(&constraint);
  }
  for (const auto& [name, kind] : variables_) {
    const auto it = grouped.find(name);
    static const std::vector<const Constraint*> kEmpty;
    const auto& constraints = it == grouped.end() ? kEmpty : it->second;
    if (kind == VarKind::kPrefixSet) {
      std::vector<net::Prefix> cover;
      if (!solvePrefixSet(name, constraints, cover, result.conflict)) {
        result.sat = false;
        span.attr("sat", std::int64_t{0});
        recordQuery(*this, result);
        return result;
      }
      result.model.prefix_sets[name] = std::move(cover);
    } else {
      std::uint64_t value = 0;
      if (!solveInt(name, constraints, value, result.conflict)) {
        result.sat = false;
        span.attr("sat", std::int64_t{0});
        recordQuery(*this, result);
        return result;
      }
      result.model.ints[name] = value;
    }
  }
  result.sat = true;
  span.attr("sat", std::int64_t{1});
  recordQuery(*this, result);
  return result;
}

}  // namespace acr::smt
