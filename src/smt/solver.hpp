// Mini constraint solver over prefix sets and integers ("SMT-lite").
//
// The paper's fix step symbolizes ONE value at a time (§4.2/§5) and solves
// P ∧ ¬F, where P are membership constraints collected from passing tests'
// provenance and F from failing ones. That fragment — membership /
// non-membership of prefixes in a prefix-set variable, plus simple integer
// equalities — does not need a general SMT solver; this module solves it
// exactly and extracts minimal models:
//   * PrefixSet variables: the model is the minimal prefix cover that
//     contains every Member prefix and excludes every NotMember prefix,
//     using exact prefix subtraction when a required prefix contains a
//     forbidden one.
//   * Int variables: Eq/Neq/OneOf constraints, solved by propagation.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "netcore/prefix.hpp"

namespace acr::smt {

enum class VarKind : std::uint8_t { kPrefixSet, kInt };

struct Variable {
  std::string name;
  VarKind kind = VarKind::kPrefixSet;
};

struct Constraint {
  enum class Kind : std::uint8_t {
    kMember,     // prefix ∈ var            (PrefixSet)
    kNotMember,  // prefix ∉ var            (PrefixSet)
    kIntEq,      // var == value            (Int)
    kIntNeq,     // var != value            (Int)
    kIntOneOf,   // var ∈ values            (Int)
  };
  Kind kind = Kind::kMember;
  std::string variable;
  net::Prefix prefix;                 // for Member/NotMember
  std::uint64_t value = 0;            // for IntEq/IntNeq
  std::vector<std::uint64_t> values;  // for IntOneOf

  [[nodiscard]] std::string str() const;
};

/// A model: assignment for every declared variable.
struct Model {
  /// PrefixSet assignments: minimal prefix covers.
  std::map<std::string, std::vector<net::Prefix>> prefix_sets;
  std::map<std::string, std::uint64_t> ints;
};

struct SolveResult {
  bool sat = false;
  Model model;
  std::string conflict;  // human-readable reason when unsat
};

class Solver {
 public:
  /// Declares a variable; re-declaring the same name/kind is a no-op.
  void declare(const std::string& name, VarKind kind);

  void require(Constraint constraint);

  /// Convenience constraint builders.
  void requireMember(const std::string& variable, const net::Prefix& prefix);
  void requireNotMember(const std::string& variable, const net::Prefix& prefix);
  void requireIntEq(const std::string& variable, std::uint64_t value);
  void requireIntNeq(const std::string& variable, std::uint64_t value);
  void requireIntOneOf(const std::string& variable,
                       std::vector<std::uint64_t> values);

  [[nodiscard]] SolveResult solve() const;

  [[nodiscard]] const std::vector<Constraint>& constraints() const {
    return constraints_;
  }
  [[nodiscard]] std::size_t variableCount() const { return variables_.size(); }

 private:
  std::map<std::string, VarKind> variables_;
  std::vector<Constraint> constraints_;
};

}  // namespace acr::smt
