// Mini constraint solver over prefix sets and integers ("SMT-lite").
//
// The paper's fix step symbolizes ONE value at a time (§4.2/§5) and solves
// P ∧ ¬F, where P are membership constraints collected from passing tests'
// provenance and F from failing ones. That fragment — membership /
// non-membership of prefixes in a prefix-set variable, plus simple integer
// equalities — does not need a general SMT solver; this module solves it
// exactly and extracts minimal models:
//   * PrefixSet variables: the model is the minimal prefix cover that
//     contains every Member prefix and excludes every NotMember prefix,
//     using exact prefix subtraction when a required prefix contains a
//     forbidden one.
//   * Int variables: Eq/Neq/OneOf/Lt/Gt constraints — including ordering
//     against *other variables* — solved by interval propagation to a
//     fixpoint and a greedy feasible assignment.
//
// The selective-symbolic layer (src/symbolic) extends the single-variable
// use into conjunctions over several variables at once:
//   * cross-variable propagation: `a < b` tightens both intervals until the
//     fixpoint, so multi-device local-pref orderings solve jointly;
//   * minimal-model preference: a caller may register the *original*
//     (pre-repair) assignment of each variable via preferInt() /
//     preferPrefixes(); the solver keeps a variable at its original value
//     whenever the constraints allow it, and for prefix sets keeps every
//     original entry that violates no constraint — so a satisfying model
//     touches the fewest config lines;
//   * annotate() attaches device/line/original metadata that the flight
//     recorder emits with every query (`smt` events gain a `vars` list and
//     a `model_delta` of the assignments that differ from the originals).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "netcore/prefix.hpp"

namespace acr::smt {

enum class VarKind : std::uint8_t { kPrefixSet, kInt };

[[nodiscard]] std::string varKindName(VarKind kind);

struct Variable {
  std::string name;
  VarKind kind = VarKind::kPrefixSet;
};

/// Recording metadata for one variable: where the symbolized field lives and
/// what its concrete (pre-repair) value renders as. Purely observational —
/// annotations never affect solving (preferences do).
struct VarMeta {
  std::string device;
  int line = 0;
  std::string original;
};

struct Constraint {
  enum class Kind : std::uint8_t {
    kMember,     // prefix ∈ var            (PrefixSet)
    kNotMember,  // prefix ∉ var            (PrefixSet)
    kIntEq,      // var == value            (Int)
    kIntNeq,     // var != value            (Int)
    kIntOneOf,   // var ∈ values            (Int)
    kIntLt,      // var < value             (Int)
    kIntGt,      // var > value             (Int)
    kIntLtVar,   // var < other             (Int, cross-variable)
    kIntGtVar,   // var > other             (Int, cross-variable)
  };
  Kind kind = Kind::kMember;
  std::string variable;
  net::Prefix prefix;                 // for Member/NotMember
  std::uint64_t value = 0;            // for IntEq/IntNeq/IntLt/IntGt
  std::vector<std::uint64_t> values;  // for IntOneOf
  std::string other;                  // for IntLtVar/IntGtVar

  [[nodiscard]] std::string str() const;
};

/// A model: assignment for every declared variable.
struct Model {
  /// PrefixSet assignments: minimal prefix covers.
  std::map<std::string, std::vector<net::Prefix>> prefix_sets;
  std::map<std::string, std::uint64_t> ints;
};

struct SolveResult {
  bool sat = false;
  Model model;
  std::string conflict;  // human-readable reason when unsat
};

class Solver {
 public:
  /// Declares a variable; re-declaring the same name/kind is a no-op.
  void declare(const std::string& name, VarKind kind);

  /// Attaches recording metadata (declares the variable if needed).
  void annotate(const std::string& name, VarKind kind, VarMeta meta);

  /// Minimal-model preferences: the variable's original concrete value.
  /// Int: used verbatim when feasible. PrefixSet: every original entry that
  /// violates no NotMember constraint is kept, and only uncovered Member
  /// prefixes add new (minimal) entries — fewest changed lines.
  void preferInt(const std::string& name, std::uint64_t value);
  void preferPrefixes(const std::string& name,
                      std::vector<net::Prefix> prefixes);

  void require(Constraint constraint);

  /// Convenience constraint builders.
  void requireMember(const std::string& variable, const net::Prefix& prefix);
  void requireNotMember(const std::string& variable, const net::Prefix& prefix);
  void requireIntEq(const std::string& variable, std::uint64_t value);
  void requireIntNeq(const std::string& variable, std::uint64_t value);
  void requireIntOneOf(const std::string& variable,
                       std::vector<std::uint64_t> values);
  void requireIntLt(const std::string& variable, std::uint64_t value);
  void requireIntGt(const std::string& variable, std::uint64_t value);
  /// Cross-variable ordering: `variable < other` / `variable > other`.
  void requireIntLtVar(const std::string& variable, const std::string& other);
  void requireIntGtVar(const std::string& variable, const std::string& other);

  [[nodiscard]] SolveResult solve() const;

  [[nodiscard]] const std::vector<Constraint>& constraints() const {
    return constraints_;
  }
  [[nodiscard]] std::size_t variableCount() const { return variables_.size(); }
  [[nodiscard]] const std::map<std::string, VarKind>& variables() const {
    return variables_;
  }
  [[nodiscard]] const std::map<std::string, VarMeta>& annotations() const {
    return annotations_;
  }

 private:
  std::map<std::string, VarKind> variables_;
  std::map<std::string, VarMeta> annotations_;
  std::map<std::string, std::uint64_t> preferred_ints_;
  std::map<std::string, std::vector<net::Prefix>> preferred_prefixes_;
  std::vector<Constraint> constraints_;
};

}  // namespace acr::smt
