#include "config/parser.hpp"

#include <charconv>
#include <cstdint>

namespace acr::cfg {

namespace {

std::vector<std::string_view> tokenize(std::string_view line) {
  std::vector<std::string_view> tokens;
  std::size_t pos = 0;
  while (pos < line.size()) {
    while (pos < line.size() && line[pos] == ' ') ++pos;
    const std::size_t start = pos;
    while (pos < line.size() && line[pos] != ' ') ++pos;
    if (pos > start) tokens.push_back(line.substr(start, pos - start));
  }
  return tokens;
}

/// Current block context while scanning lines.
enum class Context { kTop, kInterface, kBgp, kPolicyNode, kPbr };

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  DeviceConfig run() {
    std::size_t pos = 0;
    while (pos <= text_.size()) {
      const std::size_t end = text_.find('\n', pos);
      const std::string_view raw =
          text_.substr(pos, end == std::string_view::npos ? end : end - pos);
      ++line_no_;
      parseLine(raw);
      if (end == std::string_view::npos) break;
      pos = end + 1;
    }
    config_.renumber();
    return std::move(config_);
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError(line_no_, message);
  }

  std::uint32_t parseUint(std::string_view token, const char* what) const {
    std::uint32_t value = 0;
    const auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc{} || ptr != token.data() + token.size()) {
      fail(std::string("expected ") + what + ", got '" + std::string(token) +
           "'");
    }
    return value;
  }

  net::Ipv4Address parseAddress(std::string_view token) const {
    const auto address = net::Ipv4Address::parse(token);
    if (!address) fail("malformed IPv4 address '" + std::string(token) + "'");
    return *address;
  }

  /// Parses the "<addr> <len>" two-token prefix notation used throughout the
  /// dialect (as in Figure 2b's "0.0.0.0 0").
  net::Prefix parsePrefixPair(std::string_view addr,
                              std::string_view len) const {
    const auto address = net::Ipv4Address::parse(addr);
    if (!address) fail("malformed IPv4 address '" + std::string(addr) + "'");
    const std::uint32_t length = parseUint(len, "prefix length");
    if (length > 32) fail("prefix length out of range");
    return net::Prefix(*address, static_cast<std::uint8_t>(length));
  }

  void parseLine(std::string_view raw) {
    if (raw.empty()) return;
    const bool indented = raw.front() == ' ';
    const auto tokens = tokenize(raw);
    if (tokens.empty()) return;
    if (tokens[0].front() == '#' || tokens[0].front() == '!') return;
    if (indented) {
      parseBlockLine(tokens);
    } else {
      parseTopLine(tokens);
    }
  }

  void parseTopLine(const std::vector<std::string_view>& t) {
    context_ = Context::kTop;
    if (t[0] == "hostname") {
      if (t.size() != 2) fail("hostname expects one argument");
      config_.hostname = std::string(t[1]);
    } else if (t[0] == "interface") {
      if (t.size() != 2) fail("interface expects one argument");
      InterfaceConfig itf;
      itf.name = std::string(t[1]);
      config_.interfaces.push_back(itf);
      context_ = Context::kInterface;
    } else if (t[0] == "ip" && t.size() >= 2 && t[1] == "route-static") {
      if (t.size() != 5) fail("ip route-static expects <addr> <len> <next-hop>");
      StaticRouteConfig sr;
      sr.prefix = parsePrefixPair(t[2], t[3]);
      sr.next_hop = parseAddress(t[4]);
      config_.static_routes.push_back(sr);
    } else if (t[0] == "bgp") {
      if (t.size() != 2) fail("bgp expects the AS number");
      if (config_.bgp) fail("duplicate bgp section");
      BgpConfig bgp;
      bgp.asn = parseUint(t[1], "AS number");
      config_.bgp = bgp;
      context_ = Context::kBgp;
    } else if (t[0] == "ip" && t.size() >= 2 && t[1] == "prefix-list") {
      parsePrefixListLine(t);
    } else if (t[0] == "route-policy") {
      // route-policy NAME permit|deny node N
      if (t.size() != 5 || t[3] != "node") {
        fail("route-policy expects: route-policy <name> permit|deny node <n>");
      }
      PolicyNode node;
      node.index = static_cast<int>(parseUint(t[4], "node index"));
      node.action = parseAction(t[2]);
      RoutePolicy* policy = config_.findPolicy(std::string(t[1]));
      if (policy == nullptr) {
        config_.policies.push_back(RoutePolicy{std::string(t[1]), {}});
        policy = &config_.policies.back();
      }
      policy->nodes.push_back(node);
      current_policy_ = policy;
      context_ = Context::kPolicyNode;
    } else if (t[0] == "pbr") {
      if (t.size() != 3 || t[1] != "policy") fail("pbr expects: pbr policy <name>");
      PbrPolicy pbr;
      pbr.name = std::string(t[2]);
      config_.pbr_policies.push_back(pbr);
      context_ = Context::kPbr;
    } else {
      fail("unknown statement '" + std::string(t[0]) + "'");
    }
  }

  void parseBlockLine(const std::vector<std::string_view>& t) {
    switch (context_) {
      case Context::kInterface:
        parseInterfaceLine(t);
        return;
      case Context::kBgp:
        parseBgpLine(t);
        return;
      case Context::kPolicyNode:
        parsePolicyLine(t);
        return;
      case Context::kPbr:
        parsePbrLine(t);
        return;
      case Context::kTop:
        fail("indented line outside of a block");
    }
  }

  void parseInterfaceLine(const std::vector<std::string_view>& t) {
    if (t.size() == 4 && t[0] == "ip" && t[1] == "address") {
      InterfaceConfig& itf = config_.interfaces.back();
      itf.address = parseAddress(t[2]);
      const std::uint32_t length = parseUint(t[3], "prefix length");
      if (length > 32) fail("prefix length out of range");
      itf.prefix_length = static_cast<std::uint8_t>(length);
      return;
    }
    fail("unknown interface statement");
  }

  void parseBgpLine(const std::vector<std::string_view>& t) {
    BgpConfig& bgp = *config_.bgp;
    if (t[0] == "router-id") {
      if (t.size() != 2) fail("router-id expects an address");
      bgp.router_id = parseAddress(t[1]);
    } else if (t[0] == "redistribute") {
      if (t.size() != 2) fail("redistribute expects static|connected");
      RedistributeConfig redist;
      if (t[1] == "static") {
        redist.source = RedistSource::kStatic;
      } else if (t[1] == "connected") {
        redist.source = RedistSource::kConnected;
      } else {
        fail("unknown redistribute source '" + std::string(t[1]) + "'");
      }
      bgp.redistributes.push_back(redist);
    } else if (t[0] == "group") {
      if (t.size() != 2) fail("group expects a name");
      if (bgp.findGroup(std::string(t[1])) != nullptr) fail("duplicate group");
      bgp.groups.push_back(PeerGroupConfig{std::string(t[1]), 0, "", 0, "", 0});
    } else if (t[0] == "peer-group") {
      // peer-group G route-policy P import|export
      if (t.size() != 5 || t[2] != "route-policy") {
        fail("peer-group expects: peer-group <g> route-policy <p> import|export");
      }
      PeerGroupConfig* group = bgp.findGroup(std::string(t[1]));
      if (group == nullptr) fail("unknown group '" + std::string(t[1]) + "'");
      if (t[4] == "import") {
        group->import_policy = std::string(t[3]);
      } else if (t[4] == "export") {
        group->export_policy = std::string(t[3]);
      } else {
        fail("direction must be import or export");
      }
    } else if (t[0] == "peer") {
      parsePeerLine(t, bgp);
    } else {
      fail("unknown bgp statement '" + std::string(t[0]) + "'");
    }
  }

  void parsePeerLine(const std::vector<std::string_view>& t, BgpConfig& bgp) {
    if (t.size() < 3) fail("truncated peer statement");
    const net::Ipv4Address address = parseAddress(t[1]);
    PeerConfig* peer = bgp.findPeer(address);
    if (peer == nullptr) {
      bgp.peers.push_back(PeerConfig{});
      peer = &bgp.peers.back();
      peer->address = address;
    }
    if (t[2] == "as-number") {
      if (t.size() != 4) fail("peer as-number expects a value");
      peer->remote_as = parseUint(t[3], "AS number");
    } else if (t[2] == "group") {
      if (t.size() != 4) fail("peer group expects a name");
      peer->group = std::string(t[3]);
    } else if (t[2] == "route-policy") {
      if (t.size() != 5) fail("peer route-policy expects <p> import|export");
      if (t[4] == "import") {
        peer->import_policy = std::string(t[3]);
      } else if (t[4] == "export") {
        peer->export_policy = std::string(t[3]);
      } else {
        fail("direction must be import or export");
      }
    } else {
      fail("unknown peer statement '" + std::string(t[2]) + "'");
    }
  }

  void parsePrefixListLine(const std::vector<std::string_view>& t) {
    // ip prefix-list NAME index N permit|deny ADDR LEN [greater-equal G]
    // [less-equal L]
    if (t.size() < 8 || t[3] != "index") {
      fail("ip prefix-list expects: ip prefix-list <name> index <i> "
           "permit|deny <addr> <len>");
    }
    PrefixListEntry entry;
    entry.index = static_cast<int>(parseUint(t[4], "index"));
    entry.action = parseAction(t[5]);
    entry.prefix = parsePrefixPair(t[6], t[7]);
    std::size_t pos = 8;
    while (pos < t.size()) {
      if (t[pos] == "greater-equal" && pos + 1 < t.size()) {
        entry.greater_equal =
            static_cast<std::uint8_t>(parseUint(t[pos + 1], "length"));
        pos += 2;
      } else if (t[pos] == "less-equal" && pos + 1 < t.size()) {
        entry.less_equal =
            static_cast<std::uint8_t>(parseUint(t[pos + 1], "length"));
        pos += 2;
      } else {
        fail("unexpected token '" + std::string(t[pos]) + "'");
      }
    }
    PrefixList* list = config_.findPrefixList(std::string(t[2]));
    if (list == nullptr) {
      config_.prefix_lists.push_back(PrefixList{std::string(t[2]), {}});
      list = &config_.prefix_lists.back();
    }
    list->entries.push_back(entry);
  }

  void parsePolicyLine(const std::vector<std::string_view>& t) {
    PolicyNode& node = current_policy_->nodes.back();
    if (t[0] == "if-match") {
      if (t.size() != 3 || t[1] != "ip-prefix") {
        fail("if-match expects: if-match ip-prefix <name>");
      }
      node.matches.push_back(
          PolicyMatch{MatchKind::kIpPrefixList, std::string(t[2]), 0});
    } else if (t[0] == "apply") {
      PolicyAction action;
      if ((t.size() == 3 || t.size() == 4) && t[1] == "as-path" &&
          t[2] == "overwrite") {
        action.kind = PolicyActionKind::kAsPathOverwrite;
        if (t.size() == 4) action.value = parseUint(t[3], "AS number");
      } else if (t.size() == 3 && t[1] == "local-preference") {
        action.kind = PolicyActionKind::kSetLocalPref;
        action.value = parseUint(t[2], "local-preference");
      } else if (t.size() == 3 && t[1] == "med") {
        action.kind = PolicyActionKind::kSetMed;
        action.value = parseUint(t[2], "med");
      } else if (t.size() == 4 && t[1] == "as-path" && t[2] == "prepend") {
        action.kind = PolicyActionKind::kAsPathPrepend;
        action.value = parseUint(t[3], "prepend count");
      } else {
        fail("unknown apply action");
      }
      node.actions.push_back(action);
    } else {
      fail("unknown route-policy statement '" + std::string(t[0]) + "'");
    }
  }

  void parsePbrLine(const std::vector<std::string_view>& t) {
    // rule N permit|deny source A L destination A L
    // rule N redirect NH source A L destination A L
    if (t.size() < 2 || t[0] != "rule") fail("pbr body expects rule statements");
    PbrRule rule;
    rule.index = static_cast<int>(parseUint(t[1], "rule index"));
    std::size_t pos = 3;
    if (t.size() > 2 && t[2] == "permit") {
      rule.action = PbrAction::kPermit;
    } else if (t.size() > 2 && t[2] == "deny") {
      rule.action = PbrAction::kDeny;
    } else if (t.size() > 3 && t[2] == "redirect") {
      rule.action = PbrAction::kRedirect;
      rule.redirect_next_hop = parseAddress(t[3]);
      pos = 4;
    } else {
      fail("pbr rule action must be permit, deny or redirect");
    }
    if (t.size() != pos + 6 || t[pos] != "source" || t[pos + 3] != "destination") {
      fail("pbr rule expects: source <addr> <len> destination <addr> <len>");
    }
    rule.source = parsePrefixPair(t[pos + 1], t[pos + 2]);
    rule.destination = parsePrefixPair(t[pos + 4], t[pos + 5]);
    config_.pbr_policies.back().rules.push_back(rule);
  }

  Action parseAction(std::string_view token) const {
    if (token == "permit") return Action::kPermit;
    if (token == "deny") return Action::kDeny;
    fail("expected permit|deny, got '" + std::string(token) + "'");
  }

  std::string_view text_;
  int line_no_ = 0;
  DeviceConfig config_;
  Context context_ = Context::kTop;
  RoutePolicy* current_policy_ = nullptr;
};

}  // namespace

DeviceConfig parseDevice(std::string_view text) { return Parser(text).run(); }

std::optional<DeviceConfig> tryParseDevice(std::string_view text,
                                           std::vector<std::string>& errors) {
  try {
    return parseDevice(text);
  } catch (const ParseError& error) {
    errors.emplace_back(error.what());
    return std::nullopt;
  }
}

}  // namespace acr::cfg
