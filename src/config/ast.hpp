// AST of the `acr-cfg` router configuration language.
//
// The dialect is Huawei-flavoured, chosen to express the paper's Figure 2b
// snippet verbatim: BGP peers and peer groups, route-policies with
// `if-match ip-prefix` and `apply as-path overwrite`, `ip prefix-list`
// entries written as "address length" pairs (e.g. "0.0.0.0 0"),
// policy-based routing, static routes and redistribution.
//
// Every configuration *line* carries a line number assigned by renumber(),
// which walks the canonical print order. Line numbers are the unit of
// spectrum-based fault localization: coverage, suspiciousness and change
// templates all address (device, line) pairs.
#pragma once

#include <compare>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "netcore/ipv4.hpp"
#include "netcore/prefix.hpp"

namespace acr::cfg {

/// Globally unique identifier of one configuration line.
struct LineId {
  std::string device;
  int line = 0;

  friend auto operator<=>(const LineId&, const LineId&) = default;
  [[nodiscard]] std::string str() const {
    return device + ':' + std::to_string(line);
  }
};

enum class Action : std::uint8_t { kPermit, kDeny };

[[nodiscard]] std::string actionName(Action action);

// --------------------------------------------------------------------------
// Interfaces, static routes, redistribution
// --------------------------------------------------------------------------

struct InterfaceConfig {
  std::string name;
  net::Ipv4Address address;
  std::uint8_t prefix_length = 24;
  int line = 0;     // "interface <name>"
  int ip_line = 0;  // " ip address <addr> <len>"

  /// Subnet directly connected through this interface.
  [[nodiscard]] net::Prefix connectedPrefix() const {
    return net::Prefix(address, prefix_length);
  }
};

struct StaticRouteConfig {
  net::Prefix prefix;
  net::Ipv4Address next_hop;
  int line = 0;  // "ip route-static <addr> <len> <next-hop>"
};

enum class RedistSource : std::uint8_t { kStatic, kConnected };

[[nodiscard]] std::string redistSourceName(RedistSource source);

struct RedistributeConfig {
  RedistSource source = RedistSource::kStatic;
  int line = 0;  // " redistribute static|connected" (inside bgp)
};

// --------------------------------------------------------------------------
// BGP: peers and peer groups
// --------------------------------------------------------------------------

struct PeerGroupConfig {
  std::string name;
  int line = 0;  // " group <name>"
  std::string import_policy;
  int import_line = 0;  // " peer-group <name> route-policy <p> import"
  std::string export_policy;
  int export_line = 0;
};

struct PeerConfig {
  net::Ipv4Address address;
  std::uint32_t remote_as = 0;
  int as_line = 0;  // " peer <addr> as-number <asn>"
  std::string group;
  int group_line = 0;  // " peer <addr> group <g>"
  std::string import_policy;
  int import_line = 0;  // " peer <addr> route-policy <p> import"
  std::string export_policy;
  int export_line = 0;
};

struct BgpConfig {
  std::uint32_t asn = 0;
  int line = 0;  // "bgp <asn>"
  net::Ipv4Address router_id;
  int router_id_line = 0;
  std::vector<RedistributeConfig> redistributes;
  std::vector<PeerGroupConfig> groups;
  std::vector<PeerConfig> peers;

  [[nodiscard]] const PeerGroupConfig* findGroup(const std::string& name) const;
  [[nodiscard]] PeerGroupConfig* findGroup(const std::string& name);
  [[nodiscard]] const PeerConfig* findPeer(net::Ipv4Address address) const;
  [[nodiscard]] PeerConfig* findPeer(net::Ipv4Address address);
  [[nodiscard]] bool redistributes_source(RedistSource source) const;
};

// --------------------------------------------------------------------------
// Prefix lists
// --------------------------------------------------------------------------

struct PrefixListEntry {
  int index = 10;
  Action action = Action::kPermit;
  net::Prefix prefix;
  // Optional length bounds: matches routes whose length lies in
  // [greater_equal, less_equal] when set (0 = unset, exact-length match).
  std::uint8_t greater_equal = 0;
  std::uint8_t less_equal = 0;
  int line = 0;  // "ip prefix-list <name> index <i> <action> <addr> <len> ..."

  /// Whether a route for `candidate` matches this entry.
  [[nodiscard]] bool matches(const net::Prefix& candidate) const;
};

struct PrefixList {
  std::string name;
  std::vector<PrefixListEntry> entries;

  /// First matching entry decides; no match => deny (standard semantics).
  /// Returns the matching entry, or nullptr when the list denies by default.
  [[nodiscard]] const PrefixListEntry* match(const net::Prefix& candidate) const;
  [[nodiscard]] bool permits(const net::Prefix& candidate) const;
  [[nodiscard]] int nextIndex() const;
};

// --------------------------------------------------------------------------
// Route policies
// --------------------------------------------------------------------------

enum class MatchKind : std::uint8_t { kIpPrefixList };

struct PolicyMatch {
  MatchKind kind = MatchKind::kIpPrefixList;
  std::string prefix_list;
  int line = 0;  // " if-match ip-prefix <name>"
};

enum class PolicyActionKind : std::uint8_t {
  kAsPathOverwrite,  // rewrite AS_PATH to [own AS]  (the Figure-2 policy)
  kSetLocalPref,
  kSetMed,
  kAsPathPrepend,  // prepend own AS `value` times
};

[[nodiscard]] std::string policyActionName(PolicyActionKind kind);

struct PolicyAction {
  PolicyActionKind kind = PolicyActionKind::kSetLocalPref;
  std::uint32_t value = 0;
  int line = 0;  // " apply ..."
};

struct PolicyNode {
  int index = 10;
  Action action = Action::kPermit;
  std::vector<PolicyMatch> matches;  // all must match (AND)
  std::vector<PolicyAction> actions;
  int line = 0;  // "route-policy <name> <action> node <index>"
};

struct RoutePolicy {
  std::string name;
  std::vector<PolicyNode> nodes;

  [[nodiscard]] const PolicyNode* findNode(int index) const;
  [[nodiscard]] int nextNodeIndex() const;
};

// --------------------------------------------------------------------------
// Policy-based routing
// --------------------------------------------------------------------------

enum class PbrAction : std::uint8_t { kPermit, kDeny, kRedirect };

[[nodiscard]] std::string pbrActionName(PbrAction action);

struct PbrRule {
  int index = 10;
  PbrAction action = PbrAction::kPermit;
  net::Prefix source;       // 0.0.0.0/0 = any
  net::Prefix destination;  // 0.0.0.0/0 = any
  net::Ipv4Address redirect_next_hop;  // only for kRedirect
  int line = 0;  // " rule <i> <action> source <p> destination <p> [...]"

  [[nodiscard]] bool matches(net::Ipv4Address src, net::Ipv4Address dst) const;
};

struct PbrPolicy {
  std::string name;
  std::vector<PbrRule> rules;
  int line = 0;  // "pbr policy <name>"

  /// First matching rule, or nullptr (=> regular FIB forwarding).
  [[nodiscard]] const PbrRule* match(net::Ipv4Address src,
                                     net::Ipv4Address dst) const;
  [[nodiscard]] int nextIndex() const;
};

// --------------------------------------------------------------------------
// Device configuration
// --------------------------------------------------------------------------

/// Kind of configuration line, used to select applicable change templates
/// for a suspicious line (Figure 3c of the paper).
enum class LineKind : std::uint8_t {
  kHostname,
  kInterface,
  kInterfaceIp,
  kStaticRoute,
  kBgpHeader,
  kRouterId,
  kRedistribute,
  kGroup,
  kGroupImport,
  kGroupExport,
  kPeerAs,
  kPeerGroupRef,
  kPeerImport,
  kPeerExport,
  kPrefixListEntry,
  kPolicyNode,
  kPolicyMatch,
  kPolicyAction,
  kPbrHeader,
  kPbrRule,
};

[[nodiscard]] std::string lineKindName(LineKind kind);

/// Resolved reference from a line number back into the AST. The `a`/`b`/`c`
/// fields index into the owning vectors (meaning depends on `kind`, e.g. for
/// kPolicyMatch: a = policy index, b = node index, c = match index).
struct LineInfo {
  LineKind kind = LineKind::kHostname;
  int a = -1;
  int b = -1;
  int c = -1;
  std::string text;  // rendered content of the line (trimmed)
};

struct DeviceConfig {
  std::string hostname;
  int hostname_line = 0;
  std::vector<InterfaceConfig> interfaces;
  std::vector<StaticRouteConfig> static_routes;
  std::optional<BgpConfig> bgp;
  std::vector<PrefixList> prefix_lists;
  std::vector<RoutePolicy> policies;
  std::vector<PbrPolicy> pbr_policies;

  // ---- lookups -----------------------------------------------------------
  [[nodiscard]] const PrefixList* findPrefixList(const std::string& name) const;
  [[nodiscard]] PrefixList* findPrefixList(const std::string& name);
  [[nodiscard]] const RoutePolicy* findPolicy(const std::string& name) const;
  [[nodiscard]] RoutePolicy* findPolicy(const std::string& name);
  [[nodiscard]] const PbrPolicy* findPbr(const std::string& name) const;
  [[nodiscard]] PbrPolicy* findPbr(const std::string& name);
  [[nodiscard]] const InterfaceConfig* interfaceFor(net::Ipv4Address peer) const;

  // ---- rendering & line numbering ---------------------------------------
  /// Re-assigns line numbers following canonical print order; returns the
  /// total number of lines. Must be called after any structural edit.
  int renumber();

  /// Canonical text rendering; line i of the output (1-based) is the line
  /// numbered i by renumber().
  [[nodiscard]] std::string render() const;
  [[nodiscard]] std::vector<std::string> renderLines() const;
  [[nodiscard]] int lineCount() const;

  /// Maps every line number to its AST location. Rebuilt on demand;
  /// invalidated by structural edits (call after renumber()).
  [[nodiscard]] std::map<int, LineInfo> buildLineIndex() const;
};

}  // namespace acr::cfg
