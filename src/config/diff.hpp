// Line-based configuration diff.
//
// Used to (a) report a repair to the operator as the exact config-line delta
// and (b) let the incremental verifier decide which devices changed. The
// diff is order-insensitive within a device (the canonical renderer fixes
// ordering anyway).
#pragma once

#include <string>
#include <vector>

#include "config/ast.hpp"

namespace acr::cfg {

struct ConfigDiff {
  std::string device;
  std::vector<std::string> added;    // lines present only in the new config
  std::vector<std::string> removed;  // lines present only in the old config

  [[nodiscard]] bool empty() const { return added.empty() && removed.empty(); }
  [[nodiscard]] std::size_t size() const { return added.size() + removed.size(); }

  /// Unified-diff-flavoured rendering ("+ line" / "- line").
  [[nodiscard]] std::string str() const;
};

/// Diff of two versions of one device's configuration.
[[nodiscard]] ConfigDiff diffDevice(const DeviceConfig& before,
                                    const DeviceConfig& after);

/// Total number of changed lines across a network-wide set of diffs.
[[nodiscard]] std::size_t totalChangedLines(const std::vector<ConfigDiff>& diffs);

}  // namespace acr::cfg
