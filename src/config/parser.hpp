// Parser for the `acr-cfg` configuration dialect (see ast.hpp).
//
// The grammar is line-oriented: top-level statements start in column 0,
// block members (interface / bgp / route-policy node / pbr policy bodies)
// are indented by at least one space. Blank lines and lines starting with
// '#' or '!' are comments.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "config/ast.hpp"

namespace acr::cfg {

/// Parse failure: carries the 1-based source line and a message.
class ParseError : public std::runtime_error {
 public:
  ParseError(int line, const std::string& message)
      : std::runtime_error("line " + std::to_string(line) + ": " + message),
        line_(line) {}

  [[nodiscard]] int line() const { return line_; }

 private:
  int line_;
};

/// Parses a full device configuration. Line numbers in the returned AST are
/// canonical (assigned by DeviceConfig::renumber), so `parse(render(c))`
/// reproduces `c` exactly. Throws ParseError on malformed input.
[[nodiscard]] DeviceConfig parseDevice(std::string_view text);

/// Non-throwing variant: returns the config on success and appends
/// human-readable diagnostics to `errors` on failure (partial config is not
/// returned — repair must never run on a half-parsed AST).
[[nodiscard]] std::optional<DeviceConfig> tryParseDevice(
    std::string_view text, std::vector<std::string>& errors);

}  // namespace acr::cfg
