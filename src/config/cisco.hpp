// Cisco-flavoured dialect front-end.
//
// The paper stresses that production networks mix vendors with
// vendor-specific behaviours; ACR's repair algorithms must therefore be
// dialect-independent. This module renders and parses the same DeviceConfig
// AST in an IOS-style syntax:
//
//   hostname A
//   interface eth0
//    ip address 172.16.0.1 255.255.255.252
//   ip route 20.1.1.0 255.255.255.0 10.1.1.10
//   router bgp 65001
//    bgp router-id 1.1.1.2
//    redistribute connected
//    neighbor TORS peer-group
//    neighbor TORS route-map TOR_IN in
//    neighbor 172.16.0.2 remote-as 65002
//    neighbor 172.16.0.2 peer-group TORS
//   ip prefix-list default_all seq 10 permit 0.0.0.0/0
//   route-map Override_All permit 10
//    match ip address prefix-list default_all
//    set as-path overwrite
//   ip policy EDGE
//    rule 10 permit source 0.0.0.0/0 destination 10.0.0.0/8
//
// Documented liberties (no IOS equivalent exists): `set as-path overwrite
// [asn]` mirrors the Huawei overwrite the paper's incident depends on;
// `set as-path prepend <n>` carries a repetition count; PBR keeps the
// rule-based form under `ip policy`.
//
// Both renderers emit exactly one text line per AST line, in the same
// canonical order, so (device, line) coordinates — the SBFL unit — are
// dialect-independent: localization on a Cisco-rendered config points at
// the same lines as on the Huawei rendering.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "config/ast.hpp"
#include "config/parser.hpp"

namespace acr::cfg {

/// IOS-style rendering, line-for-line parallel to DeviceConfig::render().
[[nodiscard]] std::string renderCisco(const DeviceConfig& device);
[[nodiscard]] std::vector<std::string> renderCiscoLines(const DeviceConfig& device);

/// Parses the IOS-style dialect; line numbers are canonical (renumber()ed).
/// Throws ParseError on malformed input.
[[nodiscard]] DeviceConfig parseCiscoDevice(std::string_view text);

/// Netmask helpers ("255.255.255.252" <-> /30).
[[nodiscard]] std::string lengthToNetmask(std::uint8_t length);
[[nodiscard]] std::optional<std::uint8_t> netmaskToLength(std::string_view netmask);

enum class Dialect : std::uint8_t { kHuawei, kCisco };

/// Renders in the requested dialect.
[[nodiscard]] std::string renderAs(const DeviceConfig& device, Dialect dialect);

/// Parses `text` in the requested dialect.
[[nodiscard]] DeviceConfig parseAs(std::string_view text, Dialect dialect);

/// Best-effort dialect detection (looks for `router bgp` / `neighbor` vs
/// `bgp <asn>` / `peer`).
[[nodiscard]] Dialect detectDialect(std::string_view text);

}  // namespace acr::cfg
