#include "config/ast.hpp"

#include <algorithm>
#include <functional>

namespace acr::cfg {

std::string actionName(Action action) {
  return action == Action::kPermit ? "permit" : "deny";
}

std::string redistSourceName(RedistSource source) {
  return source == RedistSource::kStatic ? "static" : "connected";
}

std::string policyActionName(PolicyActionKind kind) {
  switch (kind) {
    case PolicyActionKind::kAsPathOverwrite:
      return "as-path overwrite";
    case PolicyActionKind::kSetLocalPref:
      return "local-preference";
    case PolicyActionKind::kSetMed:
      return "med";
    case PolicyActionKind::kAsPathPrepend:
      return "as-path prepend";
  }
  return "?";
}

std::string pbrActionName(PbrAction action) {
  switch (action) {
    case PbrAction::kPermit:
      return "permit";
    case PbrAction::kDeny:
      return "deny";
    case PbrAction::kRedirect:
      return "redirect";
  }
  return "?";
}

std::string lineKindName(LineKind kind) {
  switch (kind) {
    case LineKind::kHostname: return "hostname";
    case LineKind::kInterface: return "interface";
    case LineKind::kInterfaceIp: return "interface-ip";
    case LineKind::kStaticRoute: return "static-route";
    case LineKind::kBgpHeader: return "bgp";
    case LineKind::kRouterId: return "router-id";
    case LineKind::kRedistribute: return "redistribute";
    case LineKind::kGroup: return "group";
    case LineKind::kGroupImport: return "group-import";
    case LineKind::kGroupExport: return "group-export";
    case LineKind::kPeerAs: return "peer-as";
    case LineKind::kPeerGroupRef: return "peer-group-ref";
    case LineKind::kPeerImport: return "peer-import";
    case LineKind::kPeerExport: return "peer-export";
    case LineKind::kPrefixListEntry: return "prefix-list-entry";
    case LineKind::kPolicyNode: return "policy-node";
    case LineKind::kPolicyMatch: return "policy-match";
    case LineKind::kPolicyAction: return "policy-action";
    case LineKind::kPbrHeader: return "pbr";
    case LineKind::kPbrRule: return "pbr-rule";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// BgpConfig lookups
// ---------------------------------------------------------------------------

const PeerGroupConfig* BgpConfig::findGroup(const std::string& name) const {
  for (const auto& g : groups) {
    if (g.name == name) return &g;
  }
  return nullptr;
}

PeerGroupConfig* BgpConfig::findGroup(const std::string& name) {
  return const_cast<PeerGroupConfig*>(
      static_cast<const BgpConfig*>(this)->findGroup(name));
}

const PeerConfig* BgpConfig::findPeer(net::Ipv4Address address) const {
  for (const auto& p : peers) {
    if (p.address == address) return &p;
  }
  return nullptr;
}

PeerConfig* BgpConfig::findPeer(net::Ipv4Address address) {
  return const_cast<PeerConfig*>(
      static_cast<const BgpConfig*>(this)->findPeer(address));
}

bool BgpConfig::redistributes_source(RedistSource source) const {
  return std::any_of(redistributes.begin(), redistributes.end(),
                     [&](const RedistributeConfig& r) {
                       return r.source == source;
                     });
}

// ---------------------------------------------------------------------------
// Prefix lists
// ---------------------------------------------------------------------------

bool PrefixListEntry::matches(const net::Prefix& candidate) const {
  if (greater_equal == 0 && less_equal == 0) {
    // Exact semantics: prefix and length must match the entry exactly,
    // unless the entry is the catch-all "0.0.0.0 0" which matches any route
    // (this mirrors vendor behaviour where `0.0.0.0 0 le 32` is commonly
    // abbreviated — and is exactly how Figure 2b's `default_all` behaves).
    if (prefix.length() == 0) return true;
    return candidate == prefix;
  }
  if (!prefix.contains(candidate)) return false;
  const std::uint8_t lo = greater_equal != 0 ? greater_equal : prefix.length();
  const std::uint8_t hi = less_equal != 0 ? less_equal : 32;
  return candidate.length() >= lo && candidate.length() <= hi;
}

const PrefixListEntry* PrefixList::match(const net::Prefix& candidate) const {
  for (const auto& entry : entries) {
    if (entry.matches(candidate)) return &entry;
  }
  return nullptr;
}

bool PrefixList::permits(const net::Prefix& candidate) const {
  const PrefixListEntry* entry = match(candidate);
  return entry != nullptr && entry->action == Action::kPermit;
}

int PrefixList::nextIndex() const {
  int max_index = 0;
  for (const auto& entry : entries) max_index = std::max(max_index, entry.index);
  return max_index + 10;
}

// ---------------------------------------------------------------------------
// Route policies
// ---------------------------------------------------------------------------

const PolicyNode* RoutePolicy::findNode(int index) const {
  for (const auto& node : nodes) {
    if (node.index == index) return &node;
  }
  return nullptr;
}

int RoutePolicy::nextNodeIndex() const {
  int max_index = 0;
  for (const auto& node : nodes) max_index = std::max(max_index, node.index);
  return max_index + 10;
}

// ---------------------------------------------------------------------------
// PBR
// ---------------------------------------------------------------------------

bool PbrRule::matches(net::Ipv4Address src, net::Ipv4Address dst) const {
  return source.contains(src) && destination.contains(dst);
}

const PbrRule* PbrPolicy::match(net::Ipv4Address src,
                                net::Ipv4Address dst) const {
  for (const auto& rule : rules) {
    if (rule.matches(src, dst)) return &rule;
  }
  return nullptr;
}

int PbrPolicy::nextIndex() const {
  int max_index = 0;
  for (const auto& rule : rules) max_index = std::max(max_index, rule.index);
  return max_index + 10;
}

// ---------------------------------------------------------------------------
// DeviceConfig lookups
// ---------------------------------------------------------------------------

const PrefixList* DeviceConfig::findPrefixList(const std::string& name) const {
  for (const auto& pl : prefix_lists) {
    if (pl.name == name) return &pl;
  }
  return nullptr;
}

PrefixList* DeviceConfig::findPrefixList(const std::string& name) {
  return const_cast<PrefixList*>(
      static_cast<const DeviceConfig*>(this)->findPrefixList(name));
}

const RoutePolicy* DeviceConfig::findPolicy(const std::string& name) const {
  for (const auto& p : policies) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

RoutePolicy* DeviceConfig::findPolicy(const std::string& name) {
  return const_cast<RoutePolicy*>(
      static_cast<const DeviceConfig*>(this)->findPolicy(name));
}

const PbrPolicy* DeviceConfig::findPbr(const std::string& name) const {
  for (const auto& p : pbr_policies) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

PbrPolicy* DeviceConfig::findPbr(const std::string& name) {
  return const_cast<PbrPolicy*>(
      static_cast<const DeviceConfig*>(this)->findPbr(name));
}

const InterfaceConfig* DeviceConfig::interfaceFor(net::Ipv4Address peer) const {
  for (const auto& itf : interfaces) {
    if (itf.connectedPrefix().contains(peer)) return &itf;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Canonical line walk: the single source of truth for print order, line
// numbering and the line index. `emit(text, info, slot)` is called once per
// line; `slot` points at the AST member holding that line's number.
// ---------------------------------------------------------------------------

namespace {

std::string prefixWords(const net::Prefix& prefix) {
  return prefix.address().str() + ' ' + std::to_string(prefix.length());
}

using EmitFn =
    std::function<void(const std::string& text, const LineInfo& info, int* slot)>;

void walkLines(DeviceConfig& dc, const EmitFn& emit) {
  auto info = [](LineKind kind, int a = -1, int b = -1, int c = -1) {
    LineInfo li;
    li.kind = kind;
    li.a = a;
    li.b = b;
    li.c = c;
    return li;
  };

  emit("hostname " + dc.hostname, info(LineKind::kHostname), &dc.hostname_line);

  for (std::size_t i = 0; i < dc.interfaces.size(); ++i) {
    auto& itf = dc.interfaces[i];
    emit("interface " + itf.name, info(LineKind::kInterface, int(i)), &itf.line);
    emit(" ip address " + itf.address.str() + ' ' +
             std::to_string(itf.prefix_length),
         info(LineKind::kInterfaceIp, int(i)), &itf.ip_line);
  }

  for (std::size_t i = 0; i < dc.static_routes.size(); ++i) {
    auto& sr = dc.static_routes[i];
    emit("ip route-static " + prefixWords(sr.prefix) + ' ' + sr.next_hop.str(),
         info(LineKind::kStaticRoute, int(i)), &sr.line);
  }

  if (dc.bgp) {
    auto& bgp = *dc.bgp;
    emit("bgp " + std::to_string(bgp.asn), info(LineKind::kBgpHeader),
         &bgp.line);
    if (bgp.router_id.value() != 0) {
      emit(" router-id " + bgp.router_id.str(), info(LineKind::kRouterId),
           &bgp.router_id_line);
    }
    for (std::size_t i = 0; i < bgp.redistributes.size(); ++i) {
      auto& redist = bgp.redistributes[i];
      emit(" redistribute " + redistSourceName(redist.source),
           info(LineKind::kRedistribute, int(i)), &redist.line);
    }
    for (std::size_t i = 0; i < bgp.groups.size(); ++i) {
      auto& group = bgp.groups[i];
      emit(" group " + group.name, info(LineKind::kGroup, int(i)), &group.line);
      if (!group.import_policy.empty()) {
        emit(" peer-group " + group.name + " route-policy " +
                 group.import_policy + " import",
             info(LineKind::kGroupImport, int(i)), &group.import_line);
      }
      if (!group.export_policy.empty()) {
        emit(" peer-group " + group.name + " route-policy " +
                 group.export_policy + " export",
             info(LineKind::kGroupExport, int(i)), &group.export_line);
      }
    }
    for (std::size_t i = 0; i < bgp.peers.size(); ++i) {
      auto& peer = bgp.peers[i];
      const std::string head = " peer " + peer.address.str();
      emit(head + " as-number " + std::to_string(peer.remote_as),
           info(LineKind::kPeerAs, int(i)), &peer.as_line);
      if (!peer.group.empty()) {
        emit(head + " group " + peer.group, info(LineKind::kPeerGroupRef, int(i)),
             &peer.group_line);
      }
      if (!peer.import_policy.empty()) {
        emit(head + " route-policy " + peer.import_policy + " import",
             info(LineKind::kPeerImport, int(i)), &peer.import_line);
      }
      if (!peer.export_policy.empty()) {
        emit(head + " route-policy " + peer.export_policy + " export",
             info(LineKind::kPeerExport, int(i)), &peer.export_line);
      }
    }
  }

  for (std::size_t i = 0; i < dc.prefix_lists.size(); ++i) {
    auto& pl = dc.prefix_lists[i];
    for (std::size_t j = 0; j < pl.entries.size(); ++j) {
      auto& entry = pl.entries[j];
      std::string text = "ip prefix-list " + pl.name + " index " +
                         std::to_string(entry.index) + ' ' +
                         actionName(entry.action) + ' ' +
                         prefixWords(entry.prefix);
      if (entry.greater_equal != 0) {
        text += " greater-equal " + std::to_string(entry.greater_equal);
      }
      if (entry.less_equal != 0) {
        text += " less-equal " + std::to_string(entry.less_equal);
      }
      emit(text, info(LineKind::kPrefixListEntry, int(i), int(j)), &entry.line);
    }
  }

  for (std::size_t i = 0; i < dc.policies.size(); ++i) {
    auto& policy = dc.policies[i];
    for (std::size_t j = 0; j < policy.nodes.size(); ++j) {
      auto& node = policy.nodes[j];
      emit("route-policy " + policy.name + ' ' + actionName(node.action) +
               " node " + std::to_string(node.index),
           info(LineKind::kPolicyNode, int(i), int(j)), &node.line);
      for (std::size_t k = 0; k < node.matches.size(); ++k) {
        auto& match = node.matches[k];
        emit(" if-match ip-prefix " + match.prefix_list,
             info(LineKind::kPolicyMatch, int(i), int(j), int(k)), &match.line);
      }
      for (std::size_t k = 0; k < node.actions.size(); ++k) {
        auto& act = node.actions[k];
        std::string text = " apply " + policyActionName(act.kind);
        if (act.kind != PolicyActionKind::kAsPathOverwrite || act.value != 0) {
          text += ' ' + std::to_string(act.value);
        }
        emit(text, info(LineKind::kPolicyAction, int(i), int(j), int(k)),
             &act.line);
      }
    }
  }

  for (std::size_t i = 0; i < dc.pbr_policies.size(); ++i) {
    auto& pbr = dc.pbr_policies[i];
    emit("pbr policy " + pbr.name, info(LineKind::kPbrHeader, int(i)),
         &pbr.line);
    for (std::size_t j = 0; j < pbr.rules.size(); ++j) {
      auto& rule = pbr.rules[j];
      std::string text =
          " rule " + std::to_string(rule.index) + ' ' + pbrActionName(rule.action);
      if (rule.action == PbrAction::kRedirect) {
        text += ' ' + rule.redirect_next_hop.str();
      }
      text += " source " + prefixWords(rule.source) + " destination " +
              prefixWords(rule.destination);
      emit(text, info(LineKind::kPbrRule, int(i), int(j)), &rule.line);
    }
  }
}

}  // namespace

int DeviceConfig::renumber() {
  int next = 0;
  walkLines(*this, [&next](const std::string&, const LineInfo&, int* slot) {
    *slot = ++next;
  });
  return next;
}

std::vector<std::string> DeviceConfig::renderLines() const {
  std::vector<std::string> lines;
  // walkLines requires mutable access for the slot pointers; rendering never
  // writes through them.
  walkLines(const_cast<DeviceConfig&>(*this),
            [&lines](const std::string& text, const LineInfo&, int*) {
              lines.push_back(text);
            });
  return lines;
}

std::string DeviceConfig::render() const {
  std::string out;
  for (const auto& line : renderLines()) {
    out += line;
    out += '\n';
  }
  return out;
}

int DeviceConfig::lineCount() const {
  int count = 0;
  walkLines(const_cast<DeviceConfig&>(*this),
            [&count](const std::string&, const LineInfo&, int*) { ++count; });
  return count;
}

std::map<int, LineInfo> DeviceConfig::buildLineIndex() const {
  std::map<int, LineInfo> index;
  int next = 0;
  walkLines(const_cast<DeviceConfig&>(*this),
            [&](const std::string& text, const LineInfo& info, int*) {
              LineInfo entry = info;
              entry.text = text.substr(text.find_first_not_of(' '));
              index.emplace(++next, entry);
            });
  return index;
}

}  // namespace acr::cfg
