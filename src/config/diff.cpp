#include "config/diff.hpp"

#include <algorithm>

namespace acr::cfg {

ConfigDiff diffDevice(const DeviceConfig& before, const DeviceConfig& after) {
  ConfigDiff diff;
  diff.device = after.hostname.empty() ? before.hostname : after.hostname;
  std::vector<std::string> old_lines = before.renderLines();
  std::vector<std::string> new_lines = after.renderLines();
  std::sort(old_lines.begin(), old_lines.end());
  std::sort(new_lines.begin(), new_lines.end());
  std::set_difference(new_lines.begin(), new_lines.end(), old_lines.begin(),
                      old_lines.end(), std::back_inserter(diff.added));
  std::set_difference(old_lines.begin(), old_lines.end(), new_lines.begin(),
                      new_lines.end(), std::back_inserter(diff.removed));
  return diff;
}

std::string ConfigDiff::str() const {
  std::string out;
  for (const auto& line : removed) {
    out += "- [" + device + "] " + line + '\n';
  }
  for (const auto& line : added) {
    out += "+ [" + device + "] " + line + '\n';
  }
  return out;
}

std::size_t totalChangedLines(const std::vector<ConfigDiff>& diffs) {
  std::size_t total = 0;
  for (const auto& diff : diffs) total += diff.size();
  return total;
}

}  // namespace acr::cfg
