#include "config/cisco.hpp"

#include <algorithm>
#include <charconv>

namespace acr::cfg {

std::string lengthToNetmask(std::uint8_t length) {
  const std::uint32_t mask =
      length == 0 ? 0U : ~std::uint32_t{0} << (32 - length);
  return net::Ipv4Address(mask).str();
}

std::optional<std::uint8_t> netmaskToLength(std::string_view netmask) {
  const auto address = net::Ipv4Address::parse(netmask);
  if (!address) return std::nullopt;
  const std::uint32_t mask = address->value();
  // Must be a contiguous run of leading ones.
  const std::uint32_t inverted = ~mask;
  if ((inverted & (inverted + 1)) != 0) return std::nullopt;
  std::uint8_t length = 0;
  for (std::uint32_t bits = mask; bits & 0x80000000u; bits <<= 1) ++length;
  if (length != 32 && (mask << length) != 0) return std::nullopt;
  return length;
}

// ---------------------------------------------------------------------------
// Rendering — mirrors the canonical element order of DeviceConfig::render()
// exactly (one output line per AST line). tests/config/cisco_test.cc guards
// the line-for-line correspondence across every generator family.
// ---------------------------------------------------------------------------

namespace {

std::string prefixSlash(const net::Prefix& prefix) { return prefix.str(); }

void renderPrefixListEntry(std::vector<std::string>& out,
                           const std::string& list_name,
                           const PrefixListEntry& entry) {
  std::string line = "ip prefix-list " + list_name + " seq " +
                     std::to_string(entry.index) + ' ' +
                     actionName(entry.action) + ' ' +
                     prefixSlash(entry.prefix);
  if (entry.greater_equal != 0) {
    line += " ge " + std::to_string(entry.greater_equal);
  }
  if (entry.less_equal != 0) {
    line += " le " + std::to_string(entry.less_equal);
  }
  out.push_back(std::move(line));
}

}  // namespace

std::vector<std::string> renderCiscoLines(const DeviceConfig& device) {
  std::vector<std::string> out;

  out.push_back("hostname " + device.hostname);

  for (const auto& itf : device.interfaces) {
    out.push_back("interface " + itf.name);
    out.push_back(" ip address " + itf.address.str() + ' ' +
                  lengthToNetmask(itf.prefix_length));
  }

  for (const auto& sr : device.static_routes) {
    out.push_back("ip route " + sr.prefix.address().str() + ' ' +
                  lengthToNetmask(sr.prefix.length()) + ' ' +
                  sr.next_hop.str());
  }

  if (device.bgp) {
    const BgpConfig& bgp = *device.bgp;
    out.push_back("router bgp " + std::to_string(bgp.asn));
    if (bgp.router_id.value() != 0) {
      out.push_back(" bgp router-id " + bgp.router_id.str());
    }
    for (const auto& redist : bgp.redistributes) {
      out.push_back(" redistribute " + redistSourceName(redist.source));
    }
    for (const auto& group : bgp.groups) {
      out.push_back(" neighbor " + group.name + " peer-group");
      if (!group.import_policy.empty()) {
        out.push_back(" neighbor " + group.name + " route-map " +
                      group.import_policy + " in");
      }
      if (!group.export_policy.empty()) {
        out.push_back(" neighbor " + group.name + " route-map " +
                      group.export_policy + " out");
      }
    }
    for (const auto& peer : bgp.peers) {
      const std::string head = " neighbor " + peer.address.str();
      out.push_back(head + " remote-as " + std::to_string(peer.remote_as));
      if (!peer.group.empty()) {
        out.push_back(head + " peer-group " + peer.group);
      }
      if (!peer.import_policy.empty()) {
        out.push_back(head + " route-map " + peer.import_policy + " in");
      }
      if (!peer.export_policy.empty()) {
        out.push_back(head + " route-map " + peer.export_policy + " out");
      }
    }
  }

  for (const auto& list : device.prefix_lists) {
    for (const auto& entry : list.entries) {
      renderPrefixListEntry(out, list.name, entry);
    }
  }

  for (const auto& policy : device.policies) {
    for (const auto& node : policy.nodes) {
      out.push_back("route-map " + policy.name + ' ' + actionName(node.action) +
                    ' ' + std::to_string(node.index));
      for (const auto& match : node.matches) {
        out.push_back(" match ip address prefix-list " + match.prefix_list);
      }
      for (const auto& action : node.actions) {
        switch (action.kind) {
          case PolicyActionKind::kAsPathOverwrite:
            out.push_back(action.value == 0
                              ? " set as-path overwrite"
                              : " set as-path overwrite " +
                                    std::to_string(action.value));
            break;
          case PolicyActionKind::kSetLocalPref:
            out.push_back(" set local-preference " +
                          std::to_string(action.value));
            break;
          case PolicyActionKind::kSetMed:
            out.push_back(" set metric " + std::to_string(action.value));
            break;
          case PolicyActionKind::kAsPathPrepend:
            out.push_back(" set as-path prepend " +
                          std::to_string(action.value));
            break;
        }
      }
    }
  }

  for (const auto& pbr : device.pbr_policies) {
    out.push_back("ip policy " + pbr.name);
    for (const auto& rule : pbr.rules) {
      std::string line =
          " rule " + std::to_string(rule.index) + ' ' + pbrActionName(rule.action);
      if (rule.action == PbrAction::kRedirect) {
        line += ' ' + rule.redirect_next_hop.str();
      }
      line += " source " + prefixSlash(rule.source) + " destination " +
              prefixSlash(rule.destination);
      out.push_back(std::move(line));
    }
  }
  return out;
}

std::string renderCisco(const DeviceConfig& device) {
  std::string out;
  for (const auto& line : renderCiscoLines(device)) {
    out += line;
    out += '\n';
  }
  return out;
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

namespace {

std::vector<std::string_view> tokenize(std::string_view line) {
  std::vector<std::string_view> tokens;
  std::size_t pos = 0;
  while (pos < line.size()) {
    while (pos < line.size() && line[pos] == ' ') ++pos;
    const std::size_t start = pos;
    while (pos < line.size() && line[pos] != ' ') ++pos;
    if (pos > start) tokens.push_back(line.substr(start, pos - start));
  }
  return tokens;
}

enum class Context { kTop, kInterface, kBgp, kRouteMapNode, kPbr };

class CiscoParser {
 public:
  explicit CiscoParser(std::string_view text) : text_(text) {}

  DeviceConfig run() {
    std::size_t pos = 0;
    while (pos <= text_.size()) {
      const std::size_t end = text_.find('\n', pos);
      const std::string_view raw =
          text_.substr(pos, end == std::string_view::npos ? end : end - pos);
      ++line_no_;
      parseLine(raw);
      if (end == std::string_view::npos) break;
      pos = end + 1;
    }
    config_.renumber();
    return std::move(config_);
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError(line_no_, message);
  }

  std::uint32_t parseUint(std::string_view token, const char* what) const {
    std::uint32_t value = 0;
    const auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc{} || ptr != token.data() + token.size()) {
      fail(std::string("expected ") + what + ", got '" + std::string(token) +
           "'");
    }
    return value;
  }

  net::Ipv4Address parseAddress(std::string_view token) const {
    const auto address = net::Ipv4Address::parse(token);
    if (!address) fail("malformed IPv4 address '" + std::string(token) + "'");
    return *address;
  }

  net::Prefix parseSlashPrefix(std::string_view token) const {
    const auto prefix = net::Prefix::parse(token);
    if (!prefix || token.find('/') == std::string_view::npos) {
      fail("malformed prefix '" + std::string(token) + "'");
    }
    return *prefix;
  }

  std::uint8_t parseNetmask(std::string_view token) const {
    const auto length = netmaskToLength(token);
    if (!length) fail("malformed netmask '" + std::string(token) + "'");
    return *length;
  }

  void parseLine(std::string_view raw) {
    if (raw.empty()) return;
    const bool indented = raw.front() == ' ';
    const auto tokens = tokenize(raw);
    if (tokens.empty()) return;
    if (tokens[0].front() == '!' || tokens[0].front() == '#') return;
    if (indented) {
      parseBlockLine(tokens);
    } else {
      parseTopLine(tokens);
    }
  }

  void parseTopLine(const std::vector<std::string_view>& t) {
    context_ = Context::kTop;
    if (t[0] == "hostname") {
      if (t.size() != 2) fail("hostname expects one argument");
      config_.hostname = std::string(t[1]);
    } else if (t[0] == "interface") {
      if (t.size() != 2) fail("interface expects one argument");
      InterfaceConfig itf;
      itf.name = std::string(t[1]);
      config_.interfaces.push_back(itf);
      context_ = Context::kInterface;
    } else if (t[0] == "ip" && t.size() >= 2 && t[1] == "route") {
      if (t.size() != 5) fail("ip route expects <addr> <netmask> <next-hop>");
      StaticRouteConfig sr;
      sr.prefix = net::Prefix(parseAddress(t[2]), parseNetmask(t[3]));
      sr.next_hop = parseAddress(t[4]);
      config_.static_routes.push_back(sr);
    } else if (t[0] == "router" && t.size() == 3 && t[1] == "bgp") {
      if (config_.bgp) fail("duplicate router bgp section");
      BgpConfig bgp;
      bgp.asn = parseUint(t[2], "AS number");
      config_.bgp = bgp;
      context_ = Context::kBgp;
    } else if (t[0] == "ip" && t.size() >= 2 && t[1] == "prefix-list") {
      parsePrefixListLine(t);
    } else if (t[0] == "route-map") {
      if (t.size() != 4) fail("route-map expects: route-map <name> permit|deny <seq>");
      PolicyNode node;
      node.index = static_cast<int>(parseUint(t[3], "sequence"));
      node.action = parseAction(t[2]);
      RoutePolicy* policy = config_.findPolicy(std::string(t[1]));
      if (policy == nullptr) {
        config_.policies.push_back(RoutePolicy{std::string(t[1]), {}});
        policy = &config_.policies.back();
      }
      policy->nodes.push_back(node);
      current_policy_ = policy;
      context_ = Context::kRouteMapNode;
    } else if (t[0] == "ip" && t.size() == 3 && t[1] == "policy") {
      PbrPolicy pbr;
      pbr.name = std::string(t[2]);
      config_.pbr_policies.push_back(pbr);
      context_ = Context::kPbr;
    } else {
      fail("unknown statement '" + std::string(t[0]) + "'");
    }
  }

  void parseBlockLine(const std::vector<std::string_view>& t) {
    switch (context_) {
      case Context::kInterface:
        if (t.size() == 4 && t[0] == "ip" && t[1] == "address") {
          InterfaceConfig& itf = config_.interfaces.back();
          itf.address = parseAddress(t[2]);
          itf.prefix_length = parseNetmask(t[3]);
          return;
        }
        fail("unknown interface statement");
      case Context::kBgp:
        parseBgpLine(t);
        return;
      case Context::kRouteMapNode:
        parseRouteMapLine(t);
        return;
      case Context::kPbr:
        parsePbrLine(t);
        return;
      case Context::kTop:
        fail("indented line outside of a block");
    }
  }

  void parseBgpLine(const std::vector<std::string_view>& t) {
    BgpConfig& bgp = *config_.bgp;
    if (t[0] == "bgp" && t.size() == 3 && t[1] == "router-id") {
      bgp.router_id = parseAddress(t[2]);
    } else if (t[0] == "redistribute" && t.size() == 2) {
      RedistributeConfig redist;
      if (t[1] == "static") {
        redist.source = RedistSource::kStatic;
      } else if (t[1] == "connected") {
        redist.source = RedistSource::kConnected;
      } else {
        fail("unknown redistribute source '" + std::string(t[1]) + "'");
      }
      bgp.redistributes.push_back(redist);
    } else if (t[0] == "neighbor" && t.size() >= 3) {
      parseNeighborLine(t, bgp);
    } else {
      fail("unknown router bgp statement '" + std::string(t[0]) + "'");
    }
  }

  void parseNeighborLine(const std::vector<std::string_view>& t,
                         BgpConfig& bgp) {
    const std::string target(t[1]);
    const bool is_address = net::Ipv4Address::parse(target).has_value() &&
                            target.find('.') != std::string::npos;
    if (!is_address) {
      // Peer-group statements.
      if (t.size() == 3 && t[2] == "peer-group") {
        if (bgp.findGroup(target) != nullptr) fail("duplicate peer-group");
        bgp.groups.push_back(PeerGroupConfig{target, 0, "", 0, "", 0});
        return;
      }
      if (t.size() == 5 && t[2] == "route-map") {
        PeerGroupConfig* group = bgp.findGroup(target);
        if (group == nullptr) fail("unknown peer-group '" + target + "'");
        if (t[4] == "in") {
          group->import_policy = std::string(t[3]);
        } else if (t[4] == "out") {
          group->export_policy = std::string(t[3]);
        } else {
          fail("direction must be in or out");
        }
        return;
      }
      fail("unknown neighbor statement");
    }
    const net::Ipv4Address address = parseAddress(t[1]);
    PeerConfig* peer = bgp.findPeer(address);
    if (peer == nullptr) {
      bgp.peers.push_back(PeerConfig{});
      peer = &bgp.peers.back();
      peer->address = address;
    }
    if (t.size() == 4 && t[2] == "remote-as") {
      peer->remote_as = parseUint(t[3], "AS number");
    } else if (t.size() == 4 && t[2] == "peer-group") {
      peer->group = std::string(t[3]);
    } else if (t.size() == 5 && t[2] == "route-map") {
      if (t[4] == "in") {
        peer->import_policy = std::string(t[3]);
      } else if (t[4] == "out") {
        peer->export_policy = std::string(t[3]);
      } else {
        fail("direction must be in or out");
      }
    } else {
      fail("unknown neighbor statement");
    }
  }

  void parsePrefixListLine(const std::vector<std::string_view>& t) {
    // ip prefix-list NAME seq N permit|deny A.B.C.D/L [ge G] [le L]
    if (t.size() < 7 || t[3] != "seq") {
      fail("ip prefix-list expects: ip prefix-list <name> seq <n> permit|deny "
           "<prefix>");
    }
    PrefixListEntry entry;
    entry.index = static_cast<int>(parseUint(t[4], "sequence"));
    entry.action = parseAction(t[5]);
    entry.prefix = parseSlashPrefix(t[6]);
    std::size_t pos = 7;
    while (pos < t.size()) {
      if (t[pos] == "ge" && pos + 1 < t.size()) {
        entry.greater_equal =
            static_cast<std::uint8_t>(parseUint(t[pos + 1], "length"));
        pos += 2;
      } else if (t[pos] == "le" && pos + 1 < t.size()) {
        entry.less_equal =
            static_cast<std::uint8_t>(parseUint(t[pos + 1], "length"));
        pos += 2;
      } else {
        fail("unexpected token '" + std::string(t[pos]) + "'");
      }
    }
    PrefixList* list = config_.findPrefixList(std::string(t[2]));
    if (list == nullptr) {
      config_.prefix_lists.push_back(PrefixList{std::string(t[2]), {}});
      list = &config_.prefix_lists.back();
    }
    list->entries.push_back(entry);
  }

  void parseRouteMapLine(const std::vector<std::string_view>& t) {
    PolicyNode& node = current_policy_->nodes.back();
    if (t[0] == "match") {
      if (t.size() != 5 || t[1] != "ip" || t[2] != "address" ||
          t[3] != "prefix-list") {
        fail("match expects: match ip address prefix-list <name>");
      }
      node.matches.push_back(
          PolicyMatch{MatchKind::kIpPrefixList, std::string(t[4]), 0});
    } else if (t[0] == "set") {
      PolicyAction action;
      if ((t.size() == 3 || t.size() == 4) && t[1] == "as-path" &&
          t[2] == "overwrite") {
        action.kind = PolicyActionKind::kAsPathOverwrite;
        if (t.size() == 4) action.value = parseUint(t[3], "AS number");
      } else if (t.size() == 3 && t[1] == "local-preference") {
        action.kind = PolicyActionKind::kSetLocalPref;
        action.value = parseUint(t[2], "local-preference");
      } else if (t.size() == 3 && t[1] == "metric") {
        action.kind = PolicyActionKind::kSetMed;
        action.value = parseUint(t[2], "metric");
      } else if (t.size() == 4 && t[1] == "as-path" && t[2] == "prepend") {
        action.kind = PolicyActionKind::kAsPathPrepend;
        action.value = parseUint(t[3], "prepend count");
      } else {
        fail("unknown set action");
      }
      node.actions.push_back(action);
    } else {
      fail("unknown route-map statement '" + std::string(t[0]) + "'");
    }
  }

  void parsePbrLine(const std::vector<std::string_view>& t) {
    if (t.size() < 2 || t[0] != "rule") fail("ip policy body expects rules");
    PbrRule rule;
    rule.index = static_cast<int>(parseUint(t[1], "rule index"));
    std::size_t pos = 3;
    if (t.size() > 2 && t[2] == "permit") {
      rule.action = PbrAction::kPermit;
    } else if (t.size() > 2 && t[2] == "deny") {
      rule.action = PbrAction::kDeny;
    } else if (t.size() > 3 && t[2] == "redirect") {
      rule.action = PbrAction::kRedirect;
      rule.redirect_next_hop = parseAddress(t[3]);
      pos = 4;
    } else {
      fail("rule action must be permit, deny or redirect");
    }
    if (t.size() != pos + 4 || t[pos] != "source" ||
        t[pos + 2] != "destination") {
      fail("rule expects: source <prefix> destination <prefix>");
    }
    rule.source = parseSlashPrefix(t[pos + 1]);
    rule.destination = parseSlashPrefix(t[pos + 3]);
    config_.pbr_policies.back().rules.push_back(rule);
  }

  Action parseAction(std::string_view token) const {
    if (token == "permit") return Action::kPermit;
    if (token == "deny") return Action::kDeny;
    fail("expected permit|deny, got '" + std::string(token) + "'");
  }

  std::string_view text_;
  int line_no_ = 0;
  DeviceConfig config_;
  Context context_ = Context::kTop;
  RoutePolicy* current_policy_ = nullptr;
};

}  // namespace

DeviceConfig parseCiscoDevice(std::string_view text) {
  return CiscoParser(text).run();
}

std::string renderAs(const DeviceConfig& device, Dialect dialect) {
  return dialect == Dialect::kCisco ? renderCisco(device) : device.render();
}

DeviceConfig parseAs(std::string_view text, Dialect dialect) {
  return dialect == Dialect::kCisco ? parseCiscoDevice(text)
                                    : parseDevice(text);
}

Dialect detectDialect(std::string_view text) {
  if (text.find("router bgp") != std::string_view::npos ||
      text.find("neighbor ") != std::string_view::npos ||
      text.find("route-map ") != std::string_view::npos ||
      text.find(" seq ") != std::string_view::npos) {
    // `route-map` also appears in the Huawei dialect's bindings; prefer the
    // unambiguous markers first.
    if (text.find("router bgp") != std::string_view::npos ||
        text.find("neighbor ") != std::string_view::npos ||
        text.find(" seq ") != std::string_view::npos) {
      return Dialect::kCisco;
    }
  }
  return Dialect::kHuawei;
}

}  // namespace acr::cfg
