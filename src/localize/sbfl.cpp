#include "localize/sbfl.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

#include "obs/trace.hpp"

namespace acr::sbfl {

std::string metricName(Metric metric) {
  switch (metric) {
    case Metric::kTarantula:
      return "tarantula";
    case Metric::kOchiai:
      return "ochiai";
    case Metric::kJaccard:
      return "jaccard";
    case Metric::kDstar2:
      return "dstar2";
    case Metric::kOp2:
      return "op2";
    case Metric::kKulczynski2:
      return "kulczynski2";
    case Metric::kRandom:
      return "random";
  }
  return "?";
}

std::optional<Metric> metricByName(const std::string& name) {
  for (const Metric metric :
       {Metric::kTarantula, Metric::kOchiai, Metric::kJaccard,
        Metric::kDstar2, Metric::kOp2, Metric::kKulczynski2,
        Metric::kRandom}) {
    if (metricName(metric) == name) return metric;
  }
  return std::nullopt;
}

const std::vector<Metric>& allMetrics() {
  static const std::vector<Metric> kMetrics = {
      Metric::kTarantula, Metric::kOchiai,       Metric::kJaccard,
      Metric::kDstar2,    Metric::kOp2,          Metric::kKulczynski2};
  return kMetrics;
}

void Spectrum::addRow(const CoverageBits& row, bool passed) {
  if (passed) {
    ++total_passed_;
  } else {
    ++total_failed_;
  }
  std::vector<int>& bumped = passed ? passed_ : failed_;
  row.forEachSet([&](int id) {
    const auto idx = static_cast<std::size_t>(id);
    if (idx >= bumped.size()) bumped.resize(idx + 1, 0);
    if (++bumped[idx] == 1) {
      const std::vector<int>& other = passed ? failed_ : passed_;
      if (idx >= other.size() || other[idx] == 0) ++covered_;
    }
  });
}

void Spectrum::removeRow(const CoverageBits& row, bool passed) {
  if (passed) {
    --total_passed_;
  } else {
    --total_failed_;
  }
  std::vector<int>& dropped = passed ? passed_ : failed_;
  row.forEachSet([&](int id) {
    const auto idx = static_cast<std::size_t>(id);
    if (--dropped[idx] == 0) {
      const std::vector<int>& other = passed ? failed_ : passed_;
      if (idx >= other.size() || other[idx] == 0) --covered_;
    }
  });
}

double Spectrum::scoreCounts(const Counts& counts, Metric metric,
                             const cfg::LineId& line,
                             std::uint64_t seed) const {
  const double f = counts.failed;
  const double p = counts.passed;
  const double F = total_failed_;
  const double P = total_passed_;
  switch (metric) {
    case Metric::kTarantula: {
      // Equation 1 of the paper.
      if (F == 0) return 0.0;
      const double fr = f / F;
      const double pr = P == 0 ? 0.0 : p / P;
      if (fr + pr == 0.0) return 0.0;
      return fr / (pr + fr);
    }
    case Metric::kOchiai: {
      const double denom = std::sqrt(F * (f + p));
      return denom == 0.0 ? 0.0 : f / denom;
    }
    case Metric::kJaccard: {
      const double denom = F + p;
      return denom == 0.0 ? 0.0 : f / denom;
    }
    case Metric::kDstar2: {
      const double denom = p + (F - f);
      if (denom == 0.0) return f == 0.0 ? 0.0 : 1e9;
      return (f * f) / denom;
    }
    case Metric::kOp2: {
      // Scores can be negative (p-heavy lines); rank order is what matters.
      return f - p / (P + 1.0);
    }
    case Metric::kKulczynski2: {
      if (F == 0 || f + p == 0) return 0.0;
      return 0.5 * (f / F + f / (f + p));
    }
    case Metric::kRandom: {
      const std::size_t h =
          std::hash<std::string>{}(line.str() + '#' + std::to_string(seed));
      return static_cast<double>(h % 10000) / 10000.0;
    }
  }
  return 0.0;
}

double Spectrum::score(const cfg::LineId& line, Metric metric,
                       std::uint64_t seed) const {
  const int id = lines_->idOf(line);
  if (id < 0) return 0.0;
  const Counts counts = countsOf(id);
  if (counts.failed + counts.passed == 0) return 0.0;
  return scoreCounts(counts, metric, line, seed);
}

std::vector<LineScore> Spectrum::rank(Metric metric, std::uint64_t seed) const {
  obs::Span span("sbfl.rank");
  span.attr("lines", static_cast<std::int64_t>(covered_));
  std::vector<LineScore> scores;
  scores.reserve(covered_);
  const int ids = static_cast<int>(lines_->size());
  for (int id = 0; id < ids; ++id) {
    const Counts counts = countsOf(id);
    if (counts.failed + counts.passed == 0) continue;
    LineScore score;
    score.line = lines_->lineOf(id);
    score.suspiciousness = scoreCounts(counts, metric, score.line, seed);
    score.failed_cover = counts.failed;
    score.passed_cover = counts.passed;
    scores.push_back(score);
  }
  std::sort(scores.begin(), scores.end(),
            [](const LineScore& a, const LineScore& b) {
              if (a.suspiciousness != b.suspiciousness) {
                return a.suspiciousness > b.suspiciousness;
              }
              return a.line < b.line;
            });
  return scores;
}

std::vector<LineScore> Spectrum::mostSuspicious(Metric metric,
                                                std::uint64_t seed) const {
  std::vector<LineScore> ranked = rank(metric, seed);
  if (ranked.empty()) return ranked;
  const double top = ranked.front().suspiciousness;
  std::vector<LineScore> out;
  for (const auto& score : ranked) {
    if (score.suspiciousness < top) break;
    out.push_back(score);
  }
  return out;
}

std::vector<std::string> suspectDevices(const std::vector<LineScore>& ranked,
                                        double threshold) {
  std::vector<std::string> devices;
  double top = 0.0;
  for (const auto& score : ranked) {
    if (score.failed_cover == 0) continue;
    top = score.suspiciousness;
    break;
  }
  if (top <= 0.0) return devices;
  for (const auto& score : ranked) {
    if (score.failed_cover == 0) continue;
    if (score.suspiciousness < threshold * top) continue;
    if (std::find(devices.begin(), devices.end(), score.line.device) ==
        devices.end()) {
      devices.push_back(score.line.device);
    }
  }
  return devices;
}

}  // namespace acr::sbfl
