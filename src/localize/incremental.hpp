// Incremental LOCALIZE: delta-seeded simulation + cached suite evaluation.
//
// The repair loop localizes every surviving candidate every iteration; a
// candidate differs from the original faulty network by a handful of edits,
// so a from-scratch provenance-recording simulation plus a full probe suite
// repeats almost all of the anchor's work. LocalizeCache keeps one anchor
// per topology (the faulty network itself, plus one per degraded link set
// the tolerance checker surfaces) holding its converged simulation, frozen
// canonical provenance, per-test outcomes, coverage rows (as bitsets over
// interned line ids) and the assembled spectrum. A candidate is then:
//
//   1. simulated with route::DeltaSimulator off the anchor fixpoint, which
//      forks the anchor's provenance graph copy-on-write and reports the
//      exact dirty blast radius (changed cells + chain-dirty routers);
//   2. probed selectively: a cached test is reused — outcome AND coverage
//      row — when its recorded read set (trace hops, destination owner,
//      explainAbsence consulted routers) avoids every dirty router;
//   3. scored on a forked spectrum: the anchor's counts with only the
//      invalidated tests' rows swapped (Spectrum::removeRow/addRow).
//
// Identity: reused outcomes/coverage are pure functions of clean routers'
// configs, FIB entries and derivation chains, all byte-identical under the
// delta contract; swapped spectra hold the same counts a from-scratch build
// would, and ranking is count-based — so rankings, suspect sets and repair
// behavior match the full path exactly. Whenever the delta falls back (or
// the anchor never converged), the cache transparently runs the old full
// pipeline. Multipath traces only retain their worst branch, which is not a
// complete read set — with multipath on, every probe reruns (the delta
// simulation still amortizes).
//
// Not thread-safe; the engine localizes candidates sequentially.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "localize/coverage.hpp"
#include "localize/rows.hpp"
#include "localize/sbfl.hpp"
#include "routing/simulator.hpp"
#include "topo/network.hpp"
#include "verify/verifier.hpp"

namespace acr::sbfl {

/// Everything the engine's LOCALIZE stage consumes for one candidate.
struct LocalizeOutcome {
  route::SimResult sim;
  /// Per-test verdicts as copy-on-write rows: cache hits alias the anchor's
  /// allocation, misses carry fresh rows (see localize/rows.hpp).
  std::vector<ResultRow> results;
  /// Per-test covered lines, parallel to `results` (the RepairContext view).
  std::vector<CoverageRow> coverage;
  Spectrum spectrum;
  /// "anchor" (anchor build), "delta" (incremental path), a DeltaSimulator
  /// fallback reason, or "full" (anchor unusable).
  std::string sim_kind;
  std::size_t probe_hits = 0;    // tests served from the anchor
  std::size_t probe_misses = 0;  // tests re-traced and re-covered
  std::size_t derivations_fresh = 0;
  std::size_t derivations_reused = 0;
  double sim_ms = 0.0;    // simulation segment (delta or full)
  double suite_ms = 0.0;  // probe + coverage + spectrum segment
};

class LocalizeCache {
 public:
  /// `origin` is the faulty network every candidate derives from; it must
  /// outlive the cache. Anchors are built lazily on first use.
  LocalizeCache(const topo::Network& origin,
                std::vector<verify::Intent> intents,
                std::vector<verify::TestCase> tests,
                route::SimOptions localize_options, bool multipath);

  /// Localizes `network`, whose configs differ from the origin exactly on
  /// `changed_devices`, on the plain topology.
  [[nodiscard]] LocalizeOutcome localize(
      const topo::Network& network,
      const std::vector<std::string>& changed_devices);

  /// Localizes a degraded candidate (`network` must already have `links`
  /// removed, configs unchanged) against a cached anchor of the origin with
  /// the same links removed — one anchor per distinct violating link set.
  [[nodiscard]] LocalizeOutcome localizeDegraded(
      const topo::Network& network,
      const std::vector<std::string>& changed_devices,
      std::vector<std::size_t> links);

 private:
  struct Anchor {
    topo::Network network;
    route::SimResult sim;
    std::vector<ResultRow> results;
    std::vector<CoverageRow> coverage;
    std::vector<CoverageBits> rows;
    /// Per-test read set: routers whose state the outcome + coverage
    /// depend on (see coverageOf's footprint contract).
    std::vector<ProbeFootprint> footprints;
    Spectrum spectrum;
    /// Converged with a recorded provenance graph — the delta premise.
    bool usable = false;
  };

  [[nodiscard]] Anchor buildAnchor(topo::Network network,
                                   LocalizeOutcome* outcome) const;
  [[nodiscard]] LocalizeOutcome localizeAgainst(
      const Anchor& anchor, const topo::Network& network,
      const std::vector<std::string>& changed_devices) const;
  [[nodiscard]] LocalizeOutcome fullPipeline(const topo::Network& network,
                                             std::string sim_kind) const;
  void fullSuite(const topo::Network& network, LocalizeOutcome& out) const;

  const topo::Network& origin_;
  verify::Verifier verifier_;
  std::vector<verify::TestCase> tests_;
  route::SimOptions options_;
  bool multipath_;
  std::optional<Anchor> plain_;
  /// Keyed by the sorted removed-link index set.
  std::map<std::vector<std::size_t>, Anchor> degraded_;
};

}  // namespace acr::sbfl
