// Coverage-guided test-suite generation (§6, "Generating test suite for
// configurations").
//
// SBFL's accuracy depends on test-suite coverage (§4.1). The base suite —
// one sampled packet per intent — can leave configuration regions covered by
// no test. This generator grows the suite greedily: each round samples one
// more packet per intent (fresh deterministic seeds) and keeps only the
// tests that cover configuration lines no earlier test covered, stopping
// when a full round contributes nothing new (a coverage plateau).
#pragma once

#include <cstddef>
#include <vector>

#include "routing/simulator.hpp"
#include "topo/network.hpp"
#include "verify/verifier.hpp"

namespace acr::sbfl {

struct TestGenOptions {
  int max_samples_per_intent = 8;
  int plateau_rounds = 2;  // stop after this many rounds with no new lines
};

struct TestGenResult {
  std::vector<verify::TestCase> tests;
  std::size_t covered_lines = 0;  // lines covered by the final suite
  int rounds = 0;                 // sampling rounds performed
  int rejected = 0;               // samples dropped for adding no coverage
};

/// Builds a coverage-guided suite for `network` under `intents`. Simulates
/// once (with provenance) and reuses that state for every candidate test.
[[nodiscard]] TestGenResult generateCoverageGuidedTests(
    const topo::Network& network, const std::vector<verify::Intent>& intents,
    const TestGenOptions& options = {},
    const route::SimOptions& sim_options = {});

}  // namespace acr::sbfl
