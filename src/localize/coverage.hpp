// Coverage extraction: which configuration lines did a test "execute"?
//
// Per §4.1 of the paper, coverage is computed from network provenance: the
// lines on the derivation chains of every route the test packet used, plus
// the PBR rules evaluated along the trace. For tests that fail because a
// route is *missing* (blackholes), the derivation chain alone cannot point
// at the destination side, so the extractor additionally attributes the
// destination-owning router's origination machinery (interface, static
// routes covering the destination, redistribution statements) — the lines an
// operator would inspect for a "route never announced" symptom.
#pragma once

#include <set>
#include <string>

#include "config/ast.hpp"
#include "routing/simulator.hpp"
#include "topo/network.hpp"
#include "verify/verifier.hpp"

namespace acr::sbfl {

/// The read set of one probe's trace + coverage extraction, split by what
/// kind of state each router contributed — the invalidation key of the
/// incremental localizer. `hops` made FIB lookups for the packet's
/// destination, so only a dirty (router, prefix) cell whose prefix contains
/// that destination (or a config edit at the hop — PBR, ACLs) can change
/// what they saw. `state_reads` (the explainAbsence walk) examined RIB
/// presence and session state wholesale: any dirty cell or config edit
/// there invalidates. `config_reads` (the destination's subnet owner) only
/// contributed config lines: only a config edit invalidates. `global` marks
/// a graph-wide read (flapping destinations) that no delta can preserve.
struct ProbeFootprint {
  std::set<std::string> hops;
  std::set<std::string> state_reads;
  std::set<std::string> config_reads;
  /// The subset of `state_reads` whose configuration the absence walk
  /// actually read (AbsenceExplanation::config_reads): only a config edit
  /// *here* can change the walk. The other consulted routers contributed
  /// RIB lookups for `state_prefix` only — the dirty-cell overlap check
  /// covers them.
  std::set<std::string> walk_config_reads;
  /// The prefix the absence walk examined (valid when state_reads is
  /// non-empty): the walk's RIB lookups are all for exactly this prefix,
  /// so only dirty cells overlapping it can change what the walk saw.
  net::Prefix state_prefix;
  bool global = false;
};

/// When `footprint` is non-null it receives the extraction's read set; a
/// cached test outcome and coverage row stay byte-identical as long as the
/// footprint avoids every dirtied read (see ProbeFootprint).
[[nodiscard]] std::set<cfg::LineId> coverageOf(
    const topo::Network& network, const route::SimResult& sim,
    const verify::TestResult& result, ProbeFootprint* footprint = nullptr);

}  // namespace acr::sbfl
