// Coverage extraction: which configuration lines did a test "execute"?
//
// Per §4.1 of the paper, coverage is computed from network provenance: the
// lines on the derivation chains of every route the test packet used, plus
// the PBR rules evaluated along the trace. For tests that fail because a
// route is *missing* (blackholes), the derivation chain alone cannot point
// at the destination side, so the extractor additionally attributes the
// destination-owning router's origination machinery (interface, static
// routes covering the destination, redistribution statements) — the lines an
// operator would inspect for a "route never announced" symptom.
#pragma once

#include <set>

#include "config/ast.hpp"
#include "routing/simulator.hpp"
#include "topo/network.hpp"
#include "verify/verifier.hpp"

namespace acr::sbfl {

[[nodiscard]] std::set<cfg::LineId> coverageOf(const topo::Network& network,
                                               const route::SimResult& sim,
                                               const verify::TestResult& result);

}  // namespace acr::sbfl
