// Copy-on-write rows of the localization suite.
//
// The incremental localizer reuses an anchor's per-test outcome and
// coverage row whenever a candidate's blast radius misses the probe's read
// set. On a typical single-device edit that is the vast majority of the
// suite, and deep-copying a few hundred TestResults (trace hops, reason
// strings) and coverage sets (one tree node per covered line) per candidate
// costs more than re-running the invalidated probes. SharedRow makes the
// reuse literal: a row is an immutable shared allocation, a cache hit is a
// reference-count bump, and only fresh rows (misses, full rebuilds) pay an
// allocation. The implicit conversion keeps read sites written against the
// underlying type (`const verify::TestResult& r = rows[i];`) compiling
// unchanged.
#pragma once

#include <memory>
#include <set>
#include <utility>

#include "config/ast.hpp"
#include "verify/verifier.hpp"

namespace acr::sbfl {

template <typename T>
class SharedRow {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): rows wrap transparently.
  SharedRow(T value) : ptr_(std::make_shared<const T>(std::move(value))) {}

  // NOLINTNEXTLINE(google-explicit-constructor): rows read transparently.
  operator const T&() const { return *ptr_; }
  const T& operator*() const { return *ptr_; }
  const T* operator->() const { return ptr_.get(); }

 private:
  std::shared_ptr<const T> ptr_;
};

/// One test's verdict (trace, pass/fail, reason).
using ResultRow = SharedRow<verify::TestResult>;
/// One test's covered configuration lines, parallel to its ResultRow.
using CoverageRow = SharedRow<std::set<cfg::LineId>>;

}  // namespace acr::sbfl
