#include "localize/coverage.hpp"

#include "provenance/negative.hpp"

namespace acr::sbfl {

std::set<cfg::LineId> coverageOf(const topo::Network& network,
                                 const route::SimResult& sim,
                                 const verify::TestResult& result,
                                 ProbeFootprint* footprint) {
  std::set<cfg::LineId> lines = result.trace.coveredLines(sim.provenance);
  const net::Ipv4Address dst = result.test.packet.dst;
  if (footprint != nullptr) {
    for (const auto& hop : result.trace.hops) footprint->hops.insert(hop.router);
  }

  // A flapping destination exercises every derivation in the oscillation
  // cycle, not just the representative final state.
  if (result.trace.destination_flapping) {
    if (footprint != nullptr) footprint->global = true;
    for (const auto& prefix : sim.flapping) {
      if (prefix.contains(dst)) {
        sim.provenance.collectLinesForPrefix(prefix, lines);
      }
    }
  }

  // A blackhole means a route is *missing*: negative provenance (Y!-style)
  // walks back from the router that lacked it and blames the exact obstacle
  // lines (down sessions, denying policies, missing redistribution).
  if (result.trace.outcome == dp::TraceOutcome::kBlackhole &&
      !result.trace.hops.empty()) {
    for (const auto& subnet : network.topology.subnets()) {
      if (!subnet.prefix.contains(dst)) continue;
      const prov::AbsenceExplanation explanation = prov::explainAbsence(
          network, sim, result.trace.hops.back().router, subnet.prefix);
      const auto blamed = explanation.lines();
      lines.insert(blamed.begin(), blamed.end());
      if (footprint != nullptr) {
        footprint->state_reads.insert(explanation.consulted.begin(),
                                      explanation.consulted.end());
        footprint->walk_config_reads.insert(explanation.config_reads.begin(),
                                            explanation.config_reads.end());
        footprint->state_prefix = subnet.prefix;
      }
      break;
    }
  }

  // Destination-side origination context.
  const auto owner = network.topology.subnetOwner(dst);
  if (owner) {
    if (footprint != nullptr) footprint->config_reads.insert(*owner);
    const cfg::DeviceConfig* device = network.config(*owner);
    if (device != nullptr) {
      for (const auto& itf : device->interfaces) {
        if (itf.connectedPrefix().contains(dst)) {
          lines.insert(cfg::LineId{*owner, itf.ip_line});
        }
      }
      for (const auto& sr : device->static_routes) {
        if (sr.prefix.contains(dst)) {
          lines.insert(cfg::LineId{*owner, sr.line});
        }
      }
      if (device->bgp) {
        for (const auto& redist : device->bgp->redistributes) {
          lines.insert(cfg::LineId{*owner, redist.line});
        }
      }
    }
  }
  return lines;
}

}  // namespace acr::sbfl
