// Spectrum-Based Fault Localization over configuration lines.
//
// The spectrum counts, per line, how many passing and failing tests covered
// it; a suspiciousness formula turns the counts into a 0..1 score (§4.1,
// Equation 1). Tarantula is the paper's choice; Ochiai, Jaccard and DStar(2)
// are the §6 alternatives, and Random is the ablation floor.
//
// Storage is dense: config lines are interned into a LineTable (shareable
// across spectra) and coverage is a dynamic bitset over the interned ids, so
// pass/fail tallies are flat int arrays instead of string-keyed maps. A
// test's outcome can be added *and removed* as a row, which is what makes
// the repair loop's incremental localization cheap: a candidate's spectrum
// is the anchor's counts with only the flipped tests' rows swapped out.
// Ranking materializes LineIds only at the sort boundary, so the ranked
// output is byte-identical to the old map-based implementation regardless
// of interning order. LineTable interning is not thread-safe — LOCALIZE is
// sequential per candidate, mirroring the engine.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "config/ast.hpp"

namespace acr::sbfl {

enum class Metric : std::uint8_t {
  kTarantula,
  kOchiai,
  kJaccard,
  kDstar2,
  kOp2,          // Naish et al.: f - p/(P+1); optimal for single faults
  kKulczynski2,  // 0.5 * (f/F + f/(f+p))
  kRandom,
};

[[nodiscard]] std::string metricName(Metric metric);

/// Inverse of metricName (includes "random"); nullopt for unknown names.
/// The one metric-flag parser, shared by `acrctl` and the repair service.
[[nodiscard]] std::optional<Metric> metricByName(const std::string& name);

/// All metrics (excluding kRandom) in declaration order, for sweeps.
[[nodiscard]] const std::vector<Metric>& allMetrics();

struct LineScore {
  cfg::LineId line;
  double suspiciousness = 0.0;
  int failed_cover = 0;  // failed(s)
  int passed_cover = 0;  // passed(s)
};

/// One test's coverage as a dynamic bitset over interned line ids.
class CoverageBits {
 public:
  void set(int id) {
    const auto word = static_cast<std::size_t>(id) >> 6;
    if (word >= words_.size()) words_.resize(word + 1, 0);
    words_[word] |= std::uint64_t{1} << (static_cast<std::size_t>(id) & 63);
  }
  [[nodiscard]] bool test(int id) const {
    const auto word = static_cast<std::size_t>(id) >> 6;
    return word < words_.size() &&
           (words_[word] >> (static_cast<std::size_t>(id) & 63) & 1) != 0;
  }
  [[nodiscard]] bool empty() const {
    for (const std::uint64_t word : words_) {
      if (word != 0) return false;
    }
    return true;
  }
  /// Visits set ids in ascending order.
  template <class Fn>
  void forEachSet(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t word = words_[w];
      while (word != 0) {
        const int bit = __builtin_ctzll(word);
        fn(static_cast<int>(w * 64) + bit);
        word &= word - 1;
      }
    }
  }

 private:
  std::vector<std::uint64_t> words_;
};

/// Append-only interner of config LineIds. Shared (via shared_ptr) between
/// an anchor spectrum and its per-candidate forks so their rows live in one
/// id space; ids never leak into ranked output, which materializes LineIds.
class LineTable {
 public:
  int intern(const cfg::LineId& line) {
    const auto [it, inserted] =
        index_.try_emplace(line, static_cast<int>(lines_.size()));
    if (inserted) lines_.push_back(line);
    return it->second;
  }
  /// -1 when the line was never interned.
  [[nodiscard]] int idOf(const cfg::LineId& line) const {
    const auto it = index_.find(line);
    return it == index_.end() ? -1 : it->second;
  }
  [[nodiscard]] const cfg::LineId& lineOf(int id) const {
    return lines_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] std::size_t size() const { return lines_.size(); }

  /// Interns every line of a coverage set into one dense row.
  [[nodiscard]] CoverageBits internRow(const std::set<cfg::LineId>& lines) {
    CoverageBits row;
    for (const auto& line : lines) row.set(intern(line));
    return row;
  }

 private:
  std::vector<cfg::LineId> lines_;
  std::map<cfg::LineId, int> index_;
};

class Spectrum {
 public:
  Spectrum() : lines_(std::make_shared<LineTable>()) {}
  /// A spectrum whose rows are interned in a caller-owned table — forked
  /// spectra share the anchor's table, so anchor rows apply verbatim.
  explicit Spectrum(std::shared_ptr<LineTable> lines)
      : lines_(std::move(lines)) {}

  /// Records one test's coverage and verdict.
  void addTest(const std::set<cfg::LineId>& covered, bool passed) {
    addRow(lines_->internRow(covered), passed);
  }

  /// Dense twin of addTest over an already-interned row.
  void addRow(const CoverageBits& row, bool passed);
  /// Exact inverse of addRow — the incremental update: fork the anchor
  /// spectrum, removeRow the flipped tests' anchor rows, addRow the fresh
  /// ones.
  void removeRow(const CoverageBits& row, bool passed);

  [[nodiscard]] int totalPassed() const { return total_passed_; }
  [[nodiscard]] int totalFailed() const { return total_failed_; }

  /// Suspiciousness of one line under `metric`.
  [[nodiscard]] double score(const cfg::LineId& line, Metric metric,
                             std::uint64_t seed = 0) const;

  /// Every covered line ranked by descending suspiciousness (ties broken by
  /// line id for determinism). Single pass over the dense id space.
  [[nodiscard]] std::vector<LineScore> rank(Metric metric,
                                            std::uint64_t seed = 0) const;

  /// The top-scoring lines only (all lines sharing the maximum score).
  [[nodiscard]] std::vector<LineScore> mostSuspicious(
      Metric metric, std::uint64_t seed = 0) const;

  [[nodiscard]] std::size_t coveredLineCount() const { return covered_; }

  [[nodiscard]] const std::shared_ptr<LineTable>& lines() const {
    return lines_;
  }

 private:
  struct Counts {
    int failed = 0;
    int passed = 0;
  };
  [[nodiscard]] Counts countsOf(int id) const {
    const auto idx = static_cast<std::size_t>(id);
    return Counts{idx < failed_.size() ? failed_[idx] : 0,
                  idx < passed_.size() ? passed_[idx] : 0};
  }
  [[nodiscard]] double scoreCounts(const Counts& counts, Metric metric,
                                   const cfg::LineId& line,
                                   std::uint64_t seed) const;

  std::shared_ptr<LineTable> lines_;
  std::vector<int> failed_;  // by interned line id
  std::vector<int> passed_;
  std::size_t covered_ = 0;  // ids with failed + passed > 0
  int total_passed_ = 0;
  int total_failed_ = 0;
};

/// Devices hot enough to symbolize (the selective-symbolic layer's device
/// gate): a device qualifies when its best failure-covered line scores at
/// least `threshold` × the global best score. Returned in rank order (first
/// qualifying line decides a device's position); empty when nothing in
/// `ranked` covers a failure.
[[nodiscard]] std::vector<std::string> suspectDevices(
    const std::vector<LineScore>& ranked, double threshold);

}  // namespace acr::sbfl
