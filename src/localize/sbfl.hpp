// Spectrum-Based Fault Localization over configuration lines.
//
// The spectrum counts, per line, how many passing and failing tests covered
// it; a suspiciousness formula turns the counts into a 0..1 score (§4.1,
// Equation 1). Tarantula is the paper's choice; Ochiai, Jaccard and DStar(2)
// are the §6 alternatives, and Random is the ablation floor.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "config/ast.hpp"

namespace acr::sbfl {

enum class Metric : std::uint8_t {
  kTarantula,
  kOchiai,
  kJaccard,
  kDstar2,
  kOp2,          // Naish et al.: f - p/(P+1); optimal for single faults
  kKulczynski2,  // 0.5 * (f/F + f/(f+p))
  kRandom,
};

[[nodiscard]] std::string metricName(Metric metric);

/// Inverse of metricName (includes "random"); nullopt for unknown names.
/// The one metric-flag parser, shared by `acrctl` and the repair service.
[[nodiscard]] std::optional<Metric> metricByName(const std::string& name);

/// All metrics (excluding kRandom) in declaration order, for sweeps.
[[nodiscard]] const std::vector<Metric>& allMetrics();

struct LineScore {
  cfg::LineId line;
  double suspiciousness = 0.0;
  int failed_cover = 0;  // failed(s)
  int passed_cover = 0;  // passed(s)
};

class Spectrum {
 public:
  /// Records one test's coverage and verdict.
  void addTest(const std::set<cfg::LineId>& covered, bool passed);

  [[nodiscard]] int totalPassed() const { return total_passed_; }
  [[nodiscard]] int totalFailed() const { return total_failed_; }

  /// Suspiciousness of one line under `metric`.
  [[nodiscard]] double score(const cfg::LineId& line, Metric metric,
                             std::uint64_t seed = 0) const;

  /// Every covered line ranked by descending suspiciousness (ties broken by
  /// line id for determinism).
  [[nodiscard]] std::vector<LineScore> rank(Metric metric,
                                            std::uint64_t seed = 0) const;

  /// The top-scoring lines only (all lines sharing the maximum score).
  [[nodiscard]] std::vector<LineScore> mostSuspicious(
      Metric metric, std::uint64_t seed = 0) const;

  [[nodiscard]] std::size_t coveredLineCount() const { return counts_.size(); }

 private:
  struct Counts {
    int failed = 0;
    int passed = 0;
  };
  [[nodiscard]] double scoreCounts(const Counts& counts, Metric metric,
                                   const cfg::LineId& line,
                                   std::uint64_t seed) const;

  std::map<cfg::LineId, Counts> counts_;
  int total_passed_ = 0;
  int total_failed_ = 0;
};

}  // namespace acr::sbfl
