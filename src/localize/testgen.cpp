#include "localize/testgen.hpp"

#include "localize/coverage.hpp"

namespace acr::sbfl {

TestGenResult generateCoverageGuidedTests(
    const topo::Network& network, const std::vector<verify::Intent>& intents,
    const TestGenOptions& options, const route::SimOptions& sim_options) {
  TestGenResult result;

  route::SimOptions with_provenance = sim_options;
  with_provenance.record_provenance = true;
  const route::SimResult sim = route::Simulator(network).run(with_provenance);
  const verify::Verifier verifier(intents, with_provenance);

  std::set<cfg::LineId> covered;
  const auto tryAdd = [&](const verify::TestCase& test) {
    const std::vector<verify::TestResult> outcome =
        verifier.runTests(network, sim, {test});
    const std::set<cfg::LineId> lines =
        coverageOf(network, sim, outcome.front());
    std::size_t fresh = 0;
    for (const auto& line : lines) {
      if (covered.insert(line).second) ++fresh;
    }
    if (fresh > 0) {
      result.tests.push_back(test);
      return true;
    }
    ++result.rejected;
    return false;
  };

  // Round 1: the base suite — one packet per intent, kept unconditionally
  // (every intent must stay represented so verification semantics are
  // unchanged; redundant-by-coverage base tests still serve as verdicts).
  for (std::size_t i = 0; i < intents.size(); ++i) {
    verify::TestCase test;
    test.intent_index = static_cast<int>(i);
    test.packet = intents[i].space.sample(0);
    const std::vector<verify::TestResult> outcome =
        verifier.runTests(network, sim, {test});
    const std::set<cfg::LineId> lines =
        coverageOf(network, sim, outcome.front());
    covered.insert(lines.begin(), lines.end());
    result.tests.push_back(test);
  }
  result.rounds = 1;

  int plateau = 0;
  for (int round = 2; round <= options.max_samples_per_intent; ++round) {
    result.rounds = round;
    bool gained = false;
    for (std::size_t i = 0; i < intents.size(); ++i) {
      verify::TestCase test;
      test.intent_index = static_cast<int>(i);
      test.packet =
          intents[i].space.sample(static_cast<std::uint64_t>(round - 1));
      if (tryAdd(test)) gained = true;
    }
    plateau = gained ? 0 : plateau + 1;
    if (plateau >= options.plateau_rounds) break;
  }

  result.covered_lines = covered.size();
  return result;
}

}  // namespace acr::sbfl
