#include "localize/incremental.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "dataplane/trace.hpp"
#include "localize/coverage.hpp"
#include "routing/delta.hpp"
#include "util/metrics.hpp"
#include "verify/failures.hpp"

namespace acr::sbfl {

namespace {

using Clock = std::chrono::steady_clock;

double msSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Byte-level equality of the PBR sections (rules, actions, match prefixes
/// and line numbers) — the only config a dataplane trace reads per hop.
bool samePbrConfig(const cfg::DeviceConfig* a, const cfg::DeviceConfig* b) {
  if (a == nullptr || b == nullptr) return a == b;
  if (a->pbr_policies.size() != b->pbr_policies.size()) return false;
  for (std::size_t i = 0; i < a->pbr_policies.size(); ++i) {
    const cfg::PbrPolicy& pa = a->pbr_policies[i];
    const cfg::PbrPolicy& pb = b->pbr_policies[i];
    if (pa.name != pb.name || pa.line != pb.line ||
        pa.rules.size() != pb.rules.size()) {
      return false;
    }
    for (std::size_t j = 0; j < pa.rules.size(); ++j) {
      const cfg::PbrRule& ra = pa.rules[j];
      const cfg::PbrRule& rb = pb.rules[j];
      if (ra.index != rb.index || ra.action != rb.action ||
          ra.source != rb.source || ra.destination != rb.destination ||
          ra.redirect_next_hop != rb.redirect_next_hop ||
          ra.line != rb.line) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

LocalizeCache::LocalizeCache(const topo::Network& origin,
                             std::vector<verify::Intent> intents,
                             std::vector<verify::TestCase> tests,
                             route::SimOptions localize_options,
                             bool multipath)
    : origin_(origin),
      verifier_(std::move(intents), localize_options, multipath),
      tests_(std::move(tests)),
      options_(localize_options),
      multipath_(multipath) {
  if (multipath_) options_.enable_ecmp = true;
}

void LocalizeCache::fullSuite(const topo::Network& network,
                              LocalizeOutcome& out) const {
  const auto started = Clock::now();
  std::vector<verify::TestResult> raw =
      verifier_.runTests(network, out.sim, tests_);
  out.results.reserve(raw.size());
  out.coverage.reserve(raw.size());
  for (auto& result : raw) {
    out.coverage.push_back(coverageOf(network, out.sim, result));
    out.spectrum.addTest(*out.coverage.back(), result.passed);
    out.results.push_back(std::move(result));
  }
  out.probe_misses = out.results.size();
  out.suite_ms = msSince(started);
  util::MetricsRegistry::global()
      .counter("localize.cache.probe_misses")
      .add(out.probe_misses);
}

LocalizeOutcome LocalizeCache::fullPipeline(const topo::Network& network,
                                            std::string sim_kind) const {
  LocalizeOutcome out;
  out.sim_kind = std::move(sim_kind);
  const auto started = Clock::now();
  out.sim = route::Simulator(network).run(options_);
  out.sim_ms = msSince(started);
  fullSuite(network, out);
  return out;
}

LocalizeCache::Anchor LocalizeCache::buildAnchor(
    topo::Network network, LocalizeOutcome* outcome) const {
  Anchor anchor;
  anchor.network = std::move(network);
  const auto sim_started = Clock::now();
  anchor.sim = route::Simulator(anchor.network).run(options_);
  const double sim_ms = msSince(sim_started);

  const auto suite_started = Clock::now();
  std::vector<verify::TestResult> raw =
      verifier_.runTests(anchor.network, anchor.sim, tests_);
  const std::size_t n = raw.size();
  anchor.results.reserve(n);
  anchor.coverage.reserve(n);
  anchor.rows.reserve(n);
  anchor.footprints.reserve(n);
  for (auto& result : raw) {
    ProbeFootprint footprint;
    anchor.coverage.push_back(
        coverageOf(anchor.network, anchor.sim, result, &footprint));
    anchor.rows.push_back(
        anchor.spectrum.lines()->internRow(*anchor.coverage.back()));
    anchor.spectrum.addRow(anchor.rows.back(), result.passed);
    anchor.footprints.push_back(std::move(footprint));
    anchor.results.push_back(std::move(result));
  }
  anchor.usable = anchor.sim.converged && !anchor.sim.provenance.empty();
  const double suite_ms = msSince(suite_started);

  if (outcome != nullptr) {
    outcome->sim = anchor.sim;
    outcome->results = anchor.results;
    outcome->coverage = anchor.coverage;
    outcome->spectrum = anchor.spectrum;
    outcome->sim_kind = "anchor";
    outcome->probe_misses = n;
    outcome->sim_ms = sim_ms;
    outcome->suite_ms = suite_ms;
  }
  util::MetricsRegistry::global()
      .counter("localize.cache.probe_misses")
      .add(n);
  return anchor;
}

LocalizeOutcome LocalizeCache::localizeAgainst(
    const Anchor& anchor, const topo::Network& network,
    const std::vector<std::string>& changed_devices) const {
  if (!anchor.usable) return fullPipeline(network, "full");

  LocalizeOutcome out;
  const auto sim_started = Clock::now();
  route::DeltaStats stats;
  out.sim = route::DeltaSimulator(anchor.network, anchor.sim)
                .run(network, changed_devices, options_, &stats);
  out.sim_ms = msSince(sim_started);
  if (!stats.used_delta) {
    // The delta premise broke (fallback rule fired): the full engine
    // already ran inside DeltaSimulator, so only the suite remains.
    out.sim_kind =
        stats.fallback_reason.empty() ? "full" : stats.fallback_reason;
    fullSuite(network, out);
    return out;
  }
  out.sim_kind = "delta";
  out.derivations_fresh = stats.fresh_derivations;
  out.derivations_reused = stats.reused_derivations;

  const auto suite_started = Clock::now();
  // Entry-granular invalidation. A traversed hop reads exactly two things:
  // its FIB entries matching the probe's destination and its PBR policies.
  // So only a state-changed or chain-dirty cell whose prefix contains that
  // destination — or a PBR-section edit at the hop — can change what it
  // saw; a routing-only config edit (bgp, policies, redistribution) flows
  // through the FIB and is already captured by the dirty cells. The
  // absence walk's RIB lookups are all for its recorded prefix (only
  // overlapping dirty cells matter) but its config reads span the whole
  // device; the subnet owner contributed config lines only.
  const std::set<std::string> config_dirty(changed_devices.begin(),
                                           changed_devices.end());
  std::set<std::string> fwd_config_dirty;
  for (const std::string& device : changed_devices) {
    if (!samePbrConfig(anchor.network.config(device),
                       network.config(device))) {
      fwd_config_dirty.insert(device);
    }
  }
  std::map<std::string, std::vector<net::Prefix>> dirty_cells;
  for (const auto& [router, prefix] : stats.changed_cells) {
    dirty_cells[router].push_back(prefix);
  }
  for (const auto& [router, prefix] : stats.dirty_chain_cells) {
    dirty_cells[router].push_back(prefix);
  }
  const bool anything_dirty =
      !config_dirty.empty() || !dirty_cells.empty();
  const auto hop_dirty = [&](const std::string& hop, net::Ipv4Address dst) {
    if (fwd_config_dirty.count(hop) != 0) return true;
    const auto it = dirty_cells.find(hop);
    if (it == dirty_cells.end()) return false;
    for (const net::Prefix& prefix : it->second) {
      if (prefix.contains(dst)) return true;
    }
    return false;
  };
  const auto state_dirty = [&](const std::string& router,
                               const net::Prefix& walked) {
    const auto it = dirty_cells.find(router);
    if (it == dirty_cells.end()) return false;
    for (const net::Prefix& prefix : it->second) {
      if (prefix.overlaps(walked)) return true;
    }
    return false;
  };

  const std::size_t n = tests_.size();
  out.results.reserve(n);
  out.coverage.reserve(n);
  Spectrum spectrum = anchor.spectrum;  // shares the line table, copies counts
  std::optional<dp::DataPlane> dataplane;
  // A multipath trace keeps only its worst branch — not the whole read
  // set — so caching is unsound there: rerun everything.
  const bool cacheable = !multipath_;
  for (std::size_t i = 0; i < n; ++i) {
    const ProbeFootprint& footprint = anchor.footprints[i];
    const net::Ipv4Address dst = tests_[i].packet.dst;
    bool reuse = cacheable && !(footprint.global && anything_dirty);
    if (reuse) {
      for (const std::string& hop : footprint.hops) {
        if (hop_dirty(hop, dst)) {
          reuse = false;
          break;
        }
      }
    }
    if (reuse) {
      for (const std::string& router : footprint.state_reads) {
        if (state_dirty(router, footprint.state_prefix)) {
          reuse = false;
          break;
        }
      }
    }
    if (reuse) {
      // Config edits only reach the absence walk through the clauses it
      // actually read (walk_config_reads) — a merely-visited router whose
      // neighbors all lacked the route contributed no config read.
      for (const std::string& router : footprint.walk_config_reads) {
        if (config_dirty.count(router) != 0) {
          reuse = false;
          break;
        }
      }
    }
    if (reuse) {
      for (const std::string& router : footprint.config_reads) {
        if (config_dirty.count(router) != 0) {
          reuse = false;
          break;
        }
      }
    }
    if (reuse) {
      // A hit aliases the anchor's rows — a reference-count bump, not a
      // deep copy of the trace and the covered-line set.
      ++out.probe_hits;
      out.results.push_back(anchor.results[i]);
      out.coverage.push_back(anchor.coverage[i]);
      continue;
    }
    ++out.probe_misses;
    if (!dataplane) dataplane.emplace(network, out.sim);
    verify::TestResult result;
    result.test = tests_[i];
    if (multipath_) {
      result.trace = dataplane->traceMultipath(tests_[i].packet).worst();
    } else {
      result.trace = dataplane->trace(tests_[i].packet);
    }
    result.passed = verify::judgeTest(
        verifier_.intents()[static_cast<std::size_t>(tests_[i].intent_index)],
        result.trace, &result.reason);
    spectrum.removeRow(anchor.rows[i], anchor.results[i]->passed);
    std::set<cfg::LineId> covered = coverageOf(network, out.sim, result);
    spectrum.addRow(spectrum.lines()->internRow(covered), result.passed);
    out.coverage.push_back(std::move(covered));
    out.results.push_back(std::move(result));
  }
  out.spectrum = std::move(spectrum);
  out.suite_ms = msSince(suite_started);

  util::MetricsRegistry& metrics = util::MetricsRegistry::global();
  metrics.counter("localize.cache.probe_hits").add(out.probe_hits);
  metrics.counter("localize.cache.probe_misses").add(out.probe_misses);
  metrics.counter("localize.cache.derivations_reused")
      .add(out.derivations_reused);
  return out;
}

LocalizeOutcome LocalizeCache::localize(
    const topo::Network& network,
    const std::vector<std::string>& changed_devices) {
  if (!plain_) {
    LocalizeOutcome built;
    const bool is_origin = changed_devices.empty();
    plain_ = buildAnchor(origin_, is_origin ? &built : nullptr);
    if (is_origin) return built;
  }
  return localizeAgainst(*plain_, network, changed_devices);
}

LocalizeOutcome LocalizeCache::localizeDegraded(
    const topo::Network& network,
    const std::vector<std::string>& changed_devices,
    std::vector<std::size_t> links) {
  std::sort(links.begin(), links.end());
  auto it = degraded_.find(links);
  if (it == degraded_.end()) {
    LocalizeOutcome built;
    const bool is_origin = changed_devices.empty();
    Anchor anchor = buildAnchor(verify::withoutLinks(origin_, links),
                                is_origin ? &built : nullptr);
    it = degraded_.emplace(std::move(links), std::move(anchor)).first;
    if (is_origin) return built;
  }
  return localizeAgainst(it->second, network, changed_devices);
}

}  // namespace acr::sbfl
