// Operator-facing repair report: a markdown post-mortem of one ACR run —
// what failed, what the loop did per iteration, the exact config delta, and
// the validation evidence. `acrctl repair --report` prints it; integrations
// can archive it next to the change ticket.
#pragma once

#include <string>

#include "repair/engine.hpp"

namespace acr::repair {

struct ReportOptions {
  bool include_diff = true;
  bool include_history = true;  // per-iteration loop telemetry
};

[[nodiscard]] std::string renderReport(const RepairResult& result,
                                       const ReportOptions& options = {});

}  // namespace acr::repair
