#include "repair/report.hpp"

namespace acr::repair {

namespace {

std::string fmtMs(double ms) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.2f ms", ms);
  return buffer;
}

}  // namespace

std::string renderReport(const RepairResult& result,
                         const ReportOptions& options) {
  std::string out;
  out += "# ACR repair report\n\n";
  out += "* outcome: **" + terminationName(result.termination) + "**\n";
  out += "* failing tests: " + std::to_string(result.initial_failed) +
         " -> " + std::to_string(result.final_failed) + "\n";
  out += "* iterations: " + std::to_string(result.iterations) + "\n";
  out += "* candidate validations: " + std::to_string(result.validations) +
         " (" + std::to_string(result.tests_reverified) + " tests judged, " +
         std::to_string(result.tests_skipped) +
         " skipped by the differential verifier)\n";
  out += "* search-forest leaves generated: " +
         std::to_string(result.search_space) + "\n";
  out += "* resolving time: " + fmtMs(result.elapsed_ms) + "\n";

  if (!result.changes.empty()) {
    out += "\n## Applied changes\n\n";
    int index = 0;
    for (const auto& change : result.changes) {
      out += std::to_string(++index) + ". " + change + "\n";
    }
  }

  if (options.include_diff && !result.diff.empty()) {
    out += "\n## Configuration delta\n\n```\n";
    for (const auto& diff : result.diff) out += diff.str();
    out += "```\n";
  }

  if (options.include_history && !result.history.empty()) {
    out += "\n## Loop telemetry\n\n";
    out += "| iteration | fitness | generated | kept |\n";
    out += "|---|---|---|---|\n";
    for (const auto& stats : result.history) {
      out += "| " + std::to_string(stats.iteration) + " | " +
             std::to_string(stats.fitness) + " | " +
             std::to_string(stats.candidates_generated) + " | " +
             std::to_string(stats.candidates_kept) + " |\n";
    }
  }
  return out;
}

}  // namespace acr::repair
