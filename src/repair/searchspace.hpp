// Search-space accounting for Figure 3: for the same incident, the size of
// the space each method must search.
//
//   * MetaProv (3a): the leaf nodes of the failed event's provenance tree —
//     the config lines on the failing test's derivation chains.
//   * AED (3b): 2^(free variables); one delta variable per configuration
//     line, so reported as log2 = total lines.
//   * ACR (3c): the leaves of the search forest — for each of the most
//     suspicious lines, the concrete proposals its applicable templates
//     instantiate.
#pragma once

#include <cstdint>

#include "localize/sbfl.hpp"
#include "topo/network.hpp"
#include "verify/intent.hpp"

namespace acr::repair {

struct SearchSpaceReport {
  std::uint64_t metaprov_leaves = 0;
  double aed_log2 = 0.0;  // log2 of AED's 2^lines space
  std::uint64_t acr_leaves = 0;
  int total_lines = 0;
  int devices = 0;
};

struct SearchSpaceOptions {
  int top_k_lines = 3;
  sbfl::Metric metric = sbfl::Metric::kTarantula;
  int samples_per_intent = 1;
};

[[nodiscard]] SearchSpaceReport measureSearchSpaces(
    const topo::Network& faulty, const std::vector<verify::Intent>& intents,
    const SearchSpaceOptions& options = {});

}  // namespace acr::repair
