#include "repair/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <optional>
#include <random>

#include "fixgen/change.hpp"
#include "localize/incremental.hpp"
#include "localize/testgen.hpp"
#include "obs/record.hpp"
#include "obs/trace.hpp"
#include "symbolic/symbolic.hpp"
#include "util/metrics.hpp"
#include "util/thread_pool.hpp"
#include "verify/failures.hpp"

namespace acr::repair {

std::string terminationName(Termination termination) {
  switch (termination) {
    case Termination::kRepaired:
      return "repaired";
    case Termination::kNothingToRepair:
      return "nothing-to-repair";
    case Termination::kExhausted:
      return "candidates-exhausted";
    case Termination::kIterationLimit:
      return "iteration-limit";
    case Termination::kTimeBudget:
      return "time-budget-exceeded";
    case Termination::kCancelled:
      return "cancelled";
  }
  return "?";
}

std::string RepairResult::summary() const {
  std::string out = terminationName(termination);
  out += ": " + std::to_string(initial_failed) + " -> " +
         std::to_string(final_failed) + " failing tests in " +
         std::to_string(iterations) + " iteration(s), " +
         std::to_string(validations) + " validation(s)";
  if (!changes.empty()) {
    out += "\nchanges:";
    for (const auto& change : changes) out += "\n  * " + change;
  }
  return out;
}

namespace {

struct Candidate {
  topo::Network network;
  std::vector<std::string> changes;
  /// The applied change closures, in order — replayable against the original
  /// faulty network, which is what makes crossover possible.
  std::vector<fix::ProposedChange> applied;
  int fitness = 0;
};

}  // namespace

RepairResult AcrEngine::repair(const topo::Network& faulty) const {
  const auto started = std::chrono::steady_clock::now();
  RepairResult result;
  result.repaired = faulty;

  obs::FlightRecorder* const recorder = options_.recorder;
  // Deep call sites (smt::Solver) record through this thread-local binding.
  // VALIDATE fan-out workers never inherit it — verdicts are emitted only
  // from the ordered scan below, which is what keeps recordings
  // byte-identical at any validate_jobs value.
  const obs::RecorderScope recorder_scope(recorder);
  obs::Span repair_span("repair");
  repair_span.attr("seed", static_cast<std::int64_t>(options_.seed));

  util::MetricsRegistry& metrics = util::MetricsRegistry::global();
  // The LOCALIZE stage reports per-segment: simulation (delta or full),
  // suite evaluation (probes + coverage + spectrum), and ranking.
  util::Histogram& localize_sim_ms = metrics.histogram("repair.localize.sim_ms");
  util::Histogram& localize_suite_ms =
      metrics.histogram("repair.localize.suite_ms");
  util::Histogram& localize_rank_ms =
      metrics.histogram("repair.localize.rank_ms");
  util::Histogram& fix_ms = metrics.histogram("repair.fix_ms");
  util::Histogram& validate_ms = metrics.histogram("repair.validate_ms");
  metrics.counter("repair.runs").add(1);

  route::SimOptions validate_options = options_.sim_options;
  validate_options.record_provenance = false;  // validation never needs it
  route::SimOptions localize_options = options_.sim_options;
  localize_options.record_provenance = true;
  if (options_.multipath) localize_options.enable_ecmp = true;

  std::vector<verify::TestCase> tests;
  if (options_.coverage_guided_tests) {
    tests = sbfl::generateCoverageGuidedTests(faulty, intents_, {},
                                              options_.sim_options)
                .tests;
  } else {
    tests = verify::generateTests(intents_, options_.samples_per_intent);
  }
  // k-failure tolerance report / violation count (empty/0 when disabled).
  const auto toleranceReport =
      [&](const topo::Network& updated) -> verify::FailureToleranceReport {
    if (options_.tolerance_k <= 0) return {};
    verify::FailureToleranceOptions tolerance_options;
    tolerance_options.max_link_failures = options_.tolerance_k;
    tolerance_options.max_scenarios = options_.tolerance_max_scenarios;
    tolerance_options.samples_per_intent = options_.samples_per_intent;
    tolerance_options.sim_options = validate_options;
    return verify::verifyUnderFailures(updated, intents_, tolerance_options);
  };
  const auto toleranceFailures = [&](const topo::Network& updated) -> int {
    int failures = 0;
    for (const auto& violation : toleranceReport(updated).violations) {
      failures += violation.tests_failed;
    }
    return failures;
  };

  verify::IncrementalVerifier main_verifier(intents_, tests, validate_options,
                                            options_.multipath);
  // A caller-provided pre-converged simulation (the acrd snapshot cache's
  // primed baseline) replaces the one full anchor simulation. Only without
  // ECMP semantics: the seed is recorded without equal-cost sets.
  const route::SimResult* baseline_seed =
      (!options_.multipath && !validate_options.enable_ecmp)
          ? options_.baseline_sim
          : nullptr;
  const verify::VerifyResult baseline =
      main_verifier.baseline(faulty, baseline_seed);
  const int baseline_fitness =
      baseline.tests_failed + toleranceFailures(faulty);
  result.initial_failed = baseline_fitness;
  result.final_failed = baseline_fitness;
  if (recorder != nullptr) {
    recorder->baseline(baseline_fitness, baseline.tests_run);
  }

  const auto finish = [&](Termination termination, bool success) {
    result.termination = termination;
    result.success = success;
    // The terminal event closes every recording — including a cancelled
    // one, whose last line is `"termination":"cancelled"`.
    if (recorder != nullptr) {
      recorder->end(terminationName(termination), result.iterations,
                    static_cast<int>(result.validations), result.final_failed,
                    result.changes);
    }
    result.diff = diffNetworks(faulty, result.repaired);
    result.elapsed_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - started)
            .count();
    if (success && termination == Termination::kRepaired) {
      metrics.counter("repair.repaired").add(1);
    }
    metrics.counter("repair.iterations")
        .add(static_cast<std::uint64_t>(result.iterations));
    metrics.counter("repair.validations").add(result.validations);
    metrics.counter("verify.tests_reverified").add(result.tests_reverified);
    metrics.counter("verify.tests_skipped").add(result.tests_skipped);
    return result;
  };

  if (baseline_fitness == 0) return finish(Termination::kNothingToRepair, true);

  std::mt19937_64 rng(options_.seed);
  std::vector<Candidate> population{
      Candidate{faulty, {}, {}, baseline_fitness}};
  int previous_fitness = baseline_fitness;
  // Incremental LOCALIZE: one provenance-recording anchor simulation (plus
  // one per degraded link set), every candidate delta-seeded off it with
  // cached probe outcomes and coverage rows (localize/incremental.hpp).
  sbfl::LocalizeCache localize_cache(faulty, intents_, tests,
                                     localize_options, options_.multipath);

  // Fitness (= number of failing tests) plus the verifier work it cost.
  // `verifier` is the incremental verifier to probe — the main one on the
  // sequential path, a worker's own clone under the VALIDATE fan-out.
  // probe() never touches the verifier's cache, so every evaluation is an
  // independent pure function of the anchor state.
  struct Score {
    int fitness = 0;
    std::uint64_t tests_reverified = 0;
    std::uint64_t tests_skipped = 0;
    /// How the probe simulated: "delta" ("delta-tree" under batch
    /// validation), a fallback-rule reason, or "full-verify". A pure
    /// function of the anchor state, so identical whether computed
    /// sequentially or by a fan-out worker.
    std::string sim;
    /// Delta-tree node path under batch validation, empty otherwise.
    std::string node;
  };
  const auto evaluate = [&](const topo::Network& updated,
                            verify::IncrementalVerifier& verifier) -> Score {
    Score score;
    if (options_.use_incremental) {
      const auto before = verifier.stats();
      const verify::VerifyResult verdict = verifier.probe(updated);
      const auto after = verifier.stats();
      score.tests_reverified =
          after.tests_reverified - before.tests_reverified;
      score.tests_skipped = after.tests_skipped - before.tests_skipped;
      score.fitness = verdict.tests_failed + toleranceFailures(updated);
      score.sim = verifier.lastSim();
      return score;
    }
    const verify::Verifier full(intents_, validate_options, options_.multipath);
    const verify::VerifyResult verdict =
        full.verify(updated, options_.samples_per_intent);
    score.tests_reverified = static_cast<std::uint64_t>(verdict.tests_run);
    score.fitness = verdict.tests_failed + toleranceFailures(updated);
    score.sim = "full-verify";
    return score;
  };
  // Batch evaluation: one probe against a shared delta tree instead of an
  // independent verifier probe. Same score, cheaper simulation.
  const auto evaluateBatch = [&](const topo::Network& updated,
                                 verify::CandidateBatch& batch) -> Score {
    Score score;
    const verify::CandidateBatch::Probe probe = batch.probe(updated);
    score.tests_reverified =
        static_cast<std::uint64_t>(probe.tests_reverified);
    score.tests_skipped = static_cast<std::uint64_t>(probe.tests_skipped);
    score.fitness = probe.verdict.tests_failed + toleranceFailures(updated);
    score.sim = probe.sim;
    score.node = probe.node;
    return score;
  };
  // Accounting wrapper for the sequential call sites (lazy scan, crossover).
  const auto scoreOf = [&](const topo::Network& updated) -> Score {
    ++result.validations;
    const Score score = evaluate(updated, main_verifier);
    result.tests_reverified += score.tests_reverified;
    result.tests_skipped += score.tests_skipped;
    return score;
  };
  const bool batch_validate =
      options_.batch_validate && options_.use_incremental;
  const int validate_jobs = util::resolveJobs(options_.validate_jobs);
  // Raised by the validation scan / crossover loop when the cancel flag
  // trips between candidates — a running VALIDATE round stops at the next
  // candidate boundary instead of finishing the iteration.
  bool cancelled = false;

  for (int iteration = 1; iteration <= options_.max_iterations; ++iteration) {
    if (options_.cancel != nullptr &&
        options_.cancel->load(std::memory_order_relaxed)) {
      return finish(Termination::kCancelled, false);
    }
    if (options_.time_budget_ms > 0.0) {
      const double elapsed = std::chrono::duration<double, std::milli>(
                                 std::chrono::steady_clock::now() - started)
                                 .count();
      if (elapsed > options_.time_budget_ms) {
        return finish(Termination::kTimeBudget, false);
      }
    }
    result.iterations = iteration;
    IterationStats stats;
    stats.iteration = iteration;

    std::vector<Candidate> next_population;
    for (const Candidate& candidate : population) {
      // ---- LOCALIZE -------------------------------------------------------
      std::optional<obs::Span> localize_span;
      localize_span.emplace("localize");
      localize_span->attr("iteration", static_cast<std::int64_t>(iteration));
      const auto observe_stage = [&](const sbfl::LocalizeOutcome& outcome) {
        localize_sim_ms.observe(outcome.sim_ms);
        localize_suite_ms.observe(outcome.suite_ms);
      };
      std::vector<std::string> changed_devices;
      for (const auto& diff : diffNetworks(faulty, candidate.network)) {
        changed_devices.push_back(diff.device);
      }
      sbfl::LocalizeOutcome localized =
          localize_cache.localize(candidate.network, changed_devices);
      observe_stage(localized);
      // When the plain suite is green but a k-failure scenario violates,
      // the fault is latent: localize on the degraded topology where the
      // violation manifests (configs are identical, so line coordinates
      // transfer directly). The cache keeps one anchor per violating link
      // set, so iterating candidates delta-seed here too.
      const topo::Network* context_network = &candidate.network;
      topo::Network degraded;
      const bool plain_failing =
          std::any_of(localized.results.begin(), localized.results.end(),
                      [](const verify::TestResult& r) { return !r.passed; });
      if (!plain_failing && options_.tolerance_k > 0) {
        const verify::FailureToleranceReport report =
            toleranceReport(candidate.network);
        if (!report.violations.empty()) {
          degraded = verify::withoutLinks(
              candidate.network, report.violations.front().link_indices);
          localized = localize_cache.localizeDegraded(
              degraded, changed_devices,
              report.violations.front().link_indices);
          observe_stage(localized);
          context_network = &degraded;
        }
      }
      const route::SimResult& sim = localized.sim;
      const std::vector<sbfl::ResultRow>& test_results = localized.results;
      const std::vector<sbfl::CoverageRow>& coverage = localized.coverage;
      const auto rank_started = std::chrono::steady_clock::now();
      const std::vector<sbfl::LineScore> ranked = localized.spectrum.rank(
          options_.metric, options_.seed + static_cast<std::uint64_t>(iteration));
      localize_rank_ms.observe(std::chrono::duration<double, std::milli>(
                                   std::chrono::steady_clock::now() -
                                   rank_started)
                                   .count());
      localize_span->attr("suspects",
                          static_cast<std::int64_t>(ranked.size()));
      localize_span->attr("sim", localized.sim_kind);
      localize_span->attr("probe_hits",
                          static_cast<std::int64_t>(localized.probe_hits));
      localize_span->attr("probe_misses",
                          static_cast<std::int64_t>(localized.probe_misses));
      localize_span->attr(
          "derivations_reused",
          static_cast<std::int64_t>(localized.derivations_reused));
      localize_span.reset();
      if (recorder != nullptr) {
        std::vector<obs::FlightRecorder::Suspect> suspects;
        constexpr std::size_t kMaxSuspects = 8;
        for (const auto& score : ranked) {
          if (suspects.size() >= kMaxSuspects || score.failed_cover == 0) break;
          suspects.push_back({score.line.device, score.line.line,
                              score.suspiciousness});
        }
        recorder->localize(iteration, suspects);
      }

      // Resolve line info lazily, per device.
      std::map<std::string, std::map<int, cfg::LineInfo>> line_index;
      const auto infoOf =
          [&](const cfg::LineId& line) -> const cfg::LineInfo* {
        auto it = line_index.find(line.device);
        if (it == line_index.end()) {
          const cfg::DeviceConfig* device = candidate.network.config(line.device);
          if (device == nullptr) return nullptr;
          it = line_index.emplace(line.device, device->buildLineIndex()).first;
        }
        const auto line_it = it->second.find(line.line);
        return line_it == it->second.end() ? nullptr : &line_it->second;
      };

      // ---- FIX ------------------------------------------------------------
      const fix::RepairContext context{*context_network, sim, intents_,
                                       test_results, coverage};
      // generate(exhaustive): instantiate templates on the top suspicious
      // lines. In search mode one randomly-drawn template per line; when
      // `exhaustive`, every applicable template (used by brute-force mode
      // and as the sampling-without-replacement fallback when a round's
      // random draws all get discarded — S = ∅ must mean "no candidate can
      // be generated", not "this round was unlucky").
      std::set<std::string> seen_proposals;
      const auto generate = [&](bool exhaustive) {
        const util::ScopedTimer fix_timer(fix_ms);
        obs::Span fix_span("fixgen");
        fix_span.attr("exhaustive", std::int64_t{exhaustive ? 1 : 0});
        std::vector<fix::ProposedChange> proposals;
        int productive_lines = 0;
        for (const auto& score : ranked) {
          if (productive_lines >= options_.top_k_lines) break;
          if (score.failed_cover == 0) break;  // only failure-covered lines
          const cfg::LineInfo* info = infoOf(score.line);
          if (info == nullptr) continue;
          auto applicable = fix::templatesFor(info->kind);
          if (applicable.empty()) continue;
          if (!exhaustive) {
            if (options_.history != nullptr && !options_.history->empty()) {
              // History-guided draw: order templates by a weighted sample
              // (heavier past success => earlier draw), instead of a
              // uniform shuffle.
              std::vector<std::pair<double, std::size_t>> keys;
              keys.reserve(applicable.size());
              std::uniform_real_distribution<double> unit(1e-9, 1.0);
              for (std::size_t t = 0; t < applicable.size(); ++t) {
                const double w = options_.history->weight(applicable[t]->name());
                // Exponential-race trick: smallest -log(u)/w wins.
                keys.emplace_back(-std::log(unit(rng)) / w, t);
              }
              std::sort(keys.begin(), keys.end());
              std::vector<std::shared_ptr<const fix::ChangeTemplate>> ordered;
              ordered.reserve(applicable.size());
              for (const auto& [key, t] : keys) ordered.push_back(applicable[t]);
              applicable = std::move(ordered);
            } else {
              std::shuffle(applicable.begin(), applicable.end(), rng);
            }
          }
          int from_line = 0;
          for (const auto& tmpl : applicable) {
            std::vector<fix::ProposedChange> from_template;
            {
              obs::Span propose_span("fixgen.propose");
              propose_span.attr("template", tmpl->name());
              from_template = tmpl->propose(context, score.line, *info);
            }
            if (static_cast<int>(from_template.size()) >
                options_.max_proposals_per_line) {
              from_template.resize(
                  static_cast<std::size_t>(options_.max_proposals_per_line));
            }
            if (recorder != nullptr && !from_template.empty()) {
              recorder->templateFired(tmpl->name(), score.line.device,
                                      score.line.line,
                                      static_cast<int>(from_template.size()));
            }
            from_line += static_cast<int>(from_template.size());
            for (auto& proposal : from_template) {
              if (seen_proposals.insert(proposal.description).second) {
                proposals.push_back(std::move(proposal));
              }
            }
            if (!exhaustive && from_line > 0) break;
          }
          if (from_line > 0) ++productive_lines;
        }
        result.search_space += proposals.size();
        return proposals;
      };

      // Selective symbolic pass: solve suspect-device fields jointly and
      // prepend each satisfying model as a multi-device candidate, so the
      // round's batch VALIDATE scores compound fixes alongside (and before)
      // the concrete template proposals. Runs on the engine thread —
      // recordings stay byte-identical at any validate_jobs.
      std::vector<fix::ProposedChange> proposals;
      if (options_.symbolic) {
        symb::SymbolicOptions sym_options;
        sym_options.suspicion_threshold = options_.symbolic_suspicion;
        sym_options.max_variables = options_.symbolic_max_variables;
        sym_options.fork_budget = options_.symbolic_fork_budget;
        symb::SymbolicOutcome outcome =
            symb::proposeSymbolic(context, ranked, sym_options);
        for (auto& proposal : outcome.proposals) {
          if (seen_proposals.insert(proposal.description).second) {
            proposals.push_back(std::move(proposal));
          }
        }
        result.search_space += proposals.size();
        if (recorder != nullptr && !proposals.empty()) {
          recorder->templateFired("symbolic-model", outcome.anchor_device,
                                  outcome.anchor_line,
                                  static_cast<int>(proposals.size()));
        }
      }
      for (auto& proposal : generate(options_.brute_force)) {
        proposals.push_back(std::move(proposal));
      }

      // ---- VALIDATE -------------------------------------------------------
      bool repaired = false;
      const auto validate =
          [&](const std::vector<fix::ProposedChange>& proposals) {
            const util::ScopedTimer validate_timer(validate_ms);
            obs::Span validate_span("validate.round");
            validate_span.attr("iteration",
                               static_cast<std::int64_t>(iteration));
            validate_span.attr(
                "proposals", static_cast<std::int64_t>(proposals.size()));
            // Materialize every applying proposal first (cheap value edits,
            // calling thread), preserving proposal order.
            std::vector<const fix::ProposedChange*> applied;
            std::vector<topo::Network> updated;
            applied.reserve(proposals.size());
            updated.reserve(proposals.size());
            for (const auto& proposal : proposals) {
              topo::Network network = candidate.network;
              if (!proposal.apply(network)) continue;
              applied.push_back(&proposal);
              updated.push_back(std::move(network));
            }
            const int n = static_cast<int>(applied.size());

            // Fan-out: speculatively score all applied proposals on
            // `validate_jobs` workers, each chunk probing its own clone of
            // the anchor verifier. The scan below consumes scores in
            // proposal order exactly like the sequential path, so
            // evaluations past the round's winner are discarded wall-clock,
            // never a behavior change — results (including every counter)
            // are byte-identical at any `validate_jobs`.
            std::vector<Score> scores;
            const bool fan_out = validate_jobs > 1 && n > 1;
            if (fan_out) {
              scores.resize(static_cast<std::size_t>(n));
              const int chunks = std::min(validate_jobs, n);
              util::parallelFor(validate_jobs, chunks, [&](int chunk) {
                // Nested under validate.round via the context the pool
                // captured at submit — even though this runs on a worker.
                obs::Span worker_span("validate.worker");
                worker_span.attr("chunk", static_cast<std::int64_t>(chunk));
                verify::IncrementalVerifier local = main_verifier;
                if (batch_validate) {
                  // Each chunk grows its own delta tree over the shared
                  // base (this candidate's network): probes stay pure
                  // functions of (anchor, base, proposal), so chunking
                  // never changes a score.
                  verify::CandidateBatch batch(local, candidate.network);
                  for (int i = chunk; i < n; i += chunks) {
                    scores[static_cast<std::size_t>(i)] = evaluateBatch(
                        updated[static_cast<std::size_t>(i)], batch);
                  }
                } else {
                  for (int i = chunk; i < n; i += chunks) {
                    scores[static_cast<std::size_t>(i)] =
                        evaluate(updated[static_cast<std::size_t>(i)], local);
                  }
                }
              });
            }
            // Sequential batch: built lazily so the scan's early exits
            // (repair found, cancellation) skip the base propagation too.
            std::optional<verify::CandidateBatch> seq_batch;

            for (int i = 0; i < n && !repaired; ++i) {
              // Cooperative cancellation between candidates: a remote
              // cancel lands mid-round instead of waiting out the
              // iteration. Scores already computed by the fan-out are
              // simply dropped — nothing observable depends on them.
              if (options_.cancel != nullptr &&
                  options_.cancel->load(std::memory_order_relaxed)) {
                cancelled = true;
                return;
              }
              const fix::ProposedChange& proposal = *applied[i];
              ++stats.candidates_generated;
              if (options_.history != nullptr) {
                options_.history->recordAttempt(proposal.template_name);
              }
              Score score;
              if (fan_out) {
                score = scores[static_cast<std::size_t>(i)];
                ++result.validations;
                result.tests_reverified += score.tests_reverified;
                result.tests_skipped += score.tests_skipped;
              } else if (batch_validate) {
                if (!seq_batch) {
                  seq_batch.emplace(main_verifier, candidate.network);
                }
                score = evaluateBatch(updated[static_cast<std::size_t>(i)],
                                      *seq_batch);
                ++result.validations;
                result.tests_reverified += score.tests_reverified;
                result.tests_skipped += score.tests_skipped;
              } else {
                score = scoreOf(updated[static_cast<std::size_t>(i)]);
              }
              const int fitness = score.fitness;
              // The paper's fitness rule: discard updates whose fitness
              // exceeds the previous iteration's.
              const bool discarded = fitness > previous_fitness;
              if (recorder != nullptr) {
                recorder->verdict(
                    iteration, i, proposal.template_name, proposal.description,
                    fitness, !discarded, score.sim,
                    static_cast<int>(score.tests_reverified),
                    static_cast<int>(score.tests_skipped), score.node);
              }
              if (discarded) {
                metrics.counter("repair.candidates_discarded").add(1);
                continue;
              }

              Candidate next;
              next.network = std::move(updated[static_cast<std::size_t>(i)]);
              next.changes = candidate.changes;
              next.changes.push_back('[' + proposal.template_name + "] " +
                                     proposal.description);
              next.applied = candidate.applied;
              next.applied.push_back(proposal);
              next.fitness = fitness;
              if (fitness == 0) {
                result.repaired = next.network;
                result.changes = next.changes;
                result.final_failed = 0;
                repaired = true;
                if (options_.history != nullptr) {
                  for (const auto& change : next.applied) {
                    options_.history->recordSuccess(change.template_name);
                  }
                }
              }
              next_population.push_back(std::move(next));
            }
          };

      validate(proposals);
      if (cancelled) return finish(Termination::kCancelled, false);
      if (!repaired && next_population.empty() && !options_.brute_force) {
        // Every random draw was discarded: continue sampling without
        // replacement before concluding S = ∅.
        validate(generate(/*exhaustive=*/true));
        if (cancelled) return finish(Termination::kCancelled, false);
      }
      if (repaired) {
        stats.candidates_kept = 1;
        stats.fitness = 0;
        result.history.push_back(stats);
        return finish(Termination::kRepaired, true);
      }
    }

    // ---- CROSSOVER (optional, §4.2) ---------------------------------------
    // Single-point recombination of two survivors' change sequences,
    // replayed against the original faulty network. An individual change
    // whose apply() no longer holds (e.g. the other parent already made it)
    // is skipped — the idempotence guards make replay safe.
    if (options_.use_crossover && next_population.size() >= 2) {
      obs::Span crossover_span("crossover");
      int crossover_produced = 0;
      std::vector<Candidate> children;
      std::uniform_int_distribution<std::size_t> pick(
          0, next_population.size() - 1);
      for (int pair = 0; pair < options_.crossover_pairs; ++pair) {
        if (options_.cancel != nullptr &&
            options_.cancel->load(std::memory_order_relaxed)) {
          if (recorder != nullptr) {
            recorder->crossover(options_.crossover_pairs, crossover_produced);
          }
          return finish(Termination::kCancelled, false);
        }
        const std::size_t ia = pick(rng);
        const std::size_t ib = pick(rng);
        if (ia == ib) continue;
        const Candidate& a = next_population[ia];
        const Candidate& b = next_population[ib];
        if (a.applied.empty() || b.applied.empty()) continue;
        std::uniform_int_distribution<std::size_t> cut_a(1, a.applied.size());
        std::uniform_int_distribution<std::size_t> cut_b(
            0, b.applied.size() - 1);
        const std::size_t head = cut_a(rng);
        const std::size_t tail = cut_b(rng);
        Candidate child;
        child.network = faulty;
        for (std::size_t k = 0; k < head; ++k) {
          if (a.applied[k].apply(child.network)) {
            child.applied.push_back(a.applied[k]);
            child.changes.push_back(a.changes[k]);
          }
        }
        for (std::size_t k = tail; k < b.applied.size(); ++k) {
          if (b.applied[k].apply(child.network)) {
            child.applied.push_back(b.applied[k]);
            child.changes.push_back(b.changes[k]);
          }
        }
        if (child.applied.empty() || child.changes == a.changes ||
            child.changes == b.changes) {
          continue;
        }
        ++stats.candidates_generated;
        ++crossover_produced;
        const Score child_score = scoreOf(child.network);
        child.fitness = child_score.fitness;
        if (recorder != nullptr) {
          recorder->verdict(iteration, -1 - pair, "crossover",
                            child.changes.empty() ? "" : child.changes.back(),
                            child.fitness,
                            child.fitness <= previous_fitness,
                            child_score.sim,
                            static_cast<int>(child_score.tests_reverified),
                            static_cast<int>(child_score.tests_skipped));
        }
        if (child.fitness > previous_fitness) continue;
        if (child.fitness == 0) {
          result.repaired = child.network;
          result.changes = child.changes;
          result.final_failed = 0;
          if (options_.history != nullptr) {
            for (const auto& change : child.applied) {
              options_.history->recordSuccess(change.template_name);
            }
          }
          stats.candidates_kept = 1;
          stats.fitness = 0;
          result.history.push_back(stats);
          return finish(Termination::kRepaired, true);
        }
        children.push_back(std::move(child));
      }
      if (recorder != nullptr) {
        recorder->crossover(options_.crossover_pairs, crossover_produced);
      }
      for (auto& child : children) {
        next_population.push_back(std::move(child));
      }
    }

    if (next_population.empty()) {
      return finish(Termination::kExhausted, false);
    }
    std::sort(next_population.begin(), next_population.end(),
              [](const Candidate& a, const Candidate& b) {
                if (a.fitness != b.fitness) return a.fitness < b.fitness;
                return a.changes.size() < b.changes.size();
              });
    if (static_cast<int>(next_population.size()) > options_.max_candidates) {
      next_population.resize(static_cast<std::size_t>(options_.max_candidates));
    }
    stats.candidates_kept = static_cast<int>(next_population.size());
    // The paper: the iteration's fitness is the largest fitness among the
    // preserved updates.
    stats.fitness = next_population.back().fitness;
    previous_fitness = stats.fitness;
    result.history.push_back(stats);

    population = std::move(next_population);
    result.repaired = population.front().network;
    result.changes = population.front().changes;
    result.final_failed = population.front().fitness;
    // Re-anchor the differential cache at the current best candidate.
    (void)main_verifier.update(population.front().network);
  }

  return finish(Termination::kIterationLimit, false);
}

}  // namespace acr::repair
