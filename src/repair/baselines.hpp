// The two comparator families from §2.3 / Figure 3, re-implemented at the
// strategy level:
//
//   * ProvenanceRepair (MetaProv-style): trace the first failing event's
//     provenance, take its leaf configuration lines as the search space, and
//     apply the first applicable single-line change WITHOUT validating side
//     effects. Efficient — and exactly as §2.3 warns, prone to leaving the
//     violation unresolved or introducing regressions.
//
//   * SynthesisRepair (AED-style): treat every configuration line as a free
//     delta variable (search space 2^lines), then search combinations of
//     atomic repair actions with FULL validation of every assignment until
//     all intents hold. Correct by construction — and exponential, so it
//     runs under an exploration budget.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "repair/engine.hpp"

namespace acr::repair {

struct BaselineResult {
  std::string method;
  bool resolved = false;     // every originally failing test now passes
  bool regressions = false;  // some originally passing test now fails
  /// Search-space size: MetaProv = provenance leaves; AED = log2 is
  /// `aed_log2_space` (2^lines overflows quickly).
  std::uint64_t search_space = 0;
  double aed_log2_space = 0.0;
  std::uint64_t explored = 0;  // candidate assignments actually validated
  double elapsed_ms = 0.0;
  topo::Network repaired;
  std::vector<std::string> changes;
};

struct ProvenanceRepairOptions {
  int samples_per_intent = 1;
  route::SimOptions sim_options;
};

[[nodiscard]] BaselineResult provenanceRepair(
    const topo::Network& faulty, const std::vector<verify::Intent>& intents,
    const ProvenanceRepairOptions& options = {});

struct SynthesisRepairOptions {
  int samples_per_intent = 1;
  int max_change_depth = 2;       // subsets of atomic actions up to this size
  std::uint64_t budget = 200;     // validation budget
  route::SimOptions sim_options;
};

[[nodiscard]] BaselineResult synthesisRepair(
    const topo::Network& faulty, const std::vector<verify::Intent>& intents,
    const SynthesisRepairOptions& options = {});

}  // namespace acr::repair
