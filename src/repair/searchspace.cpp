#include "repair/searchspace.hpp"

#include "fixgen/change.hpp"
#include "localize/coverage.hpp"
#include "verify/verifier.hpp"

namespace acr::repair {

SearchSpaceReport measureSearchSpaces(const topo::Network& faulty,
                                      const std::vector<verify::Intent>& intents,
                                      const SearchSpaceOptions& options) {
  SearchSpaceReport report;
  report.total_lines = faulty.totalLines();
  report.devices = static_cast<int>(faulty.configs.size());
  report.aed_log2 = static_cast<double>(report.total_lines);

  route::SimOptions sim_options;
  sim_options.record_provenance = true;
  const route::SimResult sim = route::Simulator(faulty).run(sim_options);
  const verify::Verifier verifier(intents, sim_options);
  const std::vector<verify::TestCase> tests =
      verify::generateTests(intents, options.samples_per_intent);
  const std::vector<verify::TestResult> results =
      verifier.runTests(faulty, sim, tests);

  std::vector<sbfl::CoverageRow> coverage;
  sbfl::Spectrum spectrum;
  const verify::TestResult* first_failing = nullptr;
  for (const auto& result : results) {
    coverage.push_back(sbfl::coverageOf(faulty, sim, result));
    spectrum.addTest(coverage.back(), result.passed);
    if (!result.passed && first_failing == nullptr) first_failing = &result;
  }
  if (first_failing != nullptr) {
    report.metaprov_leaves =
        sbfl::coverageOf(faulty, sim, *first_failing).size();
  }

  const std::vector<sbfl::ResultRow> rows(results.begin(), results.end());
  const fix::RepairContext context{faulty, sim, intents, rows, coverage};
  std::map<std::string, std::map<int, cfg::LineInfo>> cache;
  int lines_used = 0;
  for (const auto& score : spectrum.rank(options.metric)) {
    if (lines_used >= options.top_k_lines) break;
    if (score.failed_cover == 0) break;
    auto it = cache.find(score.line.device);
    if (it == cache.end()) {
      const cfg::DeviceConfig* device = faulty.config(score.line.device);
      if (device == nullptr) continue;
      it = cache.emplace(score.line.device, device->buildLineIndex()).first;
    }
    const auto line_it = it->second.find(score.line.line);
    if (line_it == it->second.end()) continue;
    ++lines_used;
    for (const auto& tmpl : fix::templatesFor(line_it->second.kind)) {
      report.acr_leaves +=
          tmpl->propose(context, score.line, line_it->second).size();
    }
  }
  return report;
}

}  // namespace acr::repair
