#include "repair/baselines.hpp"

#include <algorithm>
#include <chrono>
#include <set>

#include "fixgen/change.hpp"
#include "localize/coverage.hpp"

namespace acr::repair {

namespace {

struct Judged {
  bool resolved = false;
  bool regressions = false;
};

/// Compares the outcome network against the original per-test verdicts.
Judged judge(const std::vector<verify::TestResult>& before,
             const topo::Network& after,
             const std::vector<verify::Intent>& intents,
             const route::SimOptions& sim_options, int samples) {
  const verify::Verifier verifier(intents, sim_options);
  const verify::VerifyResult verdict = verifier.verify(after, samples);
  Judged judged;
  judged.resolved = true;
  for (std::size_t i = 0; i < before.size(); ++i) {
    const bool was_passing = before[i].passed;
    const bool now_passing = verdict.results[i].passed;
    if (!was_passing && !now_passing) judged.resolved = false;
    if (was_passing && !now_passing) judged.regressions = true;
  }
  return judged;
}

const cfg::LineInfo* resolveLine(
    std::map<std::string, std::map<int, cfg::LineInfo>>& cache,
    const topo::Network& network, const cfg::LineId& line) {
  auto it = cache.find(line.device);
  if (it == cache.end()) {
    const cfg::DeviceConfig* device = network.config(line.device);
    if (device == nullptr) return nullptr;
    it = cache.emplace(line.device, device->buildLineIndex()).first;
  }
  const auto line_it = it->second.find(line.line);
  return line_it == it->second.end() ? nullptr : &line_it->second;
}

}  // namespace

BaselineResult provenanceRepair(const topo::Network& faulty,
                                const std::vector<verify::Intent>& intents,
                                const ProvenanceRepairOptions& options) {
  const auto started = std::chrono::steady_clock::now();
  BaselineResult result;
  result.method = "metaprov";
  result.repaired = faulty;

  route::SimOptions sim_options = options.sim_options;
  sim_options.record_provenance = true;
  const route::SimResult sim = route::Simulator(faulty).run(sim_options);
  const verify::Verifier verifier(intents, sim_options);
  const std::vector<verify::TestCase> tests =
      verify::generateTests(intents, options.samples_per_intent);
  const std::vector<verify::TestResult> before =
      verifier.runTests(faulty, sim, tests);

  const auto finish = [&]() {
    result.elapsed_ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - started)
                            .count();
    return result;
  };

  const verify::TestResult* failing = nullptr;
  for (const auto& test_result : before) {
    if (!test_result.passed) {
      failing = &test_result;
      break;
    }
  }
  if (failing == nullptr) {
    result.resolved = true;
    return finish();
  }

  // The provenance tree of the abnormal event; its leaves are the method's
  // whole search space.
  const std::set<cfg::LineId> leaves = sbfl::coverageOf(faulty, sim, *failing);
  result.search_space = leaves.size();

  const std::vector<sbfl::ResultRow> rows(before.begin(), before.end());
  std::vector<sbfl::CoverageRow> coverage;
  coverage.reserve(before.size());
  for (const auto& test_result : before) {
    coverage.push_back(sbfl::coverageOf(faulty, sim, test_result));
  }
  const fix::RepairContext context{faulty, sim, intents, rows, coverage};

  // Modify the first traced source that admits a change — no validation.
  std::map<std::string, std::map<int, cfg::LineInfo>> cache;
  for (const auto& line : leaves) {
    ++result.explored;
    const cfg::LineInfo* info = resolveLine(cache, faulty, line);
    if (info == nullptr) continue;
    for (const auto& tmpl : fix::templatesFor(info->kind)) {
      const std::vector<fix::ProposedChange> proposals =
          tmpl->propose(context, line, *info);
      for (const auto& proposal : proposals) {
        topo::Network updated = faulty;
        if (!proposal.apply(updated)) continue;
        result.repaired = std::move(updated);
        result.changes.push_back('[' + proposal.template_name + "] " +
                                 proposal.description);
        const Judged judged = judge(before, result.repaired, intents,
                                    options.sim_options,
                                    options.samples_per_intent);
        result.resolved = judged.resolved;
        result.regressions = judged.regressions;
        return finish();
      }
    }
  }
  return finish();
}

BaselineResult synthesisRepair(const topo::Network& faulty,
                               const std::vector<verify::Intent>& intents,
                               const SynthesisRepairOptions& options) {
  const auto started = std::chrono::steady_clock::now();
  BaselineResult result;
  result.method = "aed";
  result.repaired = faulty;

  // Search space: one delta variable per configuration line.
  const int lines = faulty.totalLines();
  result.aed_log2_space = static_cast<double>(lines);
  result.search_space =
      lines >= 63 ? ~std::uint64_t{0} : (std::uint64_t{1} << lines);

  route::SimOptions sim_options = options.sim_options;
  sim_options.record_provenance = true;
  const route::SimResult sim = route::Simulator(faulty).run(sim_options);
  const verify::Verifier verifier(intents, sim_options);
  const std::vector<verify::TestCase> tests =
      verify::generateTests(intents, options.samples_per_intent);
  const std::vector<verify::TestResult> before =
      verifier.runTests(faulty, sim, tests);

  const auto finish = [&]() {
    result.elapsed_ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - started)
                            .count();
    return result;
  };

  const bool initially_ok =
      std::all_of(before.begin(), before.end(),
                  [](const verify::TestResult& r) { return r.passed; });
  if (initially_ok) {
    result.resolved = true;
    return finish();
  }

  const std::vector<sbfl::ResultRow> rows(before.begin(), before.end());
  std::vector<sbfl::CoverageRow> coverage;
  coverage.reserve(before.size());
  for (const auto& test_result : before) {
    coverage.push_back(sbfl::coverageOf(faulty, sim, test_result));
  }
  const fix::RepairContext context{faulty, sim, intents, rows, coverage};

  // Atomic actions: every template proposal over every configuration line.
  std::vector<fix::ProposedChange> actions;
  std::set<std::string> seen;
  std::map<std::string, std::map<int, cfg::LineInfo>> cache;
  for (const auto& [device_name, device] : faulty.configs) {
    for (const auto& [line_no, info] : device.buildLineIndex()) {
      const cfg::LineId line{device_name, line_no};
      for (const auto& tmpl : fix::templatesFor(info.kind)) {
        for (auto& proposal : tmpl->propose(context, line, info)) {
          if (seen.insert(proposal.description).second) {
            actions.push_back(std::move(proposal));
          }
        }
      }
    }
  }

  // Systematic search over assignments: subsets of actions up to
  // max_change_depth, validated in full, within the budget.
  std::vector<std::size_t> stack;
  const std::size_t action_count = actions.size();

  const std::function<bool(topo::Network&, std::size_t, int)> search =
      [&](topo::Network& base, std::size_t first, int depth) -> bool {
    for (std::size_t i = first; i < action_count; ++i) {
      if (result.explored >= options.budget) return false;
      topo::Network updated = base;
      if (!actions[i].apply(updated)) continue;
      ++result.explored;
      const verify::Verifier full(intents, options.sim_options);
      const verify::VerifyResult verdict =
          full.verify(updated, options.samples_per_intent);
      stack.push_back(i);
      if (verdict.tests_failed == 0) {
        result.repaired = std::move(updated);
        for (const std::size_t idx : stack) {
          result.changes.push_back('[' + actions[idx].template_name + "] " +
                                   actions[idx].description);
        }
        result.resolved = true;
        result.regressions = false;  // full validation: zero failures
        return true;
      }
      if (depth + 1 < options.max_change_depth &&
          search(updated, i + 1, depth + 1)) {
        return true;
      }
      stack.pop_back();
    }
    return false;
  };

  topo::Network base = faulty;
  (void)search(base, 0, 0);
  return finish();
}

}  // namespace acr::repair
