// The ACR engine: the localize-fix-validate loop of Figure 4.
//
// Each iteration:
//   1. LOCALIZE — simulate each surviving candidate with provenance, run the
//      intent-derived test suite, compute per-test coverage and rank lines
//      with an SBFL metric (Tarantula by default).
//   2. FIX — for the top suspicious lines, select change templates (randomly
//      in search mode, exhaustively in brute-force mode) and instantiate
//      candidate updates; values are solved, not guessed (acr::smt).
//   3. VALIDATE — score every update's fitness (= number of failing tests)
//      with the incremental verifier; updates whose fitness exceeds the
//      previous iteration's are discarded (the paper's fitness rule).
//
// Termination (§5): a fitness-0 update is found; no candidate updates can
// be generated (S = ∅); or the iteration limit (500) is reached.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "config/diff.hpp"
#include "fixgen/history.hpp"
#include "localize/sbfl.hpp"
#include "routing/simulator.hpp"
#include "topo/network.hpp"
#include "verify/incremental.hpp"

namespace acr::obs {
class FlightRecorder;
}

namespace acr::repair {

struct RepairOptions {
  sbfl::Metric metric = sbfl::Metric::kTarantula;
  int max_iterations = 500;  // the paper's limit
  int top_k_lines = 3;       // suspicious lines explored per candidate
  int max_candidates = 4;    // population cap between iterations
  int max_proposals_per_line = 4;
  int samples_per_intent = 1;
  std::uint64_t seed = 1;
  bool use_incremental = true;  // DNA-style differential validation
  bool brute_force = false;     // ablation: all templates on all top lines
  /// §4.2's genetic single-point crossover: recombine the change sequences
  /// of two surviving candidates into extra candidates each iteration.
  bool use_crossover = false;
  int crossover_pairs = 2;
  /// §6's test-suite generation: grow the suite coverage-guided (on the
  /// faulty network) instead of one sample per intent, sharpening SBFL.
  bool coverage_guided_tests = false;
  /// §3.2 observation (1): shared repair history biasing template draws
  /// towards patterns that resolved past incidents. Null disables. The
  /// engine records attempts/successes into it.
  std::shared_ptr<fix::RepairHistory> history;
  /// Judge every intent on all ECMP branches (the worst branch decides),
  /// so faults hidden behind equal-cost path diversity are caught too.
  bool multipath = false;
  /// When > 0, candidate fitness additionally counts intent violations under
  /// every k-link-failure scenario — repairs must not leave *latent* faults
  /// that only surface when redundancy is consumed (§1's k-failure
  /// tolerance). When the plain suite is green but tolerance is not, the
  /// engine localizes on the first violating degraded topology.
  int tolerance_k = 0;
  int tolerance_max_scenarios = 64;
  /// Selective symbolic simulation (src/symbolic, docs/symbolic.md): before
  /// the concrete template loop, symbolize prefix-lists and local-pref/MED
  /// actions on suspect devices, solve all of them as one acr::smt
  /// conjunction and prepend each satisfying model as a multi-device
  /// candidate. Off by default; with the flag off the engine's behaviour is
  /// byte-identical to the concrete loop (the knobs below are inert).
  bool symbolic = false;
  /// Device gate: symbolize devices whose best failure-covered line scores
  /// at least this fraction of the top suspiciousness.
  double symbolic_suspicion = 0.5;
  /// Cap on simultaneous symbolic variables per round.
  int symbolic_max_variables = 4;
  /// Cap on path-condition forks (solver queries) per round; overflow
  /// falls back to the concrete template loop.
  int symbolic_fork_budget = 8;
  /// Wall-clock budget; 0 = unlimited. When exceeded the loop stops at the
  /// next iteration boundary with kTimeBudget (the best candidate so far is
  /// still returned in `repaired`).
  double time_budget_ms = 0.0;
  /// Cooperative cancellation: when non-null and the pointee becomes true,
  /// the loop stops at the next iteration boundary with kCancelled (the
  /// best candidate so far is still returned in `repaired`). The service's
  /// job scheduler points this at the job's cancel flag so a remote
  /// `cancel` reaches into a running repair.
  const std::atomic<bool>* cancel = nullptr;
  /// VALIDATE fan-out: candidate updates of one round are scored on this
  /// many workers (each chunk owns its own verifier clone). 0 = hardware
  /// concurrency. The result is byte-identical at any setting: scores are
  /// consumed in proposal order, and evaluations past the round's winner
  /// are speculative work that is simply discarded. Defaults to 1 because
  /// the campaign runner already parallelizes at incident granularity.
  int validate_jobs = 1;
  /// Cross-candidate batch evaluation (docs/architecture.md §14): VALIDATE
  /// evaluates each round's candidates as leaves of a shared delta tree
  /// (verify::CandidateBatch) — the candidates' common edit prefix is
  /// propagated once and each candidate forks off it via copy-on-write RIB
  /// undo logs, instead of re-propagating from the anchor per candidate.
  /// Semantics-preserving: verdicts, fitness and every counter are
  /// identical with the flag off; only the recorded `sim` label
  /// ("delta-tree" vs "delta") and per-verdict `node` path differ. Only
  /// effective with use_incremental.
  bool batch_validate = true;
  route::SimOptions sim_options;
  /// Optional pre-converged simulation of the faulty network (e.g. the acrd
  /// snapshot cache's primed baseline): adopted as the incremental
  /// verifier's anchor, skipping the one full baseline simulation. Non-
  /// owning; must outlive repair(). Ignored under multipath/ECMP (the seed
  /// is recorded without equal-cost sets).
  const route::SimResult* baseline_sim = nullptr;
  /// Optional flight recorder (docs/observability.md): the engine logs its
  /// full decision tree — suspect rankings, template instantiations, SMT
  /// queries, every verdict — as deterministic JSONL. Non-owning; must
  /// outlive repair(). The recording is byte-identical at any validate_jobs
  /// value (verdicts are emitted only from the ordered scan).
  obs::FlightRecorder* recorder = nullptr;
};

enum class Termination : std::uint8_t {
  kRepaired,        // fitness reached 0
  kNothingToRepair, // the input network already satisfied every intent
  kExhausted,       // S = ∅: no candidate updates survived
  kIterationLimit,  // more than max_iterations iterations
  kTimeBudget,      // RepairOptions::time_budget_ms exceeded
  kCancelled,       // RepairOptions::cancel was raised mid-run
};

[[nodiscard]] std::string terminationName(Termination termination);

struct IterationStats {
  int iteration = 0;
  int fitness = 0;              // largest fitness among preserved updates
  int candidates_generated = 0;
  int candidates_kept = 0;
};

struct RepairResult {
  bool success = false;
  Termination termination = Termination::kIterationLimit;
  topo::Network repaired;            // best network found
  std::vector<std::string> changes;  // applied change descriptions, in order
  std::vector<cfg::ConfigDiff> diff; // repaired vs faulty input
  int iterations = 0;
  int initial_failed = 0;
  int final_failed = 0;
  std::vector<IterationStats> history;
  double elapsed_ms = 0.0;
  /// Candidate validations performed (each = one fitness evaluation).
  std::uint64_t validations = 0;
  /// Differential-verifier work counters, summed over all validations.
  std::uint64_t tests_reverified = 0;
  std::uint64_t tests_skipped = 0;
  /// Search-forest leaves generated (the ACR column of Figure 3).
  std::uint64_t search_space = 0;

  [[nodiscard]] std::string summary() const;
};

class AcrEngine {
 public:
  AcrEngine(std::vector<verify::Intent> intents, RepairOptions options = {})
      : intents_(std::move(intents)), options_(options) {}

  [[nodiscard]] RepairResult repair(const topo::Network& faulty) const;

  [[nodiscard]] const RepairOptions& options() const { return options_; }
  [[nodiscard]] const std::vector<verify::Intent>& intents() const {
    return intents_;
  }

 private:
  std::vector<verify::Intent> intents_;
  RepairOptions options_;
};

}  // namespace acr::repair
