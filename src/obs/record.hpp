// Repair flight recorder: a structured JSONL log of one repair's full
// decision tree — suspect ranking, template instantiations, SMT queries,
// verifier verdicts (including which delta-sim fallback rule fired) and the
// final accept/reject chain.
//
// Determinism contract: recordings contain no wall-clock timestamps and are
// rendered with sorted object keys (util::Json), so two repairs of the same
// scenario with the same options produce byte-identical files at any worker
// count. The engine upholds its side by emitting verdict events only from
// the ordered validation scan, never from fan-out workers.
//
// record() is virtual so tests can hook event emission (e.g. raise a cancel
// flag after the first verdict to exercise mid-validate cancellation).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/json.hpp"

namespace acr::obs {

class FlightRecorder {
 public:
  FlightRecorder() = default;
  virtual ~FlightRecorder() = default;

  // --- typed events, in rough lifecycle order -----------------------------

  struct Suspect {
    std::string device;
    int line = 0;
    double score = 0.0;
  };

  void beginRepair(const std::string& scenario_name,
                   std::uint64_t scenario_hash, std::uint64_t scenario_bytes,
                   util::Json options);
  void baseline(int failed_tests, int total_tests);
  void localize(int iteration, const std::vector<Suspect>& ranked);
  void templateFired(const std::string& tmpl, const std::string& device,
                     int line, int proposals);
  /// Per-variable detail of an annotated (symbolic-layer) query. `value` is
  /// the model assignment rendering (empty when unsat); `changed` marks
  /// assignments that differ from the variable's original concrete value —
  /// exactly the lines a symbolic ConfigChange will touch.
  struct SmtVar {
    std::string name;
    std::string kind;  // "prefix-set" | "int"
    std::string device;
    int line = 0;
    std::string original;
    int constraints = 0;
    std::string value;
    bool changed = false;
  };

  /// `vars` is empty for plain single-variable template queries; annotated
  /// symbolic queries emit a `vars` array plus a `model_delta` object of the
  /// changed assignments.
  void smtQuery(int variables, const std::vector<std::string>& constraints,
                bool sat,
                const std::vector<std::pair<std::string, std::string>>& model,
                const std::string& conflict,
                const std::vector<SmtVar>& vars = {});
  /// `node` is the candidate's delta-tree node path under batch validation
  /// ("anchor[/base devices]/leaf devices"); empty (omitted from the event)
  /// when the probe ran outside a tree (crossover, batch_validate off).
  void verdict(int iteration, int candidate, const std::string& tmpl,
               const std::string& description, double fitness, bool accepted,
               const std::string& sim, int tests_reverified, int tests_skipped,
               const std::string& node = {});
  void crossover(int pairs, int produced);
  void end(const std::string& termination, int iterations, int validations,
           int final_failed, const std::vector<std::string>& changes);

  // --- raw access ---------------------------------------------------------

  // Appends one event line. Adds the "seq" field. Virtual for test hooks;
  // overrides must call the base to keep the recording intact.
  virtual void record(util::Json event);

  [[nodiscard]] const std::vector<std::string>& lines() const { return lines_; }
  [[nodiscard]] std::string text() const;
  bool save(const std::string& path) const;

 private:
  std::vector<std::string> lines_;
  int seq_ = 0;
};

// Thread-local recorder binding: the engine installs its recorder so deep
// call sites (smt::Solver) can record without parameter plumbing. Fan-out
// worker threads never inherit the binding — that is what keeps recordings
// deterministic under parallel validation.
FlightRecorder* currentRecorder();

class RecorderScope {
 public:
  explicit RecorderScope(FlightRecorder* recorder);
  ~RecorderScope();
  RecorderScope(const RecorderScope&) = delete;
  RecorderScope& operator=(const RecorderScope&) = delete;

 private:
  FlightRecorder* saved_;
};

// --- explain --------------------------------------------------------------

// Parses a JSONL recording; returns false (and a partial list) on the first
// malformed line.
bool parseRecording(const std::string& text, std::vector<util::Json>* events);

// Renders the decision tree for `acrctl explain`: pure function of the
// parsed events, so two renders of one recording are byte-identical.
std::string renderExplainTree(const std::vector<util::Json>& events);

}  // namespace acr::obs
