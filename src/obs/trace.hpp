// Structured span tracer for the repair pipeline.
//
// Design goals, in priority order:
//   1. Disabled tracing costs one branch on a relaxed atomic load per span —
//      no allocation, no lock, no clock read. The hot repair loop opens
//      thousands of spans per incident; the tracer must vanish when off.
//   2. Thread-safe without a global lock on the hot path: every thread owns a
//      buffer registered once with the tracer. Span records append under a
//      per-thread mutex that is uncontended except during export.
//   3. Explicit context propagation: spans form a tree across thread-pool
//      workers and across the acrd wire protocol. The current (trace id,
//      span id) pair travels as a TraceContext value; ContextScope installs
//      it on the worker thread so child spans nest under the submitting span.
//
// Span identity: ids are (thread_index + 1) << 32 | per-thread counter, so
// they are unique process-wide without any shared counter. Timestamps are
// microseconds since the tracer epoch (steady clock), matching the Chrome
// trace-event "ts"/"dur" convention.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace acr::obs {

// A finished span as stored in a thread buffer. Attributes are flattened
// key/value strings; numeric attrs are formatted by the caller so export is
// a pure serialization pass.
struct SpanRecord {
  std::string name;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;   // 0 = root of its trace
  std::uint64_t trace_id = 0;
  std::uint64_t start_us = 0;    // since tracer epoch
  std::uint64_t dur_us = 0;
  std::uint32_t thread_index = 0;
  std::vector<std::pair<std::string, std::string>> attrs;
};

// The (trace id, span id) pair that crosses thread and process boundaries.
// Default-constructed means "no active trace": a span opened under it starts
// a fresh trace rooted at itself.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
};

class Tracer {
 public:
  static Tracer& global();

  void setEnabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Number of spans currently open (constructed, not yet destroyed) across
  // all threads. Non-zero at exit means a Span guard leaked.
  std::int64_t openSpans() const {
    return open_spans_.load(std::memory_order_relaxed);
  }

  // Drains nothing: snapshots all finished spans from every registered
  // thread buffer, ordered by start time. Buffers owned by dead threads are
  // included (the registry holds shared_ptrs).
  std::vector<SpanRecord> collect() const;

  // Discards all recorded spans. Intended for tests and between benchmark
  // rounds; concurrent span recording during clear() is safe but spans may
  // land on either side of the cut.
  void clear();

  // Chrome/Perfetto trace-event JSON: {"traceEvents":[{"ph":"X",...},...]}.
  // args carry span/parent/trace ids plus user attrs so nesting can be
  // reconstructed even across thread lanes.
  std::string renderChromeJson() const;

  // Human-readable indented tree, children nested under parents regardless
  // of which thread ran them. Deterministic: siblings sort by start time,
  // then span id.
  std::string renderTree() const;

  // Per-thread span storage; public so the thread-local state in trace.cpp
  // can hold one, but not part of the supported API.
  struct ThreadBuffer {
    std::mutex mu;
    std::vector<SpanRecord> spans;
  };

 private:
  friend class Span;

  Tracer();
  std::shared_ptr<ThreadBuffer> registerThread(std::uint32_t* index_out);
  std::uint64_t nowUs() const;

  std::atomic<bool> enabled_{false};
  std::atomic<std::int64_t> open_spans_{0};
  mutable std::mutex registry_mu_;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
  std::chrono::steady_clock::time_point epoch_;
};

// Current thread's propagation context. Zero-valued when no span is open and
// no ContextScope is installed.
TraceContext currentContext();

// RAII: installs a TraceContext on this thread for the guard's lifetime.
// Used by the thread pool when running a submitted task, by the scheduler
// when running a job, and by acrd when handling a traced submit.
class ContextScope {
 public:
  explicit ContextScope(TraceContext ctx);
  ~ContextScope();
  ContextScope(const ContextScope&) = delete;
  ContextScope& operator=(const ContextScope&) = delete;

 private:
  std::uint64_t saved_trace_;
  std::uint64_t saved_span_;
};

// RAII timed span. When tracing is disabled construction is a single relaxed
// atomic load and the guard is inert. When enabled, the span becomes the
// current context until destroyed; its parent is whatever was current.
class Span {
 public:
  explicit Span(const char* name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  bool active() const { return active_; }

  // Attach a key/value attribute. No-ops when inactive so call sites need no
  // enabled() checks. Numeric overloads format deterministically.
  Span& attr(const char* key, const std::string& value);
  Span& attr(const char* key, std::int64_t value);
  Span& attr(const char* key, double value);

 private:
  bool active_ = false;
  SpanRecord rec_;
  std::uint64_t saved_span_ = 0;
  std::uint64_t saved_trace_ = 0;
};

}  // namespace acr::obs
