#include "obs/record.hpp"

#include <cstdio>
#include <fstream>

namespace acr::obs {

namespace {

FlightRecorder*& threadRecorder() {
  thread_local FlightRecorder* recorder = nullptr;
  return recorder;
}

// Scores and fitness values are recorded as fixed-precision strings, not
// JSON doubles, so the rendering can never drift between platforms.
std::string fixed6(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

util::Json event(const char* name) {
  return util::Json{util::Json::Object{{"event", util::Json(name)}}};
}

}  // namespace

void FlightRecorder::beginRepair(const std::string& scenario_name,
                                 std::uint64_t scenario_hash,
                                 std::uint64_t scenario_bytes,
                                 util::Json options) {
  util::Json e = event("begin");
  e.set("scenario", util::Json(scenario_name));
  e.set("scenario_hash", util::Json(scenario_hash));
  e.set("scenario_bytes", util::Json(scenario_bytes));
  e.set("options", std::move(options));
  record(std::move(e));
}

void FlightRecorder::baseline(int failed_tests, int total_tests) {
  util::Json e = event("baseline");
  e.set("failed", util::Json(failed_tests));
  e.set("total", util::Json(total_tests));
  record(std::move(e));
}

void FlightRecorder::localize(int iteration,
                              const std::vector<Suspect>& ranked) {
  util::Json e = event("localize");
  e.set("iteration", util::Json(iteration));
  util::Json::Array suspects;
  for (const Suspect& s : ranked) {
    suspects.push_back(util::Json{util::Json::Object{
        {"device", util::Json(s.device)},
        {"line", util::Json(s.line)},
        {"score", util::Json(fixed6(s.score))},
    }});
  }
  e.set("suspects", util::Json(std::move(suspects)));
  record(std::move(e));
}

void FlightRecorder::templateFired(const std::string& tmpl,
                                   const std::string& device, int line,
                                   int proposals) {
  util::Json e = event("template");
  e.set("template", util::Json(tmpl));
  e.set("device", util::Json(device));
  e.set("line", util::Json(line));
  e.set("proposals", util::Json(proposals));
  record(std::move(e));
}

void FlightRecorder::smtQuery(
    int variables, const std::vector<std::string>& constraints, bool sat,
    const std::vector<std::pair<std::string, std::string>>& model,
    const std::string& conflict, const std::vector<SmtVar>& vars) {
  util::Json e = event("smt");
  e.set("variables", util::Json(variables));
  util::Json::Array cs;
  // Cap the constraint dump: queries can carry hundreds of range clauses and
  // the recording only needs enough to identify the query.
  constexpr std::size_t kMaxConstraints = 16;
  for (std::size_t i = 0; i < constraints.size() && i < kMaxConstraints; ++i) {
    cs.push_back(util::Json(constraints[i]));
  }
  e.set("constraints", util::Json(std::move(cs)));
  e.set("constraints_total",
        util::Json(static_cast<std::int64_t>(constraints.size())));
  e.set("sat", util::Json(sat));
  util::Json::Object m;
  for (const auto& [var, value] : model) m[var] = util::Json(value);
  e.set("model", util::Json(std::move(m)));
  if (!conflict.empty()) e.set("conflict", util::Json(conflict));
  if (!vars.empty()) {
    util::Json::Array vs;
    util::Json::Object delta;
    for (const SmtVar& v : vars) {
      util::Json::Object o{
          {"name", util::Json(v.name)},
          {"kind", util::Json(v.kind)},
          {"constraints", util::Json(v.constraints)},
      };
      if (!v.device.empty()) o["device"] = util::Json(v.device);
      if (v.line != 0) o["line"] = util::Json(v.line);
      if (!v.original.empty()) o["original"] = util::Json(v.original);
      if (sat) o["value"] = util::Json(v.value);
      vs.push_back(util::Json(std::move(o)));
      if (sat && v.changed) delta[v.name] = util::Json(v.value);
    }
    e.set("vars", util::Json(std::move(vs)));
    if (sat) e.set("model_delta", util::Json(std::move(delta)));
  }
  record(std::move(e));
}

void FlightRecorder::verdict(int iteration, int candidate,
                             const std::string& tmpl,
                             const std::string& description, double fitness,
                             bool accepted, const std::string& sim,
                             int tests_reverified, int tests_skipped,
                             const std::string& node) {
  util::Json e = event("verdict");
  e.set("iteration", util::Json(iteration));
  e.set("candidate", util::Json(candidate));
  e.set("template", util::Json(tmpl));
  e.set("description", util::Json(description));
  e.set("fitness", util::Json(fixed6(fitness)));
  e.set("accepted", util::Json(accepted));
  e.set("sim", util::Json(sim));
  e.set("tests_reverified", util::Json(tests_reverified));
  e.set("tests_skipped", util::Json(tests_skipped));
  if (!node.empty()) e.set("node", util::Json(node));
  record(std::move(e));
}

void FlightRecorder::crossover(int pairs, int produced) {
  util::Json e = event("crossover");
  e.set("pairs", util::Json(pairs));
  e.set("produced", util::Json(produced));
  record(std::move(e));
}

void FlightRecorder::end(const std::string& termination, int iterations,
                         int validations, int final_failed,
                         const std::vector<std::string>& changes) {
  util::Json e = event("end");
  e.set("termination", util::Json(termination));
  e.set("iterations", util::Json(iterations));
  e.set("validations", util::Json(validations));
  e.set("final_failed", util::Json(final_failed));
  util::Json::Array cs;
  for (const std::string& c : changes) cs.push_back(util::Json(c));
  e.set("changes", util::Json(std::move(cs)));
  record(std::move(e));
}

void FlightRecorder::record(util::Json e) {
  e.set("seq", util::Json(seq_++));
  lines_.push_back(e.str());
}

std::string FlightRecorder::text() const {
  std::string out;
  for (const std::string& line : lines_) {
    out += line;
    out += "\n";
  }
  return out;
}

bool FlightRecorder::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << text();
  return static_cast<bool>(out);
}

FlightRecorder* currentRecorder() { return threadRecorder(); }

RecorderScope::RecorderScope(FlightRecorder* recorder) {
  saved_ = threadRecorder();
  threadRecorder() = recorder;
}

RecorderScope::~RecorderScope() { threadRecorder() = saved_; }

bool parseRecording(const std::string& text, std::vector<util::Json>* events) {
  events->clear();
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) nl = text.size();
    std::string line = text.substr(pos, nl - pos);
    pos = nl + 1;
    if (line.empty()) continue;
    auto parsed = util::Json::parse(line);
    if (!parsed || !parsed->isObject()) return false;
    events->push_back(std::move(*parsed));
  }
  return true;
}

namespace {

std::string fieldStr(const util::Json& e, const char* key) {
  const util::Json* v = e.find(key);
  return v && v->kind() == util::Json::Kind::kString ? v->asString()
                                                     : std::string();
}

std::int64_t fieldInt(const util::Json& e, const char* key) {
  const util::Json* v = e.find(key);
  return v ? v->asInt() : 0;
}

}  // namespace

std::string renderExplainTree(const std::vector<util::Json>& events) {
  std::string out;
  auto line = [&out](int depth, const std::string& text) {
    out.append(static_cast<std::size_t>(depth) * 2, ' ');
    out += text;
    out += "\n";
  };
  for (const util::Json& e : events) {
    const std::string kind = fieldStr(e, "event");
    char buf[256];
    if (kind == "begin") {
      std::snprintf(buf, sizeof(buf), "repair %s  scenario_hash=%llu",
                    fieldStr(e, "scenario").c_str(),
                    static_cast<unsigned long long>(
                        e.find("scenario_hash") ? e.find("scenario_hash")->asUint()
                                                : 0));
      line(0, buf);
    } else if (kind == "baseline") {
      std::snprintf(buf, sizeof(buf), "baseline: %lld/%lld tests failing",
                    static_cast<long long>(fieldInt(e, "failed")),
                    static_cast<long long>(fieldInt(e, "total")));
      line(1, buf);
    } else if (kind == "localize") {
      std::snprintf(buf, sizeof(buf), "localize (iteration %lld)",
                    static_cast<long long>(fieldInt(e, "iteration")));
      line(1, buf);
      if (const util::Json* suspects = e.find("suspects")) {
        for (const util::Json& s : suspects->asArray()) {
          std::snprintf(buf, sizeof(buf), "suspect %s:%lld  score=%s",
                        fieldStr(s, "device").c_str(),
                        static_cast<long long>(fieldInt(s, "line")),
                        fieldStr(s, "score").c_str());
          line(2, buf);
        }
      }
    } else if (kind == "template") {
      std::snprintf(buf, sizeof(buf), "template %s at %s:%lld  proposals=%lld",
                    fieldStr(e, "template").c_str(),
                    fieldStr(e, "device").c_str(),
                    static_cast<long long>(fieldInt(e, "line")),
                    static_cast<long long>(fieldInt(e, "proposals")));
      line(2, buf);
    } else if (kind == "smt") {
      const bool sat = e.find("sat") && e.find("sat")->asBool();
      std::snprintf(buf, sizeof(buf), "smt %s  variables=%lld",
                    sat ? "sat" : "unsat",
                    static_cast<long long>(fieldInt(e, "variables")));
      line(3, buf);
      // Symbolic-layer queries carry per-variable detail: name, kind, the
      // model assignment, the constraint count, and whether the assignment
      // differs from the original concrete value ("changed").
      if (const util::Json* vars = e.find("vars")) {
        const util::Json* delta = e.find("model_delta");
        for (const util::Json& v : vars->asArray()) {
          const std::string name = fieldStr(v, "name");
          std::string site = fieldStr(v, "device");
          if (const std::int64_t l = fieldInt(v, "line"); l != 0) {
            site += ":";
            site += std::to_string(l);
          }
          std::string detail;
          if (sat) {
            detail = "= " + fieldStr(v, "value");
            if (delta && delta->find(name.c_str()) != nullptr) {
              const std::string original = fieldStr(v, "original");
              detail += original.empty() ? " (changed)"
                                         : " (changed from " + original + ")";
            }
          }
          std::snprintf(buf, sizeof(buf),
                        "var %s [%s]%s%s %s constraints=%lld", name.c_str(),
                        fieldStr(v, "kind").c_str(), site.empty() ? "" : " at ",
                        site.c_str(), detail.c_str(),
                        static_cast<long long>(fieldInt(v, "constraints")));
          line(4, buf);
        }
      }
    } else if (kind == "verdict") {
      std::snprintf(buf, sizeof(buf),
                    "%s candidate %lld [%s] fitness=%s sim=%s  %s",
                    e.find("accepted") && e.find("accepted")->asBool()
                        ? "ACCEPT"
                        : "reject",
                    static_cast<long long>(fieldInt(e, "candidate")),
                    fieldStr(e, "template").c_str(),
                    fieldStr(e, "fitness").c_str(), fieldStr(e, "sim").c_str(),
                    fieldStr(e, "description").c_str());
      line(2, buf);
    } else if (kind == "crossover") {
      std::snprintf(buf, sizeof(buf), "crossover pairs=%lld produced=%lld",
                    static_cast<long long>(fieldInt(e, "pairs")),
                    static_cast<long long>(fieldInt(e, "produced")));
      line(2, buf);
    } else if (kind == "end") {
      std::string changes;
      if (const util::Json* cs = e.find("changes")) {
        for (const util::Json& c : cs->asArray()) {
          changes += "\n    ";
          changes += c.asString();
        }
      }
      std::snprintf(buf, sizeof(buf),
                    "end: %s  iterations=%lld validations=%lld final_failed=%lld",
                    fieldStr(e, "termination").c_str(),
                    static_cast<long long>(fieldInt(e, "iterations")),
                    static_cast<long long>(fieldInt(e, "validations")),
                    static_cast<long long>(fieldInt(e, "final_failed")));
      line(1, buf + changes);
    }
  }
  return out;
}

}  // namespace acr::obs
