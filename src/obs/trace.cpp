#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <unordered_map>

#include "util/json.hpp"

namespace acr::obs {

namespace {

// Per-thread tracer state. The buffer shared_ptr keeps recorded spans alive
// after the thread exits; the tracer registry holds the other reference.
struct ThreadState {
  std::shared_ptr<Tracer::ThreadBuffer> buffer;
  std::uint32_t thread_index = 0;
  std::uint64_t next_local_id = 0;
  std::uint64_t current_span = 0;
  std::uint64_t current_trace = 0;
};

ThreadState& threadState() {
  thread_local ThreadState state;
  return state;
}

std::string formatDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

}  // namespace

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

std::uint64_t Tracer::nowUs() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

std::shared_ptr<Tracer::ThreadBuffer> Tracer::registerThread(
    std::uint32_t* index_out) {
  auto buffer = std::make_shared<ThreadBuffer>();
  std::lock_guard<std::mutex> lock(registry_mu_);
  *index_out = static_cast<std::uint32_t>(buffers_.size());
  buffers_.push_back(buffer);
  return buffer;
}

std::vector<SpanRecord> Tracer::collect() const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    buffers = buffers_;
  }
  std::vector<SpanRecord> out;
  for (const auto& buf : buffers) {
    std::lock_guard<std::mutex> lock(buf->mu);
    out.insert(out.end(), buf->spans.begin(), buf->spans.end());
  }
  std::sort(out.begin(), out.end(), [](const SpanRecord& a, const SpanRecord& b) {
    if (a.start_us != b.start_us) return a.start_us < b.start_us;
    return a.span_id < b.span_id;
  });
  return out;
}

void Tracer::clear() {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    buffers = buffers_;
  }
  for (const auto& buf : buffers) {
    std::lock_guard<std::mutex> lock(buf->mu);
    buf->spans.clear();
  }
}

std::string Tracer::renderChromeJson() const {
  using util::Json;
  Json::Array events;
  for (const SpanRecord& rec : collect()) {
    Json args{Json::Object{
        {"span", Json(rec.span_id)},
        {"parent", Json(rec.parent_id)},
        {"trace", Json(rec.trace_id)},
    }};
    for (const auto& [key, value] : rec.attrs) {
      args.set(key, Json(value));
    }
    events.push_back(Json{Json::Object{
        {"name", Json(rec.name)},
        {"ph", Json("X")},
        {"cat", Json("acr")},
        {"pid", Json(1)},
        {"tid", Json(static_cast<std::int64_t>(rec.thread_index))},
        {"ts", Json(rec.start_us)},
        {"dur", Json(rec.dur_us)},
        {"args", std::move(args)},
    }});
  }
  Json doc{Json::Object{{"traceEvents", Json(std::move(events))}}};
  return doc.str();
}

std::string Tracer::renderTree() const {
  std::vector<SpanRecord> spans = collect();
  // Index children by parent id; collect() already ordered by start time.
  std::unordered_map<std::uint64_t, std::vector<const SpanRecord*>> children;
  std::vector<const SpanRecord*> roots;
  std::unordered_map<std::uint64_t, const SpanRecord*> by_id;
  for (const SpanRecord& rec : spans) by_id[rec.span_id] = &rec;
  for (const SpanRecord& rec : spans) {
    if (rec.parent_id != 0 && by_id.count(rec.parent_id)) {
      children[rec.parent_id].push_back(&rec);
    } else {
      roots.push_back(&rec);
    }
  }
  std::string out;
  struct Frame {
    const SpanRecord* rec;
    int depth;
  };
  std::vector<Frame> stack;
  for (auto it = roots.rbegin(); it != roots.rend(); ++it) {
    stack.push_back({*it, 0});
  }
  while (!stack.empty()) {
    Frame frame = stack.back();
    stack.pop_back();
    out.append(static_cast<std::size_t>(frame.depth) * 2, ' ');
    out += frame.rec->name;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "  %llu us",
                  static_cast<unsigned long long>(frame.rec->dur_us));
    out += buf;
    for (const auto& [key, value] : frame.rec->attrs) {
      out += "  ";
      out += key;
      out += "=";
      out += value;
    }
    out += "\n";
    auto kids = children.find(frame.rec->span_id);
    if (kids != children.end()) {
      for (auto it = kids->second.rbegin(); it != kids->second.rend(); ++it) {
        stack.push_back({*it, frame.depth + 1});
      }
    }
  }
  return out;
}

TraceContext currentContext() {
  ThreadState& state = threadState();
  return TraceContext{state.current_trace, state.current_span};
}

ContextScope::ContextScope(TraceContext ctx) {
  ThreadState& state = threadState();
  saved_trace_ = state.current_trace;
  saved_span_ = state.current_span;
  state.current_trace = ctx.trace_id;
  state.current_span = ctx.span_id;
}

ContextScope::~ContextScope() {
  ThreadState& state = threadState();
  state.current_trace = saved_trace_;
  state.current_span = saved_span_;
}

Span::Span(const char* name) {
  Tracer& tracer = Tracer::global();
  if (!tracer.enabled()) return;  // the whole disabled-path cost
  active_ = true;
  ThreadState& state = threadState();
  if (!state.buffer) {
    state.buffer = tracer.registerThread(&state.thread_index);
  }
  rec_.name = name;
  rec_.span_id = (static_cast<std::uint64_t>(state.thread_index + 1) << 32) |
                 ++state.next_local_id;
  rec_.parent_id = state.current_span;
  rec_.thread_index = state.thread_index;
  saved_span_ = state.current_span;
  saved_trace_ = state.current_trace;
  if (state.current_trace == 0) state.current_trace = rec_.span_id;
  rec_.trace_id = state.current_trace;
  state.current_span = rec_.span_id;
  rec_.start_us = tracer.nowUs();
  tracer.open_spans_.fetch_add(1, std::memory_order_relaxed);
}

Span::~Span() {
  if (!active_) return;
  Tracer& tracer = Tracer::global();
  rec_.dur_us = tracer.nowUs() - rec_.start_us;
  ThreadState& state = threadState();
  state.current_span = saved_span_;
  state.current_trace = saved_trace_;
  {
    std::lock_guard<std::mutex> lock(state.buffer->mu);
    state.buffer->spans.push_back(std::move(rec_));
  }
  tracer.open_spans_.fetch_sub(1, std::memory_order_relaxed);
}

Span& Span::attr(const char* key, const std::string& value) {
  if (active_) rec_.attrs.emplace_back(key, value);
  return *this;
}

Span& Span::attr(const char* key, std::int64_t value) {
  if (active_) rec_.attrs.emplace_back(key, std::to_string(value));
  return *this;
}

Span& Span::attr(const char* key, double value) {
  if (active_) rec_.attrs.emplace_back(key, formatDouble(value));
  return *this;
}

}  // namespace acr::obs
