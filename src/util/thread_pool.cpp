#include "util/thread_pool.hpp"

#include <algorithm>

namespace acr::util {

ThreadPool::ThreadPool(int threads) {
  const int count = std::max(1, threads);
  workers_.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task: exceptions land in the future
  }
}

int ThreadPool::hardwareJobs() {
  const unsigned reported = std::thread::hardware_concurrency();
  return reported == 0 ? 1 : static_cast<int>(reported);
}

int resolveJobs(int jobs) {
  return jobs <= 0 ? ThreadPool::hardwareJobs() : jobs;
}

void parallelFor(int jobs, int n, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  if (jobs <= 1 || n == 1) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool pool(std::min(jobs, n));
  parallelFor(pool, n, fn);
}

void parallelFor(ThreadPool& pool, int n, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  std::vector<std::future<void>> futures;
  futures.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    futures.push_back(pool.submit([&fn, i] { fn(i); }));
  }
  // Wait for everything first, then rethrow the lowest-index exception so
  // the propagated error does not depend on scheduling.
  std::exception_ptr first_error;
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (first_error == nullptr) first_error = std::current_exception();
    }
  }
  if (first_error != nullptr) std::rethrow_exception(first_error);
}

}  // namespace acr::util
