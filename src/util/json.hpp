// Minimal JSON value shared by the acrd wire protocol (docs/service.md)
// and the observability subsystem (docs/observability.md).
//
// Requests, responses, trace-event entries and flight-recorder events are
// all single-line JSON documents; this is a small recursive-descent parser
// plus a compact renderer — no external dependency, no streaming, no
// comments. Numbers keep their source text so 64-bit ids and seeds
// round-trip exactly (a double would lose precision past 2^53). Rendering
// is deterministic (sorted object keys), which is what lets flight
// recordings be compared byte for byte.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace acr::util {

class Json {
 public:
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kObject,
    kArray,
  };
  using Object = std::map<std::string, Json>;
  using Array = std::vector<Json>;

  Json() = default;
  Json(bool value) : kind_(Kind::kBool), bool_(value) {}
  Json(int value) : Json(static_cast<std::int64_t>(value)) {}
  Json(std::int64_t value)
      : kind_(Kind::kNumber), number_(static_cast<double>(value)),
        number_text_(std::to_string(value)) {}
  Json(std::uint64_t value)
      : kind_(Kind::kNumber), number_(static_cast<double>(value)),
        number_text_(std::to_string(value)) {}
  Json(double value);
  Json(std::string value) : kind_(Kind::kString), string_(std::move(value)) {}
  Json(const char* value) : Json(std::string(value)) {}
  Json(Object value) : kind_(Kind::kObject), object_(std::move(value)) {}
  Json(Array value) : kind_(Kind::kArray), array_(std::move(value)) {}

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool isObject() const { return kind_ == Kind::kObject; }

  [[nodiscard]] bool asBool(bool fallback = false) const {
    return kind_ == Kind::kBool ? bool_ : fallback;
  }
  [[nodiscard]] double asNumber(double fallback = 0.0) const {
    return kind_ == Kind::kNumber ? number_ : fallback;
  }
  [[nodiscard]] std::int64_t asInt(std::int64_t fallback = 0) const;
  [[nodiscard]] std::uint64_t asUint(std::uint64_t fallback = 0) const;
  [[nodiscard]] const std::string& asString() const;
  [[nodiscard]] const Object& asObject() const;
  [[nodiscard]] const Array& asArray() const;

  /// Object member lookup; nullptr when not an object or the key is absent.
  [[nodiscard]] const Json* find(const std::string& key) const;
  /// Sets an object member (converts a null value to an empty object first).
  void set(const std::string& key, Json value);

  /// Compact single-line rendering (sorted keys — Object is a std::map).
  [[nodiscard]] std::string str() const;

  /// Strict parse of a complete JSON document; nullopt on any error
  /// (including trailing garbage).
  static std::optional<Json> parse(const std::string& text);

  /// Number carrying an exact source spelling — how the parser keeps
  /// 64-bit integers intact where Json(double) would reformat them.
  [[nodiscard]] static Json numberFromToken(double value,
                                            std::string spelling);

  /// JSON string-escapes `raw` (no surrounding quotes).
  static std::string escape(const std::string& raw);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string number_text_;  // exact source/constructed spelling
  std::string string_;
  Object object_;
  Array array_;
};

}  // namespace acr::util
