#include "util/metrics.hpp"

#include <algorithm>
#include <cstdio>

namespace acr::util {

namespace {

int bucketOf(double ms) {
  double upper = Histogram::kFirstUpperMs;
  for (int b = 0; b < Histogram::kBuckets - 1; ++b) {
    if (ms <= upper) return b;
    upper *= 2.0;
  }
  return Histogram::kBuckets - 1;
}

std::string fmt(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.3f", value);
  return buffer;
}

}  // namespace

void Histogram::observe(double ms) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (data_.count == 0 || ms < data_.min_ms) data_.min_ms = ms;
  if (ms > data_.max_ms) data_.max_ms = ms;
  ++data_.count;
  data_.sum_ms += ms;
  ++data_.buckets[static_cast<std::size_t>(bucketOf(ms))];
}

Histogram::Snapshot Histogram::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return data_;
}

void Histogram::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  data_ = {};
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

void MetricsRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, gauge] : gauges_) gauge->reset();
  for (auto& [name, histogram] : histograms_) histogram->reset();
}

std::string MetricsRegistry::renderTable() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  std::size_t width = 8;
  for (const auto& [name, counter] : counters_) {
    width = std::max(width, name.size());
  }
  for (const auto& [name, gauge] : gauges_) {
    width = std::max(width, name.size());
  }
  for (const auto& [name, histogram] : histograms_) {
    width = std::max(width, name.size());
  }
  if (!counters_.empty()) {
    out += "counters:\n";
    for (const auto& [name, counter] : counters_) {
      out += "  " + name + std::string(width - name.size() + 2, ' ') +
             std::to_string(counter->value()) + "\n";
    }
  }
  if (!gauges_.empty()) {
    out += "gauges:\n";
    for (const auto& [name, gauge] : gauges_) {
      out += "  " + name + std::string(width - name.size() + 2, ' ') +
             std::to_string(gauge->value()) + "\n";
    }
  }
  if (!histograms_.empty()) {
    out += "histograms (ms):\n";
    out += "  " + std::string(width, ' ') +
           "  count      mean       min       max       total\n";
    for (const auto& [name, histogram] : histograms_) {
      const Histogram::Snapshot snap = histogram->snapshot();
      char row[256];
      std::snprintf(row, sizeof row, "  %-*s  %-9llu  %-9.3f %-9.3f %-9.3f %.3f\n",
                    static_cast<int>(width), name.c_str(),
                    static_cast<unsigned long long>(snap.count), snap.meanMs(),
                    snap.min_ms, snap.max_ms, snap.sum_ms);
      out += row;
    }
  }
  if (out.empty()) out = "(no metrics recorded)\n";
  return out;
}

std::string MetricsRegistry::renderJson() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    out += first ? "\n" : ",\n";
    out += "    \"" + name + "\": " + std::to_string(counter->value());
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    out += first ? "\n" : ",\n";
    out += "    \"" + name + "\": " + std::to_string(gauge->value());
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    const Histogram::Snapshot snap = histogram->snapshot();
    out += first ? "\n" : ",\n";
    out += "    \"" + name + "\": {\"count\": " + std::to_string(snap.count) +
           ", \"sum_ms\": " + fmt(snap.sum_ms) +
           ", \"min_ms\": " + fmt(snap.min_ms) +
           ", \"max_ms\": " + fmt(snap.max_ms) +
           ", \"mean_ms\": " + fmt(snap.meanMs()) + "}";
    first = false;
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

ScopedTimer::ScopedTimer(Histogram& histogram)
    : histogram_(histogram), started_(std::chrono::steady_clock::now()) {}

ScopedTimer::~ScopedTimer() {
  histogram_.observe(std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - started_)
                         .count());
}

}  // namespace acr::util
