// Fixed-size thread pool with a shared FIFO queue.
//
// The campaign runner and the engine's VALIDATE fan-out both follow the same
// discipline: the *scheduling* is free-form (workers pull tasks in any
// order) but every task writes only to its own pre-allocated slot, so the
// assembled result is independent of interleaving. Exceptions thrown inside
// a task are captured in the task's future and rethrown at the join point
// (`parallelFor` rethrows the first one by index order, again for
// determinism).
//
// Destruction drains: the destructor lets queued tasks finish before
// joining — a pool going out of scope never drops submitted work.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "obs/trace.hpp"

namespace acr::util {

class ThreadPool {
 public:
  /// `threads` < 1 is clamped to 1.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueues `fn` and returns its future. The future carries the return
  /// value or the exception the task threw. The submitter's trace context is
  /// captured here and reinstalled around the task, so spans opened inside
  /// pool tasks nest under the span that was open at the submit call.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(
        [ctx = obs::currentContext(),
         fn = std::forward<F>(fn)]() mutable -> R {
          const obs::ContextScope scope(ctx);
          return fn();
        });
    std::future<R> future = task->get_future();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
    }
    wake_.notify_one();
    return future;
  }

  /// `hardware_concurrency`, floored at 1 (the call may report 0).
  [[nodiscard]] static int hardwareJobs();

 private:
  void workerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable wake_;
  bool stopping_ = false;
};

/// Resolves a user-facing jobs knob: 0 (or negative) = hardware concurrency.
[[nodiscard]] int resolveJobs(int jobs);

/// Runs fn(0) .. fn(n-1) on `jobs` workers and waits for all of them.
/// jobs <= 1 (after resolveJobs the caller decides) runs inline on the
/// calling thread. If any task throws, the exception of the lowest index is
/// rethrown after every task has finished.
void parallelFor(int jobs, int n, const std::function<void(int)>& fn);

/// Same, reusing an existing pool (each call still waits for its own tasks).
void parallelFor(ThreadPool& pool, int n, const std::function<void(int)>& fn);

}  // namespace acr::util
