// Deterministic RNG stream splitting.
//
// The parallel campaign runner gives every incident its own RNG stream
// derived from the campaign seed, so the work done for incident i is a pure
// function of (seed, i) — never of scheduling order or worker count. That
// is the whole determinism contract: `jobs` changes wall-clock, not results.
#pragma once

#include <cstdint>

namespace acr::util {

/// SplitMix64 (Steele et al.): a single mixing step with full 64-bit
/// avalanche. Used as the stream-splitting hash, not as the generator —
/// the derived value seeds an independent std::mt19937_64.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Seed for sub-stream `stream` of the generator family rooted at `seed`.
/// Streams with different indices are decorrelated even for adjacent seeds
/// (plain `seed + i` would alias stream i of seed s with stream i-1 of
/// seed s+1).
[[nodiscard]] constexpr std::uint64_t streamSeed(std::uint64_t seed,
                                                 std::uint64_t stream) {
  return splitmix64(seed ^ splitmix64(stream));
}

}  // namespace acr::util
