#include "util/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace acr::util {

namespace {

const std::string kEmptyString;
const Json::Object kEmptyObject;
const Json::Array kEmptyArray;

void appendUtf8(std::string& out, std::uint32_t codepoint) {
  if (codepoint < 0x80) {
    out += static_cast<char>(codepoint);
  } else if (codepoint < 0x800) {
    out += static_cast<char>(0xC0 | (codepoint >> 6));
    out += static_cast<char>(0x80 | (codepoint & 0x3F));
  } else if (codepoint < 0x10000) {
    out += static_cast<char>(0xE0 | (codepoint >> 12));
    out += static_cast<char>(0x80 | ((codepoint >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (codepoint & 0x3F));
  } else {
    out += static_cast<char>(0xF0 | (codepoint >> 18));
    out += static_cast<char>(0x80 | ((codepoint >> 12) & 0x3F));
    out += static_cast<char>(0x80 | ((codepoint >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (codepoint & 0x3F));
  }
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  std::optional<Json> parseDocument() {
    std::optional<Json> value = parseValue();
    if (!value) return std::nullopt;
    skipSpace();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return value;
  }

 private:
  void skipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool consume(char expected) {
    skipSpace();
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(const char* word) {
    const std::size_t size = std::strlen(word);
    if (text_.compare(pos_, size, word) != 0) return false;
    pos_ += size;
    return true;
  }

  std::optional<Json> parseValue() {
    skipSpace();
    if (pos_ >= text_.size()) return std::nullopt;
    const char head = text_[pos_];
    if (head == '{') return parseObject();
    if (head == '[') return parseArray();
    if (head == '"') {
      std::optional<std::string> string = parseString();
      if (!string) return std::nullopt;
      return Json(std::move(*string));
    }
    if (head == 't') return literal("true") ? std::optional<Json>(Json(true))
                                            : std::nullopt;
    if (head == 'f') return literal("false") ? std::optional<Json>(Json(false))
                                             : std::nullopt;
    if (head == 'n') return literal("null") ? std::optional<Json>(Json())
                                            : std::nullopt;
    return parseNumber();
  }

  std::optional<Json> parseObject() {
    ++pos_;  // '{'
    Json::Object object;
    skipSpace();
    if (consume('}')) return Json(std::move(object));
    for (;;) {
      skipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '"') return std::nullopt;
      std::optional<std::string> key = parseString();
      if (!key) return std::nullopt;
      if (!consume(':')) return std::nullopt;
      std::optional<Json> value = parseValue();
      if (!value) return std::nullopt;
      object[std::move(*key)] = std::move(*value);
      if (consume(',')) continue;
      if (consume('}')) return Json(std::move(object));
      return std::nullopt;
    }
  }

  std::optional<Json> parseArray() {
    ++pos_;  // '['
    Json::Array array;
    skipSpace();
    if (consume(']')) return Json(std::move(array));
    for (;;) {
      std::optional<Json> value = parseValue();
      if (!value) return std::nullopt;
      array.push_back(std::move(*value));
      if (consume(',')) continue;
      if (consume(']')) return Json(std::move(array));
      return std::nullopt;
    }
  }

  std::optional<std::string> parseString() {
    ++pos_;  // opening quote
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return std::nullopt;
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          std::optional<std::uint32_t> unit = parseHex4();
          if (!unit) return std::nullopt;
          std::uint32_t codepoint = *unit;
          if (codepoint >= 0xD800 && codepoint <= 0xDBFF) {
            // Surrogate pair: expect \uDC00-\uDFFF next.
            if (pos_ + 1 < text_.size() && text_[pos_] == '\\' &&
                text_[pos_ + 1] == 'u') {
              pos_ += 2;
              const std::optional<std::uint32_t> low = parseHex4();
              if (!low || *low < 0xDC00 || *low > 0xDFFF) return std::nullopt;
              codepoint = 0x10000 + ((codepoint - 0xD800) << 10) +
                          (*low - 0xDC00);
            } else {
              return std::nullopt;
            }
          }
          appendUtf8(out, codepoint);
          break;
        }
        default:
          return std::nullopt;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<std::uint32_t> parseHex4() {
    if (pos_ + 4 > text_.size()) return std::nullopt;
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        return std::nullopt;
      }
    }
    return value;
  }

  std::optional<Json> parseNumber() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return std::nullopt;
    const std::string token = text_.substr(start, pos_ - start);
    try {
      return Json::numberFromToken(std::stod(token), token);
    } catch (const std::exception&) {
      return std::nullopt;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json::Json(double value) : kind_(Kind::kNumber), number_(value) {
  char buffer[64];
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    std::snprintf(buffer, sizeof(buffer), "%.0f", value);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  }
  number_text_ = buffer;
}

std::int64_t Json::asInt(std::int64_t fallback) const {
  if (kind_ != Kind::kNumber) return fallback;
  try {
    return std::stoll(number_text_);
  } catch (const std::exception&) {
    return static_cast<std::int64_t>(number_);
  }
}

std::uint64_t Json::asUint(std::uint64_t fallback) const {
  if (kind_ != Kind::kNumber) return fallback;
  try {
    return std::stoull(number_text_);
  } catch (const std::exception&) {
    return number_ > 0 ? static_cast<std::uint64_t>(number_) : fallback;
  }
}

const std::string& Json::asString() const {
  return kind_ == Kind::kString ? string_ : kEmptyString;
}

const Json::Object& Json::asObject() const {
  return kind_ == Kind::kObject ? object_ : kEmptyObject;
}

const Json::Array& Json::asArray() const {
  return kind_ == Kind::kArray ? array_ : kEmptyArray;
}

const Json* Json::find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  const auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

void Json::set(const std::string& key, Json value) {
  if (kind_ != Kind::kObject) {
    kind_ = Kind::kObject;
    object_.clear();
  }
  object_[key] = std::move(value);
}

std::string Json::escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size() + 8);
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string Json::str() const {
  switch (kind_) {
    case Kind::kNull:
      return "null";
    case Kind::kBool:
      return bool_ ? "true" : "false";
    case Kind::kNumber:
      return number_text_;
    case Kind::kString:
      return '"' + escape(string_) + '"';
    case Kind::kObject: {
      std::string out = "{";
      bool first = true;
      for (const auto& [key, value] : object_) {
        if (!first) out += ',';
        first = false;
        out += '"' + escape(key) + "\":" + value.str();
      }
      return out + '}';
    }
    case Kind::kArray: {
      std::string out = "[";
      bool first = true;
      for (const auto& value : array_) {
        if (!first) out += ',';
        first = false;
        out += value.str();
      }
      return out + ']';
    }
  }
  return "null";
}

std::optional<Json> Json::parse(const std::string& text) {
  return Parser(text).parseDocument();
}

Json Json::numberFromToken(double value, std::string spelling) {
  Json number(value);
  number.number_text_ = std::move(spelling);
  return number;
}

}  // namespace acr::util
