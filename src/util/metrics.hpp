// Lightweight metrics: named atomic counters and wall-clock histograms.
//
// Instrumentation for the localize–fix–validate pipeline. Counters are
// relaxed atomics (concurrent increments from campaign workers and the
// VALIDATE fan-out just sum); histograms take a short mutex per observe.
// Metrics are an observational side channel only — nothing in the repair
// path reads them back, so they cannot perturb the determinism contract.
//
// Every metric name the pipeline emits is listed in
// docs/architecture.md §"Metrics"; keep the two in sync.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace acr::util {

class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// A level, not a rate: signed, settable, and allowed to go down again
/// (open connections, queue depths, overloaded-node counts). Counters
/// only ever grow; a gauge is the "how many right now" companion.
class Gauge {
 public:
  void set(std::int64_t value) {
    value_.store(value, std::memory_order_relaxed);
  }
  void add(std::int64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  void sub(std::int64_t n = 1) {
    value_.fetch_sub(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Histogram over milliseconds with log2 buckets: the first bucket is
/// (-inf, 0.001ms], each next doubles, the last is open-ended (~9 minutes+).
class Histogram {
 public:
  static constexpr int kBuckets = 30;
  static constexpr double kFirstUpperMs = 0.001;

  void observe(double ms);

  struct Snapshot {
    std::uint64_t count = 0;
    double sum_ms = 0.0;
    double min_ms = 0.0;  // 0 when empty
    double max_ms = 0.0;
    /// Per-bucket counts; bucket b covers (upper(b-1), upper(b)] with
    /// upper(b) = kFirstUpperMs * 2^b, except the last which is open.
    std::array<std::uint64_t, kBuckets> buckets{};

    [[nodiscard]] double meanMs() const {
      return count == 0 ? 0.0 : sum_ms / static_cast<double>(count);
    }
  };
  [[nodiscard]] Snapshot snapshot() const;
  void reset();

 private:
  mutable std::mutex mutex_;
  Snapshot data_;
};

/// Named counters + histograms. Lookup lazily registers; returned references
/// stay valid for the registry's lifetime (entries are never removed —
/// reset() zeroes values but keeps registrations).
class MetricsRegistry {
 public:
  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Gauge& gauge(const std::string& name);
  [[nodiscard]] Histogram& histogram(const std::string& name);

  void reset();

  /// Human-readable dump: one counters table, one histograms table,
  /// sorted by name.
  [[nodiscard]] std::string renderTable() const;
  /// Machine-readable dump: {"counters": {...}, "histograms": {...}}.
  [[nodiscard]] std::string renderJson() const;

  /// The process-wide registry the pipeline reports into.
  static MetricsRegistry& global();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// RAII stage timer: observes the scope's wall-clock into a histogram.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& histogram);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram& histogram_;
  std::chrono::steady_clock::time_point started_;
};

}  // namespace acr::util
