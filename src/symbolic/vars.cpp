// Variable selection: which config fields become symbolic this round.
//
// Devices are gated by sbfl::suspectDevices (suspicion_threshold × top
// score); on each suspect device the suspicious lines are resolved to
// symbolizable sites — prefix-lists via fix::reachableLists, local-pref/MED
// via the policy actions reachable from the line. The cap interleaves
// devices round-robin (site 0 of every device before site 1 of any), so a
// fault spanning N devices keeps one variable per device even at small
// `max_variables`.
#include <algorithm>
#include <map>

#include "symbolic/symbolic.hpp"

namespace acr::symb {

namespace {

/// All lines identified with prefix-list `list` on `device`: its entry
/// lines plus every if-match line referencing it and the node lines of
/// those matches. Both positive coverage (the entry matched) and negative
/// blame (the policy evaluated the list and denied) land on these lines.
std::set<cfg::LineId> linesOfList(const cfg::DeviceConfig& device,
                                  const cfg::PrefixList& list) {
  std::set<cfg::LineId> lines;
  for (const auto& entry : list.entries) {
    lines.insert(cfg::LineId{device.hostname, entry.line});
  }
  for (const auto& policy : device.policies) {
    for (const auto& node : policy.nodes) {
      for (const auto& match : node.matches) {
        if (match.prefix_list != list.name) continue;
        lines.insert(cfg::LineId{device.hostname, match.line});
        lines.insert(cfg::LineId{device.hostname, node.line});
      }
    }
  }
  return lines;
}

/// Policies reachable from a suspicious line (for local-pref/MED sites):
/// the policy the line belongs to, or the one its peer/group binding names.
std::vector<const cfg::RoutePolicy*> policiesForLine(
    const cfg::DeviceConfig& device, const cfg::LineInfo& info) {
  std::vector<const cfg::RoutePolicy*> policies;
  const auto byName = [&](const std::string& name) {
    const cfg::RoutePolicy* policy = device.findPolicy(name);
    if (policy != nullptr) policies.push_back(policy);
  };
  switch (info.kind) {
    case cfg::LineKind::kPolicyNode:
    case cfg::LineKind::kPolicyMatch:
    case cfg::LineKind::kPolicyAction:
      policies.push_back(&device.policies[static_cast<std::size_t>(info.a)]);
      break;
    case cfg::LineKind::kPeerImport:
    case cfg::LineKind::kPeerExport: {
      const auto& peer = device.bgp->peers[static_cast<std::size_t>(info.a)];
      byName(info.kind == cfg::LineKind::kPeerImport ? peer.import_policy
                                                     : peer.export_policy);
      break;
    }
    case cfg::LineKind::kGroupImport:
    case cfg::LineKind::kGroupExport: {
      const auto& group = device.bgp->groups[static_cast<std::size_t>(info.a)];
      byName(info.kind == cfg::LineKind::kGroupImport ? group.import_policy
                                                      : group.export_policy);
      break;
    }
    default:
      break;
  }
  return policies;
}

}  // namespace

std::vector<SymbolicVar> collectVariables(
    const fix::RepairContext& context,
    const std::vector<sbfl::LineScore>& ranked,
    const SymbolicOptions& options) {
  const std::vector<std::string> suspects =
      sbfl::suspectDevices(ranked, options.suspicion_threshold);
  // Per-device ordered site lists, keyed by suspect rank position.
  std::map<std::string, std::vector<SymbolicVar>> by_device;
  std::set<std::string> seen_names;
  std::map<std::string, std::map<int, cfg::LineInfo>> line_index;

  for (const auto& score : ranked) {
    if (score.failed_cover == 0) break;  // rank order: failures first
    if (std::find(suspects.begin(), suspects.end(), score.line.device) ==
        suspects.end()) {
      continue;
    }
    const cfg::DeviceConfig* device = context.network.config(score.line.device);
    if (device == nullptr) continue;
    auto index_it = line_index.find(score.line.device);
    if (index_it == line_index.end()) {
      index_it = line_index.emplace(score.line.device, device->buildLineIndex())
                     .first;
    }
    const auto info_it = index_it->second.find(score.line.line);
    if (info_it == index_it->second.end()) continue;
    const cfg::LineInfo& info = info_it->second;

    // Prefix-list sites.
    for (const std::string& list_name : fix::reachableLists(*device, info)) {
      const cfg::PrefixList* list = device->findPrefixList(list_name);
      if (list == nullptr) continue;
      SymbolicVar var;
      var.kind = SymbolicVar::Kind::kPrefixList;
      var.name = "pl:" + device->hostname + "/" + list_name;
      if (!seen_names.insert(var.name).second) continue;
      var.device = device->hostname;
      var.line = score.line.line;
      var.list = list_name;
      var.lines = linesOfList(*device, *list);
      for (const auto& entry : list->entries) {
        if (entry.action == cfg::Action::kPermit) {
          var.original_prefixes.push_back(entry.prefix);
        }
      }
      by_device[var.device].push_back(std::move(var));
    }

    // Local-pref / MED sites.
    for (const cfg::RoutePolicy* policy : policiesForLine(*device, info)) {
      for (const auto& node : policy->nodes) {
        for (const auto& action : node.actions) {
          const bool is_lp = action.kind == cfg::PolicyActionKind::kSetLocalPref;
          const bool is_med = action.kind == cfg::PolicyActionKind::kSetMed;
          if (!is_lp && !is_med) continue;
          SymbolicVar var;
          var.kind = is_lp ? SymbolicVar::Kind::kLocalPref
                           : SymbolicVar::Kind::kMed;
          var.name = std::string(is_lp ? "lp:" : "med:") + device->hostname +
                     "/" + policy->name + "/" + std::to_string(node.index);
          if (!seen_names.insert(var.name).second) continue;
          var.device = device->hostname;
          var.line = action.line;
          var.lines.insert(cfg::LineId{device->hostname, action.line});
          var.policy = policy->name;
          var.node_index = node.index;
          var.original_value = action.value;
          by_device[var.device].push_back(std::move(var));
        }
      }
    }
  }

  // Round-robin across suspect devices (in rank order) up to the cap.
  std::vector<SymbolicVar> vars;
  const auto cap = static_cast<std::size_t>(std::max(0, options.max_variables));
  for (std::size_t round = 0; vars.size() < cap; ++round) {
    bool any = false;
    for (const std::string& device : suspects) {
      const auto it = by_device.find(device);
      if (it == by_device.end() || round >= it->second.size()) continue;
      any = true;
      if (vars.size() >= cap) break;
      vars.push_back(std::move(it->second[round]));
    }
    if (!any) break;
  }
  return vars;
}

}  // namespace acr::symb
