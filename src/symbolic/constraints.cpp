// Constraint accumulation along derivation chains.
//
// A test's coverage row is the union of config lines on the derivation
// chains its packet used (positive provenance) plus, for blackholed tests,
// the lines blamed for the missing route (negative provenance). A variable
// is "touched" by a test when its line set intersects that row — the
// selection decisions that produced the observed behaviour flowed through
// the symbolized field.
//
// Polarity:
//   * Passing test → hard constraint pinning current behaviour (the P side
//     of P ∧ ¬F): a prefix-list variable must keep classifying the test's
//     subject the way the concrete list does; a local-pref/MED variable
//     whose value decided the winning route must keep beating its rivals.
//   * Failing test → fork-choice constraint demanding a flip (¬F): the
//     subject's classification inverts, or the winning route loses to its
//     best rival. When several variables cover one failing test the flip
//     may live in any one of them (or all), so the test contributes a
//     ForkGroup rather than a hard constraint.
//
// Rival bounds come from route::collectRivals; a rival whose own attributes
// flow through another symbolic variable's line yields a cross-variable
// ordering constraint (kIntLtVar/kIntGtVar) instead of a concrete bound.
#include <algorithm>
#include <map>
#include <optional>

#include "routing/rivals.hpp"
#include "symbolic/symbolic.hpp"

namespace acr::symb {

namespace {

bool touches(const std::set<cfg::LineId>& var_lines,
             const std::set<cfg::LineId>& coverage) {
  // var_lines is small (a handful of entries/matches); probe the row.
  return std::any_of(var_lines.begin(), var_lines.end(),
                     [&](const cfg::LineId& line) {
                       return coverage.count(line) != 0;
                     });
}

/// The int variable (if any) whose action line appears in `lines`,
/// excluding `self`. Lets a rival bound become a cross-variable ordering.
const SymbolicVar* intVarTouching(const std::vector<SymbolicVar>& vars,
                                  const SymbolicVar& self,
                                  const std::vector<cfg::LineId>& lines) {
  for (const SymbolicVar& var : vars) {
    if (var.kind == SymbolicVar::Kind::kPrefixList) continue;
    if (var.name == self.name) continue;
    for (const cfg::LineId& line : lines) {
      if (var.lines.count(line) != 0) return &var;
    }
  }
  return nullptr;
}

/// True when every policy match referencing `list` on `device` sits in a
/// deny node. Such a list can absorb a flip in one direction only: adding
/// the subject never restores delivery, removing it never restores
/// isolation (the subject was blocked by *not* matching anything).
bool denyOnlyContext(const cfg::DeviceConfig& device, const std::string& list) {
  bool referenced = false;
  for (const auto& policy : device.policies) {
    for (const auto& node : policy.nodes) {
      for (const auto& match : node.matches) {
        if (match.kind != cfg::MatchKind::kIpPrefixList) continue;
        if (match.prefix_list != list) continue;
        referenced = true;
        if (node.action != cfg::Action::kDeny) return false;
      }
    }
  }
  return referenced;
}

smt::Constraint member(const std::string& var, const net::Prefix& prefix,
                       bool in) {
  smt::Constraint c;
  c.kind = in ? smt::Constraint::Kind::kMember
              : smt::Constraint::Kind::kNotMember;
  c.variable = var;
  c.prefix = prefix;
  return c;
}

smt::Constraint intBound(const std::string& var, smt::Constraint::Kind kind,
                         std::uint64_t value) {
  smt::Constraint c;
  c.kind = kind;
  c.variable = var;
  c.value = value;
  return c;
}

smt::Constraint intVsVar(const std::string& var, smt::Constraint::Kind kind,
                         const std::string& other) {
  smt::Constraint c;
  c.kind = kind;
  c.variable = var;
  c.other = other;
  return c;
}

/// Shared state for rival lookups (memoized per router+prefix).
struct RivalCache {
  const fix::RepairContext& context;
  std::map<std::pair<std::string, net::Prefix>, std::vector<route::Rival>>
      memo;

  const std::vector<route::Rival>& of(const std::string& router,
                                      const net::Prefix& prefix) {
    const auto key = std::make_pair(router, prefix);
    auto it = memo.find(key);
    if (it == memo.end()) {
      it = memo.emplace(key, route::collectRivals(context.network, context.sim,
                                                  router, prefix))
               .first;
    }
    return it->second;
  }
};

/// Constraints for an int (local-pref/MED) variable against one test.
/// Returns nullopt when the variable cannot be constrained for this test
/// (no winning route through the action, or no rival to bound against).
std::optional<std::vector<smt::Constraint>> intConstraints(
    const fix::RepairContext& context, const std::vector<SymbolicVar>& vars,
    const SymbolicVar& var, net::Ipv4Address dst, bool failing,
    RivalCache& rivals_cache) {
  const route::Route* winner = context.sim.lookup(var.device, dst);
  if (winner == nullptr) return std::nullopt;
  // The variable only constrains tests whose winning route at this device
  // was derived through the symbolized action.
  if (!context.sim.provenance.chainTouches(winner->derivation, var.lines)) {
    return std::nullopt;
  }
  const bool is_lp = var.kind == SymbolicVar::Kind::kLocalPref;
  std::vector<smt::Constraint> out;
  std::optional<std::uint64_t> bound;  // best concrete rival attribute
  for (const route::Rival& rival : rivals_cache.of(var.device, winner->prefix)) {
    if (rival.neighbor == winner->learned_from) continue;  // the winner itself
    if (const SymbolicVar* other = intVarTouching(vars, var, rival.lines)) {
      // Rival attribute is itself symbolic: emit the ordering directly.
      out.push_back(intVsVar(var.name,
                             failing ? smt::Constraint::Kind::kIntLtVar
                                     : smt::Constraint::Kind::kIntGtVar,
                             other->name));
      continue;
    }
    const std::uint64_t value =
        is_lp ? rival.route.local_pref : rival.route.med;
    if (!bound) {
      bound = value;
    } else {
      // Local-pref: highest wins, the binding rival is the max. MED: lowest
      // wins, the binding rival is the min.
      bound = is_lp ? std::max(*bound, value) : std::min(*bound, value);
    }
  }
  if (bound) {
    if (is_lp) {
      // Failing: the route must lose → lp strictly below the best rival.
      // Passing: must keep winning → strictly above (skip on a tie the
      // concrete value only wins through later tiebreakers).
      if (failing) {
        out.push_back(
            intBound(var.name, smt::Constraint::Kind::kIntLt, *bound));
      } else if (var.original_value > *bound) {
        out.push_back(
            intBound(var.name, smt::Constraint::Kind::kIntGt, *bound));
      }
    } else {
      if (failing) {
        out.push_back(
            intBound(var.name, smt::Constraint::Kind::kIntGt, *bound));
      } else if (var.original_value < *bound) {
        out.push_back(
            intBound(var.name, smt::Constraint::Kind::kIntLt, *bound));
      }
    }
  }
  if (out.empty()) return std::nullopt;
  return out;
}

}  // namespace

void accumulateConstraints(const fix::RepairContext& context,
                           const std::vector<SymbolicVar>& vars,
                           std::vector<SymbolicConstraint>& base,
                           std::vector<ForkGroup>& forks) {
  RivalCache rivals_cache{context, {}};
  // Fork groups keyed by covered-variable signature so failing tests with
  // the same candidate-fix set share one group (bounding the expansion).
  std::map<std::string, std::size_t> group_index;

  for (std::size_t i = 0; i < context.results.size(); ++i) {
    const verify::TestResult& result = context.results[i];
    const std::set<cfg::LineId>& row = context.coverage[i];
    const net::Ipv4Address dst = result.test.packet.dst;
    const net::Prefix subject = fix::subnetPrefixOf(context.network, dst);
    const verify::Intent& intent = context.intentOf(result);

    // A loop-/blackhole-free test that passes while its packet is dropped
    // passes *vacuously*: the intent says nothing about the lines that
    // dropped it, so pinning their behaviour would wrongly freeze the drop
    // (and contradict the reachability flip the failing tests demand).
    if (result.passed &&
        (intent.kind == verify::IntentKind::kLoopFree ||
         intent.kind == verify::IntentKind::kBlackholeFree) &&
        !result.trace.delivered()) {
      continue;
    }

    // Per-variable constraints for this test.
    std::vector<std::pair<const SymbolicVar*, std::vector<smt::Constraint>>>
        touched;
    for (const SymbolicVar& var : vars) {
      if (!touches(var.lines, row)) continue;
      if (var.kind == SymbolicVar::Kind::kPrefixList) {
        const cfg::DeviceConfig* device = context.network.config(var.device);
        if (device == nullptr) continue;
        const cfg::PrefixList* list = device->findPrefixList(var.list);
        if (list == nullptr) continue;
        const bool permits = list->permits(subject);
        // Passing: preserve the classification. Failing: flip it.
        const bool want_member = result.passed ? permits : !permits;
        if (!result.passed && denyOnlyContext(*device, var.list)) {
          // The flip only helps when it removes a deny (delivery wanted)
          // or introduces one (isolation wanted); skip the var otherwise.
          const bool want_delivery =
              intent.kind != verify::IntentKind::kIsolation;
          if (want_member == want_delivery) continue;
        }
        touched.emplace_back(
            &var, std::vector<smt::Constraint>{
                      member(var.name, subject, want_member)});
      } else {
        auto ints = intConstraints(context, vars, var, dst, !result.passed,
                                   rivals_cache);
        if (ints) touched.emplace_back(&var, std::move(*ints));
      }
    }
    if (touched.empty()) continue;

    if (result.passed) {
      for (auto& [var, constraints] : touched) {
        for (smt::Constraint& c : constraints) {
          base.push_back(SymbolicConstraint{std::move(c), false, intent.name});
        }
      }
      continue;
    }

    // Failing test: one fork group per covered-variable signature.
    std::string key;
    for (const auto& [var, constraints] : touched) key += var->name + "|";
    const auto [it, inserted] = group_index.emplace(key, forks.size());
    if (inserted) {
      ForkGroup group;
      for (const auto& [var, constraints] : touched) {
        group.variables.push_back(var->name);
        group.alternatives.emplace_back();
      }
      forks.push_back(std::move(group));
    }
    ForkGroup& group = forks[it->second];
    for (std::size_t v = 0; v < touched.size(); ++v) {
      auto& alternative = group.alternatives[v];
      for (const smt::Constraint& c : touched[v].second) {
        // Dedup textually identical constraints (several failing tests of
        // one intent often demand the same flip).
        const std::string rendered = c.str();
        const bool present =
            std::any_of(alternative.begin(), alternative.end(),
                        [&](const smt::Constraint& existing) {
                          return existing.str() == rendered;
                        });
        if (!present) alternative.push_back(c);
      }
    }
  }
}

}  // namespace acr::symb
