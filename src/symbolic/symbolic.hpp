// Selective symbolic simulation (Yang et al., HotNets'24 related work): run
// the repair's FIX step with a *bounded* set of symbolic config fields —
// concrete everywhere except on devices the SBFL ranking marks suspect —
// and solve all of them in one conjunction, so multi-line and multi-device
// faults repair in a single VALIDATE round instead of one template
// iteration per line.
//
// Pipeline (symbolic.cpp orchestrates, vars.cpp and constraints.cpp feed):
//   1. Variable selection: devices scoring above `suspicion_threshold` ×
//      the top suspiciousness become symbolic; on each, the prefix-lists
//      and local-pref/MED policy actions reachable from its suspicious
//      lines become variables (capped at `max_variables`, round-robin
//      across devices so a multi-device fault keeps one variable per
//      device).
//   2. Constraint accumulation: every test whose coverage touches a
//      variable's lines contributes a constraint along its derivation
//      chain — passing tests pin the current behaviour (P), failing tests
//      demand a flip (¬F). Failing tests covered by several variables fork
//      the path condition: the fix may live in any one of them or in all
//      together. Forks are expanded deterministically and capped at
//      `fork_budget`; overflow falls back to the concrete template loop
//      (`fell_back`).
//   3. Each fork is an acr::smt conjunction (cross-variable propagation,
//      minimal-model preference seeded with the original values); each sat
//      model becomes one multi-device `ConfigChange` via
//      fix::buildSymbolicModelChange, validated through the existing
//      DeltaTree batch path.
//
// Everything here runs on the engine thread before VALIDATE fan-out, so
// recordings and proposals are byte-identical at any --jobs.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "config/ast.hpp"
#include "fixgen/change.hpp"
#include "localize/sbfl.hpp"
#include "smt/solver.hpp"

namespace acr::symb {

struct SymbolicOptions {
  /// A device is symbolized when its best failure-covered line scores at
  /// least this fraction of the global top suspiciousness.
  double suspicion_threshold = 0.5;
  /// Cap on simultaneous symbolic variables (solver conjunction width).
  int max_variables = 4;
  /// Cap on path-condition forks (solver queries) per round; overflow
  /// falls back to the concrete template loop.
  int fork_budget = 8;
};

/// One symbolized config field.
struct SymbolicVar {
  enum class Kind : std::uint8_t { kPrefixList, kLocalPref, kMed };
  Kind kind = Kind::kPrefixList;
  std::string name;    // "pl:<dev>/<list>" | "lp:<dev>/<policy>/<node>" | "med:..."
  std::string device;
  int line = 0;        // representative config line (entry/match/action)
  /// Config lines identified with this variable: list entries plus the
  /// match/node lines referencing the list, or the policy action line.
  std::set<cfg::LineId> lines;
  // Prefix-list variables:
  std::string list;
  std::vector<net::Prefix> original_prefixes;  // current permit entries
  // Int variables:
  std::string policy;
  int node_index = 0;
  std::uint32_t original_value = 0;

  [[nodiscard]] smt::VarKind smtKind() const {
    return kind == Kind::kPrefixList ? smt::VarKind::kPrefixSet
                                     : smt::VarKind::kInt;
  }
};

/// One accumulated constraint, tagged with the polarity that decides
/// whether it is part of the hard base (passing test — preserve behaviour)
/// or a fork choice (failing test — demand a flip somewhere).
struct SymbolicConstraint {
  smt::Constraint constraint;
  bool from_failing = false;
  std::string test;  // intent name, for debugging/recording
};

/// A fork group: the constraints one failing test (or a set of failing
/// tests with the same covered-variable signature) imposes, with one entry
/// per variable that could absorb the flip. The expansion picks either the
/// combined branch (all variables flip) or a single variable's branch.
struct ForkGroup {
  std::vector<std::string> variables;  // covered vars, sorted
  /// Per-variable alternative constraint sets, parallel to `variables`.
  std::vector<std::vector<smt::Constraint>> alternatives;
};

struct SymbolicOutcome {
  std::vector<fix::ProposedChange> proposals;
  int variables = 0;
  int forks = 0;          // solver queries issued
  bool fell_back = false; // no vars, or fork budget exhausted
  /// Anchor for flight-recorder attribution (first variable's site).
  std::string anchor_device;
  int anchor_line = 0;
};

/// Variable selection (vars.cpp).
[[nodiscard]] std::vector<SymbolicVar> collectVariables(
    const fix::RepairContext& context,
    const std::vector<sbfl::LineScore>& ranked,
    const SymbolicOptions& options);

/// Constraint accumulation (constraints.cpp): hard base constraints from
/// passing tests into `base`, fork groups from failing tests into `forks`.
void accumulateConstraints(const fix::RepairContext& context,
                           const std::vector<SymbolicVar>& vars,
                           std::vector<SymbolicConstraint>& base,
                           std::vector<ForkGroup>& forks);

/// The full pipeline: select variables, accumulate constraints, expand
/// forks within budget, solve each conjunction, and render sat models as
/// multi-device proposals. Never throws; an empty outcome with
/// `fell_back == true` means "use the concrete loop".
[[nodiscard]] SymbolicOutcome proposeSymbolic(
    const fix::RepairContext& context,
    const std::vector<sbfl::LineScore>& ranked,
    const SymbolicOptions& options);

}  // namespace acr::symb
