// Orchestration: fork expansion, solving, and model-to-proposal rendering.
#include <algorithm>

#include "obs/trace.hpp"
#include "symbolic/symbolic.hpp"

namespace acr::symb {

namespace {

std::string renderCover(const std::vector<net::Prefix>& cover) {
  std::string rendered;
  for (const auto& prefix : cover) {
    if (!rendered.empty()) rendered += ",";
    rendered += prefix.str();
  }
  return rendered.empty() ? "(empty)" : rendered;
}

const SymbolicVar* varByName(const std::vector<SymbolicVar>& vars,
                             const std::string& name) {
  for (const SymbolicVar& var : vars) {
    if (var.name == name) return &var;
  }
  return nullptr;
}

/// One fork = one option index per group. Option 0 is the combined branch
/// (every covered variable flips); option 1+v flips only variable v. Groups
/// with a single variable have exactly one option.
int optionCount(const ForkGroup& group) {
  return group.variables.size() <= 1
             ? 1
             : 1 + static_cast<int>(group.variables.size());
}

void addGroupConstraints(const ForkGroup& group, int option,
                         smt::Solver& solver) {
  if (group.variables.size() <= 1 || option == 0) {
    for (const auto& alternative : group.alternatives) {
      for (const smt::Constraint& c : alternative) solver.require(c);
    }
    return;
  }
  const auto v = static_cast<std::size_t>(option - 1);
  for (const smt::Constraint& c : group.alternatives[v]) solver.require(c);
}

}  // namespace

SymbolicOutcome proposeSymbolic(const fix::RepairContext& context,
                                const std::vector<sbfl::LineScore>& ranked,
                                const SymbolicOptions& options) {
  obs::Span span("symbolic.propose");
  SymbolicOutcome outcome;
  const std::vector<SymbolicVar> vars =
      collectVariables(context, ranked, options);
  outcome.variables = static_cast<int>(vars.size());
  span.attr("variables", static_cast<std::int64_t>(vars.size()));
  if (vars.empty()) {
    outcome.fell_back = true;
    return outcome;
  }
  outcome.anchor_device = vars.front().device;
  outcome.anchor_line = vars.front().line;

  std::vector<SymbolicConstraint> base;
  std::vector<ForkGroup> forks;
  accumulateConstraints(context, vars, base, forks);
  span.attr("base_constraints", static_cast<std::int64_t>(base.size()));
  span.attr("fork_groups", static_cast<std::int64_t>(forks.size()));
  if (forks.empty()) {
    // No failing test demanded a flip through any variable: nothing for
    // the symbolic layer to solve — the concrete loop takes over.
    outcome.fell_back = true;
    return outcome;
  }

  // Deterministic odometer over fork options, capped by the budget.
  long long total = 1;
  for (const ForkGroup& group : forks) {
    total *= optionCount(group);
    if (total > options.fork_budget) {
      outcome.fell_back = true;  // overflow: expand only the first `budget`
      break;
    }
  }

  std::vector<int> odometer(forks.size(), 0);
  std::set<std::string> seen;
  bool exhausted = false;
  while (!exhausted && outcome.forks < options.fork_budget) {
    ++outcome.forks;
    smt::Solver solver;
    for (const SymbolicVar& var : vars) {
      smt::VarMeta meta;
      meta.device = var.device;
      meta.line = var.line;
      if (var.kind == SymbolicVar::Kind::kPrefixList) {
        meta.original = renderCover(var.original_prefixes);
        solver.annotate(var.name, smt::VarKind::kPrefixSet, std::move(meta));
        solver.preferPrefixes(var.name, var.original_prefixes);
      } else {
        meta.original = std::to_string(var.original_value);
        solver.annotate(var.name, smt::VarKind::kInt, std::move(meta));
        solver.preferInt(var.name, var.original_value);
      }
    }
    for (const SymbolicConstraint& c : base) solver.require(c.constraint);
    for (std::size_t g = 0; g < forks.size(); ++g) {
      addGroupConstraints(forks[g], odometer[g], solver);
    }
    const smt::SolveResult result = solver.solve();
    if (result.sat) {
      std::vector<fix::SymbolicListEdit> list_edits;
      std::vector<fix::SymbolicActionEdit> action_edits;
      for (const auto& [name, cover] : result.model.prefix_sets) {
        const SymbolicVar* var = varByName(vars, name);
        if (var == nullptr) continue;
        if (renderCover(cover) == renderCover(var->original_prefixes)) {
          continue;  // unchanged — keep the original lines untouched
        }
        list_edits.push_back(
            fix::SymbolicListEdit{var->device, var->list, cover});
      }
      for (const auto& [name, value] : result.model.ints) {
        const SymbolicVar* var = varByName(vars, name);
        if (var == nullptr) continue;
        if (value == var->original_value) continue;
        fix::SymbolicActionEdit edit;
        edit.device = var->device;
        edit.policy = var->policy;
        edit.node_index = var->node_index;
        edit.kind = var->kind == SymbolicVar::Kind::kLocalPref
                        ? cfg::PolicyActionKind::kSetLocalPref
                        : cfg::PolicyActionKind::kSetMed;
        edit.value = static_cast<std::uint32_t>(value);
        action_edits.push_back(edit);
      }
      if (!list_edits.empty() || !action_edits.empty()) {
        fix::ProposedChange change = fix::buildSymbolicModelChange(
            std::move(list_edits), std::move(action_edits));
        if (seen.insert(change.description).second) {
          outcome.proposals.push_back(std::move(change));
        }
      }
    }
    // Advance the odometer (combined branch first, then singles in order).
    std::size_t g = 0;
    for (; g < forks.size(); ++g) {
      if (++odometer[g] < optionCount(forks[g])) break;
      odometer[g] = 0;
    }
    exhausted = g == forks.size();
  }
  if (!exhausted) outcome.fell_back = true;
  span.attr("forks", static_cast<std::int64_t>(outcome.forks));
  span.attr("proposals", static_cast<std::int64_t>(outcome.proposals.size()));
  return outcome;
}

}  // namespace acr::symb
