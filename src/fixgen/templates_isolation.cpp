// Isolation-repair template: "deny-leaked-prefix".
//
// When an isolation intent fails (a quarantined/private range became
// reachable), the minimal, always-available repair is to guard the leaked
// prefix at its origin: insert a deny for it into every export policy of the
// owning router, creating a guard policy on sessions that had none. This is
// the paper's §6 "universal change operator" direction — it covers leaks
// whatever upstream filter was lost (missing peer group, deleted policy,
// widened prefix-list).
#include <algorithm>

#include "fixgen/change.hpp"

namespace acr::fix {

namespace {

constexpr const char* kGuardList = "ACR_LEAK";
constexpr const char* kGuardPolicy = "ACR_GUARD";

class DenyLeakedPrefix final : public ChangeTemplate {
 public:
  [[nodiscard]] std::string name() const override {
    return "deny-leaked-prefix";
  }

  [[nodiscard]] bool appliesTo(cfg::LineKind kind) const override {
    switch (kind) {
      case cfg::LineKind::kInterfaceIp:
      case cfg::LineKind::kStaticRoute:
      case cfg::LineKind::kRedistribute:
      case cfg::LineKind::kPeerAs:
      case cfg::LineKind::kPeerImport:
      case cfg::LineKind::kPeerExport:
      case cfg::LineKind::kGroupImport:
      case cfg::LineKind::kGroupExport:
      case cfg::LineKind::kPolicyNode:
      case cfg::LineKind::kPolicyMatch:
      case cfg::LineKind::kPrefixListEntry:
        return true;
      default:
        return false;
    }
  }

  [[nodiscard]] std::vector<ProposedChange> propose(
      const RepairContext& context, const cfg::LineId& /*suspicious*/,
      const cfg::LineInfo& /*info*/) const override {
    std::vector<ProposedChange> changes;
    std::set<std::string> proposed;
    for (const verify::TestResult& result : context.results) {
      if (result.passed) continue;
      if (context.intentOf(result).kind != verify::IntentKind::kIsolation) {
        continue;
      }
      const auto owner =
          context.network.topology.subnetOwner(result.test.packet.dst);
      if (!owner) continue;
      const net::Prefix leaked =
          subnetPrefixOf(context.network, result.test.packet.dst);
      if (!proposed.insert(*owner + '/' + leaked.str()).second) continue;

      const std::string owner_name = *owner;
      ProposedChange change;
      change.template_name = name();
      change.description = "deny leaked prefix " + leaked.str() +
                           " in every export of its origin " + owner_name;
      change.apply = [owner_name, leaked](topo::Network& network) {
        cfg::DeviceConfig* target = network.config(owner_name);
        if (target == nullptr || !target->bgp) return false;

        // Guard prefix-list covering the leaked range.
        cfg::PrefixList* list = target->findPrefixList(kGuardList);
        if (list == nullptr) {
          target->prefix_lists.push_back(cfg::PrefixList{kGuardList, {}});
          list = &target->prefix_lists.back();
        }
        bool changed = false;
        if (!list->permits(leaked)) {
          cfg::PrefixListEntry entry;
          entry.index = list->nextIndex();
          entry.action = cfg::Action::kPermit;
          entry.prefix = leaked;
          entry.greater_equal = leaked.length();
          entry.less_equal = 32;
          list->entries.push_back(entry);
          changed = true;
        }

        const auto hasGuardNode = [&](const cfg::RoutePolicy& policy) {
          return std::any_of(
              policy.nodes.begin(), policy.nodes.end(),
              [&](const cfg::PolicyNode& node) {
                return node.action == cfg::Action::kDeny &&
                       std::any_of(node.matches.begin(), node.matches.end(),
                                   [&](const cfg::PolicyMatch& match) {
                                     return match.prefix_list == kGuardList;
                                   });
              });
        };
        const auto guardNode = [&](int index) {
          cfg::PolicyNode node;
          node.index = index;
          node.action = cfg::Action::kDeny;
          node.matches.push_back(
              cfg::PolicyMatch{cfg::MatchKind::kIpPrefixList, kGuardList, 0});
          return node;
        };

        for (auto& peer : target->bgp->peers) {
          if (peer.export_policy.empty()) {
            // Bind (and lazily create) the standalone guard policy.
            if (target->findPolicy(kGuardPolicy) == nullptr) {
              cfg::RoutePolicy policy;
              policy.name = kGuardPolicy;
              policy.nodes.push_back(guardNode(5));
              cfg::PolicyNode pass;
              pass.index = 100;
              pass.action = cfg::Action::kPermit;
              policy.nodes.push_back(pass);
              target->policies.push_back(std::move(policy));
            }
            peer.export_policy = kGuardPolicy;
            changed = true;
          } else {
            cfg::RoutePolicy* policy = target->findPolicy(peer.export_policy);
            if (policy == nullptr || hasGuardNode(*policy)) continue;
            int min_index = 5;
            for (const auto& node : policy->nodes) {
              min_index = std::min(min_index, node.index);
            }
            policy->nodes.insert(policy->nodes.begin(),
                                 guardNode(std::max(1, min_index - 1)));
            changed = true;
          }
        }
        if (changed) target->renumber();
        return changed;
      };
      changes.push_back(std::move(change));
    }
    return changes;
  }
};

}  // namespace

std::shared_ptr<const ChangeTemplate> makeDenyLeakedPrefix() {
  return std::make_shared<DenyLeakedPrefix>();
}

}  // namespace acr::fix
