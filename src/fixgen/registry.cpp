#include "fixgen/change.hpp"

#include "obs/trace.hpp"

namespace acr::fix {

const std::vector<std::shared_ptr<const ChangeTemplate>>& defaultTemplates() {
  static const std::vector<std::shared_ptr<const ChangeTemplate>> kTemplates = {
      makeNarrowOverrideList(), makeAddPrefixListEntry(), makeFixOverrideAsn(),
      makeAddStaticRoute(),     makeAddRedistribute(),    makeAddPbrPermit(),
      makeRemovePbrRule(),      makeRestorePeerGroup(),   makeRemoveGroupMember(),
      makeRemovePolicyBinding(), makeRestorePolicy(),     makeFixPeerAs(),
      makeDenyLeakedPrefix(),
  };
  return kTemplates;
}

std::vector<std::shared_ptr<const ChangeTemplate>> templatesFor(
    cfg::LineKind kind) {
  obs::Span span("fixgen.templates_for");
  std::vector<std::shared_ptr<const ChangeTemplate>> out;
  for (const auto& tmpl : defaultTemplates()) {
    if (tmpl->appliesTo(kind)) out.push_back(tmpl);
  }
  return out;
}

}  // namespace acr::fix
