// Templates for the PBR category of Table 1:
//   * AddPbrPermit — "Missing permit rules in PBR": a failing packet is
//     dropped by a deny rule; insert a permit for the destination space
//     ahead of it.
//   * RemovePbrRule — "Extra redirect rule in PBR": delete a redirect (or
//     deny) rule that misdirects failing traffic, or the suspicious rule
//     itself.
#include <algorithm>

#include "fixgen/change.hpp"

namespace acr::fix {

namespace {

bool isolationForbids(const RepairContext& context, const net::Prefix& subject) {
  for (const verify::TestResult& result : context.results) {
    if (result.passed &&
        context.intentOf(result).kind == verify::IntentKind::kIsolation &&
        subnetPrefixOf(context.network, result.test.packet.dst)
            .overlaps(subject)) {
      return true;
    }
  }
  return false;
}

class AddPbrPermit final : public ChangeTemplate {
 public:
  [[nodiscard]] std::string name() const override { return "add-pbr-permit"; }

  [[nodiscard]] bool appliesTo(cfg::LineKind kind) const override {
    return kind == cfg::LineKind::kPbrRule ||
           kind == cfg::LineKind::kPbrHeader ||
           kind == cfg::LineKind::kInterfaceIp ||
           kind == cfg::LineKind::kStaticRoute;
  }

  [[nodiscard]] std::vector<ProposedChange> propose(
      const RepairContext& context, const cfg::LineId& /*suspicious*/,
      const cfg::LineInfo& /*info*/) const override {
    std::vector<ProposedChange> changes;
    std::set<std::string> proposed;
    for (const verify::TestResult& result : context.results) {
      if (result.passed) continue;
      if (result.trace.outcome != dp::TraceOutcome::kDroppedByPbr) continue;
      if (result.trace.hops.empty()) continue;
      const std::string dropping = result.trace.hops.back().router;
      const cfg::DeviceConfig* device = context.network.config(dropping);
      if (device == nullptr) continue;
      const net::Prefix subject =
          subnetPrefixOf(context.network, result.test.packet.dst);
      if (isolationForbids(context, subject)) continue;
      for (const auto& policy : device->pbr_policies) {
        const cfg::PbrRule* hit =
            policy.match(result.test.packet.src, result.test.packet.dst);
        if (hit == nullptr || hit->action != cfg::PbrAction::kDeny) continue;
        const std::string key =
            dropping + '/' + policy.name + '/' + subject.str();
        if (!proposed.insert(key).second) continue;
        const std::string device_name = dropping;
        const std::string policy_name = policy.name;
        const int deny_index = hit->index;
        ProposedChange change;
        change.template_name = name();
        change.description = "insert PBR permit for " + subject.str() +
                             " before rule " + std::to_string(deny_index) +
                             " of policy " + policy_name + " on " + device_name;
        change.apply = [device_name, policy_name, deny_index,
                        subject](topo::Network& network) {
          cfg::DeviceConfig* target = network.config(device_name);
          if (target == nullptr) return false;
          cfg::PbrPolicy* policy = target->findPbr(policy_name);
          if (policy == nullptr) return false;
          const auto it = std::find_if(
              policy->rules.begin(), policy->rules.end(),
              [&](const cfg::PbrRule& rule) { return rule.index == deny_index; });
          if (it == policy->rules.end()) return false;
          cfg::PbrRule permit;
          permit.index = deny_index > 1 ? deny_index - 1 : 1;
          permit.action = cfg::PbrAction::kPermit;
          permit.destination = subject;
          policy->rules.insert(it, permit);
          target->renumber();
          return true;
        };
        changes.push_back(std::move(change));
      }
    }
    return changes;
  }
};

class RemovePbrRule final : public ChangeTemplate {
 public:
  [[nodiscard]] std::string name() const override { return "remove-pbr-rule"; }

  [[nodiscard]] bool appliesTo(cfg::LineKind kind) const override {
    return kind == cfg::LineKind::kPbrRule ||
           kind == cfg::LineKind::kPbrHeader ||
           kind == cfg::LineKind::kInterfaceIp ||
           kind == cfg::LineKind::kStaticRoute;
  }

  [[nodiscard]] std::vector<ProposedChange> propose(
      const RepairContext& context, const cfg::LineId& suspicious,
      const cfg::LineInfo& info) const override {
    std::vector<ProposedChange> changes;
    std::set<std::string> proposed;
    const auto proposeRemoval = [&](const std::string& device_name,
                                    const std::string& policy_name,
                                    const cfg::PbrRule& rule) {
      const std::string key =
          device_name + '/' + policy_name + '/' + std::to_string(rule.index);
      if (!proposed.insert(key).second) return;
      const int rule_index = rule.index;
      ProposedChange change;
      change.template_name = name();
      change.description = "remove PBR rule " + std::to_string(rule_index) +
                           " (" + cfg::pbrActionName(rule.action) +
                           ") from policy " + policy_name + " on " +
                           device_name;
      change.apply = [device_name, policy_name,
                      rule_index](topo::Network& network) {
        cfg::DeviceConfig* target = network.config(device_name);
        if (target == nullptr) return false;
        cfg::PbrPolicy* policy = target->findPbr(policy_name);
        if (policy == nullptr) return false;
        const auto it = std::find_if(
            policy->rules.begin(), policy->rules.end(),
            [&](const cfg::PbrRule& r) { return r.index == rule_index; });
        if (it == policy->rules.end()) return false;
        policy->rules.erase(it);
        target->renumber();
        return true;
      };
      changes.push_back(std::move(change));
    };

    // The suspicious line itself, when it is a non-permit PBR rule.
    if (info.kind == cfg::LineKind::kPbrRule) {
      const cfg::DeviceConfig* device = context.network.config(suspicious.device);
      if (device != nullptr) {
        const auto& policy =
            device->pbr_policies[static_cast<std::size_t>(info.a)];
        const auto& rule = policy.rules[static_cast<std::size_t>(info.b)];
        if (rule.action != cfg::PbrAction::kPermit) {
          proposeRemoval(suspicious.device, policy.name, rule);
        }
      }
    }

    // Fix-place search: redirect rules matching failing packets.
    for (const verify::TestResult& result : context.results) {
      if (result.passed) continue;
      for (const auto& hop : result.trace.hops) {
        const cfg::DeviceConfig* device = context.network.config(hop.router);
        if (device == nullptr) continue;
        for (const auto& policy : device->pbr_policies) {
          const cfg::PbrRule* hit =
              policy.match(result.test.packet.src, result.test.packet.dst);
          if (hit != nullptr && hit->action == cfg::PbrAction::kRedirect) {
            proposeRemoval(hop.router, policy.name, *hit);
          }
        }
      }
    }
    return changes;
  }
};

}  // namespace

std::shared_ptr<const ChangeTemplate> makeAddPbrPermit() {
  return std::make_shared<AddPbrPermit>();
}
std::shared_ptr<const ChangeTemplate> makeRemovePbrRule() {
  return std::make_shared<RemovePbrRule>();
}

}  // namespace acr::fix
