// Change operators: the building blocks of fix generation (§4.2).
//
// A ChangeTemplate inspects a suspicious configuration line (plus the full
// repair context: network, simulation, test outcomes, coverage) and proposes
// zero or more concrete candidate changes. Templates encode the repair
// patterns distilled from the paper's incident study (Table 1); atomic
// operators (insert / delete / modify / copy-with-symbolization) live inside
// their apply closures. Values that must be "solved rather than copied" are
// produced by acr::smt from P ∧ ¬F constraints collected out of test
// coverage (§5 step 2).
#pragma once

#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "config/ast.hpp"
#include "localize/rows.hpp"
#include "localize/sbfl.hpp"
#include "routing/simulator.hpp"
#include "topo/network.hpp"
#include "verify/verifier.hpp"

namespace acr::fix {

/// Everything a template may consult when proposing changes.
struct RepairContext {
  const topo::Network& network;
  const route::SimResult& sim;
  const std::vector<verify::Intent>& intents;
  /// Copy-on-write rows (localize/rows.hpp): the incremental localizer
  /// shares unchanged rows with its anchor instead of deep-copying them per
  /// candidate. Rows read as their underlying type.
  const std::vector<sbfl::ResultRow>& results;
  /// Per-test coverage, parallel to `results`.
  const std::vector<sbfl::CoverageRow>& coverage;

  [[nodiscard]] const verify::Intent& intentOf(
      const verify::TestResult& result) const {
    return intents[static_cast<std::size_t>(result.test.intent_index)];
  }
};

/// One concrete candidate change. `apply` mutates a copy of the network
/// (returning false when the edit no longer applies, e.g. the targeted
/// statement disappeared in an earlier evolution step) and must leave the
/// config renumbered.
struct ProposedChange {
  std::string template_name;
  std::string description;
  std::function<bool(topo::Network&)> apply;
};

class ChangeTemplate {
 public:
  virtual ~ChangeTemplate() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Quick filter: does this template speak to lines of this kind at all?
  [[nodiscard]] virtual bool appliesTo(cfg::LineKind kind) const = 0;

  /// Proposes concrete changes for `suspicious` (already resolved to `info`).
  [[nodiscard]] virtual std::vector<ProposedChange> propose(
      const RepairContext& context, const cfg::LineId& suspicious,
      const cfg::LineInfo& info) const = 0;
};

/// The built-in template library covering the nine Table-1 error types.
[[nodiscard]] const std::vector<std::shared_ptr<const ChangeTemplate>>&
defaultTemplates();

/// Templates applicable to a given line kind.
[[nodiscard]] std::vector<std::shared_ptr<const ChangeTemplate>> templatesFor(
    cfg::LineKind kind);

// ---------------------------------------------------------------------------
// Shared helpers used by template implementations (and tested directly).
// ---------------------------------------------------------------------------

/// The topology subnet containing `address`, or a /32 fallback.
[[nodiscard]] net::Prefix subnetPrefixOf(const topo::Network& network,
                                         net::Ipv4Address address);

/// Collects the P/F prefix constraints for a symbolized prefix-list (§5):
/// destinations of *passing* tests whose coverage touches the list become
/// Member constraints (the rewrite scope must keep covering them) and
/// destinations of *failing* tests become NotMember constraints.
struct PrefixListConstraints {
  std::vector<net::Prefix> required;   // P
  std::vector<net::Prefix> forbidden;  // F
};

[[nodiscard]] PrefixListConstraints collectListConstraints(
    const RepairContext& context, const std::string& device,
    const cfg::PrefixList& list);

/// Solves P ∧ ¬F into a minimal prefix cover; empty optional when unsat.
[[nodiscard]] std::optional<std::vector<net::Prefix>> solveListModel(
    const PrefixListConstraints& constraints);

/// Prefix-lists reachable from a suspicious line: the list itself, or the
/// lists referenced by the policy node / policy / binding the line belongs
/// to. Sorted and deduplicated.
[[nodiscard]] std::vector<std::string> reachableLists(
    const cfg::DeviceConfig& device, const cfg::LineInfo& info);

// ---------------------------------------------------------------------------
// Symbolic model changes (src/symbolic): one satisfying SMT model rendered
// as a single multi-line, multi-device ConfigChange.
// ---------------------------------------------------------------------------

/// One prefix-list rewritten to permit exactly `cover` (entries rebuilt as
/// `permit <piece> ge <len> le 32`, indices 10,20,...).
struct SymbolicListEdit {
  std::string device;
  std::string list;
  std::vector<net::Prefix> cover;
};

/// One policy action's value replaced (local-pref / MED repair).
struct SymbolicActionEdit {
  std::string device;
  std::string policy;
  int node_index = 0;
  cfg::PolicyActionKind kind = cfg::PolicyActionKind::kSetLocalPref;
  std::uint32_t value = 0;
};

/// Builds the "symbolic-model" proposal applying every edit atomically. The
/// apply closure fails (returns false) when any targeted list/policy/action
/// no longer exists — the same disappeared-statement contract as template
/// proposals. Edits are applied in the given order; the description renders
/// them deterministically.
[[nodiscard]] ProposedChange buildSymbolicModelChange(
    std::vector<SymbolicListEdit> list_edits,
    std::vector<SymbolicActionEdit> action_edits);

// Per-file template factories (grouped by the Table-1 category they repair).
[[nodiscard]] std::shared_ptr<const ChangeTemplate> makeNarrowOverrideList();
[[nodiscard]] std::shared_ptr<const ChangeTemplate> makeAddPrefixListEntry();
[[nodiscard]] std::shared_ptr<const ChangeTemplate> makeFixOverrideAsn();
[[nodiscard]] std::shared_ptr<const ChangeTemplate> makeAddStaticRoute();
[[nodiscard]] std::shared_ptr<const ChangeTemplate> makeAddRedistribute();
[[nodiscard]] std::shared_ptr<const ChangeTemplate> makeAddPbrPermit();
[[nodiscard]] std::shared_ptr<const ChangeTemplate> makeRemovePbrRule();
[[nodiscard]] std::shared_ptr<const ChangeTemplate> makeRestorePeerGroup();
[[nodiscard]] std::shared_ptr<const ChangeTemplate> makeRemoveGroupMember();
[[nodiscard]] std::shared_ptr<const ChangeTemplate> makeRemovePolicyBinding();
[[nodiscard]] std::shared_ptr<const ChangeTemplate> makeDenyLeakedPrefix();
[[nodiscard]] std::shared_ptr<const ChangeTemplate> makeRestorePolicy();
[[nodiscard]] std::shared_ptr<const ChangeTemplate> makeFixPeerAs();

}  // namespace acr::fix
