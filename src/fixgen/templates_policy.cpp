// Templates for the Policy category of Table 1:
//   * NarrowOverrideList — the paper's worked repair (§5): a route-policy
//     with `apply as-path overwrite` matches a catch-all prefix-list; the
//     list is symbolized and re-solved to the minimal scope that keeps
//     passing tests passing (P) and stops covering failing ones (¬F).
//   * AddPrefixListEntry — "Missing items in ip prefix-list": find the
//     policies that deny a failing destination's route and add the missing
//     permit to the prefix-list those policies match on. The fix place is
//     discovered from the template, not the suspicious line (§5).
//   * FixOverrideAsn — "Override to wrong AS number": an explicit
//     `apply as-path overwrite <asn>` value is reset to the local AS.
#include <algorithm>

#include "fixgen/change.hpp"
#include "routing/policy_eval.hpp"

namespace acr::fix {

/// Prefix-lists reachable from a suspicious line: the list itself, or the
/// lists referenced by the policy node / policy the line belongs to.
/// Shared with the selective-symbolic layer, which symbolizes exactly these
/// lists on suspect devices.
std::vector<std::string> reachableLists(const cfg::DeviceConfig& device,
                                        const cfg::LineInfo& info) {
  std::vector<std::string> names;
  const auto addListsOfPolicy = [&](const cfg::RoutePolicy& policy) {
    for (const auto& node : policy.nodes) {
      for (const auto& match : node.matches) {
        names.push_back(match.prefix_list);
      }
    }
  };
  switch (info.kind) {
    case cfg::LineKind::kPrefixListEntry:
      names.push_back(device.prefix_lists[static_cast<std::size_t>(info.a)].name);
      break;
    case cfg::LineKind::kPolicyMatch:
      names.push_back(device.policies[static_cast<std::size_t>(info.a)]
                          .nodes[static_cast<std::size_t>(info.b)]
                          .matches[static_cast<std::size_t>(info.c)]
                          .prefix_list);
      break;
    case cfg::LineKind::kPolicyNode:
    case cfg::LineKind::kPolicyAction:
      addListsOfPolicy(device.policies[static_cast<std::size_t>(info.a)]);
      break;
    case cfg::LineKind::kPeerImport:
    case cfg::LineKind::kPeerExport: {
      const auto& peer = device.bgp->peers[static_cast<std::size_t>(info.a)];
      const std::string& policy_name = info.kind == cfg::LineKind::kPeerImport
                                           ? peer.import_policy
                                           : peer.export_policy;
      const cfg::RoutePolicy* policy = device.findPolicy(policy_name);
      if (policy != nullptr) addListsOfPolicy(*policy);
      break;
    }
    case cfg::LineKind::kGroupImport:
    case cfg::LineKind::kGroupExport: {
      const auto& group = device.bgp->groups[static_cast<std::size_t>(info.a)];
      const std::string& policy_name = info.kind == cfg::LineKind::kGroupImport
                                           ? group.import_policy
                                           : group.export_policy;
      const cfg::RoutePolicy* policy = device.findPolicy(policy_name);
      if (policy != nullptr) addListsOfPolicy(*policy);
      break;
    }
    default:
      break;
  }
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

namespace {

std::string coverStr(const std::vector<net::Prefix>& cover) {
  std::string out = "{";
  for (std::size_t i = 0; i < cover.size(); ++i) {
    if (i != 0) out += ", ";
    out += cover[i].str();
  }
  return out + "}";
}

// ---------------------------------------------------------------------------

class NarrowOverrideList final : public ChangeTemplate {
 public:
  [[nodiscard]] std::string name() const override {
    return "narrow-override-list";
  }

  [[nodiscard]] bool appliesTo(cfg::LineKind kind) const override {
    switch (kind) {
      case cfg::LineKind::kPrefixListEntry:
      case cfg::LineKind::kPolicyMatch:
      case cfg::LineKind::kPolicyNode:
      case cfg::LineKind::kPolicyAction:
      case cfg::LineKind::kPeerImport:
      case cfg::LineKind::kGroupImport:
        return true;
      default:
        return false;
    }
  }

  [[nodiscard]] std::vector<ProposedChange> propose(
      const RepairContext& context, const cfg::LineId& suspicious,
      const cfg::LineInfo& info) const override {
    std::vector<ProposedChange> changes;
    const cfg::DeviceConfig* device = context.network.config(suspicious.device);
    if (device == nullptr) return changes;
    for (const std::string& list_name : reachableLists(*device, info)) {
      const cfg::PrefixList* list = device->findPrefixList(list_name);
      if (list == nullptr) continue;
      const bool has_catch_all =
          std::any_of(list->entries.begin(), list->entries.end(),
                      [](const cfg::PrefixListEntry& entry) {
                        return entry.prefix.length() == 0 &&
                               entry.action == cfg::Action::kPermit;
                      });
      if (!has_catch_all) continue;
      const PrefixListConstraints constraints =
          collectListConstraints(context, suspicious.device, *list);
      if (constraints.forbidden.empty()) continue;  // nothing to narrow away
      const auto model = solveListModel(constraints);
      if (!model) continue;
      const std::string device_name = suspicious.device;
      ProposedChange change;
      change.template_name = name();
      change.description = "narrow prefix-list " + list_name + " on " +
                           device_name + " to " + coverStr(*model);
      change.apply = [device_name, list_name, model](topo::Network& network) {
        cfg::DeviceConfig* target = network.config(device_name);
        if (target == nullptr) return false;
        cfg::PrefixList* target_list = target->findPrefixList(list_name);
        if (target_list == nullptr) return false;
        const bool still_catch_all = std::any_of(
            target_list->entries.begin(), target_list->entries.end(),
            [](const cfg::PrefixListEntry& entry) {
              return entry.prefix.length() == 0 &&
                     entry.action == cfg::Action::kPermit;
            });
        if (!still_catch_all) return false;
        target_list->entries.clear();
        int index = 10;
        for (const auto& prefix : *model) {
          cfg::PrefixListEntry entry;
          entry.index = index;
          index += 10;
          entry.action = cfg::Action::kPermit;
          entry.prefix = prefix;
          entry.greater_equal = prefix.length();
          entry.less_equal = 32;
          target_list->entries.push_back(entry);
        }
        target->renumber();
        return true;
      };
      changes.push_back(std::move(change));
    }
    return changes;
  }
};

// ---------------------------------------------------------------------------

class AddPrefixListEntry final : public ChangeTemplate {
 public:
  [[nodiscard]] std::string name() const override {
    return "add-prefix-list-entry";
  }

  [[nodiscard]] bool appliesTo(cfg::LineKind kind) const override {
    // The fix place is discovered network-wide; the suspicious line only
    // identifies the failing traffic, so accept the origination-side kinds
    // SBFL flags for "route never arrived" symptoms as well.
    switch (kind) {
      case cfg::LineKind::kPrefixListEntry:
      case cfg::LineKind::kPolicyMatch:
      case cfg::LineKind::kPolicyNode:
      case cfg::LineKind::kPeerImport:
      case cfg::LineKind::kPeerExport:
      case cfg::LineKind::kGroupImport:
      case cfg::LineKind::kGroupExport:
      case cfg::LineKind::kInterfaceIp:
      case cfg::LineKind::kStaticRoute:
      case cfg::LineKind::kRedistribute:
        return true;
      default:
        return false;
    }
  }

  [[nodiscard]] std::vector<ProposedChange> propose(
      const RepairContext& context, const cfg::LineId& /*suspicious*/,
      const cfg::LineInfo& /*info*/) const override {
    std::vector<ProposedChange> changes;
    // Forbidden prefixes: destinations that passing isolation tests rely on
    // staying unreachable.
    std::vector<net::Prefix> forbidden;
    for (const verify::TestResult& result : context.results) {
      if (result.passed &&
          context.intentOf(result).kind == verify::IntentKind::kIsolation) {
        forbidden.push_back(
            subnetPrefixOf(context.network, result.test.packet.dst));
      }
    }
    std::set<std::pair<std::string, std::string>> proposed;  // (device, list)
    for (const verify::TestResult& result : context.results) {
      if (result.passed) continue;
      const verify::IntentKind kind = context.intentOf(result).kind;
      if (kind != verify::IntentKind::kReachability &&
          kind != verify::IntentKind::kBlackholeFree) {
        continue;
      }
      const net::Prefix subject =
          subnetPrefixOf(context.network, result.test.packet.dst);
      if (std::any_of(forbidden.begin(), forbidden.end(),
                      [&](const net::Prefix& f) { return f.overlaps(subject); }))
        continue;
      // Find every policy in the network that would deny this route, and the
      // prefix-lists its permit nodes match on.
      for (const auto& [device_name, device] : context.network.configs) {
        for (const auto& policy : device.policies) {
          route::Route probe;
          probe.prefix = subject;
          const route::PolicyVerdict verdict =
              route::applyRoutePolicy(device, policy.name, probe, 0);
          if (verdict.permitted) continue;
          for (const auto& node : policy.nodes) {
            if (node.action != cfg::Action::kPermit) continue;
            for (const auto& match : node.matches) {
              if (device.findPrefixList(match.prefix_list) == nullptr) continue;
              if (!proposed.emplace(device_name, match.prefix_list).second) {
                continue;
              }
              const std::string dev = device_name;
              const std::string list_name = match.prefix_list;
              ProposedChange change;
              change.template_name = name();
              change.description = "add permit " + subject.str() +
                                   " to prefix-list " + list_name + " on " +
                                   dev;
              change.apply = [dev, list_name, subject](topo::Network& network) {
                cfg::DeviceConfig* target = network.config(dev);
                if (target == nullptr) return false;
                cfg::PrefixList* list = target->findPrefixList(list_name);
                if (list == nullptr) return false;
                if (list->permits(subject)) return false;  // already permitted
                cfg::PrefixListEntry entry;
                entry.index = list->nextIndex();
                entry.action = cfg::Action::kPermit;
                entry.prefix = subject;
                entry.greater_equal = subject.length();
                entry.less_equal = 32;
                list->entries.push_back(entry);
                target->renumber();
                return true;
              };
              changes.push_back(std::move(change));
            }
          }
        }
      }
    }
    return changes;
  }
};

// ---------------------------------------------------------------------------

class FixOverrideAsn final : public ChangeTemplate {
 public:
  [[nodiscard]] std::string name() const override { return "fix-override-asn"; }

  [[nodiscard]] bool appliesTo(cfg::LineKind kind) const override {
    return kind == cfg::LineKind::kPolicyAction;
  }

  [[nodiscard]] std::vector<ProposedChange> propose(
      const RepairContext& context, const cfg::LineId& suspicious,
      const cfg::LineInfo& info) const override {
    std::vector<ProposedChange> changes;
    const cfg::DeviceConfig* device = context.network.config(suspicious.device);
    if (device == nullptr) return changes;
    const auto& policy = device->policies[static_cast<std::size_t>(info.a)];
    const auto& node = policy.nodes[static_cast<std::size_t>(info.b)];
    const auto& action = node.actions[static_cast<std::size_t>(info.c)];
    if (action.kind != cfg::PolicyActionKind::kAsPathOverwrite ||
        action.value == 0) {
      return changes;
    }
    const std::string device_name = suspicious.device;
    const std::string policy_name = policy.name;
    const int node_index = node.index;
    const std::uint32_t bad_value = action.value;
    ProposedChange change;
    change.template_name = name();
    change.description = "reset as-path overwrite on " + device_name + '/' +
                         policy_name + " node " + std::to_string(node_index) +
                         " from AS " + std::to_string(bad_value) +
                         " to the local AS";
    change.apply = [device_name, policy_name, node_index,
                    bad_value](topo::Network& network) {
      cfg::DeviceConfig* target = network.config(device_name);
      if (target == nullptr) return false;
      cfg::RoutePolicy* policy = target->findPolicy(policy_name);
      if (policy == nullptr) return false;
      for (auto& node : policy->nodes) {
        if (node.index != node_index) continue;
        for (auto& action : node.actions) {
          if (action.kind == cfg::PolicyActionKind::kAsPathOverwrite &&
              action.value == bad_value) {
            action.value = 0;
            target->renumber();
            return true;
          }
        }
      }
      return false;
    };
    changes.push_back(std::move(change));
    return changes;
  }
};

}  // namespace

std::shared_ptr<const ChangeTemplate> makeNarrowOverrideList() {
  return std::make_shared<NarrowOverrideList>();
}
std::shared_ptr<const ChangeTemplate> makeAddPrefixListEntry() {
  return std::make_shared<AddPrefixListEntry>();
}
std::shared_ptr<const ChangeTemplate> makeFixOverrideAsn() {
  return std::make_shared<FixOverrideAsn>();
}

}  // namespace acr::fix
