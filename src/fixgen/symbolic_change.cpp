// Renders one satisfying SMT model as a single multi-line, multi-device
// ConfigChange (the selective-symbolic layer's "template"). Unlike the
// concrete templates, which each edit one statement on one device, a
// symbolic model may rewrite several prefix-lists and policy actions across
// devices at once; the proposal applies them atomically so the DeltaTree
// batch validator scores the compound fix as one candidate.
#include <algorithm>

#include "fixgen/change.hpp"

namespace acr::fix {

namespace {

std::string coverStr(const std::vector<net::Prefix>& cover) {
  std::string out = "{";
  for (std::size_t i = 0; i < cover.size(); ++i) {
    if (i != 0) out += ", ";
    out += cover[i].str();
  }
  return out + "}";
}

bool applyListEdit(topo::Network& network, const SymbolicListEdit& edit) {
  cfg::DeviceConfig* device = network.config(edit.device);
  if (device == nullptr) return false;
  cfg::PrefixList* list = device->findPrefixList(edit.list);
  if (list == nullptr) return false;
  list->entries.clear();
  int index = 10;
  for (const net::Prefix& prefix : edit.cover) {
    cfg::PrefixListEntry entry;
    entry.index = index;
    index += 10;
    entry.action = cfg::Action::kPermit;
    entry.prefix = prefix;
    entry.greater_equal = prefix.length();
    entry.less_equal = 32;
    list->entries.push_back(entry);
  }
  return true;
}

bool applyActionEdit(topo::Network& network, const SymbolicActionEdit& edit) {
  cfg::DeviceConfig* device = network.config(edit.device);
  if (device == nullptr) return false;
  cfg::RoutePolicy* policy = device->findPolicy(edit.policy);
  if (policy == nullptr) return false;
  const auto node =
      std::find_if(policy->nodes.begin(), policy->nodes.end(),
                   [&](const cfg::PolicyNode& n) {
                     return n.index == edit.node_index;
                   });
  if (node == policy->nodes.end()) return false;
  for (cfg::PolicyAction& action : node->actions) {
    if (action.kind == edit.kind) {
      action.value = edit.value;
      return true;
    }
  }
  return false;
}

}  // namespace

ProposedChange buildSymbolicModelChange(
    std::vector<SymbolicListEdit> list_edits,
    std::vector<SymbolicActionEdit> action_edits) {
  ProposedChange change;
  change.template_name = "symbolic-model";
  std::string description = "symbolic model:";
  for (const SymbolicListEdit& edit : list_edits) {
    description += " " + edit.device + "/" + edit.list + "=" +
                   coverStr(edit.cover) + ";";
  }
  for (const SymbolicActionEdit& edit : action_edits) {
    description += " " + edit.device + "/" + edit.policy + "[" +
                   std::to_string(edit.node_index) + "]." +
                   cfg::policyActionName(edit.kind) + "=" +
                   std::to_string(edit.value) + ";";
  }
  change.description = std::move(description);
  change.apply = [list_edits = std::move(list_edits),
                  action_edits = std::move(action_edits)](
                     topo::Network& network) {
    std::set<std::string> touched;
    for (const SymbolicListEdit& edit : list_edits) {
      if (!applyListEdit(network, edit)) return false;
      touched.insert(edit.device);
    }
    for (const SymbolicActionEdit& edit : action_edits) {
      if (!applyActionEdit(network, edit)) return false;
      touched.insert(edit.device);
    }
    for (const std::string& device : touched) {
      network.config(device)->renumber();
    }
    return !touched.empty();
  };
  return change;
}

}  // namespace acr::fix
