// Repair history: success statistics per change template.
//
// The paper's observation (1) in §3.2: errors repeat across a fleet, so
// repairs from history should guide the search for current incidents (the
// same intuition as ASR's R2Fix). This class accumulates, across repairs,
// how often each template was tried and how often it ended up in a
// successful repair; the engine biases its random template draws by the
// Laplace-smoothed success rate.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace acr::fix {

class RepairHistory {
 public:
  struct Entry {
    std::uint64_t attempts = 0;
    std::uint64_t successes = 0;
  };

  void recordAttempt(const std::string& template_name) {
    ++entries_[template_name].attempts;
  }

  void recordSuccess(const std::string& template_name) {
    ++entries_[template_name].successes;
  }

  /// Laplace-smoothed success rate: (successes + 1) / (attempts + 2).
  /// Unknown templates get the neutral prior 0.5, so history never
  /// *excludes* a template — it only reorders the draws.
  [[nodiscard]] double weight(const std::string& template_name) const {
    const auto it = entries_.find(template_name);
    if (it == entries_.end()) return 0.5;
    return (static_cast<double>(it->second.successes) + 1.0) /
           (static_cast<double>(it->second.attempts) + 2.0);
  }

  [[nodiscard]] const std::map<std::string, Entry>& entries() const {
    return entries_;
  }
  [[nodiscard]] bool empty() const { return entries_.empty(); }

  [[nodiscard]] std::string str() const {
    std::string out;
    for (const auto& [name, entry] : entries_) {
      out += name + ": " + std::to_string(entry.successes) + "/" +
             std::to_string(entry.attempts) + '\n';
    }
    return out;
  }

 private:
  std::map<std::string, Entry> entries_;
};

}  // namespace acr::fix
