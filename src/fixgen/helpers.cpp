#include "fixgen/change.hpp"

#include "smt/solver.hpp"

namespace acr::fix {

net::Prefix subnetPrefixOf(const topo::Network& network,
                           net::Ipv4Address address) {
  for (const auto& subnet : network.topology.subnets()) {
    if (subnet.prefix.contains(address)) return subnet.prefix;
  }
  return net::Prefix(address, 32);
}

PrefixListConstraints collectListConstraints(const RepairContext& context,
                                             const std::string& device,
                                             const cfg::PrefixList& list) {
  PrefixListConstraints constraints;
  // Lines of the list under repair.
  std::set<cfg::LineId> list_lines;
  for (const auto& entry : list.entries) {
    list_lines.insert(cfg::LineId{device, entry.line});
  }
  for (std::size_t i = 0; i < context.results.size(); ++i) {
    const verify::TestResult& result = context.results[i];
    const std::set<cfg::LineId>& covered = context.coverage[i];
    bool touches = false;
    for (const auto& line : list_lines) {
      if (covered.count(line) != 0) {
        touches = true;
        break;
      }
    }
    if (!touches) continue;
    const net::Prefix subject =
        subnetPrefixOf(context.network, result.test.packet.dst);
    if (result.passed) {
      constraints.required.push_back(subject);
    } else {
      constraints.forbidden.push_back(subject);
    }
  }
  return constraints;
}

std::optional<std::vector<net::Prefix>> solveListModel(
    const PrefixListConstraints& constraints) {
  smt::Solver solver;
  solver.declare("var", smt::VarKind::kPrefixSet);
  for (const auto& prefix : constraints.required) {
    solver.requireMember("var", prefix);
  }
  for (const auto& prefix : constraints.forbidden) {
    solver.requireNotMember("var", prefix);
  }
  const smt::SolveResult result = solver.solve();
  if (!result.sat) return std::nullopt;
  return result.model.prefix_sets.at("var");
}

}  // namespace acr::fix
