// Templates for the Route category of Table 1:
//   * AddStaticRoute — "Missing redistribution of static route" (multi-line
//     form): the destination subnet has no origination at its owner; re-add
//     the static route and the `redistribute static` statement.
//   * AddRedistribute — the single-line form: a static route (or connected
//     interface) covers the destination but is never injected into BGP.
#include <algorithm>

#include "fixgen/change.hpp"

namespace acr::fix {

namespace {

bool originationKind(cfg::LineKind kind) {
  switch (kind) {
    case cfg::LineKind::kInterfaceIp:
    case cfg::LineKind::kStaticRoute:
    case cfg::LineKind::kRedistribute:
    case cfg::LineKind::kBgpHeader:
    case cfg::LineKind::kPeerAs:
      return true;
    default:
      return false;
  }
}

/// First host address usable as a static next hop on `device`: a host on a
/// connected non-transfer subnet (generator convention: .10).
std::optional<net::Ipv4Address> nextHopCandidate(const cfg::DeviceConfig& device) {
  for (const auto& itf : device.interfaces) {
    if (itf.prefix_length < 30) {
      return net::Ipv4Address(itf.connectedPrefix().address().value() + 10);
    }
  }
  return std::nullopt;
}

struct FailingDestination {
  net::Prefix subnet;
  std::string owner;
};

std::vector<FailingDestination> failingReachabilityDests(
    const RepairContext& context) {
  std::vector<FailingDestination> dests;
  std::set<std::string> seen;
  for (const verify::TestResult& result : context.results) {
    if (result.passed) continue;
    const verify::IntentKind kind = context.intentOf(result).kind;
    if (kind != verify::IntentKind::kReachability &&
        kind != verify::IntentKind::kBlackholeFree) {
      continue;
    }
    const auto owner =
        context.network.topology.subnetOwner(result.test.packet.dst);
    if (!owner) continue;
    const net::Prefix subnet =
        subnetPrefixOf(context.network, result.test.packet.dst);
    if (!seen.insert(subnet.str()).second) continue;
    dests.push_back(FailingDestination{subnet, *owner});
  }
  return dests;
}

class AddStaticRoute final : public ChangeTemplate {
 public:
  [[nodiscard]] std::string name() const override { return "add-static-route"; }

  [[nodiscard]] bool appliesTo(cfg::LineKind kind) const override {
    return originationKind(kind);
  }

  [[nodiscard]] std::vector<ProposedChange> propose(
      const RepairContext& context, const cfg::LineId& /*suspicious*/,
      const cfg::LineInfo& /*info*/) const override {
    std::vector<ProposedChange> changes;
    for (const auto& dest : failingReachabilityDests(context)) {
      const cfg::DeviceConfig* owner = context.network.config(dest.owner);
      if (owner == nullptr || !owner->bgp) continue;
      const bool has_origination =
          std::any_of(owner->interfaces.begin(), owner->interfaces.end(),
                      [&](const cfg::InterfaceConfig& itf) {
                        return itf.connectedPrefix().contains(
                            dest.subnet.address());
                      }) ||
          std::any_of(owner->static_routes.begin(), owner->static_routes.end(),
                      [&](const cfg::StaticRouteConfig& sr) {
                        return sr.prefix.contains(dest.subnet.address());
                      });
      if (has_origination) continue;
      const auto next_hop = nextHopCandidate(*owner);
      if (!next_hop) continue;
      const std::string owner_name = dest.owner;
      const net::Prefix subnet = dest.subnet;
      const net::Ipv4Address hop = *next_hop;
      ProposedChange change;
      change.template_name = name();
      change.description = "add static route " + subnet.str() + " via " +
                           hop.str() + " (+ redistribute static) on " +
                           owner_name;
      change.apply = [owner_name, subnet, hop](topo::Network& network) {
        cfg::DeviceConfig* target = network.config(owner_name);
        if (target == nullptr || !target->bgp) return false;
        const bool exists = std::any_of(
            target->static_routes.begin(), target->static_routes.end(),
            [&](const cfg::StaticRouteConfig& sr) {
              return sr.prefix == subnet;
            });
        if (exists) return false;
        target->static_routes.push_back(
            cfg::StaticRouteConfig{subnet, hop, 0});
        if (!target->bgp->redistributes_source(cfg::RedistSource::kStatic)) {
          target->bgp->redistributes.push_back(
              cfg::RedistributeConfig{cfg::RedistSource::kStatic, 0});
        }
        target->renumber();
        return true;
      };
      changes.push_back(std::move(change));
    }
    return changes;
  }
};

class AddRedistribute final : public ChangeTemplate {
 public:
  [[nodiscard]] std::string name() const override { return "add-redistribute"; }

  [[nodiscard]] bool appliesTo(cfg::LineKind kind) const override {
    return originationKind(kind);
  }

  [[nodiscard]] std::vector<ProposedChange> propose(
      const RepairContext& context, const cfg::LineId& /*suspicious*/,
      const cfg::LineInfo& /*info*/) const override {
    std::vector<ProposedChange> changes;
    for (const auto& dest : failingReachabilityDests(context)) {
      const cfg::DeviceConfig* owner = context.network.config(dest.owner);
      if (owner == nullptr || !owner->bgp) continue;
      const bool via_static = std::any_of(
          owner->static_routes.begin(), owner->static_routes.end(),
          [&](const cfg::StaticRouteConfig& sr) {
            return sr.prefix.contains(dest.subnet.address());
          });
      const bool via_connected = std::any_of(
          owner->interfaces.begin(), owner->interfaces.end(),
          [&](const cfg::InterfaceConfig& itf) {
            return itf.connectedPrefix().contains(dest.subnet.address());
          });
      const cfg::RedistSource source = via_static
                                           ? cfg::RedistSource::kStatic
                                           : cfg::RedistSource::kConnected;
      if (!via_static && !via_connected) continue;
      if (owner->bgp->redistributes_source(source)) continue;
      const std::string owner_name = dest.owner;
      ProposedChange change;
      change.template_name = name();
      change.description = "add 'redistribute " +
                           cfg::redistSourceName(source) + "' on " + owner_name;
      change.apply = [owner_name, source](topo::Network& network) {
        cfg::DeviceConfig* target = network.config(owner_name);
        if (target == nullptr || !target->bgp) return false;
        if (target->bgp->redistributes_source(source)) return false;
        target->bgp->redistributes.push_back(
            cfg::RedistributeConfig{source, 0});
        target->renumber();
        return true;
      };
      changes.push_back(std::move(change));
    }
    return changes;
  }
};

}  // namespace

std::shared_ptr<const ChangeTemplate> makeAddStaticRoute() {
  return std::make_shared<AddStaticRoute>();
}
std::shared_ptr<const ChangeTemplate> makeAddRedistribute() {
  return std::make_shared<AddRedistribute>();
}

}  // namespace acr::fix
