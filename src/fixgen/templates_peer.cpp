// Templates for the Peer and remaining Policy categories of Table 1:
//   * RestorePeerGroup — "Missing peer group": copy the group definition
//     (with its policies and prefix-lists) from a same-role device and
//     re-enrol the peers whose remote role matches the donor's members.
//     This is the plastic-surgery operator: same-role devices have similar
//     configurations, so the donor's group is the right template.
//   * RemoveGroupMember — "Extra items in peer group": a peer whose remote
//     role is a minority within its group is proposed for removal.
//   * RemovePolicyBinding — "Fail to dis-enable route map": clear a leftover
//     policy binding that either denies failing traffic or rewrites AS paths
//     on a flapping test's derivation chain.
//   * RestorePolicy — "Missing a routing policy": a binding references an
//     undefined policy; copy the definition from a device that has it, or
//     synthesize a permit-all.
//   * FixPeerAs — wrong `peer ... as-number`: re-solve the value against the
//     session-consistency constraint (the neighbor's actual AS).
#include <algorithm>
#include <map>

#include "fixgen/change.hpp"
#include "routing/policy_eval.hpp"
#include "smt/solver.hpp"

namespace acr::fix {

namespace {

std::string remoteRole(const topo::Network& network, net::Ipv4Address peer) {
  const auto router = network.topology.routerAt(peer);
  if (!router) return {};
  const topo::RouterDecl* decl = network.topology.findRouter(*router);
  return decl == nullptr ? std::string{} : decl->role;
}

/// Copies `policy_name` (and the prefix-lists it references) from `donor`
/// into `target`, skipping anything already present.
void copyPolicyWithLists(const cfg::DeviceConfig& donor,
                         cfg::DeviceConfig& target,
                         const std::string& policy_name) {
  const cfg::RoutePolicy* policy = donor.findPolicy(policy_name);
  if (policy == nullptr) return;
  if (target.findPolicy(policy_name) == nullptr) {
    target.policies.push_back(*policy);
  }
  for (const auto& node : policy->nodes) {
    for (const auto& match : node.matches) {
      if (target.findPrefixList(match.prefix_list) != nullptr) continue;
      const cfg::PrefixList* list = donor.findPrefixList(match.prefix_list);
      if (list != nullptr) target.prefix_lists.push_back(*list);
    }
  }
}

// ---------------------------------------------------------------------------

class RestorePeerGroup final : public ChangeTemplate {
 public:
  [[nodiscard]] std::string name() const override {
    return "restore-peer-group";
  }

  [[nodiscard]] bool appliesTo(cfg::LineKind kind) const override {
    switch (kind) {
      case cfg::LineKind::kPeerAs:
      case cfg::LineKind::kPeerGroupRef:
      case cfg::LineKind::kGroup:
      case cfg::LineKind::kGroupImport:
      case cfg::LineKind::kGroupExport:
      case cfg::LineKind::kInterfaceIp:
        return true;
      default:
        return false;
    }
  }

  [[nodiscard]] std::vector<ProposedChange> propose(
      const RepairContext& context, const cfg::LineId& suspicious,
      const cfg::LineInfo& /*info*/) const override {
    std::vector<ProposedChange> changes;
    const topo::Network& network = context.network;
    const cfg::DeviceConfig* device = network.config(suspicious.device);
    const topo::RouterDecl* self = network.topology.findRouter(suspicious.device);
    if (device == nullptr || self == nullptr || !device->bgp) return changes;

    for (const auto& [donor_name, donor] : network.configs) {
      if (donor_name == suspicious.device || !donor.bgp) continue;
      const topo::RouterDecl* donor_decl =
          network.topology.findRouter(donor_name);
      if (donor_decl == nullptr || donor_decl->role != self->role) continue;
      for (const auto& group : donor.bgp->groups) {
        if (group.import_policy.empty() && group.export_policy.empty()) continue;
        if (device->bgp->findGroup(group.name) != nullptr) continue;
        // Dominant remote role among the donor's group members.
        std::map<std::string, int> role_count;
        for (const auto& peer : donor.bgp->peers) {
          if (peer.group == group.name) {
            ++role_count[remoteRole(network, peer.address)];
          }
        }
        if (role_count.empty()) continue;
        const std::string member_role =
            std::max_element(role_count.begin(), role_count.end(),
                             [](const auto& a, const auto& b) {
                               return a.second < b.second;
                             })
                ->first;
        const std::string target_name = suspicious.device;
        const std::string group_name = group.name;
        const std::string donor_copy = donor_name;
        ProposedChange change;
        change.template_name = name();
        change.description = "restore peer group " + group_name + " on " +
                             target_name + " from same-role device " +
                             donor_copy + " (enrolling " + member_role +
                             " peers)";
        change.apply = [target_name, group_name, donor_copy,
                        member_role](topo::Network& net) {
          cfg::DeviceConfig* target = net.config(target_name);
          const cfg::DeviceConfig* donor_device = net.config(donor_copy);
          if (target == nullptr || donor_device == nullptr || !target->bgp ||
              !donor_device->bgp) {
            return false;
          }
          if (target->bgp->findGroup(group_name) != nullptr) return false;
          const cfg::PeerGroupConfig* donor_group =
              donor_device->bgp->findGroup(group_name);
          if (donor_group == nullptr) return false;
          target->bgp->groups.push_back(*donor_group);
          if (!donor_group->import_policy.empty()) {
            copyPolicyWithLists(*donor_device, *target,
                                donor_group->import_policy);
          }
          if (!donor_group->export_policy.empty()) {
            copyPolicyWithLists(*donor_device, *target,
                                donor_group->export_policy);
          }
          bool enrolled = false;
          for (auto& peer : target->bgp->peers) {
            if (!peer.group.empty()) continue;
            if (remoteRole(net, peer.address) == member_role) {
              peer.group = group_name;
              enrolled = true;
            }
          }
          target->renumber();
          return enrolled;
        };
        changes.push_back(std::move(change));
      }
    }
    return changes;
  }
};

// ---------------------------------------------------------------------------

class RemoveGroupMember final : public ChangeTemplate {
 public:
  [[nodiscard]] std::string name() const override {
    return "remove-group-member";
  }

  [[nodiscard]] bool appliesTo(cfg::LineKind kind) const override {
    switch (kind) {
      case cfg::LineKind::kPeerGroupRef:
      case cfg::LineKind::kPeerAs:
      case cfg::LineKind::kGroup:
      case cfg::LineKind::kGroupImport:
      case cfg::LineKind::kGroupExport:
      case cfg::LineKind::kInterfaceIp:
        return true;
      default:
        return false;
    }
  }

  [[nodiscard]] std::vector<ProposedChange> propose(
      const RepairContext& context, const cfg::LineId& /*suspicious*/,
      const cfg::LineInfo& /*info*/) const override {
    std::vector<ProposedChange> changes;
    constexpr std::size_t kMaxProposals = 8;
    // Plastic-surgery signal: the dominant remote role of each group name is
    // computed across the WHOLE network (same-role devices have similar
    // configs), so a device-local tie — e.g. two cores wrongly enrolled next
    // to two ToRs — is still resolved by the fleet-wide pattern.
    std::map<std::string, std::map<std::string, int>> global_roles;
    for (const auto& [device_name, device] : context.network.configs) {
      if (!device.bgp) continue;
      for (const auto& peer : device.bgp->peers) {
        if (!peer.group.empty()) {
          ++global_roles[peer.group]
                        [remoteRole(context.network, peer.address)];
        }
      }
    }
    std::map<std::string, std::string> dominant_role;
    for (const auto& [group_name, roles] : global_roles) {
      dominant_role[group_name] =
          std::max_element(roles.begin(), roles.end(),
                           [](const auto& a, const auto& b) {
                             return a.second < b.second;
                           })
              ->first;
    }
    for (const auto& [device_name, device] : context.network.configs) {
      if (!device.bgp) continue;
      for (const auto& group : device.bgp->groups) {
        if (global_roles[group.name].size() < 2) continue;
        for (const auto& peer : device.bgp->peers) {
          if (peer.group != group.name) continue;
          const std::string role = remoteRole(context.network, peer.address);
          if (role == dominant_role[group.name]) continue;  // majority: keep
          if (changes.size() >= kMaxProposals) return changes;
          const std::string dev = device_name;
          const net::Ipv4Address address = peer.address;
          const std::string group_name = group.name;
          ProposedChange change;
          change.template_name = name();
          change.description = "remove " + role + " peer " + address.str() +
                               " from group " + group_name + " on " + dev;
          change.apply = [dev, address, group_name](topo::Network& network) {
            cfg::DeviceConfig* target = network.config(dev);
            if (target == nullptr || !target->bgp) return false;
            cfg::PeerConfig* peer = target->bgp->findPeer(address);
            if (peer == nullptr || peer->group != group_name) return false;
            peer->group.clear();
            target->renumber();
            return true;
          };
          changes.push_back(std::move(change));
        }
      }
    }
    return changes;
  }
};

// ---------------------------------------------------------------------------

class RemovePolicyBinding final : public ChangeTemplate {
 public:
  [[nodiscard]] std::string name() const override {
    return "remove-policy-binding";
  }

  [[nodiscard]] bool appliesTo(cfg::LineKind kind) const override {
    switch (kind) {
      case cfg::LineKind::kPeerImport:
      case cfg::LineKind::kPeerExport:
      case cfg::LineKind::kPeerAs:
      case cfg::LineKind::kInterfaceIp:
      case cfg::LineKind::kStaticRoute:
      case cfg::LineKind::kRedistribute:
      case cfg::LineKind::kPbrRule:
      case cfg::LineKind::kPolicyNode:
      case cfg::LineKind::kPolicyAction:
      case cfg::LineKind::kPrefixListEntry:
        return true;
      default:
        return false;
    }
  }

  [[nodiscard]] std::vector<ProposedChange> propose(
      const RepairContext& context, const cfg::LineId& /*suspicious*/,
      const cfg::LineInfo& /*info*/) const override {
    std::vector<ProposedChange> changes;
    std::set<std::string> proposed;
    constexpr std::size_t kMaxProposals = 8;

    const auto proposeClear = [&](const std::string& device_name,
                                  net::Ipv4Address peer_address, bool import,
                                  const std::string& policy_name) {
      if (changes.size() >= kMaxProposals) return;
      const std::string key = device_name + '/' + peer_address.str() +
                              (import ? "/in" : "/out");
      if (!proposed.insert(key).second) return;
      ProposedChange change;
      change.template_name = name();
      change.description = std::string("remove ") +
                           (import ? "import" : "export") + " route-policy " +
                           policy_name + " from peer " + peer_address.str() +
                           " on " + device_name;
      change.apply = [device_name, peer_address, import](topo::Network& net) {
        cfg::DeviceConfig* target = net.config(device_name);
        if (target == nullptr || !target->bgp) return false;
        cfg::PeerConfig* peer = target->bgp->findPeer(peer_address);
        if (peer == nullptr) return false;
        std::string& binding = import ? peer->import_policy : peer->export_policy;
        if (binding.empty()) return false;
        binding.clear();
        target->renumber();
        return true;
      };
      changes.push_back(std::move(change));
    };

    // Source 1: bindings that deny a failing destination's route.
    for (const verify::TestResult& result : context.results) {
      if (result.passed) continue;
      const verify::IntentKind kind = context.intentOf(result).kind;
      if (kind == verify::IntentKind::kIsolation) continue;
      const net::Prefix subject =
          subnetPrefixOf(context.network, result.test.packet.dst);
      for (const auto& [device_name, device] : context.network.configs) {
        if (!device.bgp) continue;
        for (const auto& peer : device.bgp->peers) {
          for (const bool import : {true, false}) {
            const std::string& binding =
                import ? peer.import_policy : peer.export_policy;
            if (binding.empty()) continue;
            route::Route probe;
            probe.prefix = subject;
            const route::PolicyVerdict verdict =
                route::applyRoutePolicy(device, binding, probe, 0);
            if (!verdict.permitted) {
              proposeClear(device_name, peer.address, import, binding);
            }
          }
        }
      }
    }

    // Source 2: rewrite policies on the derivation chains of flapping tests.
    for (std::size_t i = 0; i < context.results.size(); ++i) {
      const verify::TestResult& result = context.results[i];
      if (result.passed || !result.trace.destination_flapping) continue;
      const std::set<cfg::LineId>& covered = context.coverage[i];
      for (const auto& [device_name, device] : context.network.configs) {
        if (!device.bgp) continue;
        for (const auto& peer : device.bgp->peers) {
          for (const bool import : {true, false}) {
            const std::string& binding =
                import ? peer.import_policy : peer.export_policy;
            if (binding.empty()) continue;
            const int line = import ? peer.import_line : peer.export_line;
            if (covered.count(cfg::LineId{device_name, line}) == 0) continue;
            const cfg::RoutePolicy* policy = device.findPolicy(binding);
            if (policy == nullptr) continue;
            const bool rewrites = std::any_of(
                policy->nodes.begin(), policy->nodes.end(),
                [](const cfg::PolicyNode& node) {
                  return std::any_of(
                      node.actions.begin(), node.actions.end(),
                      [](const cfg::PolicyAction& action) {
                        return action.kind ==
                               cfg::PolicyActionKind::kAsPathOverwrite;
                      });
                });
            if (rewrites) {
              proposeClear(device_name, peer.address, import, binding);
            }
          }
        }
      }
    }
    return changes;
  }
};

// ---------------------------------------------------------------------------

class RestorePolicy final : public ChangeTemplate {
 public:
  [[nodiscard]] std::string name() const override { return "restore-policy"; }

  [[nodiscard]] bool appliesTo(cfg::LineKind kind) const override {
    switch (kind) {
      case cfg::LineKind::kPeerImport:
      case cfg::LineKind::kPeerExport:
      case cfg::LineKind::kGroupImport:
      case cfg::LineKind::kGroupExport:
      case cfg::LineKind::kPeerAs:
      case cfg::LineKind::kInterfaceIp:
      case cfg::LineKind::kStaticRoute:
      case cfg::LineKind::kRedistribute:
        return true;
      default:
        return false;
    }
  }

  [[nodiscard]] std::vector<ProposedChange> propose(
      const RepairContext& context, const cfg::LineId& /*suspicious*/,
      const cfg::LineInfo& /*info*/) const override {
    std::vector<ProposedChange> changes;
    std::set<std::string> proposed;
    for (const auto& [device_name, device] : context.network.configs) {
      if (!device.bgp) continue;
      std::vector<std::string> missing;
      for (const auto& peer : device.bgp->peers) {
        for (const std::string& bound :
             {peer.import_policy, peer.export_policy}) {
          if (!bound.empty() && device.findPolicy(bound) == nullptr) {
            missing.push_back(bound);
          }
        }
      }
      for (const auto& group : device.bgp->groups) {
        for (const std::string& bound :
             {group.import_policy, group.export_policy}) {
          if (!bound.empty() && device.findPolicy(bound) == nullptr) {
            missing.push_back(bound);
          }
        }
      }
      for (const std::string& policy_name : missing) {
        if (!proposed.insert(device_name + '/' + policy_name).second) continue;
        // Plastic surgery: prefer a same-named policy from another device.
        std::string donor_name;
        for (const auto& [other_name, other] : context.network.configs) {
          if (other_name != device_name &&
              other.findPolicy(policy_name) != nullptr) {
            donor_name = other_name;
            break;
          }
        }
        const std::string dev = device_name;
        ProposedChange change;
        change.template_name = name();
        change.description =
            donor_name.empty()
                ? "create permit-all route-policy " + policy_name + " on " + dev
                : "restore route-policy " + policy_name + " on " + dev +
                      " from " + donor_name;
        change.apply = [dev, policy_name, donor_name](topo::Network& network) {
          cfg::DeviceConfig* target = network.config(dev);
          if (target == nullptr) return false;
          if (target->findPolicy(policy_name) != nullptr) return false;
          if (!donor_name.empty()) {
            const cfg::DeviceConfig* donor = network.config(donor_name);
            if (donor == nullptr) return false;
            copyPolicyWithLists(*donor, *target, policy_name);
          } else {
            cfg::RoutePolicy policy;
            policy.name = policy_name;
            cfg::PolicyNode pass;
            pass.index = 10;
            pass.action = cfg::Action::kPermit;
            policy.nodes.push_back(pass);
            target->policies.push_back(policy);
          }
          target->renumber();
          return true;
        };
        changes.push_back(std::move(change));
      }
    }
    return changes;
  }
};

// ---------------------------------------------------------------------------

class FixPeerAs final : public ChangeTemplate {
 public:
  [[nodiscard]] std::string name() const override { return "fix-peer-as"; }

  [[nodiscard]] bool appliesTo(cfg::LineKind kind) const override {
    switch (kind) {
      case cfg::LineKind::kPeerAs:
      case cfg::LineKind::kPeerGroupRef:
      case cfg::LineKind::kInterfaceIp:
      case cfg::LineKind::kRedistribute:
        return true;
      default:
        return false;
    }
  }

  [[nodiscard]] std::vector<ProposedChange> propose(
      const RepairContext& context, const cfg::LineId& /*suspicious*/,
      const cfg::LineInfo& /*info*/) const override {
    std::vector<ProposedChange> changes;
    for (const auto& session : context.sim.sessions) {
      if (session.up) continue;
      // Which side is misconfigured? Check both.
      for (const auto& [self, other, other_addr] :
           {std::tuple{session.a, session.b, session.b_address},
            std::tuple{session.b, session.a, session.a_address}}) {
        const cfg::DeviceConfig* device = context.network.config(self);
        const topo::RouterDecl* remote =
            context.network.topology.findRouter(other);
        if (device == nullptr || !device->bgp || remote == nullptr) continue;
        const cfg::PeerConfig* peer = device->bgp->findPeer(other_addr);
        if (peer == nullptr || peer->remote_as == remote->asn) continue;
        // Solve the AS value against the session-consistency constraint.
        smt::Solver solver;
        solver.requireIntEq("asn", remote->asn);
        solver.requireIntNeq("asn", peer->remote_as);
        const smt::SolveResult solved = solver.solve();
        if (!solved.sat) continue;
        const std::uint32_t value =
            static_cast<std::uint32_t>(solved.model.ints.at("asn"));
        const std::string dev = self;
        const net::Ipv4Address address = other_addr;
        ProposedChange change;
        change.template_name = name();
        change.description = "fix as-number of peer " + address.str() +
                             " on " + dev + ": " +
                             std::to_string(peer->remote_as) + " -> " +
                             std::to_string(value);
        change.apply = [dev, address, value](topo::Network& network) {
          cfg::DeviceConfig* target = network.config(dev);
          if (target == nullptr || !target->bgp) return false;
          cfg::PeerConfig* peer = target->bgp->findPeer(address);
          if (peer == nullptr || peer->remote_as == value) return false;
          peer->remote_as = value;
          target->renumber();
          return true;
        };
        changes.push_back(std::move(change));
      }
    }
    return changes;
  }
};

}  // namespace

std::shared_ptr<const ChangeTemplate> makeRestorePeerGroup() {
  return std::make_shared<RestorePeerGroup>();
}
std::shared_ptr<const ChangeTemplate> makeRemoveGroupMember() {
  return std::make_shared<RemoveGroupMember>();
}
std::shared_ptr<const ChangeTemplate> makeRemovePolicyBinding() {
  return std::make_shared<RemovePolicyBinding>();
}
std::shared_ptr<const ChangeTemplate> makeRestorePolicy() {
  return std::make_shared<RestorePolicy>();
}
std::shared_ptr<const ChangeTemplate> makeFixPeerAs() {
  return std::make_shared<FixPeerAs>();
}

}  // namespace acr::fix
