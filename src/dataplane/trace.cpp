#include "dataplane/trace.hpp"

namespace acr::dp {

std::string traceOutcomeName(TraceOutcome outcome) {
  switch (outcome) {
    case TraceOutcome::kDelivered:
      return "delivered";
    case TraceOutcome::kDroppedByPbr:
      return "dropped-by-pbr";
    case TraceOutcome::kBlackhole:
      return "blackhole";
    case TraceOutcome::kLoop:
      return "loop";
    case TraceOutcome::kNoIngress:
      return "no-ingress";
  }
  return "?";
}

std::set<cfg::LineId> TraceResult::coveredLines(
    const prov::ProvenanceGraph& provenance) const {
  std::set<cfg::LineId> lines;
  for (const Hop& hop : hops) {
    lines.insert(hop.lines.begin(), hop.lines.end());
    if (hop.derivation != prov::kNoDerivation) {
      provenance.collectLines(hop.derivation, lines);
    }
  }
  return lines;
}

std::string TraceResult::str() const {
  std::string out = traceOutcomeName(outcome);
  if (destination_flapping) out += " (flapping)";
  out += ": ";
  for (std::size_t i = 0; i < hops.size(); ++i) {
    if (i != 0) out += " -> ";
    out += hops[i].router;
  }
  if (!detail.empty()) out += " [" + detail + "]";
  return out;
}

const TraceResult& MultiTrace::worst() const {
  for (const auto& path : paths) {
    if (path.outcome != TraceOutcome::kDelivered || path.destination_flapping) {
      return path;
    }
  }
  return paths.front();
}

bool MultiTrace::allDelivered() const {
  for (const auto& path : paths) {
    if (!path.delivered()) return false;
  }
  return !paths.empty();
}

namespace {

/// One forwarding decision at `current`. Either terminal (outcome decided)
/// or a set of possible next routers (ECMP alternatives, selected first).
struct Step {
  Hop hop;
  bool terminal = true;
  TraceOutcome outcome = TraceOutcome::kBlackhole;
  std::string detail;
  std::vector<std::string> next;
};

Step stepAt(const topo::Network& network, const route::SimResult& sim,
            const std::string& current, const net::FiveTuple& packet) {
  Step step;
  step.hop.router = current;

  const cfg::DeviceConfig* device = network.config(current);
  if (device == nullptr) {
    step.outcome = TraceOutcome::kBlackhole;
    step.detail = "unknown router " + current;
    return step;
  }

  // Policy-based routing first: the first matching rule across the device's
  // PBR policies (in configuration order) decides.
  const cfg::PbrRule* pbr_hit = nullptr;
  for (const auto& policy : device->pbr_policies) {
    for (const auto& rule : policy.rules) {
      step.hop.lines.push_back(cfg::LineId{current, rule.line});
      if (rule.matches(packet.src, packet.dst)) {
        pbr_hit = &rule;
        break;
      }
    }
    if (pbr_hit != nullptr) break;
  }
  if (pbr_hit != nullptr && pbr_hit->action == cfg::PbrAction::kDeny) {
    step.outcome = TraceOutcome::kDroppedByPbr;
    step.detail = "pbr deny at " + current;
    return step;
  }
  if (pbr_hit != nullptr && pbr_hit->action == cfg::PbrAction::kRedirect) {
    const net::Ipv4Address target = pbr_hit->redirect_next_hop;
    const auto next_router = network.topology.routerAt(target);
    if (!next_router) {
      // Redirect towards a non-router address: the packet leaves the routed
      // fabric and is lost.
      step.outcome = TraceOutcome::kBlackhole;
      step.detail =
          "pbr redirect at " + current + " to non-router " + target.str();
      return step;
    }
    step.terminal = false;
    step.next.push_back(*next_router);
    return step;
  }

  // FIB longest-prefix match.
  const route::Route* route = sim.lookup(current, packet.dst);
  if (route == nullptr) {
    step.outcome = TraceOutcome::kBlackhole;
    step.detail = "no route for " + packet.dst.str() + " at " + current;
    return step;
  }
  step.hop.derivation = route->derivation;

  if (route->source == route::RouteSource::kConnected) {
    step.outcome = TraceOutcome::kDelivered;
    step.detail = "delivered on " + route->prefix.str();
    return step;
  }
  if (route->source == route::RouteSource::kStatic) {
    const auto next_router = network.topology.routerAt(route->next_hop);
    if (!next_router) {
      // Static next hop is a host (e.g. a load balancer) on a connected
      // subnet: the packet is handed off and counts as delivered.
      step.outcome = TraceOutcome::kDelivered;
      step.detail = "handed to host " + route->next_hop.str();
      return step;
    }
    step.terminal = false;
    step.next.push_back(*next_router);
    return step;
  }

  // BGP route: the selected neighbor first, then any equal-cost siblings.
  step.terminal = false;
  step.next.push_back(route->learned_from);
  for (const auto& [neighbor, next_hop] : route->ecmp) {
    if (neighbor != route->learned_from) step.next.push_back(neighbor);
  }
  return step;
}

}  // namespace

TraceResult DataPlane::trace(const net::FiveTuple& packet) const {
  const auto ingress = network_.topology.subnetOwner(packet.src);
  if (!ingress) {
    TraceResult result;
    result.outcome = TraceOutcome::kNoIngress;
    result.detail = "no subnet owns source " + packet.src.str();
    return result;
  }
  return traceFrom(*ingress, packet);
}

TraceResult DataPlane::traceFrom(const std::string& ingress,
                                 const net::FiveTuple& packet) const {
  TraceResult result;
  result.destination_flapping = sim_.isFlapping(packet.dst);

  std::set<std::string> visited;
  std::string current = ingress;
  constexpr int kMaxHops = 64;

  for (int hop_count = 0; hop_count < kMaxHops; ++hop_count) {
    if (!visited.insert(current).second) {
      result.outcome = TraceOutcome::kLoop;
      result.detail = "revisited " + current;
      return result;
    }
    Step step = stepAt(network_, sim_, current, packet);
    result.hops.push_back(std::move(step.hop));
    if (step.terminal) {
      result.outcome = step.outcome;
      result.detail = std::move(step.detail);
      return result;
    }
    current = step.next.front();  // single-path semantics: the selected hop
  }

  result.outcome = TraceOutcome::kLoop;
  result.detail = "hop limit exceeded";
  return result;
}

void DataPlane::explore(const std::string& current,
                        const net::FiveTuple& packet,
                        std::set<std::string> visited, TraceResult partial,
                        MultiTrace& out, int max_paths) const {
  if (static_cast<int>(out.paths.size()) >= max_paths) {
    out.truncated = true;
    return;
  }
  if (!visited.insert(current).second ||
      partial.hops.size() >= 64) {
    partial.outcome = TraceOutcome::kLoop;
    partial.detail = "revisited " + current;
    out.paths.push_back(std::move(partial));
    return;
  }
  Step step = stepAt(network_, sim_, current, packet);
  partial.hops.push_back(std::move(step.hop));
  if (step.terminal) {
    partial.outcome = step.outcome;
    partial.detail = std::move(step.detail);
    out.paths.push_back(std::move(partial));
    return;
  }
  for (const auto& next : step.next) {
    explore(next, packet, visited, partial, out, max_paths);
  }
}

MultiTrace DataPlane::traceMultipath(const net::FiveTuple& packet,
                                     int max_paths) const {
  MultiTrace out;
  const auto ingress = network_.topology.subnetOwner(packet.src);
  if (!ingress) {
    TraceResult result;
    result.outcome = TraceOutcome::kNoIngress;
    result.detail = "no subnet owns source " + packet.src.str();
    out.paths.push_back(std::move(result));
    return out;
  }
  TraceResult seed;
  seed.destination_flapping = sim_.isFlapping(packet.dst);
  explore(*ingress, packet, {}, std::move(seed), out, max_paths);
  return out;
}

}  // namespace acr::dp
