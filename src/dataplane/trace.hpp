// Data-plane packet tracing over the simulated FIBs.
//
// A trace starts at the router owning the packet's source subnet and follows
// best-route forwarding hop by hop. At every router the device's PBR
// policies are consulted first (permit → FIB, deny → drop, redirect →
// forward to the redirect next hop); then the longest-prefix FIB match
// decides the next hop. Outcomes distinguish delivery, PBR drops,
// blackholes (no route / unresolvable next hop), and forwarding loops.
//
// Every hop records the config lines it exercised (PBR rules evaluated, the
// derivation of the route used), which is the raw material of SBFL coverage.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "netcore/five_tuple.hpp"
#include "routing/simulator.hpp"
#include "topo/network.hpp"

namespace acr::dp {

enum class TraceOutcome {
  kDelivered,
  kDroppedByPbr,
  kBlackhole,
  kLoop,
  kNoIngress,  // source address is not on any known subnet
};

[[nodiscard]] std::string traceOutcomeName(TraceOutcome outcome);

struct Hop {
  std::string router;
  prov::DerivationId derivation = prov::kNoDerivation;  // route used (if any)
  std::vector<cfg::LineId> lines;  // PBR rules + local attribution
};

struct TraceResult {
  TraceOutcome outcome = TraceOutcome::kBlackhole;
  std::vector<Hop> hops;
  std::string detail;
  /// The destination lies in a prefix the control plane never stabilised
  /// on — the paper's route-flapping symptom. Set independently of the
  /// forwarding outcome (which reflects one representative FIB state).
  bool destination_flapping = false;

  [[nodiscard]] bool delivered() const {
    return outcome == TraceOutcome::kDelivered && !destination_flapping;
  }

  /// All config lines exercised by the trace: per-hop PBR lines plus the
  /// full derivation chains of every route used.
  [[nodiscard]] std::set<cfg::LineId> coveredLines(
      const prov::ProvenanceGraph& provenance) const;

  [[nodiscard]] std::string str() const;
};

/// Result of exploring every ECMP branch a packet could hash onto.
struct MultiTrace {
  std::vector<TraceResult> paths;
  bool truncated = false;  // the branch cap was hit

  /// The branch an intent check should be judged on: the first failing
  /// branch if any (a flow could hash onto it), else the first path.
  [[nodiscard]] const TraceResult& worst() const;
  [[nodiscard]] bool allDelivered() const;
};

class DataPlane {
 public:
  DataPlane(const topo::Network& network, const route::SimResult& sim)
      : network_(network), sim_(sim) {}

  /// Traces from the router owning the packet's source address.
  [[nodiscard]] TraceResult trace(const net::FiveTuple& packet) const;

  /// Traces from an explicit ingress router.
  [[nodiscard]] TraceResult traceFrom(const std::string& ingress,
                                      const net::FiveTuple& packet) const;

  /// Explores every equal-cost branch (requires a simulation run with
  /// SimOptions::enable_ecmp; without it, degrades to a single path).
  /// At most `max_paths` branches are expanded.
  [[nodiscard]] MultiTrace traceMultipath(const net::FiveTuple& packet,
                                          int max_paths = 64) const;

 private:
  void explore(const std::string& current, const net::FiveTuple& packet,
               std::set<std::string> visited, TraceResult partial,
               MultiTrace& out, int max_paths) const;

  const topo::Network& network_;
  const route::SimResult& sim_;
};

}  // namespace acr::dp
