// FleetRouter: scenario-affinity routing, batched submit and queue
// rebalancing across a fleet of acrd workers.
//
// Why affinity routing: a repair's dominant setup cost is loading and
// priming the scenario snapshot, which is why acrd has a SnapshotCache.
// One node's cache is bounded by its byte budget; a fleet multiplies that
// budget only if the same scenario keeps landing on the same node. The
// router therefore keys every submit by the scenario's content
// fingerprint (core::fingerprintScenarioDir — the exact key the worker's
// cache uses) and maps it through a consistent-hash ring (fleet/ring.hpp):
// each worker serves a stable shard of the fingerprint space and its
// cache stays hot for precisely that shard.
//
// Wire behaviour is passthrough by design: the router speaks the same
// newline-JSON protocol to each worker that any client speaks, and it
// returns worker responses verbatim — a submit routed through the fleet
// is byte-identical to one sent to a single acrd (docs/service.md).
//
// Load handling, in escalation order:
//   * reject spill — a worker answering {"ok":false,...,"retry_after_ms"}
//     costs one round-trip; the router retries the submit on the next
//     node(s) clockwise on the ring before surfacing the rejection.
//   * work stealing — rebalance() polls `stats`; a node whose queue depth
//     stays over the overload threshold for `overload_polls` consecutive
//     polls gets its *queued* (never running) router-tracked jobs pulled
//     back via `cancel` with "if_queued":true and resubmitted to the
//     shallowest healthy node.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "fleet/ring.hpp"
#include "service/client.hpp"
#include "service/json.hpp"
#include "util/metrics.hpp"

namespace acr::fleet {

using service::Json;

struct FleetNodeConfig {
  std::string host;
  int port = 0;
};

struct FleetRouterOptions {
  int vnodes = 64;
  /// Ring successors tried after the owner rejects (queue full/draining).
  std::size_t spill_candidates = 2;
  /// Per-node wire client settings; the defaults add a connect timeout so
  /// one dead worker cannot hang the router.
  service::ClientOptions client;
  /// A stats poll counts a node as backpressured at this queue depth...
  std::int64_t overload_queue_depth = 8;
  /// ...and this many *consecutive* backpressured polls trigger stealing
  /// (one hot poll is noise; sustained depth means the shard is unlucky).
  int overload_polls = 2;
  /// Registry for fleet.route.*; nullptr = the process-global registry.
  util::MetricsRegistry* metrics = nullptr;
};

class FleetRouter {
 public:
  FleetRouter(const std::vector<FleetNodeConfig>& nodes,
              const FleetRouterOptions& options = {});
  ~FleetRouter();

  FleetRouter(const FleetRouter&) = delete;
  FleetRouter& operator=(const FleetRouter&) = delete;

  [[nodiscard]] std::vector<std::string> nodes() const;

  /// Ring owner for a scenario directory ("host:port"). Fingerprints are
  /// cached per directory: routing stability is the point, and the first
  /// submit pays the directory read.
  [[nodiscard]] std::string nodeFor(const std::string& dir);

  /// One wire request to one node by name, reconnecting if its cached
  /// connection died. Throws std::runtime_error on unknown node or
  /// connection failure.
  [[nodiscard]] Json call(const std::string& node, const Json& request);

  /// Routes a `submit` by its "dir" to the shard owner; on rejection
  /// spills to up to spill_candidates ring successors. The returned
  /// response is the worker's, verbatim. Accepted non-wait jobs are
  /// tracked for rebalance().
  [[nodiscard]] Json submit(const Json& request);

  /// Routes a `submit_batch` by splitting its items across shard owners
  /// (one submit_batch per involved node, top-level defaults copied) and
  /// reassembling per-item entries in the original item order:
  /// {"ok":true,"jobs":[...]} exactly as a single worker would answer.
  [[nodiscard]] Json submitBatch(const Json& request);

  /// Polls `stats` on every node. Returns {"ok":true,"nodes":{name:...},
  /// "fleet":{queue_depth,running,...},"router":{...}} and feeds the
  /// overload detector (one call = one poll).
  [[nodiscard]] Json stats();

  /// One round of work stealing: migrates router-tracked queued jobs off
  /// nodes whose backpressure streak reached overload_polls. Polls stats
  /// itself. Returns the number of jobs migrated.
  int rebalance();

 private:
  struct Node {
    FleetNodeConfig config;
    std::unique_ptr<service::Client> client;
    std::int64_t queue_depth = 0;  // from the last stats poll
    int overload_streak = 0;
  };
  /// A non-wait submit the router accepted somewhere: enough state to
  /// steal it while it is still queued (the original request re-submits
  /// verbatim elsewhere).
  struct TrackedJob {
    std::string node;
    std::uint64_t id = 0;
    Json request;
  };

  Json callLocked(Node& node, const Json& request);
  Json statsLocked();
  Json routedSubmit(const Json& request, const std::string& dir);

  const FleetRouterOptions options_;
  util::MetricsRegistry& metrics_;
  mutable std::mutex mutex_;
  HashRing ring_;
  std::map<std::string, Node> nodes_;
  std::unordered_map<std::string, std::uint64_t> fingerprints_;
  std::vector<TrackedJob> tracked_;
};

}  // namespace acr::fleet
