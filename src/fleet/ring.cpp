#include "fleet/ring.hpp"

#include <stdexcept>

namespace acr::fleet {

std::uint64_t fnv1a(const std::string& bytes) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char byte : bytes) {
    hash ^= static_cast<unsigned char>(byte);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

namespace {

/// splitmix64 finalizer. FNV-1a of short, similar strings ("node:0#17")
/// leaves the high bits — the ones lower_bound on the ring keys compares
/// first — poorly mixed, which skews vnode placement badly enough that a
/// 4-node ring can starve a node. One avalanche round fixes the spread.
std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

HashRing::HashRing(int vnodes) : vnodes_(vnodes < 1 ? 1 : vnodes) {}

void HashRing::add(const std::string& node) {
  if (!nodes_.insert(node).second) return;
  for (int i = 0; i < vnodes_; ++i) {
    // Collisions just drop one vnode of one node — harmless at 2^64.
    ring_.emplace(mix(fnv1a(node + "#" + std::to_string(i))), node);
  }
}

void HashRing::remove(const std::string& node) {
  if (nodes_.erase(node) == 0) return;
  for (auto it = ring_.begin(); it != ring_.end();) {
    it = it->second == node ? ring_.erase(it) : std::next(it);
  }
}

std::vector<std::string> HashRing::nodes() const {
  return {nodes_.begin(), nodes_.end()};
}

const std::string& HashRing::route(std::uint64_t key) const {
  if (ring_.empty()) throw std::runtime_error("hash ring is empty");
  const auto it = ring_.lower_bound(key);
  return it != ring_.end() ? it->second : ring_.begin()->second;
}

std::vector<std::string> HashRing::routeN(std::uint64_t key,
                                          std::size_t count) const {
  std::vector<std::string> owners;
  if (ring_.empty() || count == 0) return owners;
  if (count > nodes_.size()) count = nodes_.size();
  auto it = ring_.lower_bound(key);
  // One full lap visits every vnode, hence every node.
  for (std::size_t step = 0; step < ring_.size() && owners.size() < count;
       ++step) {
    if (it == ring_.end()) it = ring_.begin();
    const std::string& node = it->second;
    bool seen = false;
    for (const std::string& owner : owners) {
      if (owner == node) {
        seen = true;
        break;
      }
    }
    if (!seen) owners.push_back(node);
    ++it;
  }
  return owners;
}

}  // namespace acr::fleet
