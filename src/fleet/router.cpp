#include "fleet/router.hpp"

#include <stdexcept>

#include "core/serialization.hpp"

namespace acr::fleet {

namespace {

Json errorResponse(const std::string& message) {
  Json response;
  response.set("ok", false);
  response.set("error", message);
  return response;
}

bool isOk(const Json& response) {
  const Json* ok = response.find("ok");
  return ok != nullptr && ok->asBool();
}

bool isRejection(const Json& response) {
  // A scheduler rejection carries the backpressure hint; anything else
  // ({"ok":false} without it) is a request error spilling cannot fix.
  return !isOk(response) && response.find("retry_after_ms") != nullptr;
}

}  // namespace

FleetRouter::FleetRouter(const std::vector<FleetNodeConfig>& nodes,
                         const FleetRouterOptions& options)
    : options_(options),
      metrics_(options.metrics != nullptr ? *options.metrics
                                          : util::MetricsRegistry::global()),
      ring_(options.vnodes) {
  if (nodes.empty()) throw std::runtime_error("fleet needs at least one node");
  for (const FleetNodeConfig& config : nodes) {
    const std::string name = config.host + ":" + std::to_string(config.port);
    if (!nodes_.emplace(name, Node{config, nullptr, 0, 0}).second) {
      throw std::runtime_error("duplicate fleet node " + name);
    }
    ring_.add(name);
  }
  metrics_.gauge("fleet.route.nodes")
      .set(static_cast<std::int64_t>(nodes_.size()));
}

FleetRouter::~FleetRouter() = default;

std::vector<std::string> FleetRouter::nodes() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(nodes_.size());
  for (const auto& [name, node] : nodes_) names.push_back(name);
  return names;
}

std::string FleetRouter::nodeFor(const std::string& dir) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = fingerprints_.find(dir);
  if (it == fingerprints_.end()) {
    it = fingerprints_
             .emplace(dir, acr::fingerprintScenarioDir(dir).hash)
             .first;
  }
  return ring_.route(it->second);
}

Json FleetRouter::callLocked(Node& node, const Json& request) {
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (node.client == nullptr) {
      node.client = std::make_unique<service::Client>(
          node.config.host, node.config.port, options_.client);
    }
    try {
      return node.client->call(request);
    } catch (const std::exception&) {
      // A dead cached connection (worker restarted) deserves one fresh
      // connect; a node that is actually down fails that too and throws.
      node.client.reset();
      if (attempt == 1) throw;
    }
  }
  throw std::runtime_error("unreachable");
}

Json FleetRouter::call(const std::string& node, const Json& request) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = nodes_.find(node);
  if (it == nodes_.end()) {
    throw std::runtime_error("unknown fleet node " + node);
  }
  return callLocked(it->second, request);
}

Json FleetRouter::routedSubmit(const Json& request, const std::string& dir) {
  auto fingerprint = fingerprints_.find(dir);
  if (fingerprint == fingerprints_.end()) {
    fingerprint =
        fingerprints_.emplace(dir, acr::fingerprintScenarioDir(dir).hash)
            .first;
  }
  const std::vector<std::string> candidates =
      ring_.routeN(fingerprint->second, 1 + options_.spill_candidates);
  const Json* wait = request.find("wait");
  const bool waits = wait != nullptr && wait->asBool();
  Json last_response = errorResponse("no fleet node reachable");
  bool all_down = true;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    Node& node = nodes_.at(candidates[i]);
    Json response;
    try {
      response = callLocked(node, request);
    } catch (const std::exception& error) {
      last_response = errorResponse(error.what());
      continue;
    }
    all_down = false;
    if (isOk(response)) {
      metrics_.counter("fleet.route.assigned").add(1);
      if (i > 0) metrics_.counter("fleet.route.spills").add(1);
      const Json* id = response.find("id");
      const Json* status = response.find("status");
      if (!waits && id != nullptr && status != nullptr &&
          status->asString() == "queued") {
        tracked_.push_back(TrackedJob{candidates[i], id->asUint(), request});
      }
      return response;
    }
    last_response = std::move(response);
    if (!isRejection(last_response)) break;  // not backpressure: don't spill
    metrics_.counter("fleet.route.rejected").add(1);
  }
  if (all_down) metrics_.counter("fleet.route.unreachable").add(1);
  return last_response;
}

Json FleetRouter::submit(const Json& request) {
  const Json* dir = request.find("dir");
  if (dir == nullptr || dir->kind() != Json::Kind::kString) {
    return errorResponse("submit requires a \"dir\" string");
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  return routedSubmit(request, dir->asString());
}

Json FleetRouter::submitBatch(const Json& request) {
  const Json* items = request.find("items");
  if (items == nullptr || items->kind() != Json::Kind::kArray ||
      items->asArray().empty()) {
    return errorResponse("submit_batch requires a non-empty \"items\" array");
  }
  const Json* default_dir = request.find("dir");
  const std::lock_guard<std::mutex> lock(mutex_);
  // Shard the items by their (item-level, else top-level) scenario dir;
  // order within a shard follows the original array, so reassembling by
  // recorded index restores exactly the order one worker would emit.
  std::map<std::string, std::vector<std::size_t>> shards;
  for (std::size_t i = 0; i < items->asArray().size(); ++i) {
    const Json& item = items->asArray()[i];
    const Json* dir = item.isObject() ? item.find("dir") : nullptr;
    if (dir == nullptr) dir = default_dir;
    std::string owner;
    if (dir != nullptr && dir->kind() == Json::Kind::kString) {
      auto fingerprint = fingerprints_.find(dir->asString());
      if (fingerprint == fingerprints_.end()) {
        std::uint64_t hash = 0;
        try {
          hash = acr::fingerprintScenarioDir(dir->asString()).hash;
        } catch (const std::exception&) {
          hash = fnv1a(dir->asString());  // unreadable dir: stable fallback
        }
        fingerprint = fingerprints_.emplace(dir->asString(), hash).first;
      }
      owner = ring_.route(fingerprint->second);
    } else {
      // No resolvable dir: the worker will answer the item with its usual
      // error; any stable owner will do.
      owner = ring_.route(0);
    }
    shards[owner].push_back(i);
  }
  std::vector<Json> entries(items->asArray().size());
  for (auto& [owner, indexes] : shards) {
    Json shard_request;
    for (const auto& [key, value] : request.asObject()) {
      if (key != "items") shard_request.set(key, value);
    }
    Json::Array shard_items;
    shard_items.reserve(indexes.size());
    for (const std::size_t i : indexes) {
      shard_items.push_back(items->asArray()[i]);
    }
    shard_request.set("items", Json(std::move(shard_items)));
    Json response;
    try {
      response = callLocked(nodes_.at(owner), shard_request);
    } catch (const std::exception& error) {
      response = errorResponse(error.what());
    }
    const Json* jobs = response.find("jobs");
    if (isOk(response) && jobs != nullptr &&
        jobs->kind() == Json::Kind::kArray &&
        jobs->asArray().size() == indexes.size()) {
      metrics_.counter("fleet.route.assigned")
          .add(static_cast<std::int64_t>(indexes.size()));
      for (std::size_t j = 0; j < indexes.size(); ++j) {
        entries[indexes[j]] = jobs->asArray()[j];
      }
    } else {
      // Whole-shard failure (node down, malformed answer): every item of
      // this shard reports it; other shards are unaffected.
      const Json* error = response.find("error");
      Json entry = errorResponse(error != nullptr &&
                                         error->kind() == Json::Kind::kString
                                     ? error->asString()
                                     : "fleet node " + owner + " failed");
      for (const std::size_t i : indexes) entries[i] = entry;
    }
  }
  Json response;
  response.set("ok", true);
  response.set("jobs", Json(Json::Array(entries.begin(), entries.end())));
  return response;
}

Json FleetRouter::statsLocked() {
  Json per_node;
  std::int64_t queue_depth = 0;
  std::int64_t running = 0;
  std::int64_t connections_open = 0;
  std::int64_t cache_hits = 0;
  std::int64_t cache_misses = 0;
  std::int64_t overloaded = 0;
  std::int64_t down = 0;
  Json stats_request;
  stats_request.set("op", "stats");
  for (auto& [name, node] : nodes_) {
    Json response;
    try {
      response = callLocked(node, stats_request);
    } catch (const std::exception& error) {
      response = errorResponse(error.what());
    }
    if (isOk(response)) {
      const Json* depth = response.find("queue_depth");
      node.queue_depth = depth != nullptr ? depth->asInt() : 0;
      queue_depth += node.queue_depth;
      const Json* node_running = response.find("running");
      if (node_running != nullptr) running += node_running->asInt();
      if (const Json* connections = response.find("connections")) {
        if (const Json* open = connections->find("open")) {
          connections_open += open->asInt();
        }
      }
      if (const Json* cache = response.find("cache")) {
        if (const Json* hits = cache->find("hits")) {
          cache_hits += hits->asInt();
        }
        if (const Json* misses = cache->find("misses")) {
          cache_misses += misses->asInt();
        }
      }
      node.overload_streak =
          node.queue_depth >= options_.overload_queue_depth
              ? node.overload_streak + 1
              : 0;
    } else {
      ++down;
      node.queue_depth = 0;
      node.overload_streak = 0;  // unreachable ≠ overloaded
    }
    if (node.overload_streak >= options_.overload_polls) ++overloaded;
    per_node.set(name, std::move(response));
  }
  metrics_.gauge("fleet.route.overloaded").set(overloaded);
  Json fleet;
  fleet.set("nodes", static_cast<std::int64_t>(nodes_.size()));
  fleet.set("nodes_down", down);
  fleet.set("queue_depth", queue_depth);
  fleet.set("running", running);
  fleet.set("connections_open", connections_open);
  fleet.set("cache_hits", cache_hits);
  fleet.set("cache_misses", cache_misses);
  fleet.set("overloaded", overloaded);
  Json router;
  router.set("assigned", metrics_.counter("fleet.route.assigned").value());
  router.set("spills", metrics_.counter("fleet.route.spills").value());
  router.set("rejected", metrics_.counter("fleet.route.rejected").value());
  router.set("migrations",
             metrics_.counter("fleet.route.migrations").value());
  router.set("tracked_jobs", static_cast<std::int64_t>(tracked_.size()));
  Json response;
  response.set("ok", true);
  response.set("nodes", std::move(per_node));
  response.set("fleet", std::move(fleet));
  response.set("router", std::move(router));
  return response;
}

Json FleetRouter::stats() {
  const std::lock_guard<std::mutex> lock(mutex_);
  return statsLocked();
}

int FleetRouter::rebalance() {
  const std::lock_guard<std::mutex> lock(mutex_);
  (void)statsLocked();  // refresh depths + overload streaks
  // Prune tracked jobs that left the queue on their own (running or
  // finished): stealing applies only to still-queued work.
  std::vector<TrackedJob> queued;
  for (TrackedJob& job : tracked_) {
    Json status_request;
    status_request.set("op", "status");
    status_request.set("id", job.id);
    Json response;
    try {
      response = callLocked(nodes_.at(job.node), status_request);
    } catch (const std::exception&) {
      continue;  // node gone; its queue is gone with it
    }
    const Json* status = response.find("status");
    if (isOk(response) && status != nullptr &&
        status->asString() == "queued") {
      queued.push_back(std::move(job));
    }
  }
  tracked_ = std::move(queued);
  int migrated = 0;
  std::vector<TrackedJob> still_tracked;
  for (TrackedJob& job : tracked_) {
    Node& source = nodes_.at(job.node);
    if (source.overload_streak < options_.overload_polls) {
      still_tracked.push_back(std::move(job));
      continue;
    }
    // Shallowest healthy target; bail if nobody is meaningfully better.
    std::string target;
    std::int64_t best_depth = 0;
    for (const auto& [name, node] : nodes_) {
      if (name == job.node) continue;
      if (node.overload_streak >= options_.overload_polls) continue;
      if (target.empty() || node.queue_depth < best_depth) {
        target = name;
        best_depth = node.queue_depth;
      }
    }
    if (target.empty() || best_depth >= source.queue_depth) {
      still_tracked.push_back(std::move(job));
      continue;
    }
    Json cancel_request;
    cancel_request.set("op", "cancel");
    cancel_request.set("id", job.id);
    cancel_request.set("if_queued", true);
    Json cancelled;
    try {
      cancelled = callLocked(source, cancel_request);
    } catch (const std::exception&) {
      still_tracked.push_back(std::move(job));
      continue;
    }
    if (!isOk(cancelled)) {
      // Started or finished in the meantime — it is not queued work any
      // more, so it simply leaves the tracking set.
      continue;
    }
    Json resubmitted;
    try {
      resubmitted = callLocked(nodes_.at(target), job.request);
    } catch (const std::exception&) {
      resubmitted = errorResponse("resubmit failed");
    }
    const Json* id = resubmitted.find("id");
    if (isOk(resubmitted) && id != nullptr) {
      ++migrated;
      --source.queue_depth;
      ++nodes_.at(target).queue_depth;
      metrics_.counter("fleet.route.migrations").add(1);
      still_tracked.push_back(TrackedJob{target, id->asUint(), job.request});
    } else {
      // Cancelled at the source but refused at the target: put it back on
      // its owner so the work is not lost (owner still queues, just deep).
      Json requeued;
      try {
        requeued = callLocked(source, job.request);
      } catch (const std::exception&) {
        requeued = errorResponse("requeue failed");
      }
      const Json* requeued_id = requeued.find("id");
      if (isOk(requeued) && requeued_id != nullptr) {
        still_tracked.push_back(
            TrackedJob{job.node, requeued_id->asUint(), job.request});
      }
    }
  }
  tracked_ = std::move(still_tracked);
  return migrated;
}

}  // namespace acr::fleet
