// Consistent-hash ring over acrd worker nodes.
//
// The fleet router shards repair scenarios across workers by their content
// fingerprint (core::fingerprintScenarioDir — the same FNV-1a key the
// SnapshotCache uses). Consistent hashing is what makes that sharding
// worth having: each node ends up owning a stable subset of the
// fingerprint space, so its snapshot cache only ever holds *its* shard's
// scenarios — N nodes give ~N× the effective cache capacity, and
// adding/removing a node reassigns only ~1/N of the keys instead of
// reshuffling everything.
//
// Classic construction: every node is hashed onto the ring at `vnodes`
// pseudo-random points (FNV-1a of "name#i"); a key is owned by the first
// vnode clockwise from the key's hash. More vnodes = smoother load split;
// 64 keeps the worst node within a few percent of fair for small fleets.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace acr::fleet {

/// FNV-1a, the repo's standard content hash (matches the fingerprint and
/// string-interning hashes elsewhere).
[[nodiscard]] std::uint64_t fnv1a(const std::string& bytes);

class HashRing {
 public:
  explicit HashRing(int vnodes = 64);

  void add(const std::string& node);
  void remove(const std::string& node);

  [[nodiscard]] bool empty() const { return nodes_.empty(); }
  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] std::vector<std::string> nodes() const;
  [[nodiscard]] bool contains(const std::string& node) const {
    return nodes_.count(node) != 0;
  }

  /// Owner of `key`: the first vnode at or clockwise after it. Throws
  /// std::runtime_error on an empty ring.
  [[nodiscard]] const std::string& route(std::uint64_t key) const;

  /// The first `count` *distinct* nodes clockwise from `key` — the owner
  /// first, then its successors (the reject-spill order). Returns fewer
  /// when the ring has fewer nodes.
  [[nodiscard]] std::vector<std::string> routeN(std::uint64_t key,
                                               std::size_t count) const;

 private:
  int vnodes_;
  std::map<std::uint64_t, std::string> ring_;  // vnode position → owner
  std::set<std::string> nodes_;
};

}  // namespace acr::fleet
