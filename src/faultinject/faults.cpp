#include "faultinject/faults.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace acr::inject {

const std::vector<FaultSpec>& faultCatalog() {
  static const std::vector<FaultSpec> kCatalog = {
      {FaultType::kMissingRedistribution,
       "Missing redistribution of static route", "Route", true, 0.208, "dcn"},
      {FaultType::kMissingPbrPermit, "Missing permit rules in PBR", "PBR", true,
       0.125, "dcn"},
      {FaultType::kExtraPbrRedirect, "Extra redirect rule in PBR", "PBR", false,
       0.042, "dcn"},
      {FaultType::kMissingPeerGroup, "Missing peer group", "Peer", true, 0.166,
       "dcn"},
      {FaultType::kExtraGroupItems, "Extra items in peer group", "Peer", true,
       0.125, "dcn"},
      {FaultType::kMissingRoutePolicy, "Missing a routing policy", "Policy",
       true, 0.083, "backbone"},
      {FaultType::kLeftoverRouteMap, "Fail to dis-enable route map", "Policy",
       false, 0.042, "dcn"},
      {FaultType::kWrongPeerAs, "Override to wrong AS number", "Policy", false,
       0.042, "dcn"},
      {FaultType::kMissingPrefixListItemsS, "Missing items in ip prefix-list",
       "Policy", false, 0.042, "figure2"},
      {FaultType::kMissingPrefixListItemsM, "Missing items in ip prefix-list",
       "Policy", true, 0.125, "figure2"},
  };
  return kCatalog;
}

const FaultSpec& specOf(FaultType type) {
  for (const auto& spec : faultCatalog()) {
    if (spec.type == type) return spec;
  }
  return faultCatalog().front();
}

std::string faultTypeName(FaultType type) {
  const FaultSpec& spec = specOf(type);
  return std::string(spec.label) + (spec.multi_line ? " (M)" : " (S)");
}

FaultType FaultInjector::sampleType() {
  double total = 0;
  for (const auto& spec : faultCatalog()) total += spec.ratio;
  std::uniform_real_distribution<double> dist(0.0, total);
  double draw = dist(rng_);
  for (const auto& spec : faultCatalog()) {
    draw -= spec.ratio;
    if (draw <= 0) return spec.type;
  }
  return faultCatalog().back().type;
}

namespace {

int linkCount(const topo::Network& network, const std::string& router) {
  return static_cast<int>(network.topology.linksOf(router).size());
}

std::string roleOf(const topo::Network& network, const std::string& router) {
  const topo::RouterDecl* decl = network.topology.findRouter(router);
  return decl == nullptr ? std::string{} : decl->role;
}

std::string remoteRouter(const topo::Network& network, net::Ipv4Address peer) {
  return network.topology.routerAt(peer).value_or("");
}

/// Devices carrying an *as-path overwrite* policy bound on some peer, with
/// the prefix-list the policy matches on.
struct OverrideSite {
  std::string device;
  std::string list;
  std::size_t entries;
};

std::vector<OverrideSite> overrideSites(const topo::Network& network) {
  std::vector<OverrideSite> sites;
  for (const auto& [name, device] : network.configs) {
    if (!device.bgp) continue;
    for (const auto& peer : device.bgp->peers) {
      const cfg::RoutePolicy* policy = device.findPolicy(peer.import_policy);
      if (policy == nullptr) continue;
      for (const auto& node : policy->nodes) {
        const bool rewrites = std::any_of(
            node.actions.begin(), node.actions.end(),
            [](const cfg::PolicyAction& action) {
              return action.kind == cfg::PolicyActionKind::kAsPathOverwrite;
            });
        if (!rewrites) continue;
        for (const auto& match : node.matches) {
          const cfg::PrefixList* list = device.findPrefixList(match.prefix_list);
          if (list == nullptr) continue;
          const bool already_catch_all = std::any_of(
              list->entries.begin(), list->entries.end(),
              [](const cfg::PrefixListEntry& entry) {
                return entry.prefix.length() == 0;
              });
          if (already_catch_all) continue;
          sites.push_back(OverrideSite{name, list->name, list->entries.size()});
        }
      }
    }
  }
  return sites;
}

void widenListToCatchAll(topo::Network& network, const OverrideSite& site) {
  cfg::PrefixList* list = network.config(site.device)->findPrefixList(site.list);
  list->entries.clear();
  cfg::PrefixListEntry entry;
  entry.index = 10;
  entry.action = cfg::Action::kPermit;
  entry.prefix = net::Prefix(net::Ipv4Address(0), 0);
  list->entries.push_back(entry);
}

}  // namespace

std::optional<Incident> FaultInjector::inject(const topo::BuiltNetwork& built,
                                              FaultType type) {
  Incident incident;
  incident.type = type;
  incident.network = built.network;  // mutate a copy
  topo::Network& net = incident.network;

  switch (type) {
    case FaultType::kMissingRedistribution: {
      std::vector<const topo::SubnetExpectation*> candidates;
      for (const auto& subnet : built.subnets) {
        if (subnet.via_static) candidates.push_back(&subnet);
      }
      const auto* target = pick(candidates);
      if (target == nullptr) return std::nullopt;
      cfg::DeviceConfig* device = net.config((*target)->router);
      std::erase_if(device->static_routes,
                    [&](const cfg::StaticRouteConfig& sr) {
                      return sr.prefix == (*target)->prefix;
                    });
      std::erase_if(device->bgp->redistributes,
                    [](const cfg::RedistributeConfig& redist) {
                      return redist.source == cfg::RedistSource::kStatic;
                    });
      incident.description = "dropped static route for " +
                             (*target)->prefix.str() +
                             " and 'redistribute static' on " +
                             (*target)->router;
      break;
    }

    case FaultType::kMissingPbrPermit: {
      struct Site {
        std::string device;
        std::string policy;
      };
      std::vector<Site> candidates;
      for (const auto& [name, device] : net.configs) {
        for (const auto& policy : device.pbr_policies) {
          int permits = 0;
          bool has_deny = false;
          for (const auto& rule : policy.rules) {
            if (rule.action == cfg::PbrAction::kPermit) ++permits;
            if (rule.action == cfg::PbrAction::kDeny) has_deny = true;
          }
          if (permits >= 2 && has_deny) {
            candidates.push_back(Site{name, policy.name});
          }
        }
      }
      const auto* target = pick(candidates);
      if (target == nullptr) return std::nullopt;
      cfg::PbrPolicy* policy = net.config(target->device)->findPbr(target->policy);
      // Remove the last two permit rules before the deny.
      int removed = 0;
      for (auto it = policy->rules.rbegin();
           it != policy->rules.rend() && removed < 2;) {
        if (it->action == cfg::PbrAction::kPermit) {
          it = decltype(it)(policy->rules.erase(std::next(it).base()));
          ++removed;
        } else {
          ++it;
        }
      }
      incident.description = "dropped " + std::to_string(removed) +
                             " PBR permit rules from " + target->policy +
                             " on " + target->device;
      break;
    }

    case FaultType::kExtraPbrRedirect: {
      std::vector<std::string> candidates;
      for (const auto& [name, device] : net.configs) {
        if (!device.pbr_policies.empty()) candidates.push_back(name);
      }
      const auto* target = pick(candidates);
      if (target == nullptr) return std::nullopt;
      cfg::DeviceConfig* device = net.config(*target);
      net::Ipv4Address bogus;
      for (const auto& itf : device->interfaces) {
        if (itf.prefix_length < 30) {
          bogus = net::Ipv4Address(itf.connectedPrefix().address().value() + 99);
          break;
        }
      }
      if (bogus.value() == 0) return std::nullopt;
      cfg::PbrRule redirect;
      redirect.index = 5;
      redirect.action = cfg::PbrAction::kRedirect;
      redirect.redirect_next_hop = bogus;
      redirect.destination = *net::Prefix::parse("20.0.0.0/8");
      auto& rules = device->pbr_policies.front().rules;
      rules.insert(rules.begin(), redirect);
      incident.description = "inserted stray PBR redirect to " + bogus.str() +
                             " on " + *target;
      break;
    }

    case FaultType::kMissingPeerGroup:
    case FaultType::kExtraGroupItems: {
      // Pick a device with a policy-bearing peer group; partners are the
      // same-role devices sharing that group and a common neighbor (the
      // other aggs of the pod) — multi-device, multi-line faults.
      struct Site {
        std::string device;
        std::string group;
      };
      std::vector<Site> candidates;
      for (const auto& [name, device] : net.configs) {
        if (!device.bgp) continue;
        for (const auto& group : device.bgp->groups) {
          if (group.import_policy.empty() && group.export_policy.empty())
            continue;
          if (type == FaultType::kMissingPeerGroup) {
            // Prefer a device adjacent to a quarantined subnet's owner so the
            // dropped filter actually leaks something.
            bool adjacent_to_quarantine = false;
            for (const auto& neighbor :
                 net.topology.neighborsOf(name)) {
              for (const auto& subnet : built.subnets) {
                if (subnet.quarantined && subnet.router == neighbor) {
                  adjacent_to_quarantine = true;
                }
              }
            }
            if (!adjacent_to_quarantine) continue;
          }
          candidates.push_back(Site{name, group.name});
        }
      }
      const auto* target = pick(candidates);
      if (target == nullptr) return std::nullopt;
      // Dominant remote role of the group's members on the target device —
      // partners must share a neighbor of *that* role (the pod's ToRs), not
      // merely any neighbor (every agg shares the cores).
      std::string member_role;
      {
        const cfg::DeviceConfig* device = net.config(target->device);
        std::map<std::string, int> roles;
        for (const auto& peer : device->bgp->peers) {
          if (peer.group == target->group) {
            ++roles[roleOf(net, remoteRouter(net, peer.address))];
          }
        }
        if (!roles.empty()) {
          member_role = std::max_element(roles.begin(), roles.end(),
                                         [](const auto& a, const auto& b) {
                                           return a.second < b.second;
                                         })
                            ->first;
        }
      }
      const std::string role = roleOf(net, target->device);
      std::vector<std::string> members{target->device};
      const auto neighbors = net.topology.neighborsOf(target->device);
      for (const auto& [name, device] : net.configs) {
        if (name == target->device || roleOf(net, name) != role) continue;
        if (!device.bgp || device.bgp->findGroup(target->group) == nullptr)
          continue;
        const auto other_neighbors = net.topology.neighborsOf(name);
        const bool shares = std::any_of(
            neighbors.begin(), neighbors.end(), [&](const std::string& n) {
              if (!member_role.empty() && roleOf(net, n) != member_role) {
                return false;
              }
              return std::find(other_neighbors.begin(), other_neighbors.end(),
                               n) != other_neighbors.end();
            });
        if (shares) members.push_back(name);
      }

      if (type == FaultType::kMissingPeerGroup) {
        for (const auto& member : members) {
          cfg::DeviceConfig* device = net.config(member);
          std::erase_if(device->bgp->groups,
                        [&](const cfg::PeerGroupConfig& group) {
                          return group.name == target->group;
                        });
          for (auto& peer : device->bgp->peers) {
            if (peer.group == target->group) peer.group.clear();
          }
        }
        incident.description = "dropped peer group " + target->group + " on " +
                               std::to_string(members.size()) + " device(s)";
      } else {
        if (member_role.empty()) return std::nullopt;
        int added = 0;
        for (const auto& member : members) {
          cfg::DeviceConfig* dev = net.config(member);
          for (auto& peer : dev->bgp->peers) {
            if (!peer.group.empty()) continue;
            if (roleOf(net, remoteRouter(net, peer.address)) != member_role) {
              peer.group = target->group;
              ++added;
            }
          }
        }
        if (added == 0) return std::nullopt;
        incident.description = "wrongly enrolled " + std::to_string(added) +
                               " peer(s) into group " + target->group;
      }
      break;
    }

    case FaultType::kMissingRoutePolicy: {
      // A policy bound on the most sessions loses its definition. Export
      // bindings are preferred: a device that can no longer export anything
      // is visibly broken, while a lost import filter is often masked by
      // path redundancy.
      std::map<std::pair<std::string, std::string>, int> bound;
      for (const auto& [name, device] : net.configs) {
        if (!device.bgp) continue;
        for (const auto& peer : device.bgp->peers) {
          if (!peer.export_policy.empty() &&
              device.findPolicy(peer.export_policy) != nullptr) {
            ++bound[{name, peer.export_policy}];
          }
        }
      }
      if (bound.empty()) {
        for (const auto& [name, device] : net.configs) {
          if (!device.bgp) continue;
          for (const auto& peer : device.bgp->peers) {
            if (!peer.import_policy.empty() &&
                device.findPolicy(peer.import_policy) != nullptr) {
              ++bound[{name, peer.import_policy}];
            }
          }
        }
      }
      if (bound.empty()) return std::nullopt;
      const auto target =
          std::max_element(bound.begin(), bound.end(),
                           [](const auto& a, const auto& b) {
                             return a.second < b.second;
                           })
              ->first;
      cfg::DeviceConfig* device = net.config(target.first);
      std::erase_if(device->policies, [&](const cfg::RoutePolicy& policy) {
        return policy.name == target.second;
      });
      incident.description = "dropped route-policy " + target.second +
                             " definition on " + target.first +
                             " (bindings remain)";
      break;
    }

    case FaultType::kLeftoverRouteMap: {
      // A deny-all maintenance policy left bound on a redundancy-free
      // session (single-homed device).
      struct Site {
        std::string device;
        net::Ipv4Address peer;
      };
      std::vector<Site> candidates;
      for (const auto& [name, device] : net.configs) {
        if (!device.bgp || linkCount(net, name) != 1) continue;
        const cfg::RoutePolicy* maint = device.findPolicy("MAINT");
        if (maint == nullptr) continue;
        for (const auto& peer : device.bgp->peers) {
          if (peer.import_policy.empty()) {
            candidates.push_back(Site{name, peer.address});
          }
        }
      }
      const auto* target = pick(candidates);
      if (target == nullptr) return std::nullopt;
      net.config(target->device)
          ->bgp->findPeer(target->peer)
          ->import_policy = "MAINT";
      incident.description = "left maintenance route-map MAINT enabled on " +
                             target->device + " towards " + target->peer.str();
      break;
    }

    case FaultType::kWrongPeerAs: {
      // Wrong AS number configured towards a single-homed neighbor.
      struct Site {
        std::string device;
        net::Ipv4Address peer;
      };
      std::vector<Site> candidates;
      for (const auto& [name, device] : net.configs) {
        if (!device.bgp) continue;
        for (const auto& peer : device.bgp->peers) {
          const std::string remote = remoteRouter(net, peer.address);
          if (!remote.empty() && linkCount(net, remote) == 1) {
            candidates.push_back(Site{name, peer.address});
          }
        }
      }
      const auto* target = pick(candidates);
      if (target == nullptr) return std::nullopt;
      cfg::PeerConfig* peer =
          net.config(target->device)->bgp->findPeer(target->peer);
      peer->remote_as += 1000;
      incident.description = "corrupted as-number of peer " +
                             target->peer.str() + " on " + target->device;
      break;
    }

    case FaultType::kMissingPrefixListItemsS:
    case FaultType::kMissingPrefixListItemsM: {
      std::vector<OverrideSite> sites = overrideSites(net);
      if (sites.empty()) return std::nullopt;
      if (type == FaultType::kMissingPrefixListItemsS) {
        // Single-line form: one list collapses to the catch-all.
        std::vector<OverrideSite> small;
        for (const auto& site : sites) {
          if (site.entries == 1) small.push_back(site);
        }
        const auto* target = pick(small.empty() ? sites : small);
        widenListToCatchAll(net, *target);
        incident.description = "replaced prefix-list " + target->list + " on " +
                               target->device + " with catch-all 0.0.0.0 0";
      } else {
        // Multi-line form: every override site of the (mirrored) policy —
        // the full Figure-2 incident.
        std::set<std::string> touched;
        for (const auto& site : sites) {
          if (touched.insert(site.device + '/' + site.list).second) {
            widenListToCatchAll(net, site);
          }
        }
        incident.description =
            "replaced " + std::to_string(touched.size()) +
            " override prefix-list(s) with catch-all 0.0.0.0 0";
      }
      break;
    }
  }

  net.renumberAll();
  incident.injected_diff = diffNetworks(built.network, net);
  incident.changed_lines =
      static_cast<int>(cfg::totalChangedLines(incident.injected_diff));
  if (incident.changed_lines == 0) return std::nullopt;
  return incident;
}

}  // namespace acr::inject
