// Fault injection: the nine misconfiguration types of Table 1.
//
// Each injector mutates a known-good generated network the way the paper's
// incident study describes, records the ground-truth diff, and classifies
// the fault as single-line (S) or multi-line (M). The catalog carries the
// paper's observed ratios so campaigns can sample incidents with the same
// distribution.
//
// One documented interpretation: Table 1's "Override to wrong AS number"
// (Policy/S) is injected as a wrong `peer ... as-number` value on a
// redundancy-free (legacy-pod) session — the policy-side variant
// (`apply as-path overwrite <wrong-asn>`) is implemented as a change
// template and unit-tested, but in redundant topologies it rarely produces
// an intent violation to repair.
#pragma once

#include <cstdint>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "topo/generators.hpp"

namespace acr::inject {

enum class FaultType : std::uint8_t {
  kMissingRedistribution,    // Route / M / 20.8%
  kMissingPbrPermit,         // PBR / M / 12.5%
  kExtraPbrRedirect,         // PBR / S / 4.2%
  kMissingPeerGroup,         // Peer / M / 16.6%
  kExtraGroupItems,          // Peer / M / 12.5%
  kMissingRoutePolicy,       // Policy / M / 8.3%
  kLeftoverRouteMap,         // Policy / S / 4.2%
  kWrongPeerAs,              // Policy ("override to wrong AS") / S / 4.2%
  kMissingPrefixListItemsS,  // Policy / S / 4.2%
  kMissingPrefixListItemsM,  // Policy / M / 12.5%
};

struct FaultSpec {
  FaultType type;
  const char* label;     // Table 1 wording
  const char* category;  // Configs column
  bool multi_line;       // Lines column (M/S)
  double ratio;          // Ratio column
  const char* scenario;  // preferred scenario family: "dcn" | "backbone" | "figure2"
};

/// The ten Table-1 rows (the prefix-list row appears twice, S and M).
[[nodiscard]] const std::vector<FaultSpec>& faultCatalog();
[[nodiscard]] const FaultSpec& specOf(FaultType type);
[[nodiscard]] std::string faultTypeName(FaultType type);

struct Incident {
  FaultType type = FaultType::kMissingRedistribution;
  std::string description;
  topo::Network network;  // the faulty network
  /// Ground truth: faulty vs correct configs.
  std::vector<cfg::ConfigDiff> injected_diff;
  int changed_lines = 0;
};

class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed) : rng_(seed) {}

  /// Injects `type` into a copy of `built.network`. Returns nullopt when the
  /// scenario lacks the needed structure (e.g. no PBR policies anywhere).
  [[nodiscard]] std::optional<Incident> inject(const topo::BuiltNetwork& built,
                                               FaultType type);

  /// Samples a fault type following the Table-1 ratio distribution.
  [[nodiscard]] FaultType sampleType();

 private:
  template <typename T>
  const T* pick(const std::vector<T>& items) {
    if (items.empty()) return nullptr;
    std::uniform_int_distribution<std::size_t> dist(0, items.size() - 1);
    return &items[dist(rng_)];
  }

  std::mt19937_64 rng_;
};

}  // namespace acr::inject
