// Route representation shared by the control-plane simulator, the data
// plane and the verifier.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netcore/ipv4.hpp"
#include "netcore/prefix.hpp"
#include "provenance/provenance.hpp"

namespace acr::route {

/// Route origin in administrative-distance order (lower wins).
enum class RouteSource : std::uint8_t {
  kConnected = 0,
  kStatic = 1,
  kBgp = 20,
};

[[nodiscard]] std::string routeSourceName(RouteSource source);

struct Route {
  net::Prefix prefix;
  RouteSource source = RouteSource::kBgp;
  std::vector<std::uint32_t> as_path;
  std::uint32_t local_pref = 100;
  std::uint32_t med = 0;
  /// Advertising neighbor's router name; empty for locally originated routes.
  std::string learned_from;
  /// Dense id of `learned_from` in the simulating topology's router table
  /// (0 = locally originated). Lets the decision process read the
  /// advertising neighbor's router-id from a flat array instead of a map.
  /// Derived state like `ecmp`: excluded from key().
  std::int32_t learned_from_id = 0;
  /// BGP: the neighbor's peering address. Static: the configured next hop.
  /// Connected: 0.
  net::Ipv4Address next_hop;
  prov::DerivationId derivation = prov::kNoDerivation;
  /// Equal-cost alternatives (neighbor name, next hop), including the
  /// selected one — populated only when SimOptions::enable_ecmp is set.
  /// Deliberately excluded from key(): the ECMP set is derived state.
  std::vector<std::pair<std::string, net::Ipv4Address>> ecmp;

  /// Debug rendering of the route's identity fields (excludes the
  /// derivation id, which differs every round by construction). The
  /// engines' convergence/oscillation detection no longer builds these
  /// strings — it compares and hashes packed `RouteEntry` fields
  /// (routing/rib.hpp) — so key() survives only for the flight recorder
  /// and human-facing dumps.
  [[nodiscard]] std::string key() const;

  /// Debug rendering of the AS path ("[65001 65002]"); same caveat as
  /// key() — not on any hot path.
  [[nodiscard]] std::string pathStr() const;
};

}  // namespace acr::route
