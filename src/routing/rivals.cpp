#include "routing/rivals.hpp"

#include <algorithm>

#include "routing/policy_eval.hpp"

namespace acr::route {

std::vector<Rival> collectRivals(const topo::Network& network,
                                 const SimResult& sim,
                                 const std::string& router,
                                 const net::Prefix& prefix) {
  std::vector<Rival> rivals;
  const cfg::DeviceConfig* device = network.config(router);
  if (device == nullptr || !device->bgp) return rivals;
  const topo::RouterDecl* own_decl = network.topology.findRouter(router);
  const std::uint32_t own_asn = own_decl != nullptr ? own_decl->asn : 0;

  for (const Session& session : sim.sessions) {
    if (!session.up) continue;
    if (session.a != router && session.b != router) continue;
    const std::string& neighbor = session.a == router ? session.b : session.a;
    const net::Ipv4Address neighbor_address =
        session.a == router ? session.b_address : session.a_address;
    const net::Ipv4Address own_address =
        session.a == router ? session.a_address : session.b_address;

    const cfg::DeviceConfig* supplier = network.config(neighbor);
    if (supplier == nullptr || !supplier->bgp) continue;
    const std::optional<Route> their_route = sim.rib.routeOf(neighbor, prefix);
    if (!their_route) continue;
    const topo::RouterDecl* supplier_decl =
        network.topology.findRouter(neighbor);
    const std::uint32_t supplier_asn =
        supplier_decl != nullptr ? supplier_decl->asn : 0;

    // Redistribution gate for locally originated routes (the simulator also
    // refuses to leak /30+ transfer subnets learned as connected).
    if (their_route->source == RouteSource::kConnected) {
      if (!supplier->bgp->redistributes_source(cfg::RedistSource::kConnected)) {
        continue;
      }
      if (prefix.length() >= 30) continue;
    } else if (their_route->source == RouteSource::kStatic) {
      if (!supplier->bgp->redistributes_source(cfg::RedistSource::kStatic)) {
        continue;
      }
    }

    Rival rival;
    rival.neighbor = neighbor;
    Route announced = *their_route;
    announced.source = RouteSource::kBgp;
    announced.ecmp.clear();

    // Export policy at the supplier.
    const cfg::PeerConfig* their_peer = supplier->bgp->findPeer(own_address);
    if (their_peer != nullptr) {
      const PolicyBinding binding =
          resolvePolicyBinding(*supplier, *their_peer, Direction::kExport);
      if (binding.bound) {
        rival.lines.insert(rival.lines.end(), binding.lines.begin(),
                           binding.lines.end());
        const PolicyVerdict verdict =
            applyRoutePolicy(*supplier, binding.policy, announced, supplier_asn);
        rival.lines.insert(rival.lines.end(), verdict.lines.begin(),
                           verdict.lines.end());
        if (!verdict.permitted) continue;
        announced = verdict.route;
      }
    }
    if (announced.as_path.empty() || announced.as_path.front() != supplier_asn) {
      announced.as_path.insert(announced.as_path.begin(), supplier_asn);
    }

    // Receiver-side loop prevention.
    if (std::find(announced.as_path.begin(), announced.as_path.end(),
                  own_asn) != announced.as_path.end()) {
      continue;
    }

    announced.local_pref = 100;  // local-pref is not transitive over eBGP
    announced.learned_from = neighbor;
    announced.next_hop = neighbor_address;

    // Import policy at the receiver.
    const cfg::PeerConfig* peer = device->bgp->findPeer(neighbor_address);
    if (peer != nullptr) {
      const PolicyBinding binding =
          resolvePolicyBinding(*device, *peer, Direction::kImport);
      if (binding.bound) {
        rival.lines.insert(rival.lines.end(), binding.lines.begin(),
                           binding.lines.end());
        const PolicyVerdict verdict =
            applyRoutePolicy(*device, binding.policy, announced, own_asn);
        rival.lines.insert(rival.lines.end(), verdict.lines.begin(),
                           verdict.lines.end());
        if (!verdict.permitted) continue;
        announced = verdict.route;
      }
    }

    rival.route = std::move(announced);
    rivals.push_back(std::move(rival));
  }
  return rivals;
}

}  // namespace acr::route
