// Rival enumeration: the routes a router *would* select if its current best
// route for a prefix lost the decision process.
//
// The selective-symbolic layer symbolizes local-pref/MED actions on suspect
// devices; to constrain such a variable ("this route must lose" for a
// failing test, "must keep winning" for a passing one) it needs the
// concrete attributes of the competing candidates. collectRivals() replays
// the simulator's announce path — redistribution gate, export policy, AS
// prepend, receiver loop check, eBGP local-pref reset, import policy — for
// every up session of the router, producing each neighbor's offer with
// post-import attributes, without mutating the simulation.
#pragma once

#include <string>
#include <vector>

#include "config/ast.hpp"
#include "routing/simulator.hpp"
#include "topo/network.hpp"

namespace acr::route {

struct Rival {
  std::string neighbor;
  /// The offered route as it would sit in `router`'s RIB (post-import:
  /// local-pref reset to 100 then import policy applied).
  Route route;
  /// Config lines evaluated exporting + importing the offer (policy nodes,
  /// matched prefix-list entries, binding lines) — lets the caller detect
  /// offers whose attributes flow through a symbolized line.
  std::vector<cfg::LineId> lines;
};

/// Every route `router` is offered for `prefix` by its up BGP sessions,
/// including the one it currently selects. Deterministic order (session
/// order of `sim.sessions`). Routers/prefixes unknown to the simulation
/// yield an empty list.
[[nodiscard]] std::vector<Rival> collectRivals(const topo::Network& network,
                                               const SimResult& sim,
                                               const std::string& router,
                                               const net::Prefix& prefix);

}  // namespace acr::route
