#include "routing/sim_engine.hpp"

#include <algorithm>
#include <utility>

#include "util/metrics.hpp"

namespace acr::route::detail {

namespace {
// ProvenanceRebuilder memo sentinels, outside the valid id space (ids are
// >= 0; kNoDerivation is -1 and a legal stored value).
constexpr prov::DerivationId kCellUnvisited = -2;
constexpr prov::DerivationId kCellInProgress = -3;
}  // namespace

void packedLocalsFor(const std::string& name, const cfg::DeviceConfig& device,
                     SimTables& tables, prov::ProvenanceGraph* provenance,
                     std::vector<PackedLocal>& out) {
  out.clear();
  for (const auto& itf : device.interfaces) {
    PackedLocal local;
    const net::Prefix prefix = itf.connectedPrefix();
    local.pid = tables.prefixes.intern(prefix);
    local.entry.source = RouteSource::kConnected;
    local.entry.present = 1;
    if (provenance != nullptr) {
      local.entry.derivation = provenance->add(prov::Derivation{
          name, prefix, prov::kNoDerivation, {cfg::LineId{name, itf.ip_line}}});
    }
    out.push_back(local);
  }
  for (const auto& sr : device.static_routes) {
    const bool resolvable =
        std::any_of(device.interfaces.begin(), device.interfaces.end(),
                    [&](const cfg::InterfaceConfig& itf) {
                      return itf.connectedPrefix().contains(sr.next_hop);
                    });
    if (!resolvable) continue;  // inactive static route
    PackedLocal local;
    local.pid = tables.prefixes.intern(sr.prefix);
    local.entry.source = RouteSource::kStatic;
    local.entry.next_hop = sr.next_hop.value();
    local.entry.present = 1;
    if (provenance != nullptr) {
      local.entry.derivation = provenance->add(prov::Derivation{
          name, sr.prefix, prov::kNoDerivation, {cfg::LineId{name, sr.line}}});
    }
    out.push_back(local);
  }
}

void EnginePlan::build(std::size_t router_count,
                       const std::vector<const Flow*>& flows) {
  in_flows.assign(router_count, {});
  out_flows.assign(router_count, {});
  flow_slot.assign(flows.size(), 0);
  slots.assign(router_count, kFirstNeighborSlot);
  std::vector<std::map<int, std::uint16_t>> neighbor_slot(router_count);
  for (std::size_t i = 0; i < flows.size(); ++i) {
    const Flow& flow = *flows[i];
    const auto to = static_cast<std::size_t>(flow.to_id);
    const auto from = static_cast<std::size_t>(flow.from_id);
    in_flows[to].push_back(static_cast<std::uint32_t>(i));
    out_flows[from].push_back(static_cast<std::uint32_t>(i));
    const auto [it, inserted] =
        neighbor_slot[to].try_emplace(flow.from_id, slots[to]);
    if (inserted) ++slots[to];
    flow_slot[i] = it->second;
  }
}

void CandidateBoard::configure(const EnginePlan& plan, std::size_t universe) {
  rows_.assign(plan.slots.size(), Row{});
  for (std::size_t rid = 0; rid < rows_.size(); ++rid) {
    rows_[rid].slots = plan.slots[rid];
  }
  universe_ = 0;
  epoch_ = 0;
  growUniverse(universe);
}

void CandidateBoard::growUniverse(std::size_t universe) {
  if (universe <= universe_) return;
  universe_ = universe;
  for (Row& row : rows_) {
    row.cells.resize(universe_ * row.slots);
    row.cell_epoch.resize(universe_ * row.slots, 0);
    row.touched_epoch.resize(universe_, 0);
  }
}

void CandidateBoard::beginRound() {
  ++epoch_;
  for (Row& row : rows_) row.touched.clear();
}

bool CandidateBoard::select(int rid, PrefixId pid, const EntryBetter& better,
                            bool enable_ecmp, RouteEntry& out,
                            EcmpSet& ecmp_out) const {
  const Row& row = rows_[static_cast<std::size_t>(rid)];
  const std::size_t base = static_cast<std::size_t>(pid) * row.slots;
  const RouteEntry* best = nullptr;
  for (std::uint16_t s = 0; s < row.slots; ++s) {
    if (row.cell_epoch[base + s] != epoch_) continue;
    const RouteEntry& candidate = row.cells[base + s];
    if (best == nullptr || better(candidate, *best)) best = &candidate;
  }
  ecmp_out.clear();
  if (best == nullptr) return false;
  out = *best;
  out.present = 1;
  out.has_ecmp = 0;
  if (enable_ecmp && out.source == RouteSource::kBgp) {
    for (std::uint16_t s = 0; s < row.slots; ++s) {
      if (row.cell_epoch[base + s] != epoch_) continue;
      const RouteEntry& candidate = row.cells[base + s];
      if (candidate.source == RouteSource::kBgp &&
          equalCostEntries(candidate, *best)) {
        ecmp_out.emplace_back(candidate.learned_from_id,
                              net::Ipv4Address(candidate.next_hop));
      }
    }
    // Materialization order: (neighbor name, next hop) — the sort order of
    // the old (string, address) pairs.
    const RouterTable& table = *better.table;
    std::sort(ecmp_out.begin(), ecmp_out.end(),
              [&table](const std::pair<std::int32_t, net::Ipv4Address>& a,
                       const std::pair<std::int32_t, net::Ipv4Address>& b) {
                const std::string& na = table.nameOf(a.first);
                const std::string& nb = table.nameOf(b.first);
                if (na != nb) return na < nb;
                return a.second < b.second;
              });
    if (!ecmp_out.empty()) out.has_ecmp = 1;
  }
  return true;
}

bool announceEntryOnFlow(const Flow& flow, PrefixId pid,
                         const RouteEntry& entry, SimTables& tables,
                         prov::ProvenanceGraph* provenance,
                         std::uint64_t* announcements, RouteEntry& out) {
  const cfg::DeviceConfig& exporter = *flow.exporter;
  const net::Prefix& prefix = tables.prefixes.prefixOf(pid);

  // Redistribution gate for locally originated routes.
  if (entry.source == RouteSource::kConnected) {
    if (!exporter.bgp->redistributes_source(cfg::RedistSource::kConnected)) {
      return false;
    }
    if (prefix.length() >= 30) return false;  // never leak transfer subnets
  } else if (entry.source == RouteSource::kStatic) {
    if (!exporter.bgp->redistributes_source(cfg::RedistSource::kStatic)) {
      return false;
    }
  }
  if (announcements != nullptr) ++*announcements;

  const bool record = provenance != nullptr;
  RouteEntry announced = entry;
  announced.source = RouteSource::kBgp;
  announced.has_ecmp = 0;  // derived state, never advertised
  std::vector<cfg::LineId> lines;
  if (record) {
    lines = flow.session_lines;
    lines.insert(lines.end(), flow.export_binding.lines.begin(),
                 flow.export_binding.lines.end());
    if (entry.source != RouteSource::kBgp &&
        exporter.bgp) {  // attribute the redistribute line
      for (const auto& redist : exporter.bgp->redistributes) {
        if ((entry.source == RouteSource::kConnected &&
             redist.source == cfg::RedistSource::kConnected) ||
            (entry.source == RouteSource::kStatic &&
             redist.source == cfg::RedistSource::kStatic)) {
          lines.push_back(cfg::LineId{flow.from, redist.line});
        }
      }
    }
  }
  if (flow.export_binding.bound) {
    if (!applyPreparedPolicy(flow.export_binding.prepared, flow.from, prefix,
                             flow.from_asn, tables.paths, announced,
                             record ? &lines : nullptr)) {
      return false;
    }
  }
  // Prepend own AS unless the overwrite already installed it in front.
  if (announced.as_path_len == 0 ||
      tables.paths.frontOf(announced.as_path_id) != flow.from_asn) {
    announced.as_path_id =
        tables.paths.prepended(announced.as_path_id, flow.from_asn);
    ++announced.as_path_len;
  }

  // Receiver-side loop prevention on the advertised path.
  if (tables.paths.contains(announced.as_path_id, flow.to_asn)) return false;

  out = announced;
  out.local_pref = 100;  // local-pref is not transitive over eBGP
  out.learned_from_id = flow.from_id;
  out.next_hop = flow.from_address.value();
  if (flow.import_binding.bound) {
    if (record) {
      lines.insert(lines.end(), flow.import_binding.lines.begin(),
                   flow.import_binding.lines.end());
    }
    if (!applyPreparedPolicy(flow.import_binding.prepared,
                             flow.importer->hostname, prefix, flow.to_asn,
                             tables.paths, out, record ? &lines : nullptr)) {
      return false;
    }
  }
  if (record) {
    out.derivation = provenance->add(
        prov::Derivation{flow.to, prefix, entry.derivation, std::move(lines)});
  }
  out.present = 1;
  return true;
}

ProvenanceRebuilder::ProvenanceRebuilder(const topo::Network& network,
                                         SimTables& tables,
                                         const std::vector<const Flow*>& flows,
                                         prov::ProvenanceGraph& graph,
                                         EntryAt entry_at, BaseDirty base_dirty)
    : network_(network),
      tables_(tables),
      graph_(graph),
      entry_at_(std::move(entry_at)),
      base_dirty_(std::move(base_dirty)) {
  for (const Flow* flow : flows) {
    flows_between_[{flow->from_id, flow->to_id}].push_back(flow);
  }
  memo_.resize(tables_.routers.names.size());
}

bool ProvenanceRebuilder::fail(const char* reason) {
  if (failure_.empty()) failure_ = reason;
  return false;
}

std::vector<prov::DerivationId>& ProvenanceRebuilder::rowOf(int rid) {
  auto& row = memo_[static_cast<std::size_t>(rid)];
  if (row.size() < tables_.prefixes.size()) {
    row.resize(tables_.prefixes.size(), kCellUnvisited);
  }
  return row;
}

prov::DerivationId ProvenanceRebuilder::idOf(int rid, PrefixId pid) const {
  const auto& row = memo_[static_cast<std::size_t>(rid)];
  if (static_cast<std::size_t>(pid) >= row.size()) return prov::kNoDerivation;
  const prov::DerivationId id = row[pid];
  return id == kCellUnvisited || id == kCellInProgress ? prov::kNoDerivation
                                                       : id;
}

bool ProvenanceRebuilder::canonicalize(int rid, PrefixId pid,
                                       prov::DerivationId& out) {
  if (failed()) return false;
  {
    auto& row = rowOf(rid);
    const prov::DerivationId cached = row[pid];
    // A cycle is impossible for real chains (receiver-side loop prevention
    // makes learned_from a forest per prefix) — hitting one means state and
    // configs disagree.
    if (cached == kCellInProgress) return fail("provenance-divergence");
    if (cached != kCellUnvisited) {
      out = cached;
      return true;
    }
    row[pid] = kCellInProgress;
  }

  const RouteEntry* entry = entry_at_(rid, pid);
  if (entry == nullptr) return fail("provenance-divergence");
  const std::string& name = tables_.routers.nameOf(rid);
  const net::Prefix& prefix = tables_.prefixes.prefixOf(pid);
  prov::DerivationId id = prov::kNoDerivation;
  bool reuse = false;

  if (entry->source == RouteSource::kBgp) {
    prov::DerivationId parent_id = prov::kNoDerivation;
    if (!canonicalize(entry->learned_from_id, pid, parent_id)) return false;
    const RouteEntry* parent = entry_at_(entry->learned_from_id, pid);
    if (parent == nullptr) return fail("provenance-divergence");
    // Clean parent chains return the parent's stored id unchanged; fresh
    // ids are appended past the anchor segment, so equality here means the
    // whole ancestor chain is clean.
    reuse = !base_dirty_(rid, pid) && parent_id == parent->derivation;
    if (reuse) {
      id = entry->derivation;
    } else {
      RouteEntry parent_input = *parent;
      parent_input.derivation = parent_id;
      // Reproduce the announcement: walk the parallel flows in order and
      // keep the last whose output state-matches the stored best (same-slot
      // staging overwrites, so the last writer is the recorded one).
      const auto it = flows_between_.find({entry->learned_from_id, rid});
      if (it == flows_between_.end()) return fail("provenance-divergence");
      const Flow* chosen = nullptr;
      RouteEntry probe;
      for (const Flow* flow : it->second) {
        if (announceEntryOnFlow(*flow, pid, parent_input, tables_, nullptr,
                                nullptr, probe) &&
            sameEntryState(probe, *entry)) {
          chosen = flow;
        }
      }
      if (chosen == nullptr) return fail("provenance-divergence");
      RouteEntry rebuilt;
      if (!announceEntryOnFlow(*chosen, pid, parent_input, tables_, &graph_,
                               nullptr, rebuilt)) {
        return fail("provenance-divergence");
      }
      id = rebuilt.derivation;
    }
  } else {
    reuse = !base_dirty_(rid, pid);
    if (reuse) {
      id = entry->derivation;
    } else {
      // Reproduce the local origin the way packedLocalsFor records it:
      // interfaces then resolvable statics, last match wins.
      const cfg::DeviceConfig* device = network_.config(name);
      if (device == nullptr) return fail("provenance-divergence");
      int line = -1;
      if (entry->source == RouteSource::kConnected) {
        for (const auto& itf : device->interfaces) {
          if (itf.connectedPrefix() == prefix) line = itf.ip_line;
        }
      } else if (entry->source == RouteSource::kStatic) {
        for (const auto& sr : device->static_routes) {
          const bool resolvable = std::any_of(
              device->interfaces.begin(), device->interfaces.end(),
              [&](const cfg::InterfaceConfig& itf) {
                return itf.connectedPrefix().contains(sr.next_hop);
              });
          if (resolvable && sr.prefix == prefix &&
              sr.next_hop.value() == entry->next_hop) {
            line = sr.line;
          }
        }
      }
      if (line < 0) return fail("provenance-divergence");
      id = graph_.add(prov::Derivation{
          name, prefix, prov::kNoDerivation, {cfg::LineId{name, line}}});
    }
  }

  if (reuse) {
    ++reused_;
  } else {
    ++fresh_;
  }
  rowOf(rid)[pid] = id;
  out = id;
  return true;
}

void FullEngine::sizeState(State& state) const {
  state.pages.assign(tables_->routers.names.size(), {});
  state.ecmp.assign(tables_->routers.names.size(), {});
  for (const int rid : config_rids_) {
    state.pages[static_cast<std::size_t>(rid)].assign(universe_, RouteEntry{});
  }
}

void FullEngine::prime() {
  tables_ = seedTables(network_);
  universe_ = tables_->prefixes.size();

  for (const auto& link : network_.topology.links()) {
    result_.sessions.push_back(sessionForLink(network_, link));
  }
  flows_storage_ = buildFlows(network_, result_.sessions, tables_->routers);
  flows_.clear();
  flows_.reserve(flows_storage_.size());
  for (const Flow& flow : flows_storage_) flows_.push_back(&flow);

  plan_.build(tables_->routers.names.size(), flows_);
  board_.configure(plan_, universe_);
  better_ = EntryBetter{&tables_->routers};

  // Locals in config-map order — provenance ids depend on this order.
  prov::ProvenanceGraph* provenance =
      options_.record_provenance ? &result_.provenance : nullptr;
  config_rids_.clear();
  locals_.assign(tables_->routers.names.size(), {});
  for (const auto& [name, device] : network_.configs) {
    const int rid = tables_->routers.idOf(name);
    config_rids_.push_back(rid);
    packedLocalsFor(name, device, *tables_, provenance, locals_[rid]);
  }

  sizeState(cur_);
  sizeState(nxt_);
  sizeState(prev_);

  // Round 0: local routes only.
  board_.beginRound();
  for (const int rid : config_rids_) {
    for (const PackedLocal& local : locals_[rid]) board_.stageLocal(rid, local);
  }
  selectRoundInto(cur_);

  hash_history_.clear();
  hash_history_.emplace_back(hashOf(cur_), 0);
}

void FullEngine::selectRoundInto(State& dst) {
  for (const int rid : config_rids_) {
    auto& page = dst.pages[static_cast<std::size_t>(rid)];
    auto& ecmp = dst.ecmp[static_cast<std::size_t>(rid)];
    page.assign(universe_, RouteEntry{});
    ecmp.clear();
    for (const PrefixId pid : board_.touched(rid)) {
      RouteEntry selected;
      if (!board_.select(rid, pid, better_, options_.enable_ecmp, selected,
                         ecmp_scratch_)) {
        continue;
      }
      page[pid] = selected;
      if (!ecmp_scratch_.empty()) ecmp[pid] = ecmp_scratch_;
    }
  }
}

void FullEngine::computeRoundInto(const State& src, State& dst, bool record) {
  board_.beginRound();
  for (const int rid : config_rids_) {
    for (const PackedLocal& local : locals_[rid]) board_.stageLocal(rid, local);
  }
  // `record` is false only while re-walking an already-simulated cycle
  // window, where the announcement count and provenance must not grow.
  prov::ProvenanceGraph* provenance =
      record && options_.record_provenance ? &result_.provenance : nullptr;
  std::uint64_t* announcements = record ? &result_.announcements : nullptr;
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    const Flow& flow = *flows_[i];
    const auto& from_page = src.pages[static_cast<std::size_t>(flow.from_id)];
    const std::uint16_t slot = plan_.flow_slot[i];
    for (std::size_t pid = 0; pid < from_page.size(); ++pid) {
      const RouteEntry& entry = from_page[pid];
      if (entry.present == 0) continue;
      RouteEntry imported;
      if (announceEntryOnFlow(flow, static_cast<PrefixId>(pid), entry,
                              *tables_, provenance, announcements, imported)) {
        board_.stage(flow.to_id, slot, static_cast<PrefixId>(pid), imported);
      }
    }
  }
  selectRoundInto(dst);
}

std::uint64_t FullEngine::hashOf(const State& state) const {
  std::uint64_t hash = 0;
  for (const int rid : config_rids_) {
    const auto& page = state.pages[static_cast<std::size_t>(rid)];
    for (std::size_t pid = 0; pid < page.size(); ++pid) {
      if (page[pid].present == 0) continue;
      hash ^= entryStateHash(rid, static_cast<PrefixId>(pid), page[pid]);
    }
  }
  return hash;
}

bool FullEngine::statesEqual(const State& a, const State& b) const {
  for (const int rid : config_rids_) {
    const auto& pa = a.pages[static_cast<std::size_t>(rid)];
    const auto& pb = b.pages[static_cast<std::size_t>(rid)];
    for (std::size_t pid = 0; pid < pa.size(); ++pid) {
      if (!sameEntryState(pa[pid], pb[pid])) return false;
    }
  }
  return true;
}

void FullEngine::diffStatesBoth(const State& a, const State& b) {
  for (const int rid : config_rids_) {
    const auto& pa = a.pages[static_cast<std::size_t>(rid)];
    const auto& pb = b.pages[static_cast<std::size_t>(rid)];
    for (std::size_t pid = 0; pid < pa.size(); ++pid) {
      const bool in_a = pa[pid].present != 0;
      const bool in_b = pb[pid].present != 0;
      if (in_a ? (!in_b || !sameEntryState(pa[pid], pb[pid])) : in_b) {
        result_.flapping.insert(
            tables_->prefixes.prefixOf(static_cast<PrefixId>(pid)));
      }
    }
  }
}

void FullEngine::adoptRib(State&& state) {
  Rib rib(tables_, config_rids_);
  for (const int rid : config_rids_) {
    RibPage page;
    page.entries = std::move(state.pages[static_cast<std::size_t>(rid)]);
    for (const RouteEntry& entry : page.entries) {
      if (entry.present != 0) ++page.live;
    }
    page.ecmp = std::move(state.ecmp[static_cast<std::size_t>(rid)]);
    rib.installPage(rid, std::move(page));
  }
  result_.rib = std::move(rib);

  util::MetricsRegistry& metrics = util::MetricsRegistry::global();
  metrics.counter("sim.layout.interned_prefixes").add(tables_->prefixes.size());
  metrics.counter("sim.layout.interned_paths").add(tables_->paths.size());
  metrics.counter("sim.layout.interned_bytes")
      .add(tables_->prefixes.bytes() + tables_->paths.bytes());
  metrics.counter("sim.layout.rib_page_bytes").add(result_.rib.pageBytes());
}

void FullEngine::canonicalizeProvenance(State& state) {
  prov::ProvenanceGraph canonical;
  ProvenanceRebuilder rebuilder(
      network_, *tables_, flows_, canonical,
      [&state](int rid, PrefixId pid) -> const RouteEntry* {
        const auto& page = state.pages[static_cast<std::size_t>(rid)];
        if (static_cast<std::size_t>(pid) >= page.size()) return nullptr;
        const RouteEntry& entry = page[pid];
        return entry.present != 0 ? &entry : nullptr;
      },
      [](int, PrefixId) { return true; });
  for (const int rid : config_rids_) {
    const auto& page = state.pages[static_cast<std::size_t>(rid)];
    for (std::size_t pid = 0; pid < page.size(); ++pid) {
      if (page[pid].present == 0) continue;
      prov::DerivationId id = prov::kNoDerivation;
      if (!rebuilder.canonicalize(rid, static_cast<PrefixId>(pid), id)) {
        // Reproduction failed (a policy masked the input difference away,
        // or configs and fixpoint disagree): keep the per-round graph —
        // correct, just bigger and not delta-shareable.
        util::MetricsRegistry::global()
            .counter("sim.provenance.canonical_bail")
            .add(1);
        return;
      }
    }
  }
  // Patch ids only after every cell succeeded, so a bail leaves the state
  // pointing wholly into the per-round graph.
  for (const int rid : config_rids_) {
    auto& page = state.pages[static_cast<std::size_t>(rid)];
    for (std::size_t pid = 0; pid < page.size(); ++pid) {
      if (page[pid].present == 0) continue;
      page[pid].derivation = rebuilder.idOf(rid, static_cast<PrefixId>(pid));
    }
  }
  util::MetricsRegistry::global()
      .counter("sim.provenance.canonical_nodes")
      .add(canonical.size());
  // Born frozen: anchors fork in O(1) without caller cooperation.
  canonical.freeze();
  result_.provenance = std::move(canonical);
}

FullEngine::StepOutcome FullEngine::step() {
  computeRoundInto(cur_, nxt_, /*record=*/true);
  if (statesEqual(cur_, nxt_)) return StepOutcome::kConverged;
  last_hash_ = hashOf(nxt_);
  // History is hashes, not states (rounds are capped, so a linear scan
  // beats a node-allocating hash map).
  for (const auto& [hash, round] : hash_history_) {
    if (hash == last_hash_) {
      repeated_round_ = round;
      return StepOutcome::kOscillating;
    }
  }
  std::swap(prev_, cur_);
  std::swap(cur_, nxt_);
  return StepOutcome::kAdvanced;
}

SimResult FullEngine::run() {
  prime();

  for (int round = 1; round <= options_.max_rounds; ++round) {
    result_.rounds = round;
    const StepOutcome outcome = step();

    if (outcome == StepOutcome::kConverged) {
      result_.converged = true;
      if (options_.record_provenance) canonicalizeProvenance(nxt_);
      adoptRib(std::move(nxt_));
      return std::move(result_);
    }

    if (outcome == StepOutcome::kOscillating) {
      // Oscillation: this state was first reached at round
      // `repeated_round_`, so the orbit is periodic with this cycle length.
      // Re-walk the cycle once (recording off) to recover the window states
      // and flag every prefix whose best differs anywhere inside it.
      const int cycle_length = round - repeated_round_;
      util::MetricsRegistry::global().counter("sim.full.history_ribs").add(1);
      State representative = nxt_;
      State walker = nxt_;  // the one retained history copy
      State scratch;
      sizeState(scratch);
      for (int step_i = 0; step_i + 1 < cycle_length; ++step_i) {
        computeRoundInto(walker, scratch, /*record=*/false);
        diffStatesBoth(representative, scratch);
        std::swap(walker, scratch);
      }
      result_.converged = false;
      adoptRib(std::move(representative));
      return std::move(result_);
    }

    hash_history_.emplace_back(last_hash_, round);
  }

  // Round cap hit without a detected cycle: report the prefixes still in
  // motion between the last two rounds as flapping.
  result_.converged = false;
  for (const int rid : config_rids_) {
    const auto& cur_page = cur_.pages[static_cast<std::size_t>(rid)];
    const auto& prev_page = prev_.pages[static_cast<std::size_t>(rid)];
    for (std::size_t pid = 0; pid < cur_page.size(); ++pid) {
      if (cur_page[pid].present == 0) continue;
      if (prev_page[pid].present == 0 ||
          !sameEntryState(cur_page[pid], prev_page[pid])) {
        result_.flapping.insert(
            tables_->prefixes.prefixOf(static_cast<PrefixId>(pid)));
      }
    }
  }
  adoptRib(std::move(cur_));
  return std::move(result_);
}

}  // namespace acr::route::detail
