#include "routing/simulator.hpp"

#include <mutex>
#include <unordered_map>
#include <utility>

#include "netcore/prefix_trie.hpp"
#include "obs/trace.hpp"
#include "routing/sim_internal.hpp"
#include "util/metrics.hpp"

namespace acr::route {

struct SimResult::LookupCache {
  std::mutex mutex;
  /// Per-router FIB tries over the owner's `rib` entries, built on first
  /// lookup for that router. Values point into the rib map's node storage,
  /// which is stable as long as the rib is not mutated.
  std::map<std::string, net::PrefixTrie<const Route*>> fib;
  bool flapping_built = false;
  net::PrefixTrie<bool> flapping;
};

SimResult::SimResult() : cache_(std::make_shared<LookupCache>()) {}
SimResult::~SimResult() = default;

SimResult::SimResult(const SimResult& other)
    : converged(other.converged),
      rounds(other.rounds),
      flapping(other.flapping),
      rib(other.rib),
      provenance(other.provenance),
      sessions(other.sessions),
      announcements(other.announcements),
      cache_(std::make_shared<LookupCache>()) {}

SimResult& SimResult::operator=(const SimResult& other) {
  if (this == &other) return *this;
  converged = other.converged;
  rounds = other.rounds;
  flapping = other.flapping;
  rib = other.rib;
  provenance = other.provenance;
  sessions = other.sessions;
  announcements = other.announcements;
  cache_ = std::make_shared<LookupCache>();
  return *this;
}

SimResult::SimResult(SimResult&& other) noexcept = default;
SimResult& SimResult::operator=(SimResult&& other) noexcept = default;

const Route* SimResult::lookup(const std::string& router,
                               net::Ipv4Address destination) const {
  const auto it = rib.find(router);
  if (it == rib.end()) return nullptr;
  if (!cache_) cache_ = std::make_shared<LookupCache>();  // moved-from revival
  std::lock_guard<std::mutex> lock(cache_->mutex);
  auto [entry, inserted] = cache_->fib.try_emplace(router);
  if (inserted) {
    for (const auto& [prefix, route] : it->second) {
      entry->second.insert(prefix, &route);
    }
  }
  const Route* const* found = entry->second.longestMatch(destination);
  return found != nullptr ? *found : nullptr;
}

void SimResult::dropLookupPages(const std::set<std::string>& routers) const {
  if (!cache_) return;
  std::lock_guard<std::mutex> lock(cache_->mutex);
  for (const std::string& router : routers) {
    cache_->fib.erase(router);
  }
}

bool SimResult::isFlapping(net::Ipv4Address destination) const {
  if (flapping.empty()) return false;
  if (!cache_) cache_ = std::make_shared<LookupCache>();  // moved-from revival
  std::lock_guard<std::mutex> lock(cache_->mutex);
  if (!cache_->flapping_built) {
    for (const net::Prefix& prefix : flapping) {
      cache_->flapping.insert(prefix, true);
    }
    cache_->flapping_built = true;
  }
  return cache_->flapping.longestMatch(destination) != nullptr;
}

std::vector<Session> Simulator::computeSessions() const {
  std::vector<Session> sessions;
  for (const auto& link : network_.topology.links()) {
    sessions.push_back(detail::sessionForLink(network_, link));
  }
  return sessions;
}

namespace {

/// The cycle-window diff: prefixes present-and-different or present-on-one-
/// side-only between the representative state and another window state.
void diffCycleStates(std::set<net::Prefix>& flapping, const Rib& representative,
                     const Rib& other_state) {
  for (const auto& [router, routes] : representative) {
    const auto other_it = other_state.find(router);
    static const std::map<net::Prefix, Route> kEmpty;
    const auto& other = other_it == other_state.end() ? kEmpty : other_it->second;
    for (const auto& [prefix, route] : routes) {
      const auto it = other.find(prefix);
      if (it == other.end() || !detail::sameRouteState(it->second, route)) {
        flapping.insert(prefix);
      }
    }
    for (const auto& [prefix, route] : other) {
      if (routes.find(prefix) == routes.end()) {
        flapping.insert(prefix);
      }
    }
  }
}

}  // namespace

SimResult Simulator::run(const SimOptions& options) const {
  obs::Span span("sim.full");
  SimResult result;
  const detail::RouterTable table(network_.topology);
  result.sessions = computeSessions();
  const std::vector<detail::Flow> flows =
      detail::buildFlows(network_, result.sessions, table);

  // Local routes (connected + resolvable static), with their derivations.
  const std::map<std::string, std::vector<Route>> local_routes =
      detail::computeLocalRoutes(
          network_, options.record_provenance ? &result.provenance : nullptr);

  const detail::RouteBetter better{&table};

  // Round 0: local routes only.
  Rib bests;
  for (const auto& [name, device] : network_.configs) {
    detail::Candidates candidates;
    for (const auto& route : local_routes.at(name)) {
      candidates[route.prefix]
                [detail::kLocalOrigin + routeSourceName(route.source)] = route;
    }
    detail::selectBests(candidates, bests[name], better, options.enable_ecmp);
  }

  // One synchronous round: candidates are locals plus the announcements
  // computed from `current` (the previous round's bests). `record` is false
  // only while re-walking an already-simulated cycle window, where the
  // announcement count and provenance must not grow.
  const auto computeRound = [&](const Rib& current, bool record) {
    std::map<std::string, detail::Candidates> next;
    for (const auto& [name, routes] : local_routes) {
      for (const auto& route : routes) {
        next[name][route.prefix]
            [detail::kLocalOrigin + routeSourceName(route.source)] = route;
      }
    }
    prov::ProvenanceGraph* provenance =
        record && options.record_provenance ? &result.provenance : nullptr;
    std::uint64_t* announcements = record ? &result.announcements : nullptr;
    for (const detail::Flow& flow : flows) {
      const auto from_it = current.find(flow.from);
      if (from_it == current.end()) continue;
      for (const auto& [prefix, route] : from_it->second) {
        auto imported = detail::announceOnFlow(flow, prefix, route, provenance,
                                               announcements);
        if (imported) next[flow.to][prefix][flow.from] = std::move(*imported);
      }
    }
    Rib new_bests;
    for (const auto& [name, device] : network_.configs) {
      detail::selectBests(next[name], new_bests[name], better,
                          options.enable_ecmp);
    }
    return new_bests;
  };

  // History is hashes, not states: convergence is an exact compare against
  // the immediately preceding round, oscillation detection a 64-bit RIB
  // hash seen before. Only two states are ever held (`bests` and
  // `previous`, for the round-cap diff); the cycle window is re-derived on
  // the rare oscillation path instead of retained every round.
  std::unordered_map<std::uint64_t, int> round_of_hash;
  round_of_hash.emplace(detail::ribHash(bests), 0);
  Rib previous;

  for (int round = 1; round <= options.max_rounds; ++round) {
    result.rounds = round;
    Rib new_bests = computeRound(bests, /*record=*/true);

    if (detail::ribEqualByKey(new_bests, bests)) {
      result.converged = true;
      result.rib = std::move(new_bests);
      return result;
    }

    const std::uint64_t hash = detail::ribHash(new_bests);
    const auto [seen, inserted] = round_of_hash.emplace(hash, round);
    if (!inserted) {
      // Oscillation: this state was first reached at round `seen->second`,
      // so the orbit is periodic with this cycle length. Re-walk the cycle
      // once (recording off) to recover the window states and flag every
      // prefix whose best differs anywhere inside it.
      const int cycle_length = round - seen->second;
      util::MetricsRegistry::global().counter("sim.full.history_ribs").add(1);
      Rib representative = std::move(new_bests);
      Rib walker = representative;  // the one retained history copy
      for (int step = 0; step + 1 < cycle_length; ++step) {
        walker = computeRound(walker, /*record=*/false);
        diffCycleStates(result.flapping, representative, walker);
      }
      result.converged = false;
      result.rib = std::move(representative);
      return result;
    }

    previous = std::move(bests);
    bests = std::move(new_bests);
  }

  // Round cap hit without a detected cycle: report the prefixes still in
  // motion between the last two rounds as flapping.
  result.converged = false;
  for (const auto& [router, routes] : bests) {
    const auto other_it = previous.find(router);
    static const std::map<net::Prefix, Route> kEmpty;
    const auto& other = other_it == previous.end() ? kEmpty : other_it->second;
    for (const auto& [prefix, route] : routes) {
      const auto it = other.find(prefix);
      if (it == other.end() || !detail::sameRouteState(it->second, route)) {
        result.flapping.insert(prefix);
      }
    }
  }
  result.rib = std::move(bests);
  return result;
}

}  // namespace acr::route
