#include "routing/simulator.hpp"

#include <algorithm>
#include <functional>
#include <unordered_map>

#include "routing/policy_eval.hpp"

namespace acr::route {

namespace {

struct RouterInfo {
  std::uint32_t asn = 0;
  net::Ipv4Address router_id;
};

/// Candidate routes of one router: origin key -> route. Origin keys are
/// "neighbor name" for BGP candidates and reserved tags for local routes.
using Candidates = std::map<net::Prefix, std::map<std::string, Route>>;

constexpr const char* kLocalOrigin = "";

/// One established session direction, with the resolved policy bindings.
struct Flow {
  std::string from;
  std::string to;
  net::Ipv4Address from_address;  // next hop the receiver will use
  const cfg::PeerConfig* exporter_peer = nullptr;  // on `from`, towards `to`
  const cfg::PeerConfig* importer_peer = nullptr;  // on `to`, towards `from`
  std::vector<cfg::LineId> session_lines;          // peer as-number lines
};

std::string snapshotOf(const Rib& rib) {
  std::string out;
  for (const auto& [router, routes] : rib) {
    out += router;
    out += '\n';
    for (const auto& [prefix, route] : routes) {
      out += route.key();
      out += '\n';
    }
  }
  return out;
}

}  // namespace

const Route* SimResult::lookup(const std::string& router,
                               net::Ipv4Address destination) const {
  const auto it = rib.find(router);
  if (it == rib.end()) return nullptr;
  const Route* best = nullptr;
  for (const auto& [prefix, route] : it->second) {
    if (!prefix.contains(destination)) continue;
    if (best == nullptr || prefix.length() > best->prefix.length()) {
      best = &route;
    }
  }
  return best;
}

bool SimResult::isFlapping(net::Ipv4Address destination) const {
  return std::any_of(flapping.begin(), flapping.end(),
                     [&](const net::Prefix& prefix) {
                       return prefix.contains(destination);
                     });
}

std::vector<Session> Simulator::computeSessions() const {
  std::vector<Session> sessions;
  const topo::Topology& topology = network_.topology;
  for (const auto& link : topology.links()) {
    Session session;
    session.a = link.a;
    session.b = link.b;
    session.a_address = link.addressOf(link.a);
    session.b_address = link.addressOf(link.b);
    const cfg::DeviceConfig* ca = network_.config(link.a);
    const cfg::DeviceConfig* cb = network_.config(link.b);
    const topo::RouterDecl* ra = topology.findRouter(link.a);
    const topo::RouterDecl* rb = topology.findRouter(link.b);
    const auto check = [&](const cfg::DeviceConfig* self,
                           net::Ipv4Address peer_address,
                           const topo::RouterDecl* peer_router,
                           const std::string& self_name) -> std::string {
      if (self == nullptr || !self->bgp) {
        return "no bgp configuration on " + self_name;
      }
      const cfg::PeerConfig* peer = self->bgp->findPeer(peer_address);
      if (peer == nullptr) {
        return "no peer statement for " + peer_address.str() + " on " +
               self_name;
      }
      if (peer->remote_as != peer_router->asn) {
        return "as-number mismatch on " + self_name + ": configured " +
               std::to_string(peer->remote_as) + ", remote is " +
               std::to_string(peer_router->asn);
      }
      return {};
    };
    std::string reason = check(ca, session.b_address, rb, link.a);
    if (reason.empty()) reason = check(cb, session.a_address, ra, link.b);
    session.up = reason.empty();
    session.down_reason = reason;
    sessions.push_back(session);
  }
  return sessions;
}

SimResult Simulator::run(const SimOptions& options) const {
  SimResult result;
  const topo::Topology& topology = network_.topology;

  std::map<std::string, RouterInfo> info;
  for (const auto& router : topology.routers()) {
    info[router.name] = RouterInfo{router.asn, router.router_id};
  }

  result.sessions = computeSessions();

  // Build directed flows for the established sessions.
  std::vector<Flow> flows;
  for (const auto& session : result.sessions) {
    if (!session.up) continue;
    for (const auto& [from, to, from_addr, to_addr] :
         {std::tuple{session.a, session.b, session.a_address,
                     session.b_address},
          std::tuple{session.b, session.a, session.b_address,
                     session.a_address}}) {
      Flow flow;
      flow.from = from;
      flow.to = to;
      flow.from_address = from_addr;
      const cfg::DeviceConfig* exporter = network_.config(from);
      const cfg::DeviceConfig* importer = network_.config(to);
      flow.exporter_peer = exporter->bgp->findPeer(to_addr);
      flow.importer_peer = importer->bgp->findPeer(from_addr);
      flow.session_lines = {
          cfg::LineId{from, flow.exporter_peer->as_line},
          cfg::LineId{to, flow.importer_peer->as_line},
      };
      flows.push_back(flow);
    }
  }

  // Local routes (connected + resolvable static), with their derivations.
  std::map<std::string, std::vector<Route>> local_routes;
  for (const auto& [name, device] : network_.configs) {
    std::vector<Route>& routes = local_routes[name];
    for (const auto& itf : device.interfaces) {
      Route route;
      route.prefix = itf.connectedPrefix();
      route.source = RouteSource::kConnected;
      if (options.record_provenance) {
        route.derivation = result.provenance.add(prov::Derivation{
            name, route.prefix, prov::kNoDerivation,
            {cfg::LineId{name, itf.ip_line}}});
      }
      routes.push_back(route);
    }
    for (const auto& sr : device.static_routes) {
      const bool resolvable =
          std::any_of(device.interfaces.begin(), device.interfaces.end(),
                      [&](const cfg::InterfaceConfig& itf) {
                        return itf.connectedPrefix().contains(sr.next_hop);
                      });
      if (!resolvable) continue;  // inactive static route
      Route route;
      route.prefix = sr.prefix;
      route.source = RouteSource::kStatic;
      route.next_hop = sr.next_hop;
      if (options.record_provenance) {
        route.derivation = result.provenance.add(prov::Derivation{
            name, route.prefix, prov::kNoDerivation,
            {cfg::LineId{name, sr.line}}});
      }
      routes.push_back(route);
    }
  }

  // Decision process.
  const auto better = [&](const Route& a, const Route& b) {
    // Returns true when `a` is preferred over `b`.
    if (a.source != b.source) return a.source < b.source;
    if (a.local_pref != b.local_pref) return a.local_pref > b.local_pref;
    if (a.as_path.size() != b.as_path.size()) {
      return a.as_path.size() < b.as_path.size();
    }
    if (a.med != b.med) return a.med < b.med;
    const net::Ipv4Address id_a = info[a.learned_from].router_id;
    const net::Ipv4Address id_b = info[b.learned_from].router_id;
    if (id_a != id_b) return id_a < id_b;
    return a.learned_from < b.learned_from;
  };

  // Routes tie for ECMP when everything ahead of the router-id tiebreak is
  // equal.
  const auto equalCost = [](const Route& a, const Route& b) {
    return a.source == b.source && a.local_pref == b.local_pref &&
           a.as_path.size() == b.as_path.size() && a.med == b.med;
  };

  const auto selectBests = [&](const Candidates& candidates,
                               std::map<net::Prefix, Route>& bests) {
    bests.clear();
    for (const auto& [prefix, options_for_prefix] : candidates) {
      const Route* best = nullptr;
      for (const auto& [origin, route] : options_for_prefix) {
        if (best == nullptr || better(route, *best)) best = &route;
      }
      if (best == nullptr) continue;
      Route selected = *best;
      selected.ecmp.clear();
      if (options.enable_ecmp && selected.source == RouteSource::kBgp) {
        for (const auto& [origin, route] : options_for_prefix) {
          if (route.source == RouteSource::kBgp && equalCost(route, *best)) {
            selected.ecmp.emplace_back(route.learned_from, route.next_hop);
          }
        }
        std::sort(selected.ecmp.begin(), selected.ecmp.end());
      }
      bests.emplace(prefix, std::move(selected));
    }
  };

  // Round 0: local routes only.
  std::map<std::string, Candidates> candidates;
  for (const auto& [name, routes] : local_routes) {
    for (const auto& route : routes) {
      candidates[name][route.prefix][kLocalOrigin + routeSourceName(
                                         route.source)] = route;
    }
  }
  Rib bests;
  for (const auto& [name, device] : network_.configs) {
    selectBests(candidates[name], bests[name]);
  }

  std::vector<std::string> snapshots{snapshotOf(bests)};
  std::vector<Rib> states{bests};

  for (int round = 1; round <= options.max_rounds; ++round) {
    result.rounds = round;
    // Rebuild candidates: locals plus this round's announcements, computed
    // from the previous round's bests (synchronous model).
    std::map<std::string, Candidates> next;
    for (const auto& [name, routes] : local_routes) {
      for (const auto& route : routes) {
        next[name][route.prefix][kLocalOrigin + routeSourceName(
                                     route.source)] = route;
      }
    }

    for (const Flow& flow : flows) {
      const cfg::DeviceConfig& exporter = *network_.config(flow.from);
      const cfg::DeviceConfig& importer = *network_.config(flow.to);
      const std::uint32_t from_asn = info[flow.from].asn;
      const std::uint32_t to_asn = info[flow.to].asn;
      const PolicyBinding export_binding = resolvePolicyBinding(
          exporter, *flow.exporter_peer, Direction::kExport);
      const PolicyBinding import_binding = resolvePolicyBinding(
          importer, *flow.importer_peer, Direction::kImport);

      for (const auto& [prefix, route] : bests[flow.from]) {
        // Redistribution gate for locally originated routes.
        if (route.source == RouteSource::kConnected) {
          if (!exporter.bgp->redistributes_source(cfg::RedistSource::kConnected))
            continue;
          if (prefix.length() >= 30) continue;  // never leak transfer subnets
        } else if (route.source == RouteSource::kStatic) {
          if (!exporter.bgp->redistributes_source(cfg::RedistSource::kStatic))
            continue;
        }
        ++result.announcements;

        Route announced = route;
        announced.source = RouteSource::kBgp;
        announced.ecmp.clear();  // derived state, never advertised
        std::vector<cfg::LineId> lines = flow.session_lines;
        if (options.record_provenance) {
          lines.insert(lines.end(), export_binding.lines.begin(),
                       export_binding.lines.end());
          if (route.source != RouteSource::kBgp &&
              exporter.bgp) {  // attribute the redistribute line
            for (const auto& redist : exporter.bgp->redistributes) {
              if ((route.source == RouteSource::kConnected &&
                   redist.source == cfg::RedistSource::kConnected) ||
                  (route.source == RouteSource::kStatic &&
                   redist.source == cfg::RedistSource::kStatic)) {
                lines.push_back(cfg::LineId{flow.from, redist.line});
              }
            }
          }
        }
        if (export_binding.bound) {
          PolicyVerdict verdict = applyRoutePolicy(
              exporter, export_binding.policy, announced, from_asn);
          if (options.record_provenance) {
            for (auto& line : verdict.lines) line.device = flow.from;
            lines.insert(lines.end(), verdict.lines.begin(),
                         verdict.lines.end());
          }
          if (!verdict.permitted) continue;
          announced = verdict.route;
        }
        // Prepend own AS unless the overwrite already installed it in front.
        if (announced.as_path.empty() || announced.as_path.front() != from_asn) {
          announced.as_path.insert(announced.as_path.begin(), from_asn);
        }

        // Receiver-side loop prevention on the advertised path.
        if (std::find(announced.as_path.begin(), announced.as_path.end(),
                      to_asn) != announced.as_path.end()) {
          continue;
        }

        Route imported = announced;
        imported.local_pref = 100;  // local-pref is not transitive over eBGP
        imported.learned_from = flow.from;
        imported.next_hop = flow.from_address;
        if (import_binding.bound) {
          lines.insert(lines.end(), import_binding.lines.begin(),
                       import_binding.lines.end());
          PolicyVerdict verdict = applyRoutePolicy(
              importer, import_binding.policy, imported, to_asn);
          if (options.record_provenance) {
            lines.insert(lines.end(), verdict.lines.begin(),
                         verdict.lines.end());
          }
          if (!verdict.permitted) continue;
          imported = verdict.route;
        }
        if (options.record_provenance) {
          imported.derivation = result.provenance.add(prov::Derivation{
              flow.to, prefix, route.derivation, std::move(lines)});
        }
        next[flow.to][prefix][flow.from] = imported;
      }
    }

    candidates = std::move(next);
    Rib new_bests;
    for (const auto& [name, device] : network_.configs) {
      selectBests(candidates[name], new_bests[name]);
    }
    std::string snapshot = snapshotOf(new_bests);

    if (snapshot == snapshots.back()) {
      result.converged = true;
      result.rib = std::move(new_bests);
      return result;
    }

    // Oscillation: the state repeats without being a fixpoint.
    for (std::size_t i = 0; i < snapshots.size(); ++i) {
      if (snapshots[i] != snapshot) continue;
      // Cycle window: rounds i .. current. Flapping prefixes are those whose
      // best differs anywhere inside the window.
      for (std::size_t j = i; j < states.size(); ++j) {
        for (const auto& [router, routes] : new_bests) {
          const auto& other = states[j].at(router);
          for (const auto& [prefix, route] : routes) {
            const auto it = other.find(prefix);
            if (it == other.end() || it->second.key() != route.key()) {
              result.flapping.insert(prefix);
            }
          }
          for (const auto& [prefix, route] : other) {
            if (routes.find(prefix) == routes.end()) {
              result.flapping.insert(prefix);
            }
          }
        }
      }
      result.converged = false;
      result.rib = std::move(new_bests);
      return result;
    }

    snapshots.push_back(std::move(snapshot));
    states.push_back(new_bests);
    bests = std::move(new_bests);
  }

  // Round cap hit without a detected cycle: report the prefixes still in
  // motion between the last two rounds as flapping.
  result.converged = false;
  const Rib& last = states.back();
  const Rib& previous = states[states.size() - 2];
  for (const auto& [router, routes] : last) {
    const auto& other = previous.at(router);
    for (const auto& [prefix, route] : routes) {
      const auto it = other.find(prefix);
      if (it == other.end() || it->second.key() != route.key()) {
        result.flapping.insert(prefix);
      }
    }
  }
  result.rib = last;
  return result;
}

}  // namespace acr::route
