#include "routing/simulator.hpp"

#include <deque>
#include <map>
#include <mutex>
#include <utility>

#include "netcore/prefix_trie.hpp"
#include "obs/trace.hpp"
#include "routing/sim_engine.hpp"
#include "routing/sim_internal.hpp"

namespace acr::route {

struct SimResult::LookupCache {
  std::mutex mutex;
  /// Per-router FIB tries, built on first lookup for that router. Values
  /// point into `arena`, which only ever grows (deque: stable addresses),
  /// so dropping a page never dangles another page's routes.
  std::map<std::string, net::PrefixTrie<const Route*>> fib;
  std::deque<Route> arena;
  bool flapping_built = false;
  net::PrefixTrie<bool> flapping;
};

SimResult::SimResult() : cache_(std::make_shared<LookupCache>()) {}
SimResult::~SimResult() = default;

SimResult::SimResult(const SimResult& other)
    : converged(other.converged),
      rounds(other.rounds),
      flapping(other.flapping),
      rib(other.rib),
      provenance(other.provenance),
      sessions(other.sessions),
      announcements(other.announcements),
      cache_(std::make_shared<LookupCache>()) {}

SimResult& SimResult::operator=(const SimResult& other) {
  if (this == &other) return *this;
  converged = other.converged;
  rounds = other.rounds;
  flapping = other.flapping;
  rib = other.rib;
  provenance = other.provenance;
  sessions = other.sessions;
  announcements = other.announcements;
  cache_ = std::make_shared<LookupCache>();
  return *this;
}

SimResult::SimResult(SimResult&& other) noexcept = default;
SimResult& SimResult::operator=(SimResult&& other) noexcept = default;

const Route* SimResult::lookup(const std::string& router,
                               net::Ipv4Address destination) const {
  if (!rib.hasRouter(router)) return nullptr;
  if (!cache_) cache_ = std::make_shared<LookupCache>();  // moved-from revival
  std::lock_guard<std::mutex> lock(cache_->mutex);
  auto [entry, inserted] = cache_->fib.try_emplace(router);
  if (inserted) {
    for (auto& [prefix, route] : rib.routesListOf(router)) {
      cache_->arena.push_back(std::move(route));
      entry->second.insert(prefix, &cache_->arena.back());
    }
  }
  const Route* const* found = entry->second.longestMatch(destination);
  return found != nullptr ? *found : nullptr;
}

void SimResult::dropLookupPages(const std::set<std::string>& routers) const {
  if (!cache_) return;
  std::lock_guard<std::mutex> lock(cache_->mutex);
  for (const std::string& router : routers) {
    cache_->fib.erase(router);
  }
}

bool SimResult::isFlapping(net::Ipv4Address destination) const {
  if (flapping.empty()) return false;
  if (!cache_) cache_ = std::make_shared<LookupCache>();  // moved-from revival
  std::lock_guard<std::mutex> lock(cache_->mutex);
  if (!cache_->flapping_built) {
    for (const net::Prefix& prefix : flapping) {
      cache_->flapping.insert(prefix, true);
    }
    cache_->flapping_built = true;
  }
  return cache_->flapping.longestMatch(destination) != nullptr;
}

std::vector<Session> Simulator::computeSessions() const {
  std::vector<Session> sessions;
  for (const auto& link : network_.topology.links()) {
    sessions.push_back(detail::sessionForLink(network_, link));
  }
  return sessions;
}

SimResult Simulator::run(const SimOptions& options) const {
  obs::Span span("sim.full");
  detail::FullEngine engine(network_, options);
  return engine.run();
}

}  // namespace acr::route
