#include "routing/rib.hpp"

#include <algorithm>

namespace acr::route {

namespace {

/// Cross-rib state compare (the old `key() == key()`, prefix handled by the
/// caller's cell alignment): id compare within one table lineage, name/
/// content compare across unrelated tables.
bool sameStateAcross(const SimTables* ta, const RouteEntry& ea,
                     const SimTables* tb, const RouteEntry& eb) {
  if (ea.source != eb.source || ea.local_pref != eb.local_pref ||
      ea.med != eb.med || ea.next_hop != eb.next_hop) {
    return false;
  }
  if (ta == tb) {
    return ea.learned_from_id == eb.learned_from_id &&
           ea.as_path_id == eb.as_path_id;
  }
  if (ta->routers.nameOf(ea.learned_from_id) !=
      tb->routers.nameOf(eb.learned_from_id)) {
    return false;
  }
  const std::span<const std::uint32_t> pa = ta->paths.pathOf(ea.as_path_id);
  const std::span<const std::uint32_t> pb = tb->paths.pathOf(eb.as_path_id);
  return pa.size() == pb.size() &&
         std::equal(pa.begin(), pa.end(), pb.begin());
}

const EcmpSet* findEcmp(const RibPage& p, PrefixId pid) {
  const auto it = p.ecmp.find(pid);
  return it == p.ecmp.end() ? nullptr : &it->second;
}

}  // namespace

std::uint64_t entryStateHash(int rid, PrefixId pid, const RouteEntry& entry) {
  const std::uint32_t words[8] = {
      static_cast<std::uint32_t>(rid),
      pid,
      static_cast<std::uint32_t>(entry.source),
      entry.local_pref,
      entry.med,
      entry.next_hop,
      static_cast<std::uint32_t>(entry.learned_from_id),
      entry.as_path_id,
  };
  std::uint64_t hash = 1469598103934665603ull;
  for (const std::uint32_t w : words) {
    hash ^= w;
    hash *= 1099511628211ull;
  }
  // Finalizer: XOR-combining entry hashes needs every output bit to depend
  // on every input word, which raw FNV's low-bit diffusion doesn't give.
  hash ^= hash >> 33;
  hash *= 0xff51afd7ed558ccdull;
  hash ^= hash >> 33;
  return hash;
}

Rib::Rib(SimTablesPtr tables, const std::vector<int>& router_ids)
    : tables_(std::move(tables)) {
  int max_rid = 0;
  for (const int rid : router_ids) max_rid = std::max(max_rid, rid);
  pages_.resize(static_cast<std::size_t>(max_rid) + 1);
  for (const int rid : router_ids) {
    auto& slot = pages_[static_cast<std::size_t>(rid)];
    if (slot == nullptr) {
      slot = std::make_shared<RibPage>();
      ++page_count_;
    }
  }
}

std::vector<std::string> Rib::routers() const {
  std::vector<std::string> out;
  if (tables_ == nullptr) return out;
  out.reserve(page_count_);
  for (const int rid : tables_->routers.ids_by_name) {
    if (page(rid) != nullptr) out.push_back(tables_->routers.nameOf(rid));
  }
  return out;
}

bool Rib::hasRouter(const std::string& router) const {
  if (tables_ == nullptr) return false;
  const int rid = tables_->routers.idOf(router);
  return rid != 0 && page(rid) != nullptr;
}

std::size_t Rib::routeCountOf(const std::string& router) const {
  if (tables_ == nullptr) return 0;
  const RibPage* p = page(tables_->routers.idOf(router));
  return p == nullptr ? 0 : p->live;
}

std::optional<Route> Rib::routeOf(const std::string& router,
                                  const net::Prefix& prefix) const {
  if (tables_ == nullptr) return std::nullopt;
  const int rid = tables_->routers.idOf(router);
  if (rid == 0) return std::nullopt;
  const PrefixId pid = tables_->prefixes.tryIdOf(prefix);
  if (pid == kNoId) return std::nullopt;
  const RouteEntry* entry = entryAt(rid, pid);
  if (entry == nullptr) return std::nullopt;
  const RibPage* p = page(rid);
  return materialize(pid, *entry, findEcmp(*p, pid));
}

std::vector<std::pair<net::Prefix, PrefixId>> Rib::sortedCells(
    const RibPage& p) const {
  std::vector<std::pair<net::Prefix, PrefixId>> cells;
  cells.reserve(p.live);
  for (PrefixId pid = 0; pid < p.entries.size(); ++pid) {
    if (p.entries[pid].present != 0) {
      cells.emplace_back(tables_->prefixes.prefixOf(pid), pid);
    }
  }
  std::sort(cells.begin(), cells.end());
  return cells;
}

std::map<net::Prefix, Route> Rib::routesOf(const std::string& router) const {
  std::map<net::Prefix, Route> out;
  for (auto& [prefix, route] : routesListOf(router)) {
    out.emplace(prefix, std::move(route));
  }
  return out;
}

std::vector<std::pair<net::Prefix, Route>> Rib::routesListOf(
    const std::string& router) const {
  std::vector<std::pair<net::Prefix, Route>> out;
  if (tables_ == nullptr) return out;
  const RibPage* p = page(tables_->routers.idOf(router));
  if (p == nullptr) return out;
  const auto cells = sortedCells(*p);
  out.reserve(cells.size());
  for (const auto& [prefix, pid] : cells) {
    out.emplace_back(
        prefix, materialize(pid, p->entries[pid], findEcmp(*p, pid)));
  }
  return out;
}

std::size_t Rib::totalRoutes() const {
  std::size_t total = 0;
  for (const RibPagePtr& p : pages_) {
    if (p != nullptr) total += p->live;
  }
  return total;
}

std::size_t Rib::pageBytes() const {
  std::size_t total = 0;
  for (const RibPagePtr& p : pages_) {
    if (p != nullptr) total += p->entries.capacity() * sizeof(RouteEntry);
  }
  return total;
}

bool Rib::identicalTo(const Rib& other) const {
  const std::vector<std::string> names = routers();
  if (names != other.routers()) return false;
  const SimTables* ta = tables_.get();
  const SimTables* tb = other.tables_.get();
  for (const std::string& name : names) {
    const int rid = ta->routers.idOf(name);
    const int orid = tb->routers.idOf(name);
    const RibPage* pa = page(rid);
    const RibPage* pb = other.page(orid);
    if (ta == tb && pageRef(rid) == other.pageRef(orid) &&
        show_ecmp_ == other.show_ecmp_) {
      continue;  // shared page, identical by construction
    }
    const auto ca = sortedCells(*pa);
    const auto cb = other.sortedCells(*pb);
    if (ca.size() != cb.size()) return false;
    for (std::size_t i = 0; i < ca.size(); ++i) {
      if (ca[i].first != cb[i].first) return false;
      const RouteEntry& ea = pa->entries[ca[i].second];
      const RouteEntry& eb = pb->entries[cb[i].second];
      if (!sameStateAcross(ta, ea, tb, eb)) return false;
      const EcmpSet* xa =
          show_ecmp_ && ea.has_ecmp != 0 ? findEcmp(*pa, ca[i].second) : nullptr;
      const EcmpSet* xb = other.show_ecmp_ && eb.has_ecmp != 0
                              ? findEcmp(*pb, cb[i].second)
                              : nullptr;
      const std::size_t na = xa == nullptr ? 0 : xa->size();
      const std::size_t nb = xb == nullptr ? 0 : xb->size();
      if (na != nb) return false;
      for (std::size_t k = 0; k < na; ++k) {
        if ((*xa)[k].second != (*xb)[k].second ||
            ta->routers.nameOf((*xa)[k].first) !=
                tb->routers.nameOf((*xb)[k].first)) {
          return false;
        }
      }
    }
  }
  return true;
}

void Rib::changedPrefixesInto(const Rib& old, std::set<net::Prefix>& out) const {
  if (tables_ == nullptr) return;
  const SimTables* ta = tables_.get();
  const SimTables* tb = old.tables_.get();
  for (const int rid : ta->routers.ids_by_name) {
    const RibPage* pa = page(rid);
    if (pa == nullptr) continue;
    const std::string& name = ta->routers.nameOf(rid);
    const int orid = tb == nullptr ? 0 : tb->routers.idOf(name);
    const RibPage* pb = orid == 0 ? nullptr : old.page(orid);
    if (pb == nullptr) {
      // Router absent on the old side: every present prefix changed.
      for (PrefixId pid = 0; pid < pa->entries.size(); ++pid) {
        if (pa->entries[pid].present != 0) {
          out.insert(ta->prefixes.prefixOf(pid));
        }
      }
      continue;
    }
    if (ta == tb) {
      if (pageRef(rid) == old.pageRef(orid)) continue;  // shared, no diff
      const std::size_t n = std::max(pa->entries.size(), pb->entries.size());
      static const RouteEntry kAbsent{};
      for (PrefixId pid = 0; pid < n; ++pid) {
        const RouteEntry& ea =
            pid < pa->entries.size() ? pa->entries[pid] : kAbsent;
        const RouteEntry& eb =
            pid < pb->entries.size() ? pb->entries[pid] : kAbsent;
        if (ea.present == 0 && eb.present == 0) continue;
        if (ea.present != eb.present || !sameStateAcross(ta, ea, tb, eb)) {
          out.insert(ta->prefixes.prefixOf(pid));
        }
      }
      continue;
    }
    // Unrelated tables: merge-walk both sides in prefix order.
    const auto ca = sortedCells(*pa);
    const auto cb = old.sortedCells(*pb);
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < ca.size() || j < cb.size()) {
      if (j >= cb.size() || (i < ca.size() && ca[i].first < cb[j].first)) {
        out.insert(ca[i].first);
        ++i;
      } else if (i >= ca.size() || cb[j].first < ca[i].first) {
        out.insert(cb[j].first);
        ++j;
      } else {
        if (!sameStateAcross(ta, pa->entries[ca[i].second], tb,
                             pb->entries[cb[j].second])) {
          out.insert(ca[i].first);
        }
        ++i;
        ++j;
      }
    }
  }
}

const EcmpSet* Rib::ecmpAt(int rid, PrefixId pid) const {
  const RibPage* p = page(rid);
  return p == nullptr ? nullptr : findEcmp(*p, pid);
}

RibPage& Rib::mutablePage(int rid) {
  auto& slot = pages_[static_cast<std::size_t>(rid)];
  if (slot == nullptr) {
    slot = std::make_shared<RibPage>();
    ++page_count_;
  } else if (slot.use_count() != 1) {
    slot = std::make_shared<RibPage>(*slot);  // clone-on-first-write
  }
  return *slot;
}

void Rib::set(int rid, PrefixId pid, const RouteEntry& entry,
              const EcmpSet* ecmp) {
  RibPage& p = mutablePage(rid);
  if (pid >= p.entries.size()) {
    p.entries.resize(static_cast<std::size_t>(pid) + 1);
  }
  RouteEntry& cell = p.entries[pid];
  if (cell.present == 0) ++p.live;
  const bool had_ecmp = cell.present != 0 && cell.has_ecmp != 0;
  cell = entry;
  cell.present = 1;
  cell.has_ecmp = ecmp != nullptr && !ecmp->empty() ? 1 : 0;
  if (cell.has_ecmp != 0) {
    p.ecmp[pid] = *ecmp;
  } else if (had_ecmp) {
    p.ecmp.erase(pid);
  }
}

void Rib::erase(int rid, PrefixId pid) {
  if (entryAt(rid, pid) == nullptr) return;
  RibPage& p = mutablePage(rid);
  RouteEntry& cell = p.entries[pid];
  if (cell.has_ecmp != 0) p.ecmp.erase(pid);
  cell = RouteEntry{};
  --p.live;
}

void Rib::installPage(int rid, RibPage&& fresh) {
  auto& slot = pages_[static_cast<std::size_t>(rid)];
  if (slot == nullptr) ++page_count_;
  slot = std::make_shared<RibPage>(std::move(fresh));
}

void Rib::restorePage(int rid, RibPagePtr saved) {
  auto& slot = pages_[static_cast<std::size_t>(rid)];
  if ((slot == nullptr) != (saved == nullptr)) {
    page_count_ += saved != nullptr ? 1 : -1;
  }
  slot = std::move(saved);
}

void Rib::clearRouter(const std::string& router) {
  if (tables_ == nullptr) return;
  const int rid = tables_->routers.idOf(router);
  if (rid == 0 || page(rid) == nullptr) return;
  pages_[static_cast<std::size_t>(rid)] = std::make_shared<RibPage>();
}

std::uint64_t Rib::stateHash() const {
  std::uint64_t hash = 0;
  for (std::size_t rid = 0; rid < pages_.size(); ++rid) {
    const RibPage* p = pages_[rid].get();
    if (p == nullptr) continue;
    for (PrefixId pid = 0; pid < p->entries.size(); ++pid) {
      if (p->entries[pid].present != 0) {
        hash ^= entryStateHash(static_cast<int>(rid), pid, p->entries[pid]);
      }
    }
  }
  return hash;
}

Route Rib::materialize(PrefixId pid, const RouteEntry& entry,
                       const EcmpSet* ecmp) const {
  Route r;
  r.prefix = tables_->prefixes.prefixOf(pid);
  r.source = entry.source;
  const std::span<const std::uint32_t> path =
      tables_->paths.pathOf(entry.as_path_id);
  r.as_path.assign(path.begin(), path.end());
  r.local_pref = entry.local_pref;
  r.med = entry.med;
  r.learned_from = tables_->routers.nameOf(entry.learned_from_id);
  r.learned_from_id = entry.learned_from_id;
  r.next_hop = net::Ipv4Address(entry.next_hop);
  r.derivation =
      show_derivations_ ? entry.derivation : prov::kNoDerivation;
  if (show_ecmp_ && entry.has_ecmp != 0 && ecmp != nullptr) {
    r.ecmp.reserve(ecmp->size());
    for (const auto& [neighbor_id, next_hop] : *ecmp) {
      r.ecmp.emplace_back(tables_->routers.nameOf(neighbor_id), next_hop);
    }
  }
  return r;
}

}  // namespace acr::route
