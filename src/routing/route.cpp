#include "routing/route.hpp"

namespace acr::route {

std::string routeSourceName(RouteSource source) {
  switch (source) {
    case RouteSource::kConnected:
      return "connected";
    case RouteSource::kStatic:
      return "static";
    case RouteSource::kBgp:
      return "bgp";
  }
  return "?";
}

std::string Route::key() const {
  std::string out = prefix.str();
  out += '|';
  out += routeSourceName(source);
  out += '|';
  out += learned_from;
  out += '|';
  out += next_hop.str();
  out += '|';
  out += pathStr();
  out += '|';
  out += std::to_string(local_pref);
  out += '|';
  out += std::to_string(med);
  return out;
}

std::string Route::pathStr() const {
  std::string out = "[";
  for (std::size_t i = 0; i < as_path.size(); ++i) {
    if (i != 0) out += ' ';
    out += std::to_string(as_path[i]);
  }
  out += ']';
  return out;
}

}  // namespace acr::route
