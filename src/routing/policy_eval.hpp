// Route-policy evaluation with line-level attribution.
//
// Every evaluation returns the verdict, the (possibly rewritten) route and
// the exact configuration lines that were "executed" — the provenance/SBFL
// coverage signal. Vendor-realistic defaults:
//   * a session with no policy binding permits everything;
//   * a binding that references a *nonexistent* policy denies everything;
//   * a route matching no policy node is denied;
//   * `if-match ip-prefix` against a nonexistent prefix-list never matches.
//
// The evaluator has one core, `applyPreparedPolicy`, operating on the packed
// `RouteEntry` representation against a `PreparedPolicy` (nodes pre-sorted
// by index, prefix-lists pre-resolved — built once per binding instead of
// once per evaluated route). The historical `applyRoutePolicy(Route)` entry
// point is a thin wrapper that interns the route's path into a scratch
// table, runs the same core and materializes the result, so both callers
// share exactly one semantics.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "config/ast.hpp"
#include "routing/rib.hpp"
#include "routing/route.hpp"

namespace acr::route {

struct PolicyVerdict {
  bool permitted = true;
  Route route;                     // attributes after policy actions
  std::vector<cfg::LineId> lines;  // config lines evaluated
};

/// Applies the route-policy `policy_name` configured on `device` to `route`.
/// `own_asn` is the AS written by `apply as-path overwrite` (when the action
/// carries no explicit value).
[[nodiscard]] PolicyVerdict applyRoutePolicy(const cfg::DeviceConfig& device,
                                             const std::string& policy_name,
                                             const Route& route,
                                             std::uint32_t own_asn);

/// One policy node with its prefix-list matches pre-resolved (parallel to
/// `node->matches`; null = list does not exist on the device = never match).
struct PreparedNode {
  const cfg::PolicyNode* node = nullptr;
  std::vector<const cfg::PrefixList*> lists;
};

/// A route-policy compiled for repeated packed evaluation: nodes sorted by
/// index once, prefix-lists looked up once. `exists == false` reproduces the
/// "binding references a nonexistent policy" deny.
struct PreparedPolicy {
  bool exists = false;
  std::vector<PreparedNode> nodes;
};

/// Compiles `policy_name` of `device` into `out` (cleared first).
void preparePolicy(const cfg::DeviceConfig& device,
                   const std::string& policy_name, PreparedPolicy& out);

/// The packed evaluation core: applies `prepared` to `entry` in place
/// (local_pref/med/as-path actions; path edits go through `paths`, which
/// memoizes them so steady-state rounds allocate nothing). Returns the
/// permit verdict. When `lines` is non-null every evaluated config line is
/// appended as `{device_name, line}` — exactly the old recording order.
[[nodiscard]] bool applyPreparedPolicy(const PreparedPolicy& prepared,
                                       const std::string& device_name,
                                       const net::Prefix& prefix,
                                       std::uint32_t own_asn,
                                       AsPathTable& paths, RouteEntry& entry,
                                       std::vector<cfg::LineId>* lines);

/// A resolved policy binding for one peer/direction: the policy name (empty
/// = no binding = permit all), the binding lines evaluated, and the policy
/// compiled for packed evaluation.
struct PolicyBinding {
  std::string policy;
  bool bound = false;
  std::vector<cfg::LineId> lines;
  PreparedPolicy prepared;
};

enum class Direction : std::uint8_t { kImport, kExport };

/// Resolves the effective policy for `peer` in `direction`: a peer-level
/// binding wins over the peer-group binding.
[[nodiscard]] PolicyBinding resolvePolicyBinding(const cfg::DeviceConfig& device,
                                                 const cfg::PeerConfig& peer,
                                                 Direction direction);

}  // namespace acr::route
