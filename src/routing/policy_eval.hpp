// Route-policy evaluation with line-level attribution.
//
// Every evaluation returns the verdict, the (possibly rewritten) route and
// the exact configuration lines that were "executed" — the provenance/SBFL
// coverage signal. Vendor-realistic defaults:
//   * a session with no policy binding permits everything;
//   * a binding that references a *nonexistent* policy denies everything;
//   * a route matching no policy node is denied;
//   * `if-match ip-prefix` against a nonexistent prefix-list never matches.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "config/ast.hpp"
#include "routing/route.hpp"

namespace acr::route {

struct PolicyVerdict {
  bool permitted = true;
  Route route;                     // attributes after policy actions
  std::vector<cfg::LineId> lines;  // config lines evaluated
};

/// Applies the route-policy `policy_name` configured on `device` to `route`.
/// `own_asn` is the AS written by `apply as-path overwrite` (when the action
/// carries no explicit value).
[[nodiscard]] PolicyVerdict applyRoutePolicy(const cfg::DeviceConfig& device,
                                             const std::string& policy_name,
                                             const Route& route,
                                             std::uint32_t own_asn);

/// A resolved policy binding for one peer/direction: the policy name (empty
/// = no binding = permit all) and the binding lines evaluated.
struct PolicyBinding {
  std::string policy;
  bool bound = false;
  std::vector<cfg::LineId> lines;
};

enum class Direction : std::uint8_t { kImport, kExport };

/// Resolves the effective policy for `peer` in `direction`: a peer-level
/// binding wins over the peer-group binding.
[[nodiscard]] PolicyBinding resolvePolicyBinding(const cfg::DeviceConfig& device,
                                                 const cfg::PeerConfig& peer,
                                                 Direction direction);

}  // namespace acr::route
