// Structure-of-arrays RIB storage with copy-on-write pages.
//
// The routing state used to live in `std::map<std::string,
// std::map<net::Prefix, Route>>` — two levels of node allocations, heap
// strings in every entry and a string-building `Route::key()` on the
// convergence hot path. This module replaces it end to end:
//
//   * `RouteEntry` — one packed, trivially copyable 32-byte record per
//     (router, prefix) cell. Names, prefixes and AS paths are dense
//     interned ids (routing/intern.hpp); the decision process, convergence
//     compare and RIB hashing read POD fields only.
//   * `RibPage` — one router's flat entry array indexed by PrefixId, plus
//     an ECMP side-table (equal-cost sets exist only when recording is on
//     and only for a few entries, so they stay out of the packed record).
//   * `Rib` — the per-router page set behind `shared_ptr` copy-on-write:
//     copying a Rib is O(routers) pointer copies, and the delta engines
//     fork candidate states by saving/restoring page pointers instead of
//     keeping per-entry undo maps. A page is cloned at first write only
//     when it is shared.
//
// Names, `net::Prefix` keys and `Route` objects are materialized only at
// API boundaries (routesOf/routeOf/identicalTo and SimResult::lookup), so
// external results stay byte-identical to the old representation while the
// round loops never touch a string.
//
// Masking flags replace the O(entries) scrub walks the incremental engines
// used to pay when seeding from a baseline: derivation ids and ECMP sets
// are *derived* state, so a Rib can carry stale physical values and simply
// stop showing them (`scrubFor`) — readers consult the flags at
// materialization time.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "netcore/ipv4.hpp"
#include "netcore/prefix.hpp"
#include "provenance/provenance.hpp"
#include "routing/intern.hpp"
#include "routing/route.hpp"

namespace acr::route {

/// One packed best-route record. All reference-typed route attributes are
/// interned ids; `present` distinguishes a live entry from an empty cell of
/// the flat page array.
struct RouteEntry {
  std::uint32_t local_pref = 100;
  std::uint32_t med = 0;
  AsPathId as_path_id = 0;      // empty path
  std::uint32_t as_path_len = 0;
  std::uint32_t next_hop = 0;   // net::Ipv4Address::value()
  std::int32_t learned_from_id = 0;  // 0 = locally originated
  prov::DerivationId derivation = prov::kNoDerivation;
  RouteSource source = RouteSource::kBgp;
  std::uint8_t present = 0;
  std::uint8_t has_ecmp = 0;
  std::uint8_t pad = 0;
};
static_assert(std::is_trivially_copyable_v<RouteEntry>);
static_assert(sizeof(RouteEntry) == 32, "RouteEntry must stay one packed "
                                        "32-byte record");

/// Identity under the convergence semantics — the packed equivalent of the
/// old `Route::key()` compare (prefix identity is the cell address; ecmp
/// and derivation are derived state, excluded exactly as key() excluded
/// them). Only meaningful between entries sharing one SimTables lineage:
/// ids compare as values.
[[nodiscard]] inline bool sameEntryState(const RouteEntry& a,
                                         const RouteEntry& b) {
  return a.present == b.present && a.source == b.source &&
         a.local_pref == b.local_pref && a.med == b.med &&
         a.next_hop == b.next_hop &&
         a.learned_from_id == b.learned_from_id &&
         a.as_path_id == b.as_path_id;
}

/// Equal-cost set of one BGP entry: (advertising neighbor id, next hop),
/// stored pre-sorted in materialization order (neighbor name, next hop).
using EcmpSet = std::vector<std::pair<std::int32_t, net::Ipv4Address>>;

/// One router's RIB as a flat array indexed by PrefixId. `entries` may be
/// shorter than the prefix table when the universe grew after the page was
/// written — out-of-range ids are simply absent.
struct RibPage {
  std::vector<RouteEntry> entries;
  std::uint32_t live = 0;  // number of present entries
  std::map<PrefixId, EcmpSet> ecmp;
};

using RibPagePtr = std::shared_ptr<RibPage>;

/// 64-bit mix of one present entry's cell address and state fields — the
/// packed replacement for the `router + '\n' + Route::key()` FNV string
/// hash. XOR-combined per RIB, so incremental engines maintain the whole-
/// state hash as H ^= old ^ new. Stable only within one SimTables lineage.
[[nodiscard]] std::uint64_t entryStateHash(int rid, PrefixId pid,
                                           const RouteEntry& entry);

class Rib {
 public:
  Rib() = default;
  /// One empty page per id of `router_ids`; `tables` is the id space every
  /// entry of this Rib speaks.
  Rib(SimTablesPtr tables, const std::vector<int>& router_ids);

  // ---- boundary read API (materializes names/prefixes/paths) -----------
  [[nodiscard]] std::size_t size() const { return page_count_; }
  [[nodiscard]] bool empty() const { return page_count_ == 0; }
  /// Router names in name order (the old map iteration order).
  [[nodiscard]] std::vector<std::string> routers() const;
  [[nodiscard]] bool hasRouter(const std::string& router) const;
  [[nodiscard]] std::size_t routeCountOf(const std::string& router) const;
  [[nodiscard]] std::optional<Route> routeOf(const std::string& router,
                                             const net::Prefix& prefix) const;
  /// All routes of one router keyed by prefix — the old per-router map,
  /// materialized. Debug/test boundary; not for hot paths.
  [[nodiscard]] std::map<net::Prefix, Route> routesOf(
      const std::string& router) const;
  /// Same, as a prefix-sorted vector (cheaper; used by the lookup cache).
  [[nodiscard]] std::vector<std::pair<net::Prefix, Route>> routesListOf(
      const std::string& router) const;
  /// Total present entries across all pages.
  [[nodiscard]] std::size_t totalRoutes() const;
  /// Bytes held by page entry arrays (sim.layout metrics).
  [[nodiscard]] std::size_t pageBytes() const;
  /// Pages physically shared with `other` (same shared_ptr) — the COW
  /// reuse a delta run achieved over its baseline (sim.layout metrics).
  [[nodiscard]] std::size_t sharedPageCount(const Rib& other) const {
    std::size_t shared = 0;
    const std::size_t n = std::min(pages_.size(), other.pages_.size());
    for (std::size_t i = 0; i < n; ++i) {
      if (pages_[i] != nullptr && pages_[i] == other.pages_[i]) ++shared;
    }
    return shared;
  }

  /// Identity under the convergence semantics plus effective ECMP sets —
  /// what comparing every `Route::key()` and ecmp list used to check.
  /// Works across Ribs with unrelated tables (compares by name/content).
  [[nodiscard]] bool identicalTo(const Rib& other) const;

  /// Inserts every prefix whose best route differs between `this` and
  /// `old` on any router of `this` (state compare, ECMP excluded — the old
  /// key()-based diff). Shared pages are skipped wholesale.
  void changedPrefixesInto(const Rib& old, std::set<net::Prefix>& out) const;

  // ---- engine API (id-addressed, allocation-free reads) ----------------
  [[nodiscard]] const SimTablesPtr& tables() const { return tables_; }
  /// Rebinds the id space to `tables` (which must preserve every id this
  /// Rib's entries reference — i.e. be a clone of the current tables).
  void setTables(SimTablesPtr tables) { tables_ = std::move(tables); }
  [[nodiscard]] const RibPage* page(int rid) const {
    const auto i = static_cast<std::size_t>(rid);
    return i < pages_.size() ? pages_[i].get() : nullptr;
  }
  [[nodiscard]] const RouteEntry* entryAt(int rid, PrefixId pid) const {
    const RibPage* p = page(rid);
    if (p == nullptr || pid >= p->entries.size()) return nullptr;
    const RouteEntry& e = p->entries[pid];
    return e.present != 0 ? &e : nullptr;
  }
  [[nodiscard]] const EcmpSet* ecmpAt(int rid, PrefixId pid) const;
  /// Writes one entry (clone-on-first-write when the page is shared).
  /// `ecmp` may be null (no equal-cost set for this entry).
  void set(int rid, PrefixId pid, const RouteEntry& entry, const EcmpSet* ecmp);
  /// Removes one entry (no-op when absent).
  void erase(int rid, PrefixId pid);
  /// Replaces a router's page wholesale (full-engine result adoption).
  void installPage(int rid, RibPage&& fresh);
  /// Current page pointer — save before a speculative segment, restore to
  /// roll the segment back exactly (the delta tree's page-level undo).
  [[nodiscard]] RibPagePtr pageRef(int rid) const {
    const auto i = static_cast<std::size_t>(rid);
    return i < pages_.size() ? pages_[i] : nullptr;
  }
  void restorePage(int rid, RibPagePtr saved);
  /// Empties one router's page (copy-on-write). Test hook mirroring the old
  /// `rib[router].clear()`.
  void clearRouter(const std::string& router);

  /// XOR-combined entryStateHash over all present entries.
  [[nodiscard]] std::uint64_t stateHash() const;

  // ---- derived-state masks ---------------------------------------------
  /// Marks derivations and/or ECMP sets stale: readers materialize
  /// kNoDerivation / empty sets instead. O(1) — replaces the old scrub
  /// walks over every entry.
  void scrubFor(bool show_derivations, bool show_ecmp) {
    show_derivations_ = show_derivations;
    show_ecmp_ = show_ecmp;
  }
  [[nodiscard]] bool showsEcmp() const { return show_ecmp_; }
  [[nodiscard]] bool showsDerivations() const { return show_derivations_; }

  /// Materializes one entry as the boundary `Route` (masks applied).
  [[nodiscard]] Route materialize(PrefixId pid, const RouteEntry& entry,
                                  const EcmpSet* ecmp) const;

 private:
  RibPage& mutablePage(int rid);
  /// Present (prefix, pid) cells of a page, sorted by prefix. Seeded ids
  /// are already prefix-ascending; the sort only reorders appended tails.
  [[nodiscard]] std::vector<std::pair<net::Prefix, PrefixId>> sortedCells(
      const RibPage& p) const;

  SimTablesPtr tables_;
  std::vector<RibPagePtr> pages_;  // indexed by rid; null = no page
  std::size_t page_count_ = 0;
  bool show_derivations_ = true;
  bool show_ecmp_ = true;
};

}  // namespace acr::route
