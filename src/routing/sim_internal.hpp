// Shared internals of the full (`Simulator`) and incremental
// (`DeltaSimulator`, `DeltaTree`) control-plane engines: session
// establishment, resolved session flows and the structural precondition
// checks the incremental engines' fallback rules share.
//
// Both engine families must agree *byte for byte* on the per-round transfer
// function; its packed implementation (candidate staging, the announcement
// transform, best-route selection) lives in routing/sim_engine.hpp. This
// header keeps the configuration-time machinery both build on.
//
// Not part of the public API: include only from acr_routing sources and
// white-box tests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "routing/policy_eval.hpp"
#include "routing/route.hpp"
#include "routing/simulator.hpp"
#include "topo/network.hpp"

namespace acr::route::detail {

/// One established session direction with everything the round loop needs
/// resolved up front: device configs, peer statements and the effective
/// export/import policy bindings (hoisted out of the round loop — they
/// depend only on configuration, never on routing state).
struct Flow {
  std::string from;
  std::string to;
  int from_id = 0;
  int to_id = 0;
  std::uint32_t from_asn = 0;
  std::uint32_t to_asn = 0;
  net::Ipv4Address from_address;  // next hop the receiver will use
  const cfg::DeviceConfig* exporter = nullptr;
  const cfg::DeviceConfig* importer = nullptr;
  const cfg::PeerConfig* exporter_peer = nullptr;  // on `from`, towards `to`
  const cfg::PeerConfig* importer_peer = nullptr;  // on `to`, towards `from`
  std::vector<cfg::LineId> session_lines;          // peer as-number lines
  PolicyBinding export_binding;
  PolicyBinding import_binding;
};

/// Appends the directed flows of one established session (a->b then b->a)
/// resolved against `network`. The per-session unit of buildFlows(), exposed
/// so incremental engines can re-resolve only the sessions whose endpoint
/// configs changed and reuse every other flow object untouched.
void appendFlowsForSession(const topo::Network& network,
                           const Session& session, const RouterTable& table,
                           std::vector<Flow>& flows);

/// Directed flows for the established sessions, in session order (a->b
/// then b->a per link) — candidate-slot overwrite semantics depend on this
/// order, so both engines must build flows identically.
[[nodiscard]] std::vector<Flow> buildFlows(const topo::Network& network,
                                           const std::vector<Session>& sessions,
                                           const RouterTable& table);

/// Session establishment for a single topology link (configs on both ends,
/// peer statements, AS numbers). The per-link unit of
/// Simulator::computeSessions(), exposed so incremental engines can
/// recompute only the sessions adjacent to an edited device.
[[nodiscard]] Session sessionForLink(const topo::Network& network,
                                     const topo::LinkDecl& link);

// --- incremental-engine precondition checks (docs/architecture.md §12) ----
// Shared by the DeltaSimulator's fallback rules and the DeltaTree's
// tree/base/leaf checks, so both engines degrade on exactly the same
// conditions.

/// Structural topology equality as the simulator sees it: same routers
/// (name, ASN, router-id — in order, since the dense router table interns
/// by position) and same links. Roles and edge subnets don't feed the
/// control plane.
[[nodiscard]] bool sameTopologyShape(const topo::Topology& a,
                                     const topo::Topology& b);

/// Same session table: endpoints, addresses, up/down state and reason.
[[nodiscard]] bool sameSessions(const std::vector<Session>& a,
                                const std::vector<Session>& b);

/// Same set of configured devices (map keys, in order).
[[nodiscard]] bool sameDeviceSet(const topo::Network& a,
                                 const topo::Network& b);

}  // namespace acr::route::detail
