// Shared internals of the full (`Simulator`) and incremental
// (`DeltaSimulator`) control-plane engines.
//
// Both engines must agree *byte for byte* on the per-round transfer
// function — session flows, local-route origination, the announcement
// transform (redistribution gates, export/import policies, AS-path
// handling, loop prevention) and best-route selection — because the
// DeltaSimulator's contract is producing the exact `SimResult` a
// from-scratch run would. Keeping the transfer function in one place is
// what makes that contract enforceable rather than aspirational.
//
// Not part of the public API: include only from acr_routing sources and
// white-box tests.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "routing/policy_eval.hpp"
#include "routing/route.hpp"
#include "routing/simulator.hpp"
#include "topo/network.hpp"

namespace acr::route::detail {

/// Origin-key prefix for locally originated candidates ("" + source name).
inline constexpr const char* kLocalOrigin = "";

/// Dense router table: names interned to ids >= 1 (0 is reserved for
/// "locally originated / unknown"), with the per-id router-id, ASN and name
/// in flat arrays. Replaces the per-comparison `std::map` lookups the
/// decision process used to pay inside `better()`, and lets incremental
/// engines key per-entry bookkeeping by (id, prefix) instead of strings.
struct RouterTable {
  std::unordered_map<std::string, int> index;
  std::vector<net::Ipv4Address> router_ids;  // [0] = 0.0.0.0
  std::vector<std::uint32_t> asns;           // [0] = 0
  std::vector<std::string> names;            // [0] = ""

  explicit RouterTable(const topo::Topology& topology);

  [[nodiscard]] int idOf(const std::string& name) const {
    const auto it = index.find(name);
    return it == index.end() ? 0 : it->second;
  }
  [[nodiscard]] net::Ipv4Address routerIdOf(int id) const {
    const auto index_ = static_cast<std::size_t>(id);
    return index_ < router_ids.size() ? router_ids[index_] : net::Ipv4Address();
  }
};

/// Candidate routes of one router: prefix -> origin key -> route. Origin
/// keys are "neighbor name" for BGP candidates and reserved tags for
/// local routes.
using Candidates = std::map<net::Prefix, std::map<std::string, Route>>;

/// One established session direction with everything the round loop needs
/// resolved up front: device configs, peer statements and the effective
/// export/import policy bindings (hoisted out of the round loop — they
/// depend only on configuration, never on routing state).
struct Flow {
  std::string from;
  std::string to;
  int from_id = 0;
  int to_id = 0;
  std::uint32_t from_asn = 0;
  std::uint32_t to_asn = 0;
  net::Ipv4Address from_address;  // next hop the receiver will use
  const cfg::DeviceConfig* exporter = nullptr;
  const cfg::DeviceConfig* importer = nullptr;
  const cfg::PeerConfig* exporter_peer = nullptr;  // on `from`, towards `to`
  const cfg::PeerConfig* importer_peer = nullptr;  // on `to`, towards `from`
  std::vector<cfg::LineId> session_lines;          // peer as-number lines
  PolicyBinding export_binding;
  PolicyBinding import_binding;
};

/// Appends the directed flows of one established session (a->b then b->a)
/// resolved against `network`. The per-session unit of buildFlows(), exposed
/// so incremental engines can re-resolve only the sessions whose endpoint
/// configs changed and reuse every other flow object untouched.
void appendFlowsForSession(const topo::Network& network,
                           const Session& session, const RouterTable& table,
                           std::vector<Flow>& flows);

/// Directed flows for the established sessions, in session order (a->b
/// then b->a per link) — candidate-map overwrite semantics depend on this
/// order, so both engines must build flows identically.
[[nodiscard]] std::vector<Flow> buildFlows(const topo::Network& network,
                                           const std::vector<Session>& sessions,
                                           const RouterTable& table);

/// Session establishment for a single topology link (configs on both ends,
/// peer statements, AS numbers). The per-link unit of
/// Simulator::computeSessions(), exposed so incremental engines can
/// recompute only the sessions adjacent to an edited device.
[[nodiscard]] Session sessionForLink(const topo::Network& network,
                                     const topo::LinkDecl& link);

/// Local routes (connected + resolvable static) of one device, with
/// derivations recorded into `provenance` when non-null.
[[nodiscard]] std::vector<Route> localRoutesFor(
    const std::string& name, const cfg::DeviceConfig& device,
    prov::ProvenanceGraph* provenance);

/// Local routes of every device, in config-map order (provenance ids
/// depend on this order).
[[nodiscard]] std::map<std::string, std::vector<Route>> computeLocalRoutes(
    const topo::Network& network, prov::ProvenanceGraph* provenance);

/// The decision process ("is `a` preferred over `b`"): admin distance,
/// highest local-pref, shortest AS_PATH, lowest MED, lowest advertising
/// router-id (via the dense table), neighbor name.
///
/// Branch-light: the first four tiebreaks collapse into two 64-bit
/// comparison words, so the common all-equal-up-front case costs two
/// integer compares instead of four data-dependent branches. local-pref is
/// bit-flipped because higher wins while everything else prefers lower.
struct RouteBetter {
  const RouterTable* table = nullptr;

  [[nodiscard]] static std::uint64_t adminWord(const Route& r) {
    return (static_cast<std::uint64_t>(r.source) << 32) |
           static_cast<std::uint32_t>(~r.local_pref);
  }
  [[nodiscard]] static std::uint64_t pathWord(const Route& r) {
    return (static_cast<std::uint64_t>(r.as_path.size()) << 32) | r.med;
  }

  bool operator()(const Route& a, const Route& b) const {
    const std::uint64_t admin_a = adminWord(a);
    const std::uint64_t admin_b = adminWord(b);
    if (admin_a != admin_b) return admin_a < admin_b;
    const std::uint64_t path_a = pathWord(a);
    const std::uint64_t path_b = pathWord(b);
    if (path_a != path_b) return path_a < path_b;
    const net::Ipv4Address id_a = table->routerIdOf(a.learned_from_id);
    const net::Ipv4Address id_b = table->routerIdOf(b.learned_from_id);
    if (id_a != id_b) return id_a < id_b;
    return a.learned_from < b.learned_from;
  }
};

/// Identity under the convergence semantics: exactly the fields Route::key()
/// embeds (prefix, source, learned-from, next hop, AS path, local-pref,
/// MED), compared directly instead of via the two string builds a
/// `key() == key()` costs. Derived state (ecmp, learned_from_id,
/// derivation) is excluded, as in key().
[[nodiscard]] inline bool sameRouteState(const Route& a, const Route& b) {
  return a.source == b.source && a.local_pref == b.local_pref &&
         a.med == b.med && a.next_hop == b.next_hop && a.prefix == b.prefix &&
         a.learned_from == b.learned_from && a.as_path == b.as_path;
}

/// Best route (and, when `enable_ecmp`, its equal-cost set) among one
/// prefix's candidates; nullopt when there are none.
[[nodiscard]] std::optional<Route> selectBestForPrefix(
    const std::map<std::string, Route>& options_for_prefix,
    const RouteBetter& better, bool enable_ecmp);

/// Best routes for every prefix of `candidates` into `bests`.
void selectBests(const Candidates& candidates,
                 std::map<net::Prefix, Route>& bests, const RouteBetter& better,
                 bool enable_ecmp);

/// The announcement transform of one (flow, exporter-best) pair:
/// redistribution gates, export policy, AS-path prepend, receiver-side
/// loop prevention, import policy. Returns the imported candidate or
/// nullopt when the announcement is filtered anywhere along the way.
/// `announcements` (when non-null) counts attempts that pass the
/// redistribution gate, exactly like `SimResult::announcements`;
/// `provenance` (when non-null) records the derivation and assigns it to
/// the returned route.
[[nodiscard]] std::optional<Route> announceOnFlow(
    const Flow& flow, const net::Prefix& prefix, const Route& route,
    prov::ProvenanceGraph* provenance, std::uint64_t* announcements);

/// 64-bit FNV-1a over `router` + '\n' + `route.key()` — the unit of the
/// whole-RIB hash. Entries are unique per (router, prefix) because the
/// key embeds the prefix.
[[nodiscard]] std::uint64_t ribEntryHash(const std::string& router,
                                         const Route& route);

/// XOR-combined entry hashes: order-independent, so the DeltaSimulator
/// can maintain it incrementally (H ^= old ^ new) while the full engine
/// recomputes it per round. Used for oscillation detection only — the
/// convergence check compares states exactly.
[[nodiscard]] std::uint64_t ribHash(const Rib& rib);

/// Exact state equality under the convergence semantics: same routers,
/// same prefixes, same `Route::key()` per entry (ECMP sets are derived
/// state and excluded, matching the historical snapshot comparison).
[[nodiscard]] bool ribEqualByKey(const Rib& a, const Rib& b);

// --- incremental-engine precondition checks (docs/architecture.md §12) ----
// Shared by the DeltaSimulator's fallback rules and the DeltaTree's
// tree/base/leaf checks, so both engines degrade on exactly the same
// conditions.

/// Structural topology equality as the simulator sees it: same routers
/// (name, ASN, router-id — in order, since the dense router table interns
/// by position) and same links. Roles and edge subnets don't feed the
/// control plane.
[[nodiscard]] bool sameTopologyShape(const topo::Topology& a,
                                     const topo::Topology& b);

/// Same session table: endpoints, addresses, up/down state and reason.
[[nodiscard]] bool sameSessions(const std::vector<Session>& a,
                                const std::vector<Session>& b);

/// Same set of configured devices (map keys, in order).
[[nodiscard]] bool sameDeviceSet(const topo::Network& a,
                                 const topo::Network& b);

}  // namespace acr::route::detail
