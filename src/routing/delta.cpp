#include "routing/delta.hpp"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace.hpp"
#include "routing/sim_engine.hpp"
#include "routing/sim_internal.hpp"
#include "util/metrics.hpp"

namespace acr::route {

SimResult DeltaSimulator::run(const topo::Network& updated,
                              const std::vector<std::string>& changed_devices,
                              const SimOptions& options,
                              DeltaStats* stats_out) const {
  util::MetricsRegistry& metrics = util::MetricsRegistry::global();
  obs::Span span("sim.delta");
  DeltaStats stats;
  const auto fallback = [&](std::string reason) {
    span.attr("fallback", reason);
    stats.used_delta = false;
    // One counter per fallback rule (docs/architecture.md §12): a campaign's
    // metrics dump shows *why* delta runs degraded, not just how often.
    metrics.counter("sim.delta.fallback." + reason).add(1);
    stats.fallback_reason = std::move(reason);
    metrics.counter("sim.delta.runs").add(1);
    if (stats_out != nullptr) *stats_out = stats;
    return Simulator(updated).run(options);
  };

  // Fallback rules (docs/architecture.md §12). A converged anchor carries a
  // canonical fixpoint provenance graph (sim_engine.hpp) that the delta run
  // forks copy-on-write; an anchor recorded without provenance — or one
  // whose rib masks its derivation ids — has nothing to fork.
  const bool record = options.record_provenance;
  if (record && (baseline_.provenance.empty() ||
                 !baseline_.rib.showsDerivations())) {
    return fallback("provenance-anchor-missing");
  }
  // The baseline state is only a valid starting point if it is a fixpoint.
  if (!baseline_.converged) return fallback("baseline-not-converged");
  if (!detail::sameTopologyShape(baseline_network_.topology, updated.topology)) {
    return fallback("topology-shape-changed");
  }
  if (!detail::sameDeviceSet(baseline_network_, updated)) {
    return fallback("device-set-changed");
  }
  std::vector<Session> sessions = Simulator(updated).computeSessions();
  if (!detail::sameSessions(baseline_.sessions, sessions)) {
    return fallback("session-state-changed");
  }
  // Seeding forks the baseline's pages in place, so it needs the baseline's
  // interned id space. A Rib without tables (default-constructed, never run)
  // has no pages to fork.
  if (baseline_.rib.tables() == nullptr) return fallback("baseline-unpaged");

  // An ECMP run seeded from a baseline that did not record equal-cost sets
  // cannot patch them in locally. With recording on, every present BGP best
  // carries a non-empty set (it contains at least the winner), so one
  // effective-empty BGP entry means the baseline recorded less than this
  // run must show.
  const std::size_t baseline_routers =
      baseline_.rib.tables()->routers.names.size();
  if (options.enable_ecmp) {
    const bool shows = baseline_.rib.showsEcmp();
    for (std::size_t rid = 0; rid < baseline_routers; ++rid) {
      const RibPage* page = baseline_.rib.page(static_cast<int>(rid));
      if (page == nullptr) continue;
      for (const RouteEntry& entry : page->entries) {
        if (entry.present != 0 && entry.source == RouteSource::kBgp &&
            !(shows && entry.has_ecmp != 0)) {
          return fallback("ecmp-recording-mismatch");
        }
      }
    }
  }

  // Seed state: the baseline fixpoint, forked copy-on-write — O(routers)
  // page-pointer copies, with pages cloned lazily at first write. The
  // cloned tables pin the baseline's ids (append-only growth for any new
  // prefixes the edit introduces), so baseline pages are valid verbatim.
  // With provenance on, derivation ids stay visible: they index the anchor
  // graph this result forks, so untouched entries reuse anchor derivations
  // byte-for-byte. ECMP sets may be absent from this run's options —
  // derived state, masked instead of scrubbed.
  auto tables = std::make_shared<SimTables>(*baseline_.rib.tables());
  Rib bests = baseline_.rib;
  bests.setTables(tables);
  bests.scrubFor(record, options.enable_ecmp);

  const std::size_t router_count = tables->routers.names.size();
  const std::vector<detail::Flow> flows =
      detail::buildFlows(updated, sessions, tables->routers);
  std::vector<const detail::Flow*> flow_ptrs;
  flow_ptrs.reserve(flows.size());
  for (const detail::Flow& flow : flows) flow_ptrs.push_back(&flow);
  detail::EnginePlan plan;
  plan.build(router_count, flow_ptrs);
  detail::CandidateBoard board;
  board.configure(plan, tables->prefixes.size());
  const detail::EntryBetter better{&tables->routers};

  SimResult result;
  result.sessions = std::move(sessions);

  // Local routes of the updated configs, packed on demand: only routers
  // that actually recompute pay for them. Interning a new local prefix
  // grows the universe; callers re-sync the board after each localsOf.
  std::vector<std::vector<detail::PackedLocal>> locals(router_count);
  std::vector<std::uint8_t> locals_ready(router_count, 0);
  const auto localsOf =
      [&](int rid) -> const std::vector<detail::PackedLocal>& {
    const auto idx = static_cast<std::size_t>(rid);
    if (locals_ready[idx] == 0) {
      locals_ready[idx] = 1;
      const std::string& name = tables->routers.nameOf(rid);
      const cfg::DeviceConfig* device = updated.config(name);
      if (device != nullptr) {
        detail::packedLocalsFor(name, *device, *tables, nullptr, locals[idx]);
      }
    }
    return locals[idx];
  };

  // Seed: changed devices and their session neighbors recompute wholesale —
  // their locals, redistribution and policy bindings may have changed in
  // ways the baseline routing state cannot witness. Everything else enters
  // the dirty set only when a neighbor's best route actually changes.
  std::set<int> seeds;
  for (const std::string& device : changed_devices) {
    const int rid = tables->routers.idOf(device);
    if (rid == 0) continue;
    seeds.insert(rid);
    for (const std::uint32_t flow_idx :
         plan.out_flows[static_cast<std::size_t>(rid)]) {
      seeds.insert(flow_ptrs[flow_idx]->to_id);
    }
  }

  // Dirty (router, prefix) work lists for the next round, deduplicated by
  // an epoch stamp per cell — flat vectors where the old engine kept a
  // map<string, set<Prefix>> per round.
  std::vector<std::vector<PrefixId>> dirty_pids(router_count);
  std::vector<std::vector<PrefixId>> next_pids(router_count);
  std::vector<int> dirty_rids;
  std::vector<int> next_rids;
  std::vector<std::uint8_t> next_listed(router_count, 0);
  std::vector<std::vector<std::uint32_t>> pid_stamp(router_count);
  std::uint32_t stamp = 0;
  const auto addDirty = [&](int rid, PrefixId pid) {
    auto& marks = pid_stamp[static_cast<std::size_t>(rid)];
    if (marks.size() < tables->prefixes.size()) {
      marks.resize(tables->prefixes.size(), 0);
    }
    if (marks[pid] == stamp) return;
    marks[pid] = stamp;
    if (next_listed[static_cast<std::size_t>(rid)] == 0) {
      next_listed[static_cast<std::size_t>(rid)] = 1;
      next_rids.push_back(rid);
      next_pids[static_cast<std::size_t>(rid)].clear();
    }
    next_pids[static_cast<std::size_t>(rid)].push_back(pid);
  };

  // Distinct-prefix stat, tracked by a grow-on-demand bitmap.
  std::vector<std::uint8_t> prefix_seen;
  const auto markDirtyPrefix = [&](PrefixId pid) {
    if (prefix_seen.size() < tables->prefixes.size()) {
      prefix_seen.resize(tables->prefixes.size(), 0);
    }
    if (prefix_seen[pid] == 0) {
      prefix_seen[pid] = 1;
      ++stats.dirty_prefixes;
    }
  };

  // With provenance on, every committed (router, prefix) cell is recorded
  // (first-touch deduplicated) so the post-convergence canonicalization can
  // compute the exact anchor diff without sweeping the RIB.
  std::vector<std::vector<std::uint8_t>> touch_grid(record ? router_count : 0);
  std::vector<std::pair<int, PrefixId>> touched_cells;
  const auto recordCellTouch = [&](int rid, PrefixId pid) {
    auto& grid = touch_grid[static_cast<std::size_t>(rid)];
    if (grid.size() < tables->prefixes.size()) {
      grid.resize(tables->prefixes.size(), 0);
    }
    if (grid[pid] == 0) {
      grid[pid] = 1;
      touched_cells.emplace_back(rid, pid);
    }
  };

  // Jacobi commit: each round computes every dirty work item against the
  // previous round's state, then applies all updates at once — exactly the
  // synchronous-round semantics of the full engine.
  struct Update {
    int rid = 0;
    PrefixId pid = 0;
    RouteEntry entry;
    bool present = false;      // false = withdraw
    bool state_change = false; // key state changed (vs. a derived refresh)
  };
  std::vector<Update> updates;
  std::vector<EcmpSet> update_ecmp;
  EcmpSet ecmp_scratch;

  // Candidates of one (router, prefix): locals plus the imports the
  // neighbors' current bests would announce this round.
  const auto recomputePrefix = [&](int rid, PrefixId pid) {
    ++stats.work_items;
    markDirtyPrefix(pid);
    const auto& local_list = localsOf(rid);
    board.growUniverse(tables->prefixes.size());
    for (const detail::PackedLocal& local : local_list) {
      if (local.pid == pid) board.stageLocal(rid, local);
    }
    for (const std::uint32_t flow_idx :
         plan.in_flows[static_cast<std::size_t>(rid)]) {
      const detail::Flow& flow = *flow_ptrs[flow_idx];
      const RouteEntry* entry = bests.entryAt(flow.from_id, pid);
      if (entry == nullptr) continue;
      RouteEntry imported;
      if (detail::announceEntryOnFlow(flow, pid, *entry, *tables, nullptr,
                                      &result.announcements, imported)) {
        board.stage(rid, plan.flow_slot[flow_idx], pid, imported);
      }
    }
    RouteEntry selected;
    const bool present = board.select(rid, pid, better, options.enable_ecmp,
                                      selected, ecmp_scratch);
    const RouteEntry* old_entry = bests.entryAt(rid, pid);
    if (!present && old_entry == nullptr) return;
    const bool changed = !present || old_entry == nullptr ||
                         !sameEntryState(*old_entry, selected);
    // Even a key-equal recompute commits: its ECMP set (derived state,
    // outside the key) may be fresher. It just doesn't propagate.
    updates.push_back(Update{rid, pid, selected, present, changed});
    update_ecmp.push_back(ecmp_scratch);
  };

  const auto recomputeRouter = [&](int rid) {
    const auto& local_list = localsOf(rid);
    board.growUniverse(tables->prefixes.size());
    for (const detail::PackedLocal& local : local_list) {
      board.stageLocal(rid, local);
    }
    for (const std::uint32_t flow_idx :
         plan.in_flows[static_cast<std::size_t>(rid)]) {
      const detail::Flow& flow = *flow_ptrs[flow_idx];
      const RibPage* neighbor = bests.page(flow.from_id);
      if (neighbor == nullptr) continue;
      const std::uint16_t slot = plan.flow_slot[flow_idx];
      for (PrefixId pid = 0; pid < neighbor->entries.size(); ++pid) {
        const RouteEntry& entry = neighbor->entries[pid];
        if (entry.present == 0) continue;
        RouteEntry imported;
        if (detail::announceEntryOnFlow(flow, pid, entry, *tables, nullptr,
                                        &result.announcements, imported)) {
          board.stage(rid, slot, pid, imported);
        }
      }
    }
    for (const PrefixId pid : board.touched(rid)) {
      ++stats.work_items;
      markDirtyPrefix(pid);
      RouteEntry selected;
      const bool present = board.select(rid, pid, better, options.enable_ecmp,
                                        selected, ecmp_scratch);
      const RouteEntry* old_entry = bests.entryAt(rid, pid);
      const bool changed = !present || old_entry == nullptr ||
                           !sameEntryState(*old_entry, selected);
      updates.push_back(Update{rid, pid, selected, present, changed});
      update_ecmp.push_back(ecmp_scratch);
    }
    // Withdrawals: present entries that attracted no candidate this round.
    const RibPage* own = bests.page(rid);
    if (own == nullptr) return;
    for (PrefixId pid = 0; pid < own->entries.size(); ++pid) {
      if (own->entries[pid].present == 0) continue;
      if (board.touchedThisRound(rid, pid)) continue;
      ++stats.work_items;
      markDirtyPrefix(pid);
      updates.push_back(Update{rid, pid, RouteEntry{}, false, true});
      update_ecmp.emplace_back();
    }
  };

  std::uint64_t state_hash = bests.stateHash();
  std::vector<std::pair<std::uint64_t, int>> hash_history{{state_hash, 0}};
  int round = 0;
  bool converged = false;

  while (round < options.max_rounds) {
    ++round;
    updates.clear();
    update_ecmp.clear();
    board.beginRound();
    if (round == 1) {
      for (const int rid : seeds) recomputeRouter(rid);
    } else {
      for (const int rid : dirty_rids) {
        for (const PrefixId pid : dirty_pids[static_cast<std::size_t>(rid)]) {
          recomputePrefix(rid, pid);
        }
      }
    }

    ++stamp;
    bool any_state_change = false;
    for (std::size_t i = 0; i < updates.size(); ++i) {
      const Update& update = updates[i];
      if (update.state_change) {
        any_state_change = true;
        const RouteEntry* old_entry = bests.entryAt(update.rid, update.pid);
        if (old_entry != nullptr) {
          state_hash ^= entryStateHash(update.rid, update.pid, *old_entry);
        }
        if (update.present) {
          state_hash ^= entryStateHash(update.rid, update.pid, update.entry);
        }
        for (const std::uint32_t flow_idx :
             plan.out_flows[static_cast<std::size_t>(update.rid)]) {
          addDirty(flow_ptrs[flow_idx]->to_id, update.pid);
        }
      }
      if (update.present) {
        // A pure derived-state refresh with ECMP off is byte-identical to
        // the stored entry — skipping it keeps shared baseline pages
        // shared instead of cloning them for a no-op write.
        if (!update.state_change && !options.enable_ecmp) continue;
        RouteEntry to_store = update.entry;
        if (record) {
          // A derived-state refresh keeps the stored derivation (the chain
          // is unchanged); state-changing commits stay at kNoDerivation
          // until the canonicalization pass rebuilds them.
          if (!update.state_change) {
            const RouteEntry* stored = bests.entryAt(update.rid, update.pid);
            if (stored != nullptr) to_store.derivation = stored->derivation;
          }
          recordCellTouch(update.rid, update.pid);
        }
        bests.set(update.rid, update.pid, to_store, &update_ecmp[i]);
      } else {
        if (record) recordCellTouch(update.rid, update.pid);
        bests.erase(update.rid, update.pid);
      }
    }

    std::swap(dirty_rids, next_rids);
    dirty_pids.swap(next_pids);
    for (const int rid : dirty_rids) {
      next_listed[static_cast<std::size_t>(rid)] = 0;
    }
    next_rids.clear();

    if (!any_state_change) {
      converged = true;
      break;
    }
    // A repeated non-fixpoint state means the updated network oscillates.
    // The full engine's representative rib and flapping window depend on
    // its orbit from round 0, which a fixpoint-seeded orbit cannot replay —
    // byte-identity demands the real thing.
    bool repeated = false;
    for (const auto& [hash, seen_round] : hash_history) {
      if (hash == state_hash) {
        repeated = true;
        break;
      }
    }
    if (repeated) return fallback("oscillation-detected");
    hash_history.emplace_back(state_hash, round);
  }
  if (!converged) return fallback("delta-round-cap");

  if (record) {
    // Canonical provenance fix-up. The propagation above recorded nothing
    // (zero per-round provenance cost); now that the new fixpoint is known,
    // rebuild derivations only along *chain-dirty* cells — cells whose own
    // state changed, whose device was edited, or whose derivation chain
    // crosses such a cell. Everything else keeps its anchor DerivationId
    // byte-for-byte inside the forked graph.
    std::vector<std::uint8_t> device_changed(router_count, 0);
    for (const std::string& device : changed_devices) {
      const int rid = tables->routers.idOf(device);
      if (rid != 0) device_changed[static_cast<std::size_t>(rid)] = 1;
    }

    // Exact anchor diff from the first-touch list (anchor pages survive
    // inside the COW fork, so the comparison needs no saved pre-images).
    std::vector<std::vector<std::uint8_t>> state_changed(router_count);
    std::set<PrefixId> affected_pids;
    std::vector<std::pair<int, PrefixId>> changed_cells;
    for (const auto& [rid, pid] : touched_cells) {
      const RouteEntry* now = bests.entryAt(rid, pid);
      const RouteEntry* before = baseline_.rib.entryAt(rid, pid);
      const bool same = now == nullptr
                            ? before == nullptr
                            : before != nullptr && sameEntryState(*before, *now);
      if (same) continue;
      changed_cells.emplace_back(rid, pid);
      auto& row = state_changed[static_cast<std::size_t>(rid)];
      if (row.size() < tables->prefixes.size()) {
        row.resize(tables->prefixes.size(), 0);
      }
      row[pid] = 1;
      affected_pids.insert(pid);
    }
    // Chain dirtiness can only originate from a base-dirty cell of the same
    // prefix, so the affected universe is the changed cells' prefixes plus
    // every prefix present on an edited device.
    for (std::size_t rid = 0; rid < router_count; ++rid) {
      if (device_changed[rid] == 0) continue;
      const RibPage* page = bests.page(static_cast<int>(rid));
      if (page == nullptr) continue;
      for (PrefixId pid = 0; pid < page->entries.size(); ++pid) {
        if (page->entries[pid].present != 0) affected_pids.insert(pid);
      }
    }

    prov::ProvenanceGraph graph = baseline_.provenance.fork();
    detail::ProvenanceRebuilder rebuilder(
        updated, *tables, flow_ptrs, graph,
        [&bests](int rid, PrefixId pid) { return bests.entryAt(rid, pid); },
        [&](int rid, PrefixId pid) {
          if (device_changed[static_cast<std::size_t>(rid)] != 0) return true;
          const auto& row = state_changed[static_cast<std::size_t>(rid)];
          return static_cast<std::size_t>(pid) < row.size() && row[pid] != 0;
        });
    for (const PrefixId pid : affected_pids) {
      for (std::size_t rid = 0; rid < router_count; ++rid) {
        if (bests.entryAt(static_cast<int>(rid), pid) == nullptr) continue;
        prov::DerivationId id = prov::kNoDerivation;
        if (!rebuilder.canonicalize(static_cast<int>(rid), pid, id)) {
          // The fixpoint could not be reproduced from the configs (e.g. a
          // policy masked the edit away) — identity over cleverness.
          return fallback("provenance-divergence");
        }
      }
    }
    // Patch fresh ids only after every cell succeeded.
    std::vector<std::uint8_t> chain_dirty(router_count, 0);
    std::vector<std::pair<std::size_t, PrefixId>> chain_dirty_cells;
    for (const PrefixId pid : affected_pids) {
      for (std::size_t rid = 0; rid < router_count; ++rid) {
        const RouteEntry* entry = bests.entryAt(static_cast<int>(rid), pid);
        if (entry == nullptr) continue;
        const prov::DerivationId id =
            rebuilder.idOf(static_cast<int>(rid), pid);
        if (id == entry->derivation) continue;
        chain_dirty[rid] = 1;
        chain_dirty_cells.emplace_back(rid, pid);
        RouteEntry patched = *entry;
        patched.derivation = id;
        EcmpSet ecmp_copy;
        const EcmpSet* ecmp = bests.showsEcmp() && entry->has_ecmp != 0
                                  ? bests.ecmpAt(static_cast<int>(rid), pid)
                                  : nullptr;
        if (ecmp != nullptr) ecmp_copy = *ecmp;
        bests.set(static_cast<int>(rid), pid, patched,
                  ecmp != nullptr ? &ecmp_copy : nullptr);
      }
    }

    std::sort(changed_cells.begin(), changed_cells.end());
    stats.changed_cells.reserve(changed_cells.size());
    for (const auto& [rid, pid] : changed_cells) {
      stats.changed_cells.emplace_back(tables->routers.nameOf(rid),
                                       tables->prefixes.prefixOf(pid));
    }
    for (std::size_t rid = 0; rid < router_count; ++rid) {
      if (chain_dirty[rid] != 0) {
        stats.dirty_chain_routers.push_back(
            tables->routers.nameOf(static_cast<int>(rid)));
      }
    }
    std::sort(chain_dirty_cells.begin(), chain_dirty_cells.end());
    stats.dirty_chain_cells.reserve(chain_dirty_cells.size());
    for (const auto& [rid, pid] : chain_dirty_cells) {
      stats.dirty_chain_cells.emplace_back(
          tables->routers.nameOf(static_cast<int>(rid)),
          tables->prefixes.prefixOf(pid));
    }
    std::size_t total_routes = 0;
    for (std::size_t rid = 0; rid < router_count; ++rid) {
      const RibPage* page = bests.page(static_cast<int>(rid));
      if (page != nullptr) total_routes += page->live;
    }
    stats.fresh_derivations = rebuilder.freshCount();
    stats.reused_derivations =
        total_routes - std::min(total_routes, stats.fresh_derivations);
    metrics.counter("sim.delta.derivations_fresh")
        .add(stats.fresh_derivations);
    metrics.counter("sim.delta.derivations_reused")
        .add(stats.reused_derivations);
    span.attr("derivations_fresh", std::to_string(stats.fresh_derivations));
    result.provenance = std::move(graph);
  }

  stats.used_delta = true;
  stats.rounds = round;
  stats.rounds_saved = std::max(0, baseline_.rounds - round);
  metrics.counter("sim.delta.runs").add(1);
  metrics.counter("sim.delta.dirty_prefixes").add(stats.dirty_prefixes);
  metrics.counter("sim.delta.work_items").add(stats.work_items);
  metrics.counter("sim.delta.rounds").add(static_cast<std::uint64_t>(round));
  metrics.counter("sim.delta.rounds_saved")
      .add(static_cast<std::uint64_t>(stats.rounds_saved));
  // COW page reuse: baseline pages the run never had to clone.
  const std::size_t reused = bests.sharedPageCount(baseline_.rib);
  metrics.counter("sim.layout.pages_reused").add(reused);
  metrics.counter("sim.layout.pages_cloned").add(bests.size() - reused);
  if (stats_out != nullptr) *stats_out = stats;

  result.converged = true;
  result.rounds = round;
  result.rib = std::move(bests);
  return result;
}

}  // namespace acr::route
