#include "routing/delta.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>
#include <utility>

#include "obs/trace.hpp"
#include "routing/sim_internal.hpp"
#include "util/metrics.hpp"

namespace acr::route {

SimResult DeltaSimulator::run(const topo::Network& updated,
                              const std::vector<std::string>& changed_devices,
                              const SimOptions& options,
                              DeltaStats* stats_out) const {
  util::MetricsRegistry& metrics = util::MetricsRegistry::global();
  obs::Span span("sim.delta");
  DeltaStats stats;
  const auto fallback = [&](std::string reason) {
    span.attr("fallback", reason);
    stats.used_delta = false;
    // One counter per fallback rule (docs/architecture.md §12): a campaign's
    // metrics dump shows *why* delta runs degraded, not just how often.
    metrics.counter("sim.delta.fallback." + reason).add(1);
    stats.fallback_reason = std::move(reason);
    metrics.counter("sim.delta.runs").add(1);
    if (stats_out != nullptr) *stats_out = stats;
    return Simulator(updated).run(options);
  };

  // Fallback rules (docs/architecture.md §12). Provenance derivations
  // encode the full per-round announcement history from round 0, which a
  // run that skips those rounds cannot reproduce.
  if (options.record_provenance) return fallback("provenance-requested");
  // The baseline state is only a valid starting point if it is a fixpoint.
  if (!baseline_.converged) return fallback("baseline-not-converged");
  if (!detail::sameTopologyShape(baseline_network_.topology, updated.topology)) {
    return fallback("topology-shape-changed");
  }
  if (!detail::sameDeviceSet(baseline_network_, updated)) {
    return fallback("device-set-changed");
  }
  std::vector<Session> sessions = Simulator(updated).computeSessions();
  if (!detail::sameSessions(baseline_.sessions, sessions)) {
    return fallback("session-state-changed");
  }

  // Seed state: the baseline fixpoint. Derivation ids point into the
  // baseline's provenance graph, which this result does not carry — scrub
  // them to match a provenance-off full run byte for byte. Same for ECMP
  // sets when this run doesn't record them; the reverse mismatch (ECMP
  // requested but absent from the baseline) cannot be patched locally.
  Rib bests = baseline_.rib;
  for (auto& [router, routes] : bests) {
    for (auto& [prefix, route] : routes) {
      route.derivation = prov::kNoDerivation;
      if (!options.enable_ecmp) {
        route.ecmp.clear();
      } else if (route.source == RouteSource::kBgp && route.ecmp.empty()) {
        return fallback("ecmp-recording-mismatch");
      }
    }
  }

  const detail::RouterTable table(updated.topology);
  const std::vector<detail::Flow> flows =
      detail::buildFlows(updated, sessions, table);
  std::map<std::string, std::vector<const detail::Flow*>> in_flows;
  std::map<std::string, std::vector<const detail::Flow*>> out_flows;
  for (const detail::Flow& flow : flows) {
    in_flows[flow.to].push_back(&flow);
    out_flows[flow.from].push_back(&flow);
  }
  static const std::vector<const detail::Flow*> kNoFlows;
  const auto flowsOf =
      [](const std::map<std::string, std::vector<const detail::Flow*>>& index,
         const std::string& router) -> const std::vector<const detail::Flow*>& {
    const auto it = index.find(router);
    return it == index.end() ? kNoFlows : it->second;
  };
  const detail::RouteBetter better{&table};

  SimResult result;
  result.sessions = std::move(sessions);

  // Local routes of the updated configs, computed on demand: only routers
  // that actually recompute pay for them.
  std::map<std::string, std::vector<Route>> locals;
  const auto localsOf =
      [&](const std::string& router) -> const std::vector<Route>& {
    auto it = locals.find(router);
    if (it == locals.end()) {
      const cfg::DeviceConfig* device = updated.config(router);
      it = locals
               .emplace(router, device == nullptr
                                    ? std::vector<Route>{}
                                    : detail::localRoutesFor(router, *device,
                                                             nullptr))
               .first;
    }
    return it->second;
  };

  // Seed: changed devices and their session neighbors recompute wholesale —
  // their locals, redistribution and policy bindings may have changed in
  // ways the baseline routing state cannot witness. Everything else enters
  // the dirty set only when a neighbor's best route actually changes.
  std::set<std::string> seeds;
  for (const std::string& device : changed_devices) {
    seeds.insert(device);
    for (const detail::Flow* flow : flowsOf(out_flows, device)) {
      seeds.insert(flow->to);
    }
  }

  struct DirtyScope {
    bool whole = false;  // whole-router recompute (seed round only)
    std::set<net::Prefix> prefixes;
  };
  std::map<std::string, DirtyScope> dirty;
  for (const std::string& seed : seeds) dirty[seed].whole = true;

  // Jacobi commit: each round computes every dirty work item against the
  // previous round's state, then applies all updates at once — exactly the
  // synchronous-round semantics of the full engine.
  struct Update {
    std::string router;
    net::Prefix prefix;
    std::optional<Route> route;  // nullopt = withdraw
    bool state_change = false;   // key() changed (vs. a derived-state refresh)
  };

  std::set<net::Prefix> dirty_prefix_set;

  // Candidates of one (router, prefix): locals plus the imports the
  // neighbors' current bests would announce this round.
  const auto recomputePrefix =
      [&](const std::string& router,
          const net::Prefix& prefix) -> std::optional<Route> {
    std::map<std::string, Route> candidates;
    for (const Route& local : localsOf(router)) {
      if (local.prefix == prefix) {
        candidates[detail::kLocalOrigin + routeSourceName(local.source)] =
            local;
      }
    }
    for (const detail::Flow* flow : flowsOf(in_flows, router)) {
      const auto neighbor = bests.find(flow->from);
      if (neighbor == bests.end()) continue;
      const auto route = neighbor->second.find(prefix);
      if (route == neighbor->second.end()) continue;
      auto imported = detail::announceOnFlow(*flow, prefix, route->second,
                                             nullptr, &result.announcements);
      if (imported) candidates[flow->from] = std::move(*imported);
    }
    return detail::selectBestForPrefix(candidates, better, options.enable_ecmp);
  };

  const auto recomputeRouter = [&](const std::string& router,
                                   std::vector<Update>& updates) {
    detail::Candidates candidates;
    for (const Route& local : localsOf(router)) {
      candidates[local.prefix]
                [detail::kLocalOrigin + routeSourceName(local.source)] = local;
    }
    for (const detail::Flow* flow : flowsOf(in_flows, router)) {
      const auto neighbor = bests.find(flow->from);
      if (neighbor == bests.end()) continue;
      for (const auto& [prefix, route] : neighbor->second) {
        auto imported = detail::announceOnFlow(*flow, prefix, route, nullptr,
                                               &result.announcements);
        if (imported) candidates[prefix][flow->from] = std::move(*imported);
      }
    }
    std::map<net::Prefix, Route> fresh;
    detail::selectBests(candidates, fresh, better, options.enable_ecmp);
    const auto& old_routes = bests[router];
    for (auto& [prefix, route] : fresh) {
      ++stats.work_items;
      dirty_prefix_set.insert(prefix);
      const auto old_it = old_routes.find(prefix);
      const bool changed =
          old_it == old_routes.end() ||
          !detail::sameRouteState(old_it->second, route);
      updates.push_back(Update{router, prefix, std::move(route), changed});
    }
    for (const auto& [prefix, route] : old_routes) {
      if (fresh.find(prefix) == fresh.end()) {
        ++stats.work_items;
        dirty_prefix_set.insert(prefix);
        updates.push_back(Update{router, prefix, std::nullopt, true});
      }
    }
  };

  std::uint64_t state_hash = detail::ribHash(bests);
  std::unordered_map<std::uint64_t, int> round_of_hash{{state_hash, 0}};
  int round = 0;
  bool converged = false;

  while (round < options.max_rounds) {
    ++round;
    std::vector<Update> updates;
    for (const auto& [router, scope] : dirty) {
      if (scope.whole) {
        recomputeRouter(router, updates);
        continue;
      }
      for (const net::Prefix& prefix : scope.prefixes) {
        ++stats.work_items;
        dirty_prefix_set.insert(prefix);
        std::optional<Route> fresh = recomputePrefix(router, prefix);
        const auto& routes = bests[router];
        const auto old_it = routes.find(prefix);
        if (!fresh && old_it == routes.end()) continue;
        const bool changed = !fresh || old_it == routes.end() ||
                             !detail::sameRouteState(old_it->second, *fresh);
        // Even a key-equal recompute commits: its ECMP set (derived state,
        // outside the key) may be fresher. It just doesn't propagate.
        updates.push_back(Update{router, prefix, std::move(fresh), changed});
      }
    }

    dirty.clear();
    bool any_state_change = false;
    for (Update& update : updates) {
      auto& routes = bests[update.router];
      if (update.state_change) {
        any_state_change = true;
        const auto old_it = routes.find(update.prefix);
        if (old_it != routes.end()) {
          state_hash ^= detail::ribEntryHash(update.router, old_it->second);
        }
        if (update.route) {
          state_hash ^= detail::ribEntryHash(update.router, *update.route);
        }
        for (const detail::Flow* flow : flowsOf(out_flows, update.router)) {
          dirty[flow->to].prefixes.insert(update.prefix);
        }
      }
      if (update.route) {
        routes.insert_or_assign(update.prefix, std::move(*update.route));
      } else {
        routes.erase(update.prefix);
      }
    }

    if (!any_state_change) {
      converged = true;
      break;
    }
    // A repeated non-fixpoint state means the updated network oscillates.
    // The full engine's representative rib and flapping window depend on
    // its orbit from round 0, which a fixpoint-seeded orbit cannot replay —
    // byte-identity demands the real thing.
    const auto [seen, inserted] = round_of_hash.emplace(state_hash, round);
    if (!inserted) return fallback("oscillation-detected");
  }
  if (!converged) return fallback("delta-round-cap");

  stats.used_delta = true;
  stats.rounds = round;
  stats.dirty_prefixes = dirty_prefix_set.size();
  stats.rounds_saved = std::max(0, baseline_.rounds - round);
  metrics.counter("sim.delta.runs").add(1);
  metrics.counter("sim.delta.dirty_prefixes").add(stats.dirty_prefixes);
  metrics.counter("sim.delta.work_items").add(stats.work_items);
  metrics.counter("sim.delta.rounds").add(static_cast<std::uint64_t>(round));
  metrics.counter("sim.delta.rounds_saved")
      .add(static_cast<std::uint64_t>(stats.rounds_saved));
  if (stats_out != nullptr) *stats_out = stats;

  result.converged = true;
  result.rounds = round;
  result.rib = std::move(bests);
  return result;
}

}  // namespace acr::route
