#include "routing/delta_tree.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>

#include "obs/trace.hpp"
#include "routing/sim_internal.hpp"
#include "util/metrics.hpp"

namespace acr::route {

namespace {

/// Field-wise equality of one session (sameSessions() is the vector form).
bool sameSession(const Session& a, const Session& b) {
  return a.a == b.a && a.b == b.b && a.a_address == b.a_address &&
         a.b_address == b.b_address && a.up == b.up &&
         a.down_reason == b.down_reason;
}

}  // namespace

struct DeltaTree::Impl {
  /// Pre-image key of one touched RIB entry: (dense router id, prefix).
  using EntryKey = std::pair<int, net::Prefix>;
  /// First-touch undo log of one tree level: the entry's value at the
  /// level's parent fixpoint (nullopt = absent).
  using UndoLog = std::map<EntryKey, std::optional<Route>>;

  const topo::Network& anchor_network;
  const SimResult& anchor;
  SimOptions options;
  std::string disabled_reason;

  detail::RouterTable table;
  /// Anchor-resolved session flows, in buildFlows order. Never reallocated
  /// after construction — `effective` holds pointers into it.
  std::vector<detail::Flow> flows;
  /// The flow actually used per slot: anchor flows, overridden per slot by
  /// base- or leaf-resolved patches. Slot layout is fixed because the
  /// session table is identical across the whole tree (precondition).
  std::vector<const detail::Flow*> effective;
  /// First flow slot of session i (-1 for a down session; an up session
  /// owns exactly two consecutive slots, a->b then b->a).
  std::vector<std::ptrdiff_t> session_flow_start;
  std::map<std::string, std::vector<std::size_t>> in_ids;
  std::map<std::string, std::vector<std::size_t>> out_ids;
  /// Base-resolved flow patches (deque: stable addresses under growth).
  std::deque<detail::Flow> node_patch_storage;

  /// The one working state, forked by undo logs. Scrubbed like the
  /// DeltaSimulator's seed (no derivations; ECMP per options).
  SimResult view;
  std::uint64_t hash = 0;       // incremental ribHash of view.rib
  std::uint64_t node_hash = 0;  // checkpoint at the base fixpoint
  bool base_set = false;
  UndoLog node_undo;
  UndoLog leaf_undo;

  Impl(const topo::Network& anchor_network_in, const SimResult& anchor_in,
       const SimOptions& options_in)
      : anchor_network(anchor_network_in),
        anchor(anchor_in),
        options(options_in),
        table(anchor_network_in.topology) {}

  [[nodiscard]] const std::vector<std::size_t>& idsOf(
      const std::map<std::string, std::vector<std::size_t>>& index,
      const std::string& router) const {
    static const std::vector<std::size_t> kNoIds;
    const auto it = index.find(router);
    return it == index.end() ? kNoIds : it->second;
  }

  /// Leaf/base-level precondition checks against the anchor. On success,
  /// `up_touched` holds the indices of the up sessions whose flows must be
  /// re-resolved against `network`.
  [[nodiscard]] std::string checkAgainstAnchor(
      const topo::Network& network, const std::set<std::string>& changed,
      std::vector<std::size_t>& up_touched) const {
    if (!detail::sameTopologyShape(anchor_network.topology,
                                   network.topology)) {
      return "topology-shape-changed";
    }
    if (!detail::sameDeviceSet(anchor_network, network)) {
      return "device-set-changed";
    }
    // Sessions depend only on their endpoint configs (given an identical
    // topology), so only links touching a changed device can disagree.
    const auto& links = anchor_network.topology.links();
    for (std::size_t i = 0; i < links.size(); ++i) {
      if (changed.count(links[i].a) == 0 && changed.count(links[i].b) == 0) {
        continue;
      }
      const Session fresh = detail::sessionForLink(network, links[i]);
      if (!sameSession(fresh, anchor.sessions[i])) {
        return "session-state-changed";
      }
      if (anchor.sessions[i].up) up_touched.push_back(i);
    }
    return {};
  }

  /// Re-resolves the flows of `up_touched` sessions against `network` into
  /// `storage`, overriding their `effective` slots. When `saved` is
  /// non-null the previous slot values are recorded for restoration.
  void patchFlows(
      const topo::Network& network, const std::vector<std::size_t>& up_touched,
      std::deque<detail::Flow>& storage,
      std::vector<std::pair<std::size_t, const detail::Flow*>>* saved) {
    std::vector<detail::Flow> fresh;
    for (const std::size_t i : up_touched) {
      const auto start = static_cast<std::size_t>(session_flow_start[i]);
      fresh.clear();
      detail::appendFlowsForSession(network, anchor.sessions[i], table, fresh);
      for (std::size_t k = 0; k < fresh.size(); ++k) {
        if (saved != nullptr) saved->emplace_back(start + k, effective[start + k]);
        storage.push_back(std::move(fresh[k]));
        effective[start + k] = &storage.back();
      }
    }
  }

  /// Routers named by an undo log's keys — the set whose cached FIB pages
  /// must be re-derived after the log's entries were applied or undone.
  [[nodiscard]] std::set<std::string> touchedRouters(
      const UndoLog& undo) const {
    std::set<std::string> routers;
    for (const auto& [key, value] : undo) {
      routers.insert(table.names[static_cast<std::size_t>(key.first)]);
    }
    return routers;
  }

  /// Restores every entry of `undo` to its recorded pre-image and resets
  /// the incremental hash to `checkpoint`.
  void rollback(UndoLog& undo, std::uint64_t checkpoint) {
    for (auto& [key, value] : undo) {
      auto& routes = view.rib[table.names[static_cast<std::size_t>(key.first)]];
      if (value) {
        routes.insert_or_assign(key.second, std::move(*value));
      } else {
        routes.erase(key.second);
      }
    }
    view.dropLookupPages(touchedRouters(undo));
    undo.clear();
    hash = checkpoint;
  }

  /// One propagation segment from the current fixpoint: recomputes
  /// `changed` devices (and their session neighbors) wholesale, then
  /// propagates dirty (router, prefix) work items to a new fixpoint —
  /// exactly the DeltaSimulator round loop, but committing into the shared
  /// working state with first-touch undo recording. Returns the fallback
  /// reason on failure (the caller rolls back), empty on success.
  [[nodiscard]] std::string propagate(
      const topo::Network& network, const std::vector<std::string>& changed,
      UndoLog& undo, int& rounds_out, std::size_t& work_items_out) {
    Rib& bests = view.rib;
    const detail::RouteBetter better{&table};

    std::map<std::string, std::vector<Route>> locals;
    const auto localsOf =
        [&](const std::string& router) -> const std::vector<Route>& {
      auto it = locals.find(router);
      if (it == locals.end()) {
        const cfg::DeviceConfig* device = network.config(router);
        it = locals
                 .emplace(router,
                          device == nullptr
                              ? std::vector<Route>{}
                              : detail::localRoutesFor(router, *device, nullptr))
                 .first;
      }
      return it->second;
    };

    std::set<std::string> seeds;
    for (const std::string& device : changed) {
      seeds.insert(device);
      for (const std::size_t idx : idsOf(out_ids, device)) {
        seeds.insert(effective[idx]->to);
      }
    }

    struct DirtyScope {
      bool whole = false;
      std::set<net::Prefix> prefixes;
    };
    std::map<std::string, DirtyScope> dirty;
    for (const std::string& seed : seeds) dirty[seed].whole = true;

    struct Update {
      std::string router;
      net::Prefix prefix;
      std::optional<Route> route;  // nullopt = withdraw
      bool state_change = false;
    };

    const auto recomputePrefix =
        [&](const std::string& router,
            const net::Prefix& prefix) -> std::optional<Route> {
      std::map<std::string, Route> candidates;
      for (const Route& local : localsOf(router)) {
        if (local.prefix == prefix) {
          candidates[detail::kLocalOrigin + routeSourceName(local.source)] =
              local;
        }
      }
      for (const std::size_t idx : idsOf(in_ids, router)) {
        const detail::Flow* flow = effective[idx];
        const auto neighbor = bests.find(flow->from);
        if (neighbor == bests.end()) continue;
        const auto route = neighbor->second.find(prefix);
        if (route == neighbor->second.end()) continue;
        auto imported =
            detail::announceOnFlow(*flow, prefix, route->second, nullptr,
                                   nullptr);
        if (imported) candidates[flow->from] = std::move(*imported);
      }
      return detail::selectBestForPrefix(candidates, better,
                                         options.enable_ecmp);
    };

    const auto recomputeRouter = [&](const std::string& router,
                                     std::vector<Update>& updates) {
      detail::Candidates candidates;
      for (const Route& local : localsOf(router)) {
        candidates[local.prefix]
                  [detail::kLocalOrigin + routeSourceName(local.source)] =
                      local;
      }
      for (const std::size_t idx : idsOf(in_ids, router)) {
        const detail::Flow* flow = effective[idx];
        const auto neighbor = bests.find(flow->from);
        if (neighbor == bests.end()) continue;
        for (const auto& [prefix, route] : neighbor->second) {
          auto imported =
              detail::announceOnFlow(*flow, prefix, route, nullptr, nullptr);
          if (imported) candidates[prefix][flow->from] = std::move(*imported);
        }
      }
      std::map<net::Prefix, Route> fresh;
      detail::selectBests(candidates, fresh, better, options.enable_ecmp);
      const auto& old_routes = bests[router];
      for (auto& [prefix, route] : fresh) {
        ++work_items_out;
        const auto old_it = old_routes.find(prefix);
        const bool state_change =
            old_it == old_routes.end() ||
            !detail::sameRouteState(old_it->second, route);
        updates.push_back(Update{router, prefix, std::move(route), state_change});
      }
      for (const auto& [prefix, route] : old_routes) {
        if (fresh.find(prefix) == fresh.end()) {
          ++work_items_out;
          updates.push_back(Update{router, prefix, std::nullopt, true});
        }
      }
    };

    std::unordered_map<std::uint64_t, int> round_of_hash{{hash, 0}};
    int round = 0;
    bool converged = false;

    while (round < options.max_rounds) {
      ++round;
      std::vector<Update> updates;
      for (const auto& [router, scope] : dirty) {
        if (scope.whole) {
          recomputeRouter(router, updates);
          continue;
        }
        for (const net::Prefix& prefix : scope.prefixes) {
          ++work_items_out;
          std::optional<Route> fresh = recomputePrefix(router, prefix);
          const auto& routes = bests[router];
          const auto old_it = routes.find(prefix);
          if (!fresh && old_it == routes.end()) continue;
          const bool state_change =
              !fresh || old_it == routes.end() ||
              !detail::sameRouteState(old_it->second, *fresh);
          // Key-equal recomputes still reach the commit loop (their ECMP
          // set may be fresher); they just don't propagate. The commit loop
          // drops the ones that turn out fully identical.
          updates.push_back(
              Update{router, prefix, std::move(fresh), state_change});
        }
      }

      dirty.clear();
      bool any_state_change = false;
      for (Update& update : updates) {
        auto& routes = bests[update.router];
        const auto old_it = routes.find(update.prefix);
        // A recompute that reproduced the stored entry byte-for-byte (same
        // key state, ECMP set and derived ids) is a pure no-op: committing
        // it would only grow the undo log with an entry that restores an
        // identical value. Skipping keeps leaf undo logs at the size of the
        // *actual* diff — wholesale-seeded neighbors that settle on the
        // routes they already had cost nothing to roll back.
        if (!update.state_change && update.route && old_it != routes.end() &&
            old_it->second.ecmp == update.route->ecmp &&
            old_it->second.learned_from_id == update.route->learned_from_id &&
            old_it->second.derivation == update.route->derivation) {
          continue;
        }
        // First touch at this tree level: record the pre-image before
        // overwriting, so the level can be rolled back exactly.
        undo.try_emplace(EntryKey{table.idOf(update.router), update.prefix},
                         old_it != routes.end()
                             ? std::optional<Route>(old_it->second)
                             : std::nullopt);
        if (update.state_change) {
          any_state_change = true;
          if (old_it != routes.end()) {
            hash ^= detail::ribEntryHash(update.router, old_it->second);
          }
          if (update.route) {
            hash ^= detail::ribEntryHash(update.router, *update.route);
          }
          for (const std::size_t idx : idsOf(out_ids, update.router)) {
            dirty[effective[idx]->to].prefixes.insert(update.prefix);
          }
        }
        if (update.route) {
          routes.insert_or_assign(update.prefix, std::move(*update.route));
        } else {
          routes.erase(update.prefix);
        }
      }

      if (!any_state_change) {
        converged = true;
        break;
      }
      const auto [seen, inserted] = round_of_hash.emplace(hash, round);
      if (!inserted) return "oscillation-detected";
    }
    if (!converged) return "delta-round-cap";
    rounds_out = round;
    return {};
  }
};

DeltaTree::DeltaTree(const topo::Network& anchor_network,
                     const SimResult& anchor, const SimOptions& options)
    : impl_(std::make_unique<Impl>(anchor_network, anchor, options)) {
  util::MetricsRegistry& metrics = util::MetricsRegistry::global();
  metrics.counter("sim.tree.batches").add(1);
  const auto disable = [&](std::string reason) {
    impl_->disabled_reason = std::move(reason);
  };

  // Anchor-level preconditions — the DeltaSimulator's first three fallback
  // rules, checked once per tree instead of once per candidate.
  if (options.record_provenance) {
    disable("provenance-requested");
    return;
  }
  if (!anchor.converged) {
    disable("baseline-not-converged");
    return;
  }

  // Working state: the anchor fixpoint, scrubbed exactly like the
  // DeltaSimulator's seed (derivations point into the anchor's provenance
  // graph; ECMP sets must match the requested recording mode).
  impl_->view.rib = anchor.rib;
  for (auto& [router, routes] : impl_->view.rib) {
    for (auto& [prefix, route] : routes) {
      route.derivation = prov::kNoDerivation;
      if (!options.enable_ecmp) {
        route.ecmp.clear();
      } else if (route.source == RouteSource::kBgp && route.ecmp.empty()) {
        disable("ecmp-recording-mismatch");
        return;
      }
    }
  }
  impl_->view.converged = true;
  impl_->view.sessions = anchor.sessions;
  impl_->hash = detail::ribHash(impl_->view.rib);
  impl_->node_hash = impl_->hash;

  // Anchor flows, with the per-session slot layout every fork patches into.
  for (const Session& session : anchor.sessions) {
    impl_->session_flow_start.push_back(
        session.up ? static_cast<std::ptrdiff_t>(impl_->flows.size()) : -1);
    detail::appendFlowsForSession(anchor_network, session, impl_->table,
                                  impl_->flows);
  }
  impl_->effective.reserve(impl_->flows.size());
  for (std::size_t i = 0; i < impl_->flows.size(); ++i) {
    impl_->effective.push_back(&impl_->flows[i]);
    impl_->in_ids[impl_->flows[i].to].push_back(i);
    impl_->out_ids[impl_->flows[i].from].push_back(i);
  }
}

DeltaTree::~DeltaTree() = default;

bool DeltaTree::usable() const { return impl_->disabled_reason.empty(); }

const std::string& DeltaTree::disabledReason() const {
  return impl_->disabled_reason;
}

void DeltaTree::setBase(const topo::Network& base,
                        const std::vector<std::string>& changed_vs_anchor) {
  if (!usable()) return;
  if (impl_->base_set) {
    impl_->disabled_reason = "base-already-set";
    return;
  }
  impl_->base_set = true;
  if (changed_vs_anchor.empty()) return;  // base == anchor

  obs::Span span("sim.tree.node");
  util::MetricsRegistry& metrics = util::MetricsRegistry::global();
  const std::set<std::string> changed(changed_vs_anchor.begin(),
                                      changed_vs_anchor.end());
  std::vector<std::size_t> up_touched;
  std::string reason =
      impl_->checkAgainstAnchor(base, changed, up_touched);
  if (reason.empty()) {
    impl_->patchFlows(base, up_touched, impl_->node_patch_storage, nullptr);
    int rounds = 0;
    std::size_t work_items = 0;
    reason = impl_->propagate(base, changed_vs_anchor, impl_->node_undo,
                              rounds, work_items);
    metrics.counter("sim.tree.node_work_items").add(work_items);
    if (reason.empty()) {
      impl_->view.dropLookupPages(impl_->touchedRouters(impl_->node_undo));
      impl_->node_hash = impl_->hash;
      span.attr("rounds", std::to_string(rounds));
      return;
    }
    impl_->rollback(impl_->node_undo, impl_->node_hash);
  }
  // A base-level violation poisons every leaf: unwind to the anchor and
  // disable — leaves fall back to full runs with this reason.
  impl_->node_patch_storage.clear();
  for (std::size_t i = 0; i < impl_->flows.size(); ++i) {
    impl_->effective[i] = &impl_->flows[i];
  }
  span.attr("fallback", reason);
  impl_->disabled_reason = std::move(reason);
}

void DeltaTree::leaf(const topo::Network& network,
                     const std::vector<std::string>& changed_vs_base,
                     const LeafVisitor& visit) {
  obs::Span span("sim.tree.leaf");
  util::MetricsRegistry& metrics = util::MetricsRegistry::global();
  metrics.counter("sim.tree.leaves").add(1);

  const auto fallback = [&](std::string reason) {
    span.attr("fallback", reason);
    metrics.counter("sim.tree.fallback." + reason).add(1);
    TreeLeafStats stats;
    stats.used_delta = false;
    stats.fallback_reason = std::move(reason);
    const SimResult full = Simulator(network).run(impl_->options);
    visit(full, stats);
  };

  if (!usable()) return fallback(impl_->disabled_reason);

  // Leaf-level preconditions: a violation degrades this leaf only.
  const std::set<std::string> changed(changed_vs_base.begin(),
                                      changed_vs_base.end());
  std::vector<std::size_t> up_touched;
  std::string reason = impl_->checkAgainstAnchor(network, changed, up_touched);
  if (!reason.empty()) return fallback(reason);

  std::deque<detail::Flow> leaf_patch_storage;
  std::vector<std::pair<std::size_t, const detail::Flow*>> saved_slots;
  impl_->patchFlows(network, up_touched, leaf_patch_storage, &saved_slots);
  const auto restoreSlots = [&] {
    for (const auto& [slot, flow] : saved_slots) impl_->effective[slot] = flow;
  };

  TreeLeafStats stats;
  reason = impl_->propagate(network, changed_vs_base, impl_->leaf_undo,
                            stats.rounds, stats.work_items);
  if (!reason.empty()) {
    impl_->rollback(impl_->leaf_undo, impl_->node_hash);
    restoreSlots();
    return fallback(reason);
  }

  stats.used_delta = true;
  stats.undo_entries = impl_->leaf_undo.size();

  // Exact leaf-vs-anchor RIB diff from the undo logs: a key's anchor value
  // is its pre-image in the node log when present (the base touched it
  // first), else in the leaf log. Every touched key appears in one of the
  // two, so no RIB sweep is needed.
  std::set<Impl::EntryKey> touched;
  for (const auto& [key, value] : impl_->node_undo) touched.insert(key);
  for (const auto& [key, value] : impl_->leaf_undo) touched.insert(key);
  for (const Impl::EntryKey& key : touched) {
    const auto node_it = impl_->node_undo.find(key);
    const std::optional<Route>& anchor_value =
        node_it != impl_->node_undo.end() ? node_it->second
                                          : impl_->leaf_undo.at(key);
    const std::string& router =
        impl_->table.names[static_cast<std::size_t>(key.first)];
    const auto& routes = impl_->view.rib[router];
    const auto current = routes.find(key.second);
    const bool same =
        current == routes.end()
            ? !anchor_value.has_value()
            : anchor_value.has_value() &&
                  detail::sameRouteState(*anchor_value, current->second);
    if (!same) stats.changed_vs_anchor.emplace_back(router, key.second);
  }

  impl_->view.dropLookupPages(impl_->touchedRouters(impl_->leaf_undo));
  impl_->view.rounds = stats.rounds;

  metrics.counter("sim.tree.delta_leaves").add(1);
  metrics.counter("sim.tree.leaf_work_items").add(stats.work_items);
  metrics.counter("sim.tree.rounds")
      .add(static_cast<std::uint64_t>(stats.rounds));
  metrics.counter("sim.tree.undo_entries").add(stats.undo_entries);
  span.attr("rounds", std::to_string(stats.rounds));

  visit(impl_->view, stats);

  impl_->rollback(impl_->leaf_undo, impl_->node_hash);
  restoreSlots();
}

}  // namespace acr::route
