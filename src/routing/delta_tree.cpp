#include "routing/delta_tree.hpp"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <memory>
#include <set>
#include <tuple>
#include <utility>

#include "obs/trace.hpp"
#include "routing/sim_engine.hpp"
#include "routing/sim_internal.hpp"
#include "util/metrics.hpp"

namespace acr::route {

namespace {

/// Field-wise equality of one session (sameSessions() is the vector form).
bool sameSession(const Session& a, const Session& b) {
  return a.a == b.a && a.b == b.b && a.a_address == b.a_address &&
         a.b_address == b.b_address && a.up == b.up &&
         a.down_reason == b.down_reason;
}

}  // namespace

struct DeltaTree::Impl {
  const topo::Network& anchor_network;
  const SimResult& anchor;
  SimOptions options;
  std::string disabled_reason;

  /// Clone of the anchor's interned tables: same ids for everything the
  /// anchor rib references, append-only growth for prefixes/paths the
  /// candidates introduce. Pinning the ids is what lets forks share the
  /// anchor's pages verbatim.
  SimTablesPtr tables;
  /// Anchor-resolved session flows, in buildFlows order. Never reallocated
  /// after construction — `effective` holds pointers into it.
  std::vector<detail::Flow> flows;
  /// The flow actually used per slot: anchor flows, overridden per slot by
  /// base- or leaf-resolved patches. Slot layout is fixed because the
  /// session table is identical across the whole tree (precondition).
  std::vector<const detail::Flow*> effective;
  /// First flow slot of session i (-1 for a down session; an up session
  /// owns exactly two consecutive slots, a->b then b->a).
  std::vector<std::ptrdiff_t> session_flow_start;
  /// Per-router flow/candidate-slot plan over `effective`'s slot indices —
  /// stable across flow patches (endpoints never change).
  detail::EnginePlan plan;
  detail::CandidateBoard board;
  detail::EntryBetter better;
  /// Base-resolved flow patches (deque: stable addresses under growth).
  std::deque<detail::Flow> node_patch_storage;
  /// Devices on which the base differs from the anchor — a leaf's dirty
  /// devices vs. the anchor are these plus its own changed_vs_base.
  std::vector<std::string> base_changed_devices;

  /// The one working state, forked copy-on-write. Masked like the
  /// DeltaSimulator's seed (no derivations; ECMP per options).
  SimResult view;
  std::uint64_t hash = 0;       // incremental state hash of view.rib
  std::uint64_t node_hash = 0;  // checkpoint at the base fixpoint
  bool base_set = false;

  /// Undo state of one tree level. Rolling back restores the saved page
  /// pointers — the pre-images survive inside the anchor/base pages because
  /// holding them here keeps every touched page shared, which forces the
  /// next write through clone-on-first-write instead of mutating in place.
  struct Level {
    std::vector<std::pair<int, RibPagePtr>> saved_pages;  // first-touch order
    std::vector<std::uint8_t> page_saved;                 // by rid
    /// First-touch (router, prefix) cells, deduplicated by `touch_grid` —
    /// the keys of the old per-entry undo maps, without the pre-image
    /// values (the saved pages carry those wholesale).
    std::vector<std::pair<int, PrefixId>> touched;
    std::vector<std::vector<std::uint8_t>> touch_grid;  // by rid, by pid
  };
  Level node_level;
  Level leaf_level;

  Impl(const topo::Network& anchor_network_in, const SimResult& anchor_in,
       const SimOptions& options_in)
      : anchor_network(anchor_network_in),
        anchor(anchor_in),
        options(options_in) {}

  [[nodiscard]] std::size_t routerCount() const {
    return tables->routers.names.size();
  }

  void initLevel(Level& level) {
    level.page_saved.assign(routerCount(), 0);
    level.touch_grid.resize(routerCount());
  }

  void recordTouch(Level& level, int rid, PrefixId pid) {
    const auto idx = static_cast<std::size_t>(rid);
    if (level.page_saved[idx] == 0) {
      level.page_saved[idx] = 1;
      level.saved_pages.emplace_back(rid, view.rib.pageRef(rid));
    }
    auto& grid = level.touch_grid[idx];
    if (grid.size() < tables->prefixes.size()) {
      grid.resize(tables->prefixes.size(), 0);
    }
    if (grid[pid] == 0) {
      grid[pid] = 1;
      level.touched.emplace_back(rid, pid);
    }
  }

  /// Routers whose pages a level touched — the set whose cached FIB pages
  /// must be re-derived after the level was applied or undone.
  [[nodiscard]] std::set<std::string> touchedRouters(const Level& level) const {
    std::set<std::string> routers;
    for (const auto& [rid, saved] : level.saved_pages) {
      routers.insert(tables->routers.nameOf(rid));
    }
    return routers;
  }

  /// Restores every page the level touched to its saved pre-image pointer
  /// and resets the incremental hash to `checkpoint`.
  void rollback(Level& level, std::uint64_t checkpoint) {
    std::set<std::string> routers = touchedRouters(level);
    for (auto& [rid, saved] : level.saved_pages) {
      view.rib.restorePage(rid, std::move(saved));
      level.page_saved[static_cast<std::size_t>(rid)] = 0;
    }
    for (const auto& [rid, pid] : level.touched) {
      level.touch_grid[static_cast<std::size_t>(rid)][pid] = 0;
    }
    level.saved_pages.clear();
    level.touched.clear();
    view.dropLookupPages(routers);
    hash = checkpoint;
  }

  /// Leaf/base-level precondition checks against the anchor. On success,
  /// `up_touched` holds the indices of the up sessions whose flows must be
  /// re-resolved against `network`.
  [[nodiscard]] std::string checkAgainstAnchor(
      const topo::Network& network, const std::set<std::string>& changed,
      std::vector<std::size_t>& up_touched) const {
    if (!detail::sameTopologyShape(anchor_network.topology,
                                   network.topology)) {
      return "topology-shape-changed";
    }
    if (!detail::sameDeviceSet(anchor_network, network)) {
      return "device-set-changed";
    }
    // Sessions depend only on their endpoint configs (given an identical
    // topology), so only links touching a changed device can disagree.
    const auto& links = anchor_network.topology.links();
    for (std::size_t i = 0; i < links.size(); ++i) {
      if (changed.count(links[i].a) == 0 && changed.count(links[i].b) == 0) {
        continue;
      }
      const Session fresh = detail::sessionForLink(network, links[i]);
      if (!sameSession(fresh, anchor.sessions[i])) {
        return "session-state-changed";
      }
      if (anchor.sessions[i].up) up_touched.push_back(i);
    }
    return {};
  }

  /// Re-resolves the flows of `up_touched` sessions against `network` into
  /// `storage`, overriding their `effective` slots. When `saved` is
  /// non-null the previous slot values are recorded for restoration.
  void patchFlows(
      const topo::Network& network, const std::vector<std::size_t>& up_touched,
      std::deque<detail::Flow>& storage,
      std::vector<std::pair<std::size_t, const detail::Flow*>>* saved) {
    std::vector<detail::Flow> fresh;
    for (const std::size_t i : up_touched) {
      const auto start = static_cast<std::size_t>(session_flow_start[i]);
      fresh.clear();
      detail::appendFlowsForSession(network, anchor.sessions[i],
                                    tables->routers, fresh);
      for (std::size_t k = 0; k < fresh.size(); ++k) {
        if (saved != nullptr) {
          saved->emplace_back(start + k, effective[start + k]);
        }
        storage.push_back(std::move(fresh[k]));
        effective[start + k] = &storage.back();
      }
    }
  }

  /// One propagation segment from the current fixpoint: recomputes
  /// `changed` devices (and their session neighbors) wholesale, then
  /// propagates dirty (router, prefix) work items to a new fixpoint —
  /// exactly the DeltaSimulator round loop, but committing into the shared
  /// working state with first-touch page/cell recording. Returns the
  /// fallback reason on failure (the caller rolls back), empty on success.
  [[nodiscard]] std::string propagate(const topo::Network& network,
                                      const std::vector<std::string>& changed,
                                      Level& level, int& rounds_out,
                                      std::size_t& work_items_out) {
    Rib& bests = view.rib;
    const std::size_t router_count = routerCount();

    std::vector<std::vector<detail::PackedLocal>> locals(router_count);
    std::vector<std::uint8_t> locals_ready(router_count, 0);
    const auto localsOf =
        [&](int rid) -> const std::vector<detail::PackedLocal>& {
      const auto idx = static_cast<std::size_t>(rid);
      if (locals_ready[idx] == 0) {
        locals_ready[idx] = 1;
        const std::string& name = tables->routers.nameOf(rid);
        const cfg::DeviceConfig* device = network.config(name);
        if (device != nullptr) {
          detail::packedLocalsFor(name, *device, *tables, nullptr,
                                  locals[idx]);
        }
      }
      return locals[idx];
    };

    std::set<int> seeds;
    for (const std::string& device : changed) {
      const int rid = tables->routers.idOf(device);
      if (rid == 0) continue;
      seeds.insert(rid);
      for (const std::uint32_t flow_idx :
           plan.out_flows[static_cast<std::size_t>(rid)]) {
        seeds.insert(effective[flow_idx]->to_id);
      }
    }

    std::vector<std::vector<PrefixId>> dirty_pids(router_count);
    std::vector<std::vector<PrefixId>> next_pids(router_count);
    std::vector<int> dirty_rids;
    std::vector<int> next_rids;
    std::vector<std::uint8_t> next_listed(router_count, 0);
    std::vector<std::vector<std::uint32_t>> pid_stamp(router_count);
    std::uint32_t stamp = 0;
    const auto addDirty = [&](int rid, PrefixId pid) {
      auto& marks = pid_stamp[static_cast<std::size_t>(rid)];
      if (marks.size() < tables->prefixes.size()) {
        marks.resize(tables->prefixes.size(), 0);
      }
      if (marks[pid] == stamp) return;
      marks[pid] = stamp;
      if (next_listed[static_cast<std::size_t>(rid)] == 0) {
        next_listed[static_cast<std::size_t>(rid)] = 1;
        next_rids.push_back(rid);
        next_pids[static_cast<std::size_t>(rid)].clear();
      }
      next_pids[static_cast<std::size_t>(rid)].push_back(pid);
    };

    struct Update {
      int rid = 0;
      PrefixId pid = 0;
      RouteEntry entry;
      bool present = false;
      bool state_change = false;
    };
    std::vector<Update> updates;
    std::vector<EcmpSet> update_ecmp;
    EcmpSet ecmp_scratch;

    const auto recomputePrefix = [&](int rid, PrefixId pid) {
      ++work_items_out;
      const auto& local_list = localsOf(rid);
      board.growUniverse(tables->prefixes.size());
      for (const detail::PackedLocal& local : local_list) {
        if (local.pid == pid) board.stageLocal(rid, local);
      }
      for (const std::uint32_t flow_idx :
           plan.in_flows[static_cast<std::size_t>(rid)]) {
        const detail::Flow& flow = *effective[flow_idx];
        const RouteEntry* entry = bests.entryAt(flow.from_id, pid);
        if (entry == nullptr) continue;
        RouteEntry imported;
        if (detail::announceEntryOnFlow(flow, pid, *entry, *tables, nullptr,
                                        nullptr, imported)) {
          board.stage(rid, plan.flow_slot[flow_idx], pid, imported);
        }
      }
      RouteEntry selected;
      const bool present = board.select(rid, pid, better, options.enable_ecmp,
                                        selected, ecmp_scratch);
      const RouteEntry* old_entry = bests.entryAt(rid, pid);
      if (!present && old_entry == nullptr) return;
      const bool changed = !present || old_entry == nullptr ||
                           !sameEntryState(*old_entry, selected);
      // Key-equal recomputes still reach the commit loop (their ECMP set
      // may be fresher); they just don't propagate. The commit loop drops
      // the ones that turn out fully identical.
      updates.push_back(Update{rid, pid, selected, present, changed});
      update_ecmp.push_back(ecmp_scratch);
    };

    const auto recomputeRouter = [&](int rid) {
      const auto& local_list = localsOf(rid);
      board.growUniverse(tables->prefixes.size());
      for (const detail::PackedLocal& local : local_list) {
        board.stageLocal(rid, local);
      }
      for (const std::uint32_t flow_idx :
           plan.in_flows[static_cast<std::size_t>(rid)]) {
        const detail::Flow& flow = *effective[flow_idx];
        const RibPage* neighbor = bests.page(flow.from_id);
        if (neighbor == nullptr) continue;
        const std::uint16_t slot = plan.flow_slot[flow_idx];
        for (PrefixId pid = 0; pid < neighbor->entries.size(); ++pid) {
          const RouteEntry& entry = neighbor->entries[pid];
          if (entry.present == 0) continue;
          RouteEntry imported;
          if (detail::announceEntryOnFlow(flow, pid, entry, *tables, nullptr,
                                          nullptr, imported)) {
            board.stage(rid, slot, pid, imported);
          }
        }
      }
      for (const PrefixId pid : board.touched(rid)) {
        ++work_items_out;
        RouteEntry selected;
        const bool present = board.select(
            rid, pid, better, options.enable_ecmp, selected, ecmp_scratch);
        const RouteEntry* old_entry = bests.entryAt(rid, pid);
        const bool changed = !present || old_entry == nullptr ||
                             !sameEntryState(*old_entry, selected);
        updates.push_back(Update{rid, pid, selected, present, changed});
        update_ecmp.push_back(ecmp_scratch);
      }
      const RibPage* own = bests.page(rid);
      if (own == nullptr) return;
      for (PrefixId pid = 0; pid < own->entries.size(); ++pid) {
        if (own->entries[pid].present == 0) continue;
        if (board.touchedThisRound(rid, pid)) continue;
        ++work_items_out;
        updates.push_back(Update{rid, pid, RouteEntry{}, false, true});
        update_ecmp.emplace_back();
      }
    };

    std::vector<std::pair<std::uint64_t, int>> hash_history{{hash, 0}};
    int round = 0;
    bool converged = false;
    static const EcmpSet kNoEcmp;

    while (round < options.max_rounds) {
      ++round;
      updates.clear();
      update_ecmp.clear();
      board.beginRound();
      if (round == 1) {
        for (const int rid : seeds) recomputeRouter(rid);
      } else {
        for (const int rid : dirty_rids) {
          for (const PrefixId pid :
               dirty_pids[static_cast<std::size_t>(rid)]) {
            recomputePrefix(rid, pid);
          }
        }
      }

      ++stamp;
      bool any_state_change = false;
      for (std::size_t i = 0; i < updates.size(); ++i) {
        const Update& update = updates[i];
        const RouteEntry* old_entry = bests.entryAt(update.rid, update.pid);
        // A recompute that reproduced the stored entry's *effective* value
        // (same key state and, when recording, the same ECMP set — masked
        // derived state never shows) is a pure no-op: committing it would
        // only clone a shared page and grow the undo log to restore an
        // identical value. Skipping keeps leaf undo logs at the size of the
        // *actual* diff — wholesale-seeded neighbors that settle on the
        // routes they already had cost nothing to roll back.
        if (!update.state_change && update.present && old_entry != nullptr) {
          bool same_derived = true;
          if (options.enable_ecmp) {
            const EcmpSet* stored =
                bests.showsEcmp() && old_entry->has_ecmp != 0
                    ? bests.ecmpAt(update.rid, update.pid)
                    : nullptr;
            same_derived =
                (stored != nullptr ? *stored : kNoEcmp) == update_ecmp[i];
          }
          if (same_derived) continue;
        }
        // First touch at this tree level: save the page pointer before the
        // write, so the level can be rolled back exactly.
        recordTouch(level, update.rid, update.pid);
        if (update.state_change) {
          any_state_change = true;
          if (old_entry != nullptr) {
            hash ^= entryStateHash(update.rid, update.pid, *old_entry);
          }
          if (update.present) {
            hash ^= entryStateHash(update.rid, update.pid, update.entry);
          }
          for (const std::uint32_t flow_idx :
               plan.out_flows[static_cast<std::size_t>(update.rid)]) {
            addDirty(effective[flow_idx]->to_id, update.pid);
          }
        }
        if (update.present) {
          RouteEntry to_store = update.entry;
          // A derived-state refresh (ECMP set changed, key state not) keeps
          // the stored derivation: the chain is unchanged, and the
          // canonicalization pass only revisits state-changed cells.
          if (options.record_provenance && !update.state_change &&
              old_entry != nullptr) {
            to_store.derivation = old_entry->derivation;
          }
          bests.set(update.rid, update.pid, to_store, &update_ecmp[i]);
        } else {
          bests.erase(update.rid, update.pid);
        }
      }

      std::swap(dirty_rids, next_rids);
      dirty_pids.swap(next_pids);
      for (const int rid : dirty_rids) {
        next_listed[static_cast<std::size_t>(rid)] = 0;
      }
      next_rids.clear();

      if (!any_state_change) {
        converged = true;
        break;
      }
      bool repeated = false;
      for (const auto& [seen_hash, seen_round] : hash_history) {
        if (seen_hash == hash) {
          repeated = true;
          break;
        }
      }
      if (repeated) return "oscillation-detected";
      hash_history.emplace_back(hash, round);
    }
    if (!converged) return "delta-round-cap";
    rounds_out = round;
    return {};
  }

  /// Per-leaf canonical provenance (the DeltaSimulator pass, undo-logged):
  /// forks the anchor's frozen graph, rebuilds derivations along
  /// chain-dirty cells only, and patches them through the leaf undo log so
  /// they roll back with the leaf. On success `view.provenance` carries the
  /// leaf's forked graph (the caller clears it after the visit); returns
  /// the fallback reason on failure, empty on success.
  [[nodiscard]] std::string canonicalizeLeafProvenance(
      const topo::Network& network,
      const std::vector<std::string>& changed_vs_base,
      const std::vector<std::tuple<int, net::Prefix, PrefixId>>& changed_cells,
      TreeLeafStats& stats) {
    const std::size_t router_count = routerCount();
    std::vector<std::uint8_t> device_changed(router_count, 0);
    const auto markDevice = [&](const std::string& device) {
      const int rid = tables->routers.idOf(device);
      if (rid != 0) device_changed[static_cast<std::size_t>(rid)] = 1;
    };
    for (const std::string& device : base_changed_devices) markDevice(device);
    for (const std::string& device : changed_vs_base) markDevice(device);

    std::vector<std::vector<std::uint8_t>> state_changed(router_count);
    std::set<PrefixId> affected_pids;
    for (const auto& [rid, prefix, pid] : changed_cells) {
      auto& row = state_changed[static_cast<std::size_t>(rid)];
      if (row.size() < tables->prefixes.size()) {
        row.resize(tables->prefixes.size(), 0);
      }
      row[pid] = 1;
      affected_pids.insert(pid);
    }
    // Chain dirtiness only originates from a base-dirty cell of the same
    // prefix: the affected universe is the changed cells' prefixes plus
    // every prefix present on an edited device.
    for (std::size_t rid = 0; rid < router_count; ++rid) {
      if (device_changed[rid] == 0) continue;
      const RibPage* page = view.rib.page(static_cast<int>(rid));
      if (page == nullptr) continue;
      for (PrefixId pid = 0; pid < page->entries.size(); ++pid) {
        if (page->entries[pid].present != 0) affected_pids.insert(pid);
      }
    }

    prov::ProvenanceGraph graph = anchor.provenance.fork();
    detail::ProvenanceRebuilder rebuilder(
        network, *tables, effective, graph,
        [this](int rid, PrefixId pid) { return view.rib.entryAt(rid, pid); },
        [&](int rid, PrefixId pid) {
          if (device_changed[static_cast<std::size_t>(rid)] != 0) return true;
          const auto& row = state_changed[static_cast<std::size_t>(rid)];
          return static_cast<std::size_t>(pid) < row.size() && row[pid] != 0;
        });
    for (const PrefixId pid : affected_pids) {
      for (std::size_t rid = 0; rid < router_count; ++rid) {
        if (view.rib.entryAt(static_cast<int>(rid), pid) == nullptr) continue;
        prov::DerivationId id = prov::kNoDerivation;
        if (!rebuilder.canonicalize(static_cast<int>(rid), pid, id)) {
          return "provenance-divergence";
        }
      }
    }
    // Patch fresh ids only after every cell succeeded, each one through
    // the leaf undo log so it rolls back with the leaf.
    for (const PrefixId pid : affected_pids) {
      for (std::size_t rid = 0; rid < router_count; ++rid) {
        const RouteEntry* entry = view.rib.entryAt(static_cast<int>(rid), pid);
        if (entry == nullptr) continue;
        const prov::DerivationId id =
            rebuilder.idOf(static_cast<int>(rid), pid);
        if (id == entry->derivation) continue;
        recordTouch(leaf_level, static_cast<int>(rid), pid);
        RouteEntry patched = *entry;
        patched.derivation = id;
        EcmpSet ecmp_copy;
        const EcmpSet* ecmp = view.rib.showsEcmp() && entry->has_ecmp != 0
                                  ? view.rib.ecmpAt(static_cast<int>(rid), pid)
                                  : nullptr;
        if (ecmp != nullptr) ecmp_copy = *ecmp;
        view.rib.set(static_cast<int>(rid), pid, patched,
                     ecmp != nullptr ? &ecmp_copy : nullptr);
      }
    }
    stats.fresh_derivations = rebuilder.freshCount();
    std::size_t total_routes = 0;
    for (std::size_t rid = 0; rid < router_count; ++rid) {
      const RibPage* page = view.rib.page(static_cast<int>(rid));
      if (page != nullptr) total_routes += page->live;
    }
    stats.reused_derivations =
        total_routes - std::min(total_routes, stats.fresh_derivations);
    view.provenance = std::move(graph);
    return {};
  }
};

DeltaTree::DeltaTree(const topo::Network& anchor_network,
                     const SimResult& anchor, const SimOptions& options)
    : impl_(std::make_unique<Impl>(anchor_network, anchor, options)) {
  util::MetricsRegistry& metrics = util::MetricsRegistry::global();
  metrics.counter("sim.tree.batches").add(1);
  const auto disable = [&](std::string reason) {
    impl_->disabled_reason = std::move(reason);
  };

  // Anchor-level preconditions — the DeltaSimulator's first fallback rules,
  // checked once per tree instead of once per candidate.
  if (options.record_provenance &&
      (anchor.provenance.empty() || !anchor.rib.showsDerivations())) {
    disable("provenance-anchor-missing");
    return;
  }
  if (!anchor.converged) {
    disable("baseline-not-converged");
    return;
  }
  if (anchor.rib.tables() == nullptr) {
    disable("baseline-unpaged");
    return;
  }
  // With ECMP recording on, every present BGP best of a matching anchor
  // carries a non-empty effective set (it contains at least the winner).
  if (options.enable_ecmp) {
    const bool shows = anchor.rib.showsEcmp();
    const std::size_t router_count = anchor.rib.tables()->routers.names.size();
    for (std::size_t rid = 0; rid < router_count; ++rid) {
      const RibPage* page = anchor.rib.page(static_cast<int>(rid));
      if (page == nullptr) continue;
      for (const RouteEntry& entry : page->entries) {
        if (entry.present != 0 && entry.source == RouteSource::kBgp &&
            !(shows && entry.has_ecmp != 0)) {
          disable("ecmp-recording-mismatch");
          return;
        }
      }
    }
  }

  // Working state: the anchor fixpoint forked copy-on-write onto cloned
  // tables, masked exactly like the DeltaSimulator's seed (derivations
  // point into the anchor's provenance graph; ECMP sets show per options).
  impl_->tables = std::make_shared<SimTables>(*anchor.rib.tables());
  impl_->view.rib = anchor.rib;
  impl_->view.rib.setTables(impl_->tables);
  impl_->view.rib.scrubFor(options.record_provenance, options.enable_ecmp);
  impl_->view.converged = true;
  impl_->view.sessions = anchor.sessions;
  impl_->hash = impl_->view.rib.stateHash();
  impl_->node_hash = impl_->hash;

  // Anchor flows, with the per-session slot layout every fork patches into.
  for (const Session& session : anchor.sessions) {
    impl_->session_flow_start.push_back(
        session.up ? static_cast<std::ptrdiff_t>(impl_->flows.size()) : -1);
    detail::appendFlowsForSession(anchor_network, session,
                                  impl_->tables->routers, impl_->flows);
  }
  impl_->effective.reserve(impl_->flows.size());
  for (std::size_t i = 0; i < impl_->flows.size(); ++i) {
    impl_->effective.push_back(&impl_->flows[i]);
  }
  impl_->plan.build(impl_->routerCount(), impl_->effective);
  impl_->board.configure(impl_->plan, impl_->tables->prefixes.size());
  impl_->better = detail::EntryBetter{&impl_->tables->routers};
  impl_->initLevel(impl_->node_level);
  impl_->initLevel(impl_->leaf_level);
}

DeltaTree::~DeltaTree() = default;

bool DeltaTree::usable() const { return impl_->disabled_reason.empty(); }

const std::string& DeltaTree::disabledReason() const {
  return impl_->disabled_reason;
}

void DeltaTree::setBase(const topo::Network& base,
                        const std::vector<std::string>& changed_vs_anchor) {
  if (!usable()) return;
  if (impl_->base_set) {
    impl_->disabled_reason = "base-already-set";
    return;
  }
  impl_->base_set = true;
  impl_->base_changed_devices = changed_vs_anchor;
  if (changed_vs_anchor.empty()) return;  // base == anchor

  obs::Span span("sim.tree.node");
  util::MetricsRegistry& metrics = util::MetricsRegistry::global();
  const std::set<std::string> changed(changed_vs_anchor.begin(),
                                      changed_vs_anchor.end());
  std::vector<std::size_t> up_touched;
  std::string reason = impl_->checkAgainstAnchor(base, changed, up_touched);
  if (reason.empty()) {
    impl_->patchFlows(base, up_touched, impl_->node_patch_storage, nullptr);
    int rounds = 0;
    std::size_t work_items = 0;
    reason = impl_->propagate(base, changed_vs_anchor, impl_->node_level,
                              rounds, work_items);
    metrics.counter("sim.tree.node_work_items").add(work_items);
    if (reason.empty()) {
      impl_->view.dropLookupPages(impl_->touchedRouters(impl_->node_level));
      impl_->node_hash = impl_->hash;
      span.attr("rounds", std::to_string(rounds));
      return;
    }
    impl_->rollback(impl_->node_level, impl_->node_hash);
  }
  // A base-level violation poisons every leaf: unwind to the anchor and
  // disable — leaves fall back to full runs with this reason.
  impl_->node_patch_storage.clear();
  for (std::size_t i = 0; i < impl_->flows.size(); ++i) {
    impl_->effective[i] = &impl_->flows[i];
  }
  span.attr("fallback", reason);
  impl_->disabled_reason = std::move(reason);
}

void DeltaTree::leaf(const topo::Network& network,
                     const std::vector<std::string>& changed_vs_base,
                     const LeafVisitor& visit) {
  obs::Span span("sim.tree.leaf");
  util::MetricsRegistry& metrics = util::MetricsRegistry::global();
  metrics.counter("sim.tree.leaves").add(1);

  const auto fallback = [&](std::string reason) {
    span.attr("fallback", reason);
    metrics.counter("sim.tree.fallback." + reason).add(1);
    TreeLeafStats stats;
    stats.used_delta = false;
    stats.fallback_reason = std::move(reason);
    const SimResult full = Simulator(network).run(impl_->options);
    visit(full, stats);
  };

  if (!usable()) return fallback(impl_->disabled_reason);

  // Leaf-level preconditions: a violation degrades this leaf only.
  const std::set<std::string> changed(changed_vs_base.begin(),
                                      changed_vs_base.end());
  std::vector<std::size_t> up_touched;
  std::string reason = impl_->checkAgainstAnchor(network, changed, up_touched);
  if (!reason.empty()) return fallback(reason);

  std::deque<detail::Flow> leaf_patch_storage;
  std::vector<std::pair<std::size_t, const detail::Flow*>> saved_slots;
  impl_->patchFlows(network, up_touched, leaf_patch_storage, &saved_slots);
  const auto restoreSlots = [&] {
    for (const auto& [slot, flow] : saved_slots) impl_->effective[slot] = flow;
  };

  TreeLeafStats stats;
  reason = impl_->propagate(network, changed_vs_base, impl_->leaf_level,
                            stats.rounds, stats.work_items);
  if (!reason.empty()) {
    impl_->rollback(impl_->leaf_level, impl_->node_hash);
    restoreSlots();
    return fallback(reason);
  }

  stats.used_delta = true;
  stats.undo_entries = impl_->leaf_level.touched.size();

  // Exact leaf-vs-anchor RIB diff from the touch lists: every cell either
  // tree level wrote, compared against the pristine anchor pages (saved
  // page pointers keep them intact). No RIB sweep is needed.
  std::vector<std::pair<int, PrefixId>> keys = impl_->node_level.touched;
  for (const auto& [rid, pid] : impl_->leaf_level.touched) {
    const auto& node_grid =
        impl_->node_level.touch_grid[static_cast<std::size_t>(rid)];
    if (pid < node_grid.size() && node_grid[pid] != 0) continue;
    keys.emplace_back(rid, pid);
  }
  std::vector<std::tuple<int, net::Prefix, PrefixId>> changed_cells;
  for (const auto& [rid, pid] : keys) {
    const RouteEntry* anchor_entry = impl_->anchor.rib.entryAt(rid, pid);
    const RouteEntry* current = impl_->view.rib.entryAt(rid, pid);
    const bool same =
        current == nullptr
            ? anchor_entry == nullptr
            : anchor_entry != nullptr &&
                  sameEntryState(*anchor_entry, *current);
    if (!same) {
      changed_cells.emplace_back(rid, impl_->tables->prefixes.prefixOf(pid),
                                 pid);
    }
  }
  std::sort(changed_cells.begin(), changed_cells.end(),
            [](const auto& a, const auto& b) {
              return std::get<0>(a) != std::get<0>(b)
                         ? std::get<0>(a) < std::get<0>(b)
                         : std::get<1>(a) < std::get<1>(b);
            });
  stats.changed_vs_anchor.reserve(changed_cells.size());
  for (const auto& [rid, prefix, pid] : changed_cells) {
    stats.changed_vs_anchor.emplace_back(impl_->tables->routers.nameOf(rid),
                                         prefix);
  }

  if (impl_->options.record_provenance) {
    const std::string prov_reason = impl_->canonicalizeLeafProvenance(
        network, changed_vs_base, changed_cells, stats);
    if (!prov_reason.empty()) {
      impl_->view.provenance.clear();
      impl_->rollback(impl_->leaf_level, impl_->node_hash);
      restoreSlots();
      return fallback(prov_reason);
    }
    metrics.counter("sim.tree.derivations_fresh")
        .add(stats.fresh_derivations);
    metrics.counter("sim.tree.derivations_reused")
        .add(stats.reused_derivations);
  }

  impl_->view.dropLookupPages(impl_->touchedRouters(impl_->leaf_level));
  impl_->view.rounds = stats.rounds;

  metrics.counter("sim.tree.delta_leaves").add(1);
  metrics.counter("sim.tree.leaf_work_items").add(stats.work_items);
  metrics.counter("sim.tree.rounds")
      .add(static_cast<std::uint64_t>(stats.rounds));
  metrics.counter("sim.tree.undo_entries").add(stats.undo_entries);
  // COW page reuse: only first-touched pages were cloned for this leaf.
  const std::size_t cloned = impl_->leaf_level.saved_pages.size();
  metrics.counter("sim.layout.pages_cloned").add(cloned);
  metrics.counter("sim.layout.pages_reused").add(impl_->view.rib.size() -
                                                 cloned);
  span.attr("rounds", std::to_string(stats.rounds));

  visit(impl_->view, stats);

  impl_->view.provenance.clear();  // the leaf's fork dies with the leaf
  impl_->rollback(impl_->leaf_level, impl_->node_hash);
  restoreSlots();
}

}  // namespace acr::route
