// Interned simulation tables: dense ids for routers, prefixes and AS paths.
//
// The routing engines used to key every hot-path structure by strings
// (router names) and heap-backed values (`net::Prefix` map keys,
// `std::vector` AS paths). These tables intern each of them once per
// simulation into dense integer ids so the round loop touches only flat
// arrays and PODs (routing/rib.hpp):
//
//   * RouterTable — names -> ids >= 1, with per-id router-id/ASN/name
//     columns (moved here from sim_internal.hpp; id 0 is reserved for
//     "locally originated / unknown").
//   * PrefixTable — `net::Prefix` -> PrefixId. Seeded with the *sorted*
//     prefix universe of a network (every connected and static prefix of
//     every config), so iterating a RIB page in id order IS iterating it
//     in prefix order — which is what keeps provenance recording and every
//     other order-sensitive output byte-identical to the old map walks.
//     Prefixes first seen later (e.g. a candidate edit adds a static
//     route) append past the seeded range.
//   * AsPathTable — AS-path contents -> AsPathId, stored as one shared
//     element arena + offsets (SoA). Id 0 is the empty path. The announce
//     transform's path edits (prepend, overwrite) are memoized id->id, so
//     steady-state rounds never re-hash or re-allocate a path.
//
// Determinism contract: ids are a function of the interning *sequence*
// only. Seeding derives that sequence from the network alone (sorted
// universe, config-map order), and each engine run owns its tables (or a
// clone of its baseline's — clones preserve ids exactly), so ids and every
// downstream verdict are byte-identical at any `--jobs`/`validate_jobs`.
//
// All tables are append-only; ids are never invalidated. Interning past
// kMaxIds throws std::length_error with a clear message — the id width is
// a deliberate packing decision, not a silent truncation point.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "netcore/ipv4.hpp"
#include "netcore/prefix.hpp"

namespace acr::topo {
class Network;
struct Topology;
}  // namespace acr::topo

namespace acr::route {

using PrefixId = std::uint32_t;
using AsPathId = std::uint32_t;

/// Sentinel for "not interned" lookups.
inline constexpr std::uint32_t kNoId = 0xffffffffu;

/// Dense router table: names interned to ids >= 1 (0 is reserved for
/// "locally originated / unknown"), with the per-id router-id, ASN and name
/// in flat arrays. Lets the decision process and the RIB pages key
/// everything by (router id, prefix id) instead of strings.
struct RouterTable {
  std::unordered_map<std::string, int> index;
  std::vector<net::Ipv4Address> router_ids;  // [0] = 0.0.0.0
  std::vector<std::uint32_t> asns;           // [0] = 0
  std::vector<std::string> names;            // [0] = ""
  /// Router ids in name order — the iteration order of the old
  /// string-keyed RIB map, preserved for every order-sensitive boundary.
  std::vector<int> ids_by_name;

  explicit RouterTable(const topo::Topology& topology);

  [[nodiscard]] int idOf(const std::string& name) const {
    const auto it = index.find(name);
    return it == index.end() ? 0 : it->second;
  }
  [[nodiscard]] net::Ipv4Address routerIdOf(int id) const {
    const auto index_ = static_cast<std::size_t>(id);
    return index_ < router_ids.size() ? router_ids[index_] : net::Ipv4Address();
  }
  [[nodiscard]] const std::string& nameOf(int id) const {
    return names[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] std::size_t size() const { return names.size() - 1; }
};

/// Append-only prefix interner. Ids are assigned in first-intern order;
/// seedTables() interns the sorted universe first so seeded ids sort like
/// their prefixes.
class PrefixTable {
 public:
  static constexpr std::uint32_t kMaxIds = 1u << 24;

  /// Interns (appending when unseen). Throws std::length_error past kMaxIds.
  PrefixId intern(const net::Prefix& prefix);
  /// Lookup without interning; kNoId when unseen.
  [[nodiscard]] PrefixId tryIdOf(const net::Prefix& prefix) const;
  [[nodiscard]] const net::Prefix& prefixOf(PrefixId id) const {
    return prefixes_[id];
  }
  [[nodiscard]] std::size_t size() const { return prefixes_.size(); }
  [[nodiscard]] std::size_t bytes() const;
  /// Lowers the id-space cap below kMaxIds — test seam for the overflow
  /// guard (the real cap is too large to hit in a unit test).
  void capForTest(std::uint32_t cap) { cap_ = cap; }

 private:
  std::vector<net::Prefix> prefixes_;
  /// (address << 8 | length) is a perfect 40-bit key — no collisions.
  std::unordered_map<std::uint64_t, PrefixId> index_;
  std::uint32_t cap_ = kMaxIds;
};

/// Append-only AS-path interner over a shared element arena. Id 0 is the
/// empty path. Prepend/overwrite edits are memoized so the announce
/// transform's steady state allocates nothing.
class AsPathTable {
 public:
  static constexpr std::uint32_t kMaxIds = 1u << 24;

  AsPathTable();

  /// Interns path contents. Throws std::length_error past kMaxIds.
  AsPathId intern(std::span<const std::uint32_t> path);
  [[nodiscard]] std::span<const std::uint32_t> pathOf(AsPathId id) const {
    return {elems_.data() + offsets_[id], offsets_[id + 1] - offsets_[id]};
  }
  [[nodiscard]] std::uint32_t lengthOf(AsPathId id) const {
    return offsets_[id + 1] - offsets_[id];
  }
  /// Id of {asn} + pathOf(id); memoized.
  AsPathId prepended(AsPathId id, std::uint32_t asn);
  /// Id of the one-element path {asn}; memoized (== prepended(0, asn)).
  AsPathId singleton(std::uint32_t asn) { return prepended(0, asn); }
  [[nodiscard]] bool contains(AsPathId id, std::uint32_t asn) const;
  /// First element; only meaningful when lengthOf(id) > 0.
  [[nodiscard]] std::uint32_t frontOf(AsPathId id) const {
    return elems_[offsets_[id]];
  }
  [[nodiscard]] std::size_t size() const { return offsets_.size() - 1; }
  [[nodiscard]] std::size_t bytes() const;
  /// Lowers the id-space cap below kMaxIds — test seam for the overflow
  /// guard (the real cap is too large to hit in a unit test).
  void capForTest(std::uint32_t cap) { cap_ = cap; }

 private:
  std::vector<std::uint32_t> elems_;
  std::vector<std::uint32_t> offsets_;  // size() + 1 entries
  /// Content hash -> candidate ids (hash collisions resolved by compare).
  std::unordered_map<std::uint64_t, std::vector<AsPathId>> index_;
  std::unordered_map<std::uint64_t, AsPathId> prepend_memo_;
  std::uint32_t cap_ = kMaxIds;
};

/// The per-run table bundle every engine (full, delta, tree) seeds once and
/// threads through its RIB pages. Copyable: a clone preserves every id, so
/// incremental engines clone their baseline's tables and extend privately —
/// shared pages stay valid and nothing ever mutates tables across threads.
struct SimTables {
  RouterTable routers;
  PrefixTable prefixes;
  AsPathTable paths;

  explicit SimTables(const topo::Topology& topology) : routers(topology) {}
};

using SimTablesPtr = std::shared_ptr<SimTables>;

/// Seeds tables for `network`: the dense router table plus the sorted
/// prefix universe (every interface's connected prefix and every static
/// route's prefix, resolvable or not). Emits `sim.layout.*` metrics and a
/// `sim.layout.seed` span.
[[nodiscard]] SimTablesPtr seedTables(const topo::Network& network);

}  // namespace acr::route
