#include "routing/sim_internal.hpp"

#include <algorithm>
#include <tuple>
#include <utility>

namespace acr::route::detail {

RouterTable::RouterTable(const topo::Topology& topology) {
  router_ids.emplace_back();  // id 0: locally originated / unknown
  asns.push_back(0);
  names.emplace_back();
  for (const auto& router : topology.routers()) {
    index.emplace(router.name, static_cast<int>(router_ids.size()));
    router_ids.push_back(router.router_id);
    asns.push_back(router.asn);
    names.push_back(router.name);
  }
}

void appendFlowsForSession(const topo::Network& network,
                           const Session& session, const RouterTable& table,
                           std::vector<Flow>& flows) {
  if (!session.up) return;
  for (const auto& [from, to, from_addr, to_addr] :
       {std::tuple{session.a, session.b, session.a_address,
                   session.b_address},
        std::tuple{session.b, session.a, session.b_address,
                   session.a_address}}) {
    Flow flow;
    flow.from = from;
    flow.to = to;
    flow.from_id = table.idOf(from);
    flow.to_id = table.idOf(to);
    flow.from_asn = table.asns[static_cast<std::size_t>(flow.from_id)];
    flow.to_asn = table.asns[static_cast<std::size_t>(flow.to_id)];
    flow.from_address = from_addr;
    flow.exporter = network.config(from);
    flow.importer = network.config(to);
    flow.exporter_peer = flow.exporter->bgp->findPeer(to_addr);
    flow.importer_peer = flow.importer->bgp->findPeer(from_addr);
    flow.session_lines = {
        cfg::LineId{from, flow.exporter_peer->as_line},
        cfg::LineId{to, flow.importer_peer->as_line},
    };
    flow.export_binding = resolvePolicyBinding(
        *flow.exporter, *flow.exporter_peer, Direction::kExport);
    flow.import_binding = resolvePolicyBinding(
        *flow.importer, *flow.importer_peer, Direction::kImport);
    flows.push_back(std::move(flow));
  }
}

std::vector<Flow> buildFlows(const topo::Network& network,
                             const std::vector<Session>& sessions,
                             const RouterTable& table) {
  std::vector<Flow> flows;
  for (const auto& session : sessions) {
    appendFlowsForSession(network, session, table, flows);
  }
  return flows;
}

Session sessionForLink(const topo::Network& network,
                       const topo::LinkDecl& link) {
  const topo::Topology& topology = network.topology;
  Session session;
  session.a = link.a;
  session.b = link.b;
  session.a_address = link.addressOf(link.a);
  session.b_address = link.addressOf(link.b);
  const cfg::DeviceConfig* ca = network.config(link.a);
  const cfg::DeviceConfig* cb = network.config(link.b);
  const topo::RouterDecl* ra = topology.findRouter(link.a);
  const topo::RouterDecl* rb = topology.findRouter(link.b);
  const auto check = [&](const cfg::DeviceConfig* self,
                         net::Ipv4Address peer_address,
                         const topo::RouterDecl* peer_router,
                         const std::string& self_name) -> std::string {
    if (self == nullptr || !self->bgp) {
      return "no bgp configuration on " + self_name;
    }
    const cfg::PeerConfig* peer = self->bgp->findPeer(peer_address);
    if (peer == nullptr) {
      return "no peer statement for " + peer_address.str() + " on " +
             self_name;
    }
    if (peer->remote_as != peer_router->asn) {
      return "as-number mismatch on " + self_name + ": configured " +
             std::to_string(peer->remote_as) + ", remote is " +
             std::to_string(peer_router->asn);
    }
    return {};
  };
  std::string reason = check(ca, session.b_address, rb, link.a);
  if (reason.empty()) reason = check(cb, session.a_address, ra, link.b);
  session.up = reason.empty();
  session.down_reason = reason;
  return session;
}

std::vector<Route> localRoutesFor(const std::string& name,
                                  const cfg::DeviceConfig& device,
                                  prov::ProvenanceGraph* provenance) {
  std::vector<Route> routes;
  for (const auto& itf : device.interfaces) {
    Route route;
    route.prefix = itf.connectedPrefix();
    route.source = RouteSource::kConnected;
    if (provenance != nullptr) {
      route.derivation = provenance->add(prov::Derivation{
          name, route.prefix, prov::kNoDerivation,
          {cfg::LineId{name, itf.ip_line}}});
    }
    routes.push_back(route);
  }
  for (const auto& sr : device.static_routes) {
    const bool resolvable =
        std::any_of(device.interfaces.begin(), device.interfaces.end(),
                    [&](const cfg::InterfaceConfig& itf) {
                      return itf.connectedPrefix().contains(sr.next_hop);
                    });
    if (!resolvable) continue;  // inactive static route
    Route route;
    route.prefix = sr.prefix;
    route.source = RouteSource::kStatic;
    route.next_hop = sr.next_hop;
    if (provenance != nullptr) {
      route.derivation = provenance->add(prov::Derivation{
          name, route.prefix, prov::kNoDerivation,
          {cfg::LineId{name, sr.line}}});
    }
    routes.push_back(route);
  }
  return routes;
}

std::map<std::string, std::vector<Route>> computeLocalRoutes(
    const topo::Network& network, prov::ProvenanceGraph* provenance) {
  std::map<std::string, std::vector<Route>> local_routes;
  for (const auto& [name, device] : network.configs) {
    local_routes[name] = localRoutesFor(name, device, provenance);
  }
  return local_routes;
}

namespace {

/// Routes tie for ECMP when everything ahead of the router-id tiebreak is
/// equal.
bool equalCost(const Route& a, const Route& b) {
  return a.source == b.source && a.local_pref == b.local_pref &&
         a.as_path.size() == b.as_path.size() && a.med == b.med;
}

}  // namespace

std::optional<Route> selectBestForPrefix(
    const std::map<std::string, Route>& options_for_prefix,
    const RouteBetter& better, bool enable_ecmp) {
  const Route* best = nullptr;
  for (const auto& [origin, route] : options_for_prefix) {
    if (best == nullptr || better(route, *best)) best = &route;
  }
  if (best == nullptr) return std::nullopt;
  Route selected = *best;
  selected.ecmp.clear();
  if (enable_ecmp && selected.source == RouteSource::kBgp) {
    for (const auto& [origin, route] : options_for_prefix) {
      if (route.source == RouteSource::kBgp && equalCost(route, *best)) {
        selected.ecmp.emplace_back(route.learned_from, route.next_hop);
      }
    }
    std::sort(selected.ecmp.begin(), selected.ecmp.end());
  }
  return selected;
}

void selectBests(const Candidates& candidates,
                 std::map<net::Prefix, Route>& bests, const RouteBetter& better,
                 bool enable_ecmp) {
  bests.clear();
  for (const auto& [prefix, options_for_prefix] : candidates) {
    auto selected = selectBestForPrefix(options_for_prefix, better, enable_ecmp);
    if (!selected) continue;
    bests.emplace(prefix, std::move(*selected));
  }
}

std::optional<Route> announceOnFlow(const Flow& flow, const net::Prefix& prefix,
                                    const Route& route,
                                    prov::ProvenanceGraph* provenance,
                                    std::uint64_t* announcements) {
  const cfg::DeviceConfig& exporter = *flow.exporter;
  const cfg::DeviceConfig& importer = *flow.importer;

  // Redistribution gate for locally originated routes.
  if (route.source == RouteSource::kConnected) {
    if (!exporter.bgp->redistributes_source(cfg::RedistSource::kConnected)) {
      return std::nullopt;
    }
    if (prefix.length() >= 30) return std::nullopt;  // never leak transfer subnets
  } else if (route.source == RouteSource::kStatic) {
    if (!exporter.bgp->redistributes_source(cfg::RedistSource::kStatic)) {
      return std::nullopt;
    }
  }
  if (announcements != nullptr) ++*announcements;

  const bool record = provenance != nullptr;
  Route announced = route;
  announced.source = RouteSource::kBgp;
  announced.ecmp.clear();  // derived state, never advertised
  std::vector<cfg::LineId> lines;
  if (record) {
    lines = flow.session_lines;
    lines.insert(lines.end(), flow.export_binding.lines.begin(),
                 flow.export_binding.lines.end());
    if (route.source != RouteSource::kBgp &&
        exporter.bgp) {  // attribute the redistribute line
      for (const auto& redist : exporter.bgp->redistributes) {
        if ((route.source == RouteSource::kConnected &&
             redist.source == cfg::RedistSource::kConnected) ||
            (route.source == RouteSource::kStatic &&
             redist.source == cfg::RedistSource::kStatic)) {
          lines.push_back(cfg::LineId{flow.from, redist.line});
        }
      }
    }
  }
  if (flow.export_binding.bound) {
    PolicyVerdict verdict = applyRoutePolicy(exporter, flow.export_binding.policy,
                                             announced, flow.from_asn);
    if (record) {
      for (auto& line : verdict.lines) line.device = flow.from;
      lines.insert(lines.end(), verdict.lines.begin(), verdict.lines.end());
    }
    if (!verdict.permitted) return std::nullopt;
    announced = verdict.route;
  }
  // Prepend own AS unless the overwrite already installed it in front.
  if (announced.as_path.empty() || announced.as_path.front() != flow.from_asn) {
    announced.as_path.insert(announced.as_path.begin(), flow.from_asn);
  }

  // Receiver-side loop prevention on the advertised path.
  if (std::find(announced.as_path.begin(), announced.as_path.end(),
                flow.to_asn) != announced.as_path.end()) {
    return std::nullopt;
  }

  Route imported = announced;
  imported.local_pref = 100;  // local-pref is not transitive over eBGP
  imported.learned_from = flow.from;
  imported.learned_from_id = flow.from_id;
  imported.next_hop = flow.from_address;
  if (flow.import_binding.bound) {
    if (record) {
      lines.insert(lines.end(), flow.import_binding.lines.begin(),
                   flow.import_binding.lines.end());
    }
    PolicyVerdict verdict = applyRoutePolicy(importer, flow.import_binding.policy,
                                             imported, flow.to_asn);
    if (record) {
      lines.insert(lines.end(), verdict.lines.begin(), verdict.lines.end());
    }
    if (!verdict.permitted) return std::nullopt;
    imported = verdict.route;
  }
  if (record) {
    imported.derivation = provenance->add(
        prov::Derivation{flow.to, prefix, route.derivation, std::move(lines)});
  }
  return imported;
}

std::uint64_t ribEntryHash(const std::string& router, const Route& route) {
  constexpr std::uint64_t kOffset = 1469598103934665603ull;
  constexpr std::uint64_t kPrime = 1099511628211ull;
  std::uint64_t hash = kOffset;
  const auto mix = [&](const char* data, std::size_t size) {
    for (std::size_t i = 0; i < size; ++i) {
      hash ^= static_cast<unsigned char>(data[i]);
      hash *= kPrime;
    }
  };
  mix(router.data(), router.size());
  mix("\n", 1);
  const std::string key = route.key();
  mix(key.data(), key.size());
  return hash;
}

std::uint64_t ribHash(const Rib& rib) {
  std::uint64_t hash = 0;
  for (const auto& [router, routes] : rib) {
    for (const auto& [prefix, route] : routes) {
      hash ^= ribEntryHash(router, route);
    }
  }
  return hash;
}

bool ribEqualByKey(const Rib& a, const Rib& b) {
  if (a.size() != b.size()) return false;
  auto ita = a.begin();
  auto itb = b.begin();
  for (; ita != a.end(); ++ita, ++itb) {
    if (ita->first != itb->first) return false;
    const auto& ra = ita->second;
    const auto& rb = itb->second;
    if (ra.size() != rb.size()) return false;
    auto ja = ra.begin();
    auto jb = rb.begin();
    for (; ja != ra.end(); ++ja, ++jb) {
      if (ja->first != jb->first) return false;
      if (!sameRouteState(ja->second, jb->second)) return false;
    }
  }
  return true;
}

bool sameTopologyShape(const topo::Topology& a, const topo::Topology& b) {
  const auto& ra = a.routers();
  const auto& rb = b.routers();
  if (ra.size() != rb.size()) return false;
  for (std::size_t i = 0; i < ra.size(); ++i) {
    if (ra[i].name != rb[i].name || ra[i].asn != rb[i].asn ||
        ra[i].router_id != rb[i].router_id) {
      return false;
    }
  }
  const auto& la = a.links();
  const auto& lb = b.links();
  if (la.size() != lb.size()) return false;
  for (std::size_t i = 0; i < la.size(); ++i) {
    if (la[i].a != lb[i].a || la[i].b != lb[i].b ||
        la[i].subnet != lb[i].subnet) {
      return false;
    }
  }
  return true;
}

bool sameSessions(const std::vector<Session>& a,
                  const std::vector<Session>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].a != b[i].a || a[i].b != b[i].b ||
        a[i].a_address != b[i].a_address || a[i].b_address != b[i].b_address ||
        a[i].up != b[i].up || a[i].down_reason != b[i].down_reason) {
      return false;
    }
  }
  return true;
}

bool sameDeviceSet(const topo::Network& a, const topo::Network& b) {
  if (a.configs.size() != b.configs.size()) return false;
  auto ia = a.configs.begin();
  auto ib = b.configs.begin();
  for (; ia != a.configs.end(); ++ia, ++ib) {
    if (ia->first != ib->first) return false;
  }
  return true;
}

}  // namespace acr::route::detail
