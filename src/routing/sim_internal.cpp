#include "routing/sim_internal.hpp"

#include <tuple>
#include <utility>

namespace acr::route::detail {

void appendFlowsForSession(const topo::Network& network,
                           const Session& session, const RouterTable& table,
                           std::vector<Flow>& flows) {
  if (!session.up) return;
  for (const auto& [from, to, from_addr, to_addr] :
       {std::tuple{session.a, session.b, session.a_address,
                   session.b_address},
        std::tuple{session.b, session.a, session.b_address,
                   session.a_address}}) {
    Flow flow;
    flow.from = from;
    flow.to = to;
    flow.from_id = table.idOf(from);
    flow.to_id = table.idOf(to);
    flow.from_asn = table.asns[static_cast<std::size_t>(flow.from_id)];
    flow.to_asn = table.asns[static_cast<std::size_t>(flow.to_id)];
    flow.from_address = from_addr;
    flow.exporter = network.config(from);
    flow.importer = network.config(to);
    flow.exporter_peer = flow.exporter->bgp->findPeer(to_addr);
    flow.importer_peer = flow.importer->bgp->findPeer(from_addr);
    flow.session_lines = {
        cfg::LineId{from, flow.exporter_peer->as_line},
        cfg::LineId{to, flow.importer_peer->as_line},
    };
    flow.export_binding = resolvePolicyBinding(
        *flow.exporter, *flow.exporter_peer, Direction::kExport);
    flow.import_binding = resolvePolicyBinding(
        *flow.importer, *flow.importer_peer, Direction::kImport);
    flows.push_back(std::move(flow));
  }
}

std::vector<Flow> buildFlows(const topo::Network& network,
                             const std::vector<Session>& sessions,
                             const RouterTable& table) {
  std::vector<Flow> flows;
  for (const auto& session : sessions) {
    appendFlowsForSession(network, session, table, flows);
  }
  return flows;
}

Session sessionForLink(const topo::Network& network,
                       const topo::LinkDecl& link) {
  const topo::Topology& topology = network.topology;
  Session session;
  session.a = link.a;
  session.b = link.b;
  session.a_address = link.addressOf(link.a);
  session.b_address = link.addressOf(link.b);
  const cfg::DeviceConfig* ca = network.config(link.a);
  const cfg::DeviceConfig* cb = network.config(link.b);
  const topo::RouterDecl* ra = topology.findRouter(link.a);
  const topo::RouterDecl* rb = topology.findRouter(link.b);
  const auto check = [&](const cfg::DeviceConfig* self,
                         net::Ipv4Address peer_address,
                         const topo::RouterDecl* peer_router,
                         const std::string& self_name) -> std::string {
    if (self == nullptr || !self->bgp) {
      return "no bgp configuration on " + self_name;
    }
    const cfg::PeerConfig* peer = self->bgp->findPeer(peer_address);
    if (peer == nullptr) {
      return "no peer statement for " + peer_address.str() + " on " +
             self_name;
    }
    if (peer->remote_as != peer_router->asn) {
      return "as-number mismatch on " + self_name + ": configured " +
             std::to_string(peer->remote_as) + ", remote is " +
             std::to_string(peer_router->asn);
    }
    return {};
  };
  std::string reason = check(ca, session.b_address, rb, link.a);
  if (reason.empty()) reason = check(cb, session.a_address, ra, link.b);
  session.up = reason.empty();
  session.down_reason = reason;
  return session;
}

bool sameTopologyShape(const topo::Topology& a, const topo::Topology& b) {
  const auto& ra = a.routers();
  const auto& rb = b.routers();
  if (ra.size() != rb.size()) return false;
  for (std::size_t i = 0; i < ra.size(); ++i) {
    if (ra[i].name != rb[i].name || ra[i].asn != rb[i].asn ||
        ra[i].router_id != rb[i].router_id) {
      return false;
    }
  }
  const auto& la = a.links();
  const auto& lb = b.links();
  if (la.size() != lb.size()) return false;
  for (std::size_t i = 0; i < la.size(); ++i) {
    if (la[i].a != lb[i].a || la[i].b != lb[i].b ||
        la[i].subnet != lb[i].subnet) {
      return false;
    }
  }
  return true;
}

bool sameSessions(const std::vector<Session>& a,
                  const std::vector<Session>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].a != b[i].a || a[i].b != b[i].b ||
        a[i].a_address != b[i].a_address || a[i].b_address != b[i].b_address ||
        a[i].up != b[i].up || a[i].down_reason != b[i].down_reason) {
      return false;
    }
  }
  return true;
}

bool sameDeviceSet(const topo::Network& a, const topo::Network& b) {
  if (a.configs.size() != b.configs.size()) return false;
  auto ia = a.configs.begin();
  auto ib = b.configs.begin();
  for (; ia != a.configs.end(); ++ia, ++ib) {
    if (ia->first != ib->first) return false;
  }
  return true;
}

}  // namespace acr::route::detail
